"""Tests for cross-traffic generation: rates, distributions, packet mixes."""

import numpy as np
import pytest

from repro.netsim import (
    PAPER_PACKET_MIX,
    LinkSpec,
    PacketMix,
    Simulator,
    attach_cross_traffic,
    build_path,
)
from repro.netsim.crosstraffic import CrossTrafficSource


def harness(rate=5e6, model="poisson", n_sources=10, seconds=20.0, seed=0, alpha=1.9):
    sim = Simulator()
    net = build_path(sim, [LinkSpec(100e6, name="L")])
    rng = np.random.default_rng(seed)
    sources = attach_cross_traffic(
        sim, net, net.forward_links[0], rate, rng, n_sources=n_sources, model=model,
        alpha=alpha,
    )
    sim.run(until=seconds)
    return net.forward_links[0], sources


class TestPacketMix:
    def test_paper_mix_mean(self):
        mix = PacketMix(PAPER_PACKET_MIX)
        assert mix.mean_size == pytest.approx(0.4 * 40 + 0.5 * 550 + 0.1 * 1500)

    def test_sample_only_contains_mix_sizes(self):
        mix = PacketMix(PAPER_PACKET_MIX)
        rng = np.random.default_rng(1)
        samples = mix.sample(rng, 1000)
        assert set(np.unique(samples)) <= {40, 550, 1500}

    def test_sample_proportions(self):
        mix = PacketMix(PAPER_PACKET_MIX)
        rng = np.random.default_rng(2)
        samples = mix.sample(rng, 20000)
        frac_40 = np.mean(samples == 40)
        assert abs(frac_40 - 0.4) < 0.02

    def test_constant_mix(self):
        mix = PacketMix.constant(1000)
        assert mix.mean_size == 1000

    def test_bad_probabilities_rejected(self):
        with pytest.raises(ValueError):
            PacketMix(((100, 0.5), (200, 0.6)))

    def test_empty_mix_rejected(self):
        with pytest.raises(ValueError):
            PacketMix(())


class TestOfferedRate:
    @pytest.mark.parametrize("model", ["poisson", "pareto", "cbr"])
    def test_long_run_rate_matches_target(self, model):
        link, _src = harness(rate=5e6, model=model, seconds=30.0)
        achieved = link.stats.bytes_forwarded * 8 / 30.0
        assert achieved == pytest.approx(5e6, rel=0.1)

    def test_zero_rate_sends_nothing(self):
        link, sources = harness(rate=0.0)
        assert link.stats.packets_forwarded == 0

    def test_rate_split_across_sources(self):
        _link, sources = harness(rate=6e6, n_sources=10, seconds=10.0)
        assert len(sources) == 10
        rates = [s.rate_bps for s in sources]
        assert all(r == pytest.approx(6e5) for r in rates)

    def test_stop_time_respected(self):
        sim = Simulator()
        net = build_path(sim, [LinkSpec(100e6)])
        rng = np.random.default_rng(3)
        attach_cross_traffic(
            sim, net, net.forward_links[0], 5e6, rng, stop=1.0, model="poisson"
        )
        sim.run(until=10.0)
        in_window = net.forward_links[0].stats.bytes_forwarded * 8
        assert in_window <= 5e6 * 1.0 * 1.6  # nothing sent after t=1


class TestBurstiness:
    def test_pareto_is_burstier_than_poisson(self):
        """Infinite-variance interarrivals: higher variance of per-window
        counts (the property that matters for avail-bw variability)."""

        def window_counts(model, seed):
            sim = Simulator()
            net = build_path(sim, [LinkSpec(1e9)])
            rng = np.random.default_rng(seed)
            counts = []
            link = net.forward_links[0]
            attach_cross_traffic(sim, net, link, 5e6, rng, model=model, n_sources=10)
            prev = 0
            for i in range(1, 200):
                sim.run(until=i * 0.05)
                counts.append(link.stats.packets_forwarded - prev)
                prev = link.stats.packets_forwarded
            return np.array(counts, dtype=float)

        poisson = np.std(window_counts("poisson", 11))
        pareto = np.std(window_counts("pareto", 11))
        assert pareto > poisson

    def test_cbr_is_nearly_deterministic(self):
        sim = Simulator()
        net = build_path(sim, [LinkSpec(1e9)])
        rng = np.random.default_rng(5)
        link = net.forward_links[0]
        attach_cross_traffic(
            sim, net, link, 5e6, rng, model="cbr", n_sources=1,
            mix=PacketMix.constant(500),
        )
        sim.run(until=2.0)
        expected = 5e6 * 2.0 / 8 / 500
        assert link.stats.packets_forwarded == pytest.approx(expected, abs=2)


class TestModulation:
    def test_long_run_rate_preserved(self):
        """The mean-reverting walk must not bias the average offered load."""
        sim = Simulator()
        net = build_path(sim, [LinkSpec(1e9)])
        rng = np.random.default_rng(7)
        attach_cross_traffic(
            sim, net, net.forward_links[0], 5e6, rng, modulation=(0.5, 0.3)
        )
        sim.run(until=120.0)
        achieved = net.forward_links[0].stats.bytes_forwarded * 8 / 120.0
        assert achieved == pytest.approx(5e6, rel=0.25)

    def test_modulation_increases_slow_timescale_variance(self):
        def window_rates(modulation, seed=8, window=1.0, n=60):
            sim = Simulator()
            net = build_path(sim, [LinkSpec(1e9)])
            rng = np.random.default_rng(seed)
            link = net.forward_links[0]
            attach_cross_traffic(
                sim, net, link, 5e6, rng, modulation=modulation
            )
            rates, prev = [], 0
            for i in range(1, n + 1):
                sim.run(until=i * window)
                rates.append((link.stats.bytes_forwarded - prev) * 8 / window)
                prev = link.stats.bytes_forwarded
            return np.std(rates)

        assert window_rates((1.0, 0.3)) > 1.5 * window_rates(None)

    def test_factor_stays_clamped(self):
        sim = Simulator()
        net = build_path(sim, [LinkSpec(1e9)])
        rng = np.random.default_rng(9)
        src = CrossTrafficSource(
            sim, net, net.forward_links[0], 1e6, rng,
            modulation=(0.05, 2.0),  # violent walk
        )
        for i in range(1, 200):
            sim.run(until=i * 0.05)
            assert 0.25 <= src._mod_factor <= 2.5

    def test_boundary_times_are_exact(self):
        """Regression: ``_modulate`` reschedules at ``anchor + k*interval``
        (absolute), not ``now + interval`` (relative).  With a non-binary
        interval like 0.1, relative rescheduling accumulates float error
        (``sum of 100×0.1`` ≠ ``100*0.1``), which would let per-packet and
        segment-planned boundary instants drift apart at tiebreaks."""
        sim = Simulator()
        net = build_path(sim, [LinkSpec(1e9)])
        src = CrossTrafficSource(
            sim, net, net.forward_links[0], 1e6, np.random.default_rng(3),
            modulation=(0.1, 0.3), bulk=False,
        )
        boundaries = []
        orig = src._modulate

        def spy():
            boundaries.append(sim.now)
            orig()

        # The k=0 event was queued by the constructor with the original
        # bound method; the spy sees every rescheduled boundary from k=1.
        src._modulate = spy
        sim.run(until=10.05)
        # Every boundary is bit-exactly k * 0.1 — the single multiplication,
        # not an accumulated sum (100 * 0.1 == 10.000000000000002, which an
        # accumulating chain does not hit).
        assert boundaries == [k * 0.1 for k in range(1, len(boundaries) + 1)]
        assert len(boundaries) == 100
        assert boundaries[-1] == 100 * 0.1
        assert src._mod_next_b == 101 * 0.1

    def test_boundary_chain_survives_decommission(self):
        """The restarted per-packet chain lands on the same exact grid."""
        sim = Simulator()
        net = build_path(sim, [LinkSpec(1e9)])
        link = net.forward_links[0]
        src = CrossTrafficSource(
            sim, net, link, 1e6, np.random.default_rng(3),
            modulation=(0.1, 0.3),
        )
        assert src.is_bulk
        sim.schedule_at(1.05, lambda: setattr(link, "drop_hook", lambda p: None))
        sim.run(until=3.0)
        assert not src.is_bulk
        assert src._mod_next_b == src._mod_k * 0.1

    def test_invalid_modulation_rejected(self):
        sim = Simulator()
        net = build_path(sim, [LinkSpec(1e6)])
        with pytest.raises(ValueError, match="modulation"):
            CrossTrafficSource(
                sim, net, net.forward_links[0], 1e6,
                np.random.default_rng(0), modulation=(0.0, 0.1),
            )


class TestValidation:
    def test_unknown_model_rejected(self):
        sim = Simulator()
        net = build_path(sim, [LinkSpec(1e6)])
        with pytest.raises(ValueError, match="model"):
            CrossTrafficSource(
                sim, net, net.forward_links[0], 1e6,
                np.random.default_rng(0), model="weibull",
            )

    def test_pareto_alpha_must_exceed_one(self):
        sim = Simulator()
        net = build_path(sim, [LinkSpec(1e6)])
        with pytest.raises(ValueError, match="alpha"):
            CrossTrafficSource(
                sim, net, net.forward_links[0], 1e6,
                np.random.default_rng(0), model="pareto", alpha=0.9,
            )

    def test_negative_rate_rejected(self):
        sim = Simulator()
        net = build_path(sim, [LinkSpec(1e6)])
        with pytest.raises(ValueError):
            CrossTrafficSource(
                sim, net, net.forward_links[0], -1.0, np.random.default_rng(0)
            )

    def test_zero_sources_rejected(self):
        sim = Simulator()
        net = build_path(sim, [LinkSpec(1e6)])
        with pytest.raises(ValueError):
            attach_cross_traffic(
                sim, net, net.forward_links[0], 1e6,
                np.random.default_rng(0), n_sources=0,
            )
