"""Tests for TCP Vegas (delay-based congestion control).

The paper's Section II places SLoPS next to the delay-based congestion
control family (Vegas, Jain's delay approach, Mitra & Seery): both infer
congestion from rising delays.  Implementing Vegas lets the repo exhibit
the family's signature behaviours against Reno on the same substrate.
"""

import numpy as np
import pytest

from repro.netsim import LinkSpec, Simulator, build_path
from repro.transport.tcp import TCPConfig, open_connection


def bottleneck(sim, capacity=8e6, prop=0.04, buffer_bytes=100_000):
    return build_path(
        sim, [LinkSpec(capacity, prop_delay=prop, buffer_bytes=buffer_bytes)]
    )


def run_single(cc, seconds=40.0, **link_kwargs):
    sim = Simulator()
    net = bottleneck(sim, **link_kwargs)
    snd, rcv = open_connection(
        sim, net, config=TCPConfig(congestion_control=cc, min_rto=0.5), start=0.0
    )
    worst = 0
    for t in np.arange(1.0, seconds, 0.2):
        sim.run(until=float(t))
        worst = max(worst, net.forward_links[0].backlog_bytes())
    snd.stop()
    return rcv.throughput_bps(seconds / 4, seconds), worst, snd


class TestVegasAlone:
    def test_high_utilization_without_losses(self):
        throughput, _worst, sender = run_single("vegas")
        assert throughput > 0.85 * 8e6
        assert sender.retransmits == 0
        assert sender.timeouts == 0

    def test_keeps_queue_far_smaller_than_reno(self):
        """The delay-based signature: back off before the buffer fills."""
        _thr_v, queue_vegas, _s = run_single("vegas")
        _thr_r, queue_reno, _s2 = run_single("reno")
        assert queue_vegas < 0.3 * queue_reno

    def test_base_rtt_learned(self):
        sim = Simulator()
        net = bottleneck(sim)
        snd, _rcv = open_connection(
            sim, net, config=TCPConfig(congestion_control="vegas", min_rto=0.5),
            start=0.0,
        )
        sim.run(until=10.0)
        snd.stop()
        assert snd.base_rtt == pytest.approx(net.min_rtt(1500), rel=0.1)

    def test_loss_recovery_inherited(self):
        """Vegas still recovers from drops (tiny buffer forces some)."""
        sim = Simulator()
        net = bottleneck(sim, buffer_bytes=6_000)
        snd, rcv = open_connection(
            sim, net,
            config=TCPConfig(congestion_control="vegas", min_rto=0.3),
            total_bytes=400_000, start=0.0,
        )
        sim.run(until=60.0)
        assert rcv.delivered_bytes == 400_000


class TestCoexistence:
    def test_reno_outcompetes_vegas(self):
        """The classic result: a loss-based flow fills the queue Vegas is
        trying to keep empty, so Vegas yields bandwidth."""
        sim = Simulator()
        net = bottleneck(sim, buffer_bytes=120_000)
        reno_s, reno_r = open_connection(
            sim, net, config=TCPConfig(congestion_control="reno", min_rto=0.5),
            start=0.0,
        )
        vegas_s, vegas_r = open_connection(
            sim, net, config=TCPConfig(congestion_control="vegas", min_rto=0.5),
            start=0.0,
        )
        sim.run(until=90.0)
        reno_s.stop()
        vegas_s.stop()
        reno_share = reno_r.throughput_bps(30, 90)
        vegas_share = vegas_r.throughput_bps(30, 90)
        assert reno_share > vegas_share


class TestValidation:
    def test_unknown_cc_rejected(self):
        with pytest.raises(ValueError, match="congestion_control"):
            TCPConfig(congestion_control="cubic")

    def test_bad_vegas_thresholds_rejected(self):
        with pytest.raises(ValueError):
            TCPConfig(congestion_control="vegas", vegas_alpha=5.0, vegas_beta=2.0)
