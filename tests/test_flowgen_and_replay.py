"""Tests for the closed-loop flow generator and trace replay."""

import numpy as np
import pytest

from repro.experiments.base import fast_pathload_config
from repro.netsim import LinkSpec, MRTGMonitor, Simulator, build_path
from repro.netsim.crosstraffic import PacketMix
from repro.netsim.flowgen import ShortFlowGenerator
from repro.netsim.replay import (
    TraceReplaySource,
    load_trace,
    save_trace,
    synthesize_trace,
)
from repro.transport.probe import run_pathload


def mice_path(sim, seed, capacity=10e6, load=4e6, buffer_bytes=100_000):
    net = build_path(
        sim,
        [LinkSpec(capacity, prop_delay=0.02, buffer_bytes=buffer_bytes, name="t")],
    )
    gen = ShortFlowGenerator(
        sim, net, target_load_bps=load, rng=np.random.default_rng(seed)
    )
    return net, gen


class TestShortFlowGenerator:
    def test_flows_start_and_complete(self):
        sim = Simulator()
        net, gen = mice_path(sim, seed=0)
        sim.run(until=30.0)
        assert gen.flows_started > 10
        assert gen.flows_completed > 0
        assert gen.flows_completed <= gen.flows_started

    def test_offered_load_roughly_matches_target(self):
        """Uncongested: completed goodput tracks the target load."""
        sim = Simulator()
        net, gen = mice_path(sim, seed=1, capacity=100e6, load=4e6)
        sim.run(until=60.0)
        achieved = gen.achieved_load_bps(60.0)
        assert achieved == pytest.approx(4e6, rel=0.5)

    def test_load_responds_to_congestion(self):
        """Closed-loop property: on a too-small link the goodput saturates
        below the offered load instead of overflowing forever."""
        sim = Simulator()
        net, gen = mice_path(sim, seed=2, capacity=2e6, load=8e6)
        sim.run(until=40.0)
        achieved = gen.achieved_load_bps(40.0)
        assert achieved < 2.2e6  # can't exceed the link

    def test_concurrency_cap(self):
        sim = Simulator()
        net = build_path(sim, [LinkSpec(0.5e6, buffer_bytes=20_000)])
        gen = ShortFlowGenerator(
            sim, net, target_load_bps=10e6,
            rng=np.random.default_rng(3), max_concurrent=5,
        )
        sim.run(until=20.0)
        assert gen.active_flows <= 5
        assert gen.flows_rejected > 0

    def test_pathload_vs_mrtg_under_mice(self):
        """No configured truth exists for closed-loop load; validate the
        way the paper did — against the link monitor.

        Subtlety this test guards: closed-loop traffic *yields* to the
        probes (mice back off under the extra queueing), so an aggressive
        probing schedule measures bandwidth it displaced, not bandwidth
        that was spare — the avail-bw definition (Section I: "without
        reducing the rate of the rest of the traffic") demands the
        non-intrusive idle factor here.
        """
        sim = Simulator()
        net, gen = mice_path(sim, seed=4, capacity=10e6, load=5e6)
        monitor = MRTGMonitor(sim, net.forward_links[0], window=30.0, start=5.0)
        report = run_pathload(
            sim,
            net,
            config=fast_pathload_config(idle_factor=9.0),
            start=8.0,
            time_limit=600.0,
        )
        sim.run(until=35.0 + 1e-6)
        mrtg_avail = monitor.samples[0].avail_bw_bps
        # agreement within the grey resolution + one MRTG band of slack
        # (stochastic mice load: the bands are necessarily loose)
        assert report.low_bps - 3e6 <= mrtg_avail <= report.high_bps + 3e6

    def test_validation(self):
        sim = Simulator()
        net = build_path(sim, [LinkSpec(1e6)])
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            ShortFlowGenerator(sim, net, 0.0, rng)
        with pytest.raises(ValueError):
            ShortFlowGenerator(sim, net, 1e6, rng, size_alpha=1.0)
        with pytest.raises(ValueError):
            ShortFlowGenerator(sim, net, 1e6, rng, max_concurrent=0)


class TestTraceSynthesis:
    def test_rate_and_duration(self):
        rng = np.random.default_rng(0)
        trace = synthesize_trace(rng, 5e6, 20.0)
        assert trace[-1, 0] <= 20.0
        rate = trace[:, 1].sum() * 8 / 20.0
        assert rate == pytest.approx(5e6, rel=0.15)

    def test_timestamps_sorted(self):
        rng = np.random.default_rng(1)
        trace = synthesize_trace(rng, 5e6, 5.0, model="poisson")
        assert np.all(np.diff(trace[:, 0]) >= 0)

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            synthesize_trace(np.random.default_rng(0), 1e6, 1.0, model="weird")

    def test_csv_round_trip(self, tmp_path):
        rng = np.random.default_rng(2)
        trace = synthesize_trace(rng, 2e6, 3.0)
        path = tmp_path / "trace.csv"
        n = save_trace(trace, str(path))
        loaded = load_trace(str(path))
        assert n == len(loaded) == len(trace)
        assert np.allclose(loaded[:, 0], trace[:, 0], atol=1e-9)
        assert np.array_equal(loaded[:, 1], trace[:, 1])

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(ValueError, match="header"):
            load_trace(str(path))


class TestTraceReplay:
    def test_exact_replay(self):
        sim = Simulator()
        net = build_path(sim, [LinkSpec(100e6)])
        trace = np.array([[0.1, 500], [0.25, 1000], [0.9, 200]])
        src = TraceReplaySource(sim, net, net.forward_links[0], trace, start=1.0)
        sim.run()
        assert src.packets_sent == 3
        assert src.bytes_sent == 1700
        assert sim.now >= 1.9

    def test_replay_is_deterministic_cross_traffic(self):
        """Two simulations fed the same trace see identical byte counts."""

        def run_once():
            sim = Simulator()
            net = build_path(sim, [LinkSpec(10e6)])
            trace = synthesize_trace(np.random.default_rng(42), 4e6, 10.0)
            TraceReplaySource(sim, net, net.forward_links[0], trace)
            sim.run(until=10.0)
            return net.forward_links[0].stats.bytes_forwarded

        assert run_once() == run_once()

    def test_looping_sustains_the_rate(self):
        sim = Simulator()
        net = build_path(sim, [LinkSpec(100e6)])
        trace = synthesize_trace(np.random.default_rng(7), 4e6, 2.0)
        TraceReplaySource(sim, net, net.forward_links[0], trace, loop=True)
        sim.run(until=20.0)
        rate = net.forward_links[0].stats.bytes_forwarded * 8 / 20.0
        assert rate == pytest.approx(4e6, rel=0.2)

    def test_pathload_over_replayed_trace(self):
        """Pin the workload, measure it: the replayed rate is the truth."""
        sim = Simulator()
        net = build_path(sim, [LinkSpec(10e6, prop_delay=0.01)])
        trace = synthesize_trace(np.random.default_rng(11), 6e6, 5.0)
        TraceReplaySource(sim, net, net.forward_links[0], trace, loop=True)
        report = run_pathload(
            sim, net, config=fast_pathload_config(), start=2.0, time_limit=600.0
        )
        truth = 10e6 - trace[:, 1].sum() * 8 / trace[-1, 0]
        assert report.low_bps - 1.5e6 <= truth <= report.high_bps + 1.5e6

    def test_validation(self):
        sim = Simulator()
        net = build_path(sim, [LinkSpec(1e6)])
        with pytest.raises(ValueError):
            TraceReplaySource(sim, net, net.forward_links[0], np.zeros((0, 2)))
        with pytest.raises(ValueError):
            TraceReplaySource(
                sim, net, net.forward_links[0], np.array([[0.2, 100], [0.1, 100]])
            )
        with pytest.raises(ValueError):
            TraceReplaySource(
                sim, net, net.forward_links[0], np.array([[0.1, 0.0]])
            )
