"""Unit and property tests for PCT/PDT trend detection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.trend import (
    StreamType,
    classify_owds,
    classify_owds_two_sided,
    median_groups,
    pct_metric,
    pdt_metric,
)


class TestMedianGroups:
    def test_default_group_count_is_sqrt_k(self):
        owds = np.arange(100.0)
        assert len(median_groups(owds)) == 10

    def test_trailing_samples_fold_into_last_group(self):
        owds = np.arange(103.0)
        medians = median_groups(owds)
        assert len(medians) == 10
        # last group covers indices 90..102, median = 96
        assert medians[-1] == pytest.approx(96.0)

    def test_explicit_group_count(self):
        assert len(median_groups(np.arange(20.0), n_groups=5)) == 5

    def test_group_count_capped_at_k(self):
        assert len(median_groups(np.arange(3.0), n_groups=10)) == 3

    def test_median_robust_to_outlier(self):
        owds = np.ones(100)
        owds[5] = 1e9  # one wild outlier
        medians = median_groups(owds)
        assert np.all(medians == 1.0)

    def test_too_few_owds_raises(self):
        with pytest.raises(ValueError):
            median_groups([1.0])


class TestPCT:
    def test_strictly_increasing_gives_one(self):
        assert pct_metric(np.arange(10.0)) == 1.0

    def test_strictly_decreasing_gives_zero(self):
        assert pct_metric(np.arange(10.0)[::-1]) == 0.0

    def test_constant_counts_as_nonincreasing(self):
        assert pct_metric(np.ones(10)) == 0.0

    def test_alternating_gives_half(self):
        medians = np.array([0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0])
        assert pct_metric(medians) == pytest.approx(0.5)

    @given(st.lists(st.floats(-1e3, 1e3), min_size=2, max_size=50))
    def test_bounded_zero_one(self, medians):
        assert 0.0 <= pct_metric(medians) <= 1.0


class TestPDT:
    def test_strictly_increasing_gives_one(self):
        assert pdt_metric(np.arange(10.0)) == 1.0

    def test_strictly_decreasing_gives_minus_one(self):
        assert pdt_metric(np.arange(10.0)[::-1]) == -1.0

    def test_no_variation_gives_zero(self):
        assert pdt_metric(np.ones(10)) == 0.0

    def test_round_trip_cancels(self):
        # up then back down: start-to-end variation is zero
        medians = np.array([0.0, 1.0, 2.0, 1.0, 0.0])
        assert pdt_metric(medians) == pytest.approx(0.0)

    @given(st.lists(st.floats(-1e3, 1e3), min_size=2, max_size=50))
    def test_bounded_plus_minus_one(self, medians):
        # ±1e-12 slop on both bounds: the numerator telescopes in one
        # subtraction while the denominator is a pairwise sum of |diffs|,
        # so monotone inputs can land one ulp outside [-1, 1].
        assert -1.0 - 1e-12 <= pdt_metric(medians) <= 1.0 + 1e-12


class TestClassifyPaperRule:
    def test_clear_trend_is_type_i(self):
        owds = np.linspace(0.0, 1e-3, 100)
        assert classify_owds(owds).stream_type is StreamType.INCREASING

    def test_flat_is_type_n(self):
        owds = np.zeros(100)
        assert classify_owds(owds).stream_type is StreamType.NONINCREASING

    def test_decreasing_is_type_n(self):
        owds = np.linspace(1e-3, 0.0, 100)
        assert classify_owds(owds).stream_type is StreamType.NONINCREASING

    def test_either_metric_suffices(self):
        # sawtooth with net rise: PDT high, PCT moderate
        owds = np.tile([0.0, 1.0], 50) + np.linspace(0, 10.0, 100)
        c = classify_owds(owds)
        assert c.stream_type is StreamType.INCREASING

    def test_disable_both_metrics_rejected(self):
        with pytest.raises(ValueError):
            classify_owds(np.zeros(100), use_pct=False, use_pdt=False)

    def test_pdt_only_mode(self):
        owds = np.linspace(0.0, 1e-3, 100)
        c = classify_owds(owds, use_pct=False)
        assert c.stream_type is StreamType.INCREASING

    def test_threshold_sensitivity(self):
        owds = np.linspace(0.0, 1e-3, 100)
        # absurdly high thresholds: nothing counts as increasing...
        c = classify_owds(owds, pct_threshold=1.1, pdt_threshold=1.1)
        assert c.stream_type is StreamType.NONINCREASING


class TestClassifyToolRule:
    def test_clear_trend_is_type_i(self):
        owds = np.linspace(0.0, 1e-3, 100)
        assert classify_owds_two_sided(owds).stream_type is StreamType.INCREASING

    def test_flat_is_type_n(self):
        rng = np.random.default_rng(0)
        owds = rng.normal(0.0, 1e-4, size=100)
        # one realization may be ambiguous, but most flat streams are N;
        # check a batch
        types = [
            classify_owds_two_sided(rng.normal(0, 1e-4, 100)).stream_type
            for _ in range(50)
        ]
        n_count = sum(1 for t in types if t is StreamType.NONINCREASING)
        i_count = sum(1 for t in types if t is StreamType.INCREASING)
        assert n_count > 30
        assert i_count <= 3

    def test_contradiction_is_ambiguous(self):
        # engineered: PCT strongly increasing, PDT strongly negative is
        # impossible; instead use mid-zone values via thresholds
        owds = np.linspace(0.0, 1e-3, 100)
        c = classify_owds_two_sided(owds, pct_incr=0.5, pct_nonincr=0.4,
                                    pdt_incr=1.5, pdt_nonincr=0.9)
        # PCT says increasing (1.0 > 0.5), PDT says non-increasing (1.0 < 1.5
        # is not above, and 1.0 > 0.9 means not below either => ambiguous)
        assert c.stream_type in (StreamType.AMBIGUOUS, StreamType.INCREASING)

    def test_inverted_thresholds_rejected(self):
        with pytest.raises(ValueError):
            classify_owds_two_sided(np.zeros(100), pct_incr=0.5, pct_nonincr=0.6)

    def test_offset_invariance(self):
        """A constant clock offset must not change any verdict."""
        rng = np.random.default_rng(1)
        owds = np.linspace(0.0, 5e-4, 100) + rng.normal(0, 5e-5, 100)
        base = classify_owds_two_sided(owds)
        shifted = classify_owds_two_sided(owds + 123.456)
        assert base.stream_type is shifted.stream_type
        assert base.pct == pytest.approx(shifted.pct)
        assert base.pdt == pytest.approx(shifted.pdt)


class TestStatisticalBehaviour:
    """Expectations from the paper: PCT -> 0.5 and PDT -> 0 for
    independent OWDs."""

    def test_pct_near_half_for_iid(self):
        rng = np.random.default_rng(42)
        vals = [
            pct_metric(median_groups(rng.normal(0, 1, 100))) for _ in range(300)
        ]
        assert abs(np.mean(vals) - 0.5) < 0.05

    def test_pdt_near_zero_for_iid(self):
        rng = np.random.default_rng(43)
        vals = [
            pdt_metric(median_groups(rng.normal(0, 1, 100))) for _ in range(300)
        ]
        assert abs(np.mean(vals)) < 0.05

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_monotone_streams_always_detected(self, seed):
        """Any strictly increasing OWD sequence is type I under both rules."""
        rng = np.random.default_rng(seed)
        increments = rng.uniform(1e-7, 1e-4, size=100)
        owds = np.cumsum(increments)
        assert classify_owds(owds).stream_type is StreamType.INCREASING
        assert classify_owds_two_sided(owds).stream_type is StreamType.INCREASING
