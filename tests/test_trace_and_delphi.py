"""Tests for the link tracer and the Delphi baseline."""

import numpy as np
import pytest

from repro.baselines.delphi import run_delphi
from repro.core.probing import StreamSpec
from repro.netsim import LinkSpec, Simulator, build_path, build_single_hop_path, build_two_link_path
from repro.netsim.trace import LinkTap, owd_series, write_csv
from repro.transport.probe import ProbeChannel


class TestLinkTap:
    def run_stream(self, tap_prefix=""):
        sim = Simulator()
        net = build_path(sim, [LinkSpec(10e6, prop_delay=0.01)])
        tap = LinkTap(net.forward_links[0], flow_prefix=tap_prefix)
        channel = ProbeChannel(sim, net)
        spec = StreamSpec(rate_bps=2e6, packet_size=500, n_packets=20)
        ev = channel.send_stream(spec)
        measurement = sim.run_until(ev)
        return tap, measurement

    def test_captures_every_departure(self):
        tap, measurement = self.run_stream()
        exits = [r for r in tap.records if r.event == "exit"]
        assert len(exits) == 20
        assert [r.seq for r in exits] == list(range(20))

    def test_prefix_filter(self):
        tap, _m = self.run_stream(tap_prefix="no-such-flow")
        assert tap.records == []

    def test_delivery_not_disturbed(self):
        _tap, measurement = self.run_stream()
        assert measurement.n_received == 20

    def test_drop_capture(self):
        sim = Simulator()
        net = build_path(sim, [LinkSpec(1e6, buffer_bytes=2000)])
        tap = LinkTap(net.forward_links[0])
        channel = ProbeChannel(sim, net)
        spec = StreamSpec(rate_bps=8e6, packet_size=1000, n_packets=20)
        ev = channel.send_stream(spec)
        sim.run_until(ev)
        assert len(tap.drops()) > 0
        assert all(r.event == "drop" for r in tap.drops())

    def test_owd_series_extraction(self):
        tap, _m = self.run_stream()
        flow = tap.records[0].flow_id
        series = owd_series(tap.records, flow)
        assert len(series) == 20
        # idle path: constant per-link delay
        ages = [age for _seq, age in series]
        assert max(ages) - min(ages) < 1e-9

    def test_csv_export(self, tmp_path):
        tap, _m = self.run_stream()
        path = tmp_path / "trace.csv"
        n = write_csv(tap.records, str(path))
        assert n == 20
        lines = path.read_text().strip().splitlines()
        assert lines[0].startswith("time,event,flow_id")
        assert len(lines) == 21

    def test_detach_restores_link(self):
        sim = Simulator()
        net = build_path(sim, [LinkSpec(10e6)])
        link = net.forward_links[0]
        original = link.deliver
        tap = LinkTap(link)
        assert link.deliver is not original
        tap.detach()
        assert link.deliver is original

    def test_unwired_link_rejected(self):
        sim = Simulator()
        from repro.netsim.link import Link

        with pytest.raises(ValueError):
            LinkTap(Link(sim, 1e6))


class TestDelphi:
    def test_single_queue_path_estimates_avail_bw(self):
        """Delphi's model holds on a one-queue path: estimate ~ A."""
        sim = Simulator()
        rng = np.random.default_rng(5)
        setup = build_single_hop_path(sim, 10e6, 0.6, rng, prop_delay=0.01)
        result = run_delphi(sim, setup.network, start=2.0, n_pairs=60)
        assert result.avail_bw_estimate_bps == pytest.approx(4e6, rel=0.5)

    def test_multi_queue_path_biases_estimate(self):
        """The paper's critique: with tight != narrow, Delphi attributes
        narrow-link queueing to the tight link and the estimate degrades."""
        def estimate(build):
            sim = Simulator()
            rng = np.random.default_rng(6)
            setup = build(sim, rng)
            result = run_delphi(
                sim, setup.network, start=2.0, n_pairs=60,
                assumed_capacity_bps=setup.tight_link.capacity_bps,
            )
            return result.avail_bw_estimate_bps, setup.avail_bw_bps

        def single(sim, rng):
            return build_single_hop_path(sim, 15.5e6, 0.6, rng, prop_delay=0.01)

        def multi(sim, rng):
            return build_two_link_path(
                sim,
                narrow_capacity_bps=10e6,
                narrow_utilization=0.3,
                tight_capacity_bps=15.5e6,
                tight_utilization=0.6,
                rng=rng,
            )

        est_single, truth_single = estimate(single)
        est_multi, truth_multi = estimate(multi)
        err_single = abs(est_single - truth_single) / truth_single
        err_multi = abs(est_multi - truth_multi) / truth_multi
        assert err_multi > err_single

    def test_validation(self):
        sim = Simulator()
        rng = np.random.default_rng(7)
        setup = build_single_hop_path(sim, 10e6, 0.5, rng)
        with pytest.raises(ValueError):
            run_delphi(sim, setup.network, n_pairs=0)
        with pytest.raises(ValueError):
            run_delphi(sim, setup.network, gap_factor=1.0)
