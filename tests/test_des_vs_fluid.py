"""Cross-validation: the discrete-event simulator against the analytic
fluid model.

The Appendix's fluid model has closed forms for the OWD slope and the
stream exit rate.  With near-fluid cross traffic (CBR with small packets),
the packet-level simulator must converge to those predictions — a strong
end-to-end consistency check between two completely independent
implementations of the same physics.
"""

import numpy as np
import pytest

from repro.core.fluid import FluidLink, FluidPath
from repro.core.probing import StreamSpec
from repro.netsim import PacketMix, Simulator, build_single_hop_path
from repro.transport.probe import ProbeChannel

CAPACITY = 10e6
AVAIL = 4e6  # utilization 0.6


def des_stream(rate_bps, n_packets=100, packet_size=500, seed=0):
    """Send one stream through the DES with near-fluid (CBR, 100 B) load."""
    sim = Simulator()
    rng = np.random.default_rng(seed)
    setup = build_single_hop_path(
        sim,
        CAPACITY,
        1 - AVAIL / CAPACITY,
        rng,
        prop_delay=0.0,
        traffic_model="cbr",
        n_sources=40,
        mix=PacketMix.constant(100),
    )
    channel = ProbeChannel(sim, setup.network)
    spec = StreamSpec(rate_bps=rate_bps, packet_size=packet_size, n_packets=n_packets)
    holder = {}
    sim.schedule_at(1.0, lambda: holder.update(ev=channel.send_stream(spec)))
    sim.run(until=1.0)
    return sim.run_until(holder["ev"]), spec


class TestOwdSlope:
    @pytest.mark.parametrize("rate_mbps", [5.0, 6.0, 8.0])
    def test_slope_matches_fluid_prediction(self, rate_mbps):
        rate = rate_mbps * 1e6
        measurement, spec = des_stream(rate)
        owds = measurement.relative_owds()
        # least-squares slope per packet
        k = np.arange(len(owds))
        slope = float(np.polyfit(k, owds, 1)[0])
        fluid = FluidPath([FluidLink(CAPACITY, AVAIL)])
        expected = fluid.owd_slope_per_packet(spec)
        assert slope == pytest.approx(expected, rel=0.25)

    def test_below_avail_bw_slope_negligible(self):
        measurement, spec = des_stream(2e6)
        owds = measurement.relative_owds()
        k = np.arange(len(owds))
        slope = float(np.polyfit(k, owds, 1)[0])
        fluid_above = FluidPath(
            [FluidLink(CAPACITY, AVAIL)]
        ).owd_slope_per_packet(
            StreamSpec(rate_bps=6e6, packet_size=spec.packet_size, n_packets=100)
        )
        assert abs(slope) < 0.2 * fluid_above


class TestExitRate:
    @pytest.mark.parametrize("rate_mbps", [6.0, 9.0, 15.0])
    def test_dispersion_matches_proposition_2(self, rate_mbps):
        """Receiver-side rate of a saturating stream: R*C/(C + R - A)."""
        rate = rate_mbps * 1e6
        measurement, _spec = des_stream(rate, n_packets=200)
        fluid = FluidPath([FluidLink(CAPACITY, AVAIL)])
        expected = fluid.exit_rate(rate)
        assert measurement.dispersion_rate_bps() == pytest.approx(expected, rel=0.1)

    def test_transparent_below_avail_bw(self):
        measurement, _spec = des_stream(3e6, n_packets=200)
        assert measurement.dispersion_rate_bps() == pytest.approx(3e6, rel=0.05)
