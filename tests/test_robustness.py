"""Robustness and conservation properties across the stack."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import PathloadConfig
from repro.netsim import (
    LinkSpec,
    Packet,
    Simulator,
    attach_cross_traffic,
    build_path,
    build_single_hop_path,
)
from repro.transport.ping import Pinger
from repro.transport.probe import run_pathload

FAST = PathloadConfig(idle_factor=1.0)


class TestReversePathCongestion:
    """One-way-delay methods must not care about the reverse path.

    This is the structural advantage of SLoPS over RTT-based probing
    (Section II's congestion-control comparisons measure round-trip
    delays): queueing on the ACK/control path shifts feedback timing but
    not the forward OWD trend.
    """

    def build(self, seed, reverse_utilization):
        sim = Simulator()
        rng = np.random.default_rng(seed)
        net = build_path(
            sim,
            [LinkSpec(10e6, prop_delay=0.01, name="tight")],
            reverse=[LinkSpec(10e6, prop_delay=0.01, name="rev")],
        )
        attach_cross_traffic(
            sim, net, net.forward_links[0], 6e6, rng.spawn(1)[0]
        )
        if reverse_utilization > 0:
            attach_cross_traffic(
                sim,
                net,
                net.reverse_links[0],
                10e6 * reverse_utilization,
                rng.spawn(1)[0],
            )
        return sim, net

    def test_forward_estimate_unchanged_by_reverse_load(self):
        results = {}
        for label, reverse_u in (("clean", 0.0), ("congested", 0.7)):
            sim, net = self.build(seed=42, reverse_utilization=reverse_u)
            report = run_pathload(
                sim, net, config=FAST, start=2.0, time_limit=1200.0
            )
            results[label] = report
        for label, report in results.items():
            assert report.low_bps - 1e6 <= 4e6 <= report.high_bps + 1e6, label
        # and the two estimates agree with each other to within chi
        assert abs(results["clean"].mid_bps - results["congested"].mid_bps) < 2e6

    def test_rtt_does_see_reverse_congestion(self):
        """Sanity check of the contrast: ping (an RTT method) is affected."""

        def p90_rtt(reverse_u, seed=7):
            sim, net = self.build(seed=seed, reverse_utilization=reverse_u)
            ping = Pinger(sim, net, interval=0.05, start=1.0, stop=11.0)
            sim.run(until=12.0)
            return float(np.percentile([r for _t, r in ping.rtts], 90))

        assert p90_rtt(0.85) > p90_rtt(0.0) * 1.2


class TestConservation:
    @given(
        n_packets=st.integers(1, 200),
        buffer_kb=st.integers(1, 50),
        seed=st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_bytes_forwarded_plus_dropped_equals_offered(
        self, n_packets, buffer_kb, seed
    ):
        """Link conservation law under arbitrary burst sizes and buffers."""
        sim = Simulator()
        net = build_path(sim, [LinkSpec(5e6, buffer_bytes=buffer_kb * 1000)])
        link = net.forward_links[0]
        rng = np.random.default_rng(seed)
        delivered = [0]
        offered_bytes = 0
        for i in range(n_packets):
            size = int(rng.integers(40, 1500))
            offered_bytes += size
            net.send_forward(Packet(size, seq=i), lambda p: delivered.append(p.size))
        sim.run()
        stats = link.stats
        assert stats.bytes_forwarded + stats.bytes_dropped == offered_bytes
        assert sum(delivered) == stats.bytes_forwarded

    def test_cross_traffic_conservation(self):
        sim = Simulator()
        net = build_path(sim, [LinkSpec(10e6)])
        rng = np.random.default_rng(0)
        sources = attach_cross_traffic(
            sim, net, net.forward_links[0], 5e6, rng, n_sources=5
        )
        sim.run(until=10.0)
        generated = sum(s.bytes_sent for s in sources)
        stats = net.forward_links[0].stats
        assert stats.bytes_forwarded + stats.bytes_dropped == generated


class TestDeterminism:
    def test_identical_seeds_produce_identical_simulations(self):
        """The whole stack is reproducible from one seed."""

        def fingerprint(seed):
            sim = Simulator()
            rng = np.random.default_rng(seed)
            setup = build_single_hop_path(sim, 10e6, 0.6, rng)
            report = run_pathload(
                sim, setup.network, config=FAST, start=2.0, time_limit=1200.0
            )
            return (
                report.low_bps,
                report.high_bps,
                report.n_streams_sent,
                tuple(f.outcome.value for f in report.fleets),
                setup.tight_link.stats.bytes_forwarded,
            )

        assert fingerprint(123) == fingerprint(123)

    def test_different_seeds_differ(self):
        def low(seed):
            sim = Simulator()
            rng = np.random.default_rng(seed)
            setup = build_single_hop_path(sim, 10e6, 0.6, rng)
            return setup.tight_link.stats.bytes_forwarded if sim.run(until=5.0) else 0

        sims = []
        for seed in (1, 2):
            sim = Simulator()
            rng = np.random.default_rng(seed)
            setup = build_single_hop_path(sim, 10e6, 0.6, rng)
            sim.run(until=5.0)
            sims.append(setup.tight_link.stats.bytes_forwarded)
        assert sims[0] != sims[1]
