"""Tests for the baseline estimators: cprobe/ADR, packet pair, TOPP, BTC."""

import numpy as np
import pytest

from repro.baselines import run_btc, run_cprobe, run_packet_pair, run_topp
from repro.netsim import LinkSpec, Simulator, build_path, build_single_hop_path
from repro.transport.tcp import TCPConfig


def loaded_path(seed=0, capacity=10e6, utilization=0.6, **kwargs):
    sim = Simulator()
    rng = np.random.default_rng(seed)
    setup = build_single_hop_path(
        sim, capacity, utilization, rng, prop_delay=0.01, **kwargs
    )
    return sim, setup


class TestCprobe:
    def test_adr_between_avail_bw_and_capacity(self):
        """The Section II claim: train dispersion measures the ADR."""
        sim, setup = loaded_path(seed=1)
        result = run_cprobe(sim, setup.network, start=2.0)
        assert setup.avail_bw_bps < result.adr_bps < setup.capacity_bps

    def test_adr_matches_fluid_prediction(self):
        """ADR of a rate-R train: R*C/(C + R - A) from Proposition 2."""
        sim, setup = loaded_path(seed=2)
        rate = 2 * setup.capacity_bps
        result = run_cprobe(sim, setup.network, start=2.0, train_rate_bps=rate)
        predicted = rate * 10e6 / (10e6 + rate - 4e6)
        assert result.adr_bps == pytest.approx(predicted, rel=0.1)

    def test_idle_path_adr_is_capacity(self):
        sim, setup = loaded_path(seed=3, utilization=0.0)
        result = run_cprobe(sim, setup.network, start=0.5)
        assert result.adr_bps == pytest.approx(10e6, rel=0.02)

    def test_counts_losses(self):
        sim = Simulator()
        net = build_path(sim, [LinkSpec(1e6, buffer_bytes=5000)])
        result = run_cprobe(sim, net, start=0.0, n_trains=3, train_length=30)
        assert result.loss_rate > 0.0

    def test_validation(self):
        sim, setup = loaded_path()
        with pytest.raises(ValueError):
            run_cprobe(sim, setup.network, n_trains=0)


class TestPacketPair:
    def test_measures_capacity_not_avail_bw(self):
        sim, setup = loaded_path(seed=4)
        result = run_packet_pair(sim, setup.network, start=2.0, n_pairs=60)
        assert result.capacity_estimate_bps == pytest.approx(10e6, rel=0.15)
        assert result.capacity_estimate_bps > 1.5 * setup.avail_bw_bps

    def test_idle_path_exact(self):
        sim, setup = loaded_path(seed=5, utilization=0.0)
        result = run_packet_pair(sim, setup.network, start=0.5, n_pairs=10)
        assert result.capacity_estimate_bps == pytest.approx(10e6, rel=0.05)

    def test_validation(self):
        sim, setup = loaded_path()
        with pytest.raises(ValueError):
            run_packet_pair(sim, setup.network, n_pairs=0)


class TestTopp:
    def test_knee_near_avail_bw(self):
        sim, setup = loaded_path(seed=6)
        result = run_topp(sim, setup.network, start=2.0, pairs_per_rate=25)
        assert result.avail_bw_knee_bps == pytest.approx(4e6, rel=0.5)

    def test_idle_path_never_saturates(self):
        sim, setup = loaded_path(seed=7, utilization=0.0)
        rates = list(np.linspace(1e6, 8e6, 6))
        result = run_topp(
            sim, setup.network, offered_rates_bps=rates, start=0.5, pairs_per_rate=10
        )
        # below-capacity pairs pass through untouched: knee = max offered
        assert result.avail_bw_knee_bps == pytest.approx(8e6)

    def test_ratio_curve_monotone_above_knee(self):
        sim, setup = loaded_path(seed=8)
        result = run_topp(sim, setup.network, start=2.0, pairs_per_rate=25)
        ratios = result.ratios()
        # last segment of the curve rises (deep saturation)
        assert ratios[-1] > ratios[len(ratios) // 2]

    def test_validation(self):
        sim, setup = loaded_path()
        with pytest.raises(ValueError):
            run_topp(sim, setup.network, offered_rates_bps=[-1.0])
        with pytest.raises(ValueError):
            run_topp(sim, setup.network, pairs_per_rate=0)


class TestBTC:
    def test_saturates_idle_bottleneck(self):
        sim = Simulator()
        net = build_path(
            sim, [LinkSpec(8e6, prop_delay=0.05, buffer_bytes=100_000)]
        )
        result = run_btc(
            sim, net, t_start=0.0, t_end=40.0, config=TCPConfig(min_rto=0.5),
            settle=15.0,
        )
        assert result.throughput_bps > 0.7 * 8e6
        assert result.duration == 40.0

    def test_bins_cover_measurement_window(self):
        sim = Simulator()
        net = build_path(sim, [LinkSpec(8e6, prop_delay=0.02, buffer_bytes=100_000)])
        result = run_btc(sim, net, t_start=0.0, t_end=10.0, settle=2.0)
        assert len(result.binned_bps) == 8
        assert result.max_bin_bps >= result.min_bin_bps

    def test_validation(self):
        sim = Simulator()
        net = build_path(sim, [LinkSpec(8e6)])
        with pytest.raises(ValueError):
            run_btc(sim, net, t_start=5.0, t_end=5.0)
