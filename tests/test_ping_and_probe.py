"""Tests for the ping prober and the UDP probe channel over the DES."""

import numpy as np
import pytest

from repro.core.probing import StreamSpec
from repro.netsim import LinkSpec, Simulator, build_path
from repro.netsim.clock import OffsetClock
from repro.transport.ping import Pinger
from repro.transport.probe import ProbeChannel, SendJitter


class TestPinger:
    def test_rtt_on_idle_path(self):
        sim = Simulator()
        net = build_path(sim, [LinkSpec(10e6, prop_delay=0.05)])
        ping = Pinger(sim, net, interval=0.5, start=0.0, stop=5.0)
        sim.run(until=8.0)
        assert ping.sent == 10
        assert ping.lost == 0
        for _t, rtt in ping.rtts:
            assert rtt == pytest.approx(net.min_rtt(64), rel=0.01)

    def test_rtt_grows_with_queueing(self):
        sim = Simulator()
        net = build_path(sim, [LinkSpec(1e6, prop_delay=0.01)])
        link = net.forward_links[0]
        ping = Pinger(sim, net, interval=0.1, start=0.0, stop=2.0)
        # dump a 25 kB backlog at t=0.5 => +200 ms queueing
        from repro.netsim.packet import Packet

        sim.schedule_at(0.5, lambda: [net.inject_at(link, Packet(1000)) for _ in range(25)])
        sim.run(until=4.0)
        early = ping.rtts_between(0.0, 0.45)
        during = ping.rtts_between(0.55, 0.7)
        assert max(during) > max(early) + 0.1

    def test_losses_counted(self):
        sim = Simulator()
        net = build_path(sim, [LinkSpec(1e6, prop_delay=0.0, buffer_bytes=950)])
        link = net.forward_links[0]
        from repro.netsim.packet import Packet

        # keep the link busy so the tiny buffer rejects most pings
        def flood():
            net.inject_at(link, Packet(900))
            sim.schedule(0.005, flood)

        flood()
        ping = Pinger(
            sim, net, interval=0.2, start=0.0, stop=2.0, timeout=0.5, packet_size=200
        )
        sim.run(until=4.0)
        assert ping.lost > 0

    def test_validation(self):
        sim = Simulator()
        net = build_path(sim, [LinkSpec(1e6)])
        with pytest.raises(ValueError):
            Pinger(sim, net, interval=0.0)
        with pytest.raises(ValueError):
            Pinger(sim, net, timeout=0.0)


class TestProbeChannel:
    def make(self, capacity=10e6, prop=0.01, **kwargs):
        sim = Simulator()
        net = build_path(sim, [LinkSpec(capacity, prop_delay=prop)])
        return sim, net, ProbeChannel(sim, net, **kwargs)

    def run_stream(self, sim, channel, spec):
        ev = channel.send_stream(spec)
        return sim.run_until(ev)

    def test_idle_path_owds_constant(self):
        sim, net, ch = self.make()
        spec = StreamSpec(rate_bps=2e6, packet_size=200, n_packets=50)
        m = self.run_stream(sim, ch, spec)
        assert m.n_received == 50
        owds = m.relative_owds()
        assert np.allclose(owds, owds[0])

    def test_owd_equals_serialization_plus_prop(self):
        sim, net, ch = self.make(capacity=10e6, prop=0.01)
        spec = StreamSpec(rate_bps=1e6, packet_size=1250, n_packets=10)
        m = self.run_stream(sim, ch, spec)
        assert m.relative_owds()[0] == pytest.approx(0.001 + 0.01)

    def test_stream_above_capacity_shows_increasing_trend(self):
        sim, net, ch = self.make(capacity=10e6)
        spec = StreamSpec(rate_bps=20e6, packet_size=1000, n_packets=50)
        m = self.run_stream(sim, ch, spec)
        owds = m.relative_owds()
        assert np.all(np.diff(owds) > 0)

    def test_sender_gaps_match_period(self):
        sim, net, ch = self.make()
        spec = StreamSpec(rate_bps=2e6, packet_size=500, n_packets=20)
        m = self.run_stream(sim, ch, spec)
        assert np.allclose(m.sender_gaps(), spec.period)

    def test_clock_offset_cancels_in_owd_differences(self):
        sim, net, ch = self.make(sender_clock=OffsetClock(100.0))
        spec = StreamSpec(rate_bps=2e6, packet_size=200, n_packets=20)
        m = self.run_stream(sim, ch, spec)
        owds = m.relative_owds()
        # absolute OWDs are shifted by -100 s, differences are unchanged
        assert owds[0] < 0
        assert np.allclose(np.diff(owds), 0.0)

    def test_jitter_perturbs_sender_gaps(self):
        rng = np.random.default_rng(0)
        sim, net, ch = self.make(
            jitter=SendJitter(rng, prob=0.5, max_delay=1e-3)
        )
        spec = StreamSpec(rate_bps=2e6, packet_size=200, n_packets=50)
        m = self.run_stream(sim, ch, spec)
        gaps = m.sender_gaps()
        assert np.std(gaps) > 0

    def test_measurement_arrives_after_control_delay(self):
        sim, net, ch = self.make(prop=0.05, control_delay=0.05)
        spec = StreamSpec(rate_bps=2e6, packet_size=200, n_packets=10)
        m = self.run_stream(sim, ch, spec)
        last_arrival = m.records[-1].recv_stamp
        assert m.t_end == pytest.approx(last_arrival + 0.05)

    def test_lost_packets_counted(self):
        sim = Simulator()
        net = build_path(sim, [LinkSpec(1e6, buffer_bytes=2500)])
        ch = ProbeChannel(sim, net)
        # 10 Mb/s burst into a 1 Mb/s link with a tiny buffer: heavy loss
        spec = StreamSpec(rate_bps=10e6, packet_size=1000, n_packets=30)
        ev = ch.send_stream(spec)
        m = sim.run_until(ev)
        assert m.loss_rate > 0.3
        assert m.n_sent == 30

    def test_jitter_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            SendJitter(rng, prob=1.5)
        with pytest.raises(ValueError):
            SendJitter(rng, max_delay=-1.0)
