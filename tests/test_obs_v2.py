"""obs v2: cross-process telemetry, run-health audits, sampling profiler.

The contracts under test, in order of importance:

1. a traced sweep's merged event digest is **bit-identical** across
   ``jobs`` values and cache cold/warm replays (child telemetry rides in
   the result envelope and the cache entry, merged in submission order
   onto ``task<i>/`` tracks);
2. tracing never changes results: traced (full or light) sweep values
   equal the untraced reference;
3. light tracers keep every event-elision fast path alive, while full
   tracers dissolve flow transit with reason ``tracer`` and a one-shot
   warning pointing at ``--trace-light``;
4. the health report derives the right audit (and hints) from merged
   metrics, live or re-read from a JSONL trace;
5. the profiler records stacks only while enabled and exports both
   collapsed-stack and speedscope forms.
"""

import json
import time
import warnings

import pytest

from repro.core.config import PathloadConfig
from repro.netsim import LinkSpec, Simulator, build_path
from repro.netsim import flowtransit
from repro.obs import (
    Profiler,
    Tracer,
    events_digest,
    health_from_snapshot,
    health_from_tracer,
    read_jsonl_full,
)
from repro.obs.cli import main as trace_main
from repro.parallel import SweepTask, run_sweep, set_default_tracer
from repro.runner import measure_avail_bw_sim
from repro.transport.tcp import TCPConfig, open_connection

FAST = PathloadConfig(idle_factor=1.0)


# ----------------------------------------------------------------------
# Module-level sweep worker (process pools pickle it by reference)
# ----------------------------------------------------------------------
def _pathload_value(seed_entropy):
    report = measure_avail_bw_sim(
        capacity_bps=10e6,
        utilization=0.3,
        seed=seed_entropy,
        config=PathloadConfig(idle_factor=1.0),
    )
    return (
        report.low_bps,
        report.high_bps,
        report.termination,
        report.n_streams_sent,
    )


def _tasks():
    return [
        SweepTask(experiment="obs-v2", fn=_pathload_value, seed_entropy=e)
        for e in (21, 22)
    ]


# ----------------------------------------------------------------------
# Cross-process capture + merge
# ----------------------------------------------------------------------
class TestMergedSweepDigest:
    def test_digest_identical_across_jobs_and_cache(self, tmp_path):
        # cold serial -> warm pooled -> uncached pooled -> uncached serial:
        # every executor layout and cache state must merge to one stream.
        digests, values = [], []
        for jobs, cache in ((1, True), (4, True), (4, False), (1, False)):
            tracer = Tracer()
            outcomes = run_sweep(
                _tasks(), jobs=jobs, cache=cache,
                cache_dir=str(tmp_path), tracer=tracer,
            )
            assert all(o.ok for o in outcomes)
            digests.append(tracer.event_digest())
            values.append([o.value for o in outcomes])
        assert len(set(digests)) == 1
        assert all(v == values[0] for v in values)

    def test_child_telemetry_is_task_namespaced(self, tmp_path):
        tracer = Tracer()
        run_sweep(_tasks(), jobs=1, cache=False,
                  cache_dir=str(tmp_path), tracer=tracer)
        tracks = {e.track for e in tracer.events}
        assert any(t.startswith("task0/") for t in tracks)
        assert any(t.startswith("task1/") for t in tracks)
        # parent lifecycle events keep the bare sweep track
        assert "sweep/obs-v2" in tracks or any(
            e.cat == "sweep" and not e.track.startswith("task") for e in tracer.events
        )
        # pathload fleet decisions crossed the process/envelope boundary
        assert tracer.decisions
        assert {d.outcome for d in tracer.decisions} <= {"R<A", "R>A", "grey"}
        # per-link series were namespaced like the tracks
        snap = tracer.collect_metrics().snapshot()
        links = {
            s["labels"]["link"]
            for s in snap["repro_link_packets_forwarded"]["samples"]
        }
        assert any(name.startswith("task0/") for name in links)

    def test_capture_mismatch_is_a_miss_then_replays(self, tmp_path):
        tasks = _tasks()
        untraced = run_sweep(tasks, jobs=1, cache=True, cache_dir=str(tmp_path))
        assert all(o.ok for o in untraced)

        cold = Tracer()
        run_sweep(tasks, jobs=1, cache=True, cache_dir=str(tmp_path), tracer=cold)
        snap = cold.collect_metrics().snapshot()
        misses = sum(
            s["value"]
            for s in snap["repro_sweep_cache_misses_total"]["samples"]
        )
        assert misses == len(tasks)  # untraced entries don't satisfy a traced sweep

        warm = Tracer()
        run_sweep(tasks, jobs=1, cache=True, cache_dir=str(tmp_path), tracer=warm)
        wsnap = warm.collect_metrics().snapshot()
        hits = sum(
            s["value"] for s in wsnap["repro_sweep_cache_hits_total"]["samples"]
        )
        assert hits == len(tasks)
        assert warm.event_digest() == cold.event_digest()

    def test_traced_values_match_untraced_reference(self, tmp_path):
        tasks = _tasks()
        reference = [
            o.value for o in run_sweep(tasks, jobs=1, cache=False)
        ]
        for light in (False, True):
            traced = run_sweep(
                tasks, jobs=1, cache=False, tracer=Tracer(light=light)
            )
            assert [o.value for o in traced] == reference


# ----------------------------------------------------------------------
# Light vs full capture
# ----------------------------------------------------------------------
def _run_traced_tcp(light):
    """One small TCP transfer under an attached tracer."""
    sim = Simulator()
    tracer = Tracer(light=light).attach(sim)
    net = build_path(sim, [LinkSpec(10e6, prop_delay=1e-3, name="hop0")])
    tracer.register_network(net)
    open_connection(
        sim, net, config=TCPConfig(), total_bytes=100_000, start=0.0
    )
    sim.run(until=10.0)
    return tracer


class TestTraceLight:
    def test_light_keeps_elision_on_fig05_point(self):
        from repro.experiments import fig05_load
        from repro.experiments.base import Scale

        tracer = Tracer(light=True)
        previous = set_default_tracer(tracer)
        try:
            fig05_load.run(
                scale=Scale(runs=1, interval=10.0, full=False),
                jobs=1, cache=False,
            )
        finally:
            set_default_tracer(previous)
        snap = tracer.collect_metrics().snapshot()
        fast = sum(
            s["value"] for s in snap["repro_fastpath_streams_total"]["samples"]
        )
        assert fast > 0  # elision survived tracing
        elided = {
            s["labels"]["path"]: s["value"]
            for s in snap["repro_probe_packets_total"]["samples"]
        }
        assert elided["elided"] > 0

    def test_full_tracer_dissolves_flows_with_reason_and_warning(
        self, monkeypatch
    ):
        monkeypatch.setattr(flowtransit, "_warned_tracer", False)
        with pytest.warns(RuntimeWarning, match="trace-light"):
            tracer = _run_traced_tcp(light=False)
        snap = tracer.collect_metrics().snapshot()
        fallbacks = {
            s["labels"]["reason"]: s["value"]
            for s in snap["repro_fastpath_flow_fallback_total"]["samples"]
        }
        assert fallbacks["tracer"] >= 1

    def test_tracer_warning_is_one_shot(self, monkeypatch):
        monkeypatch.setattr(flowtransit, "_warned_tracer", False)
        with pytest.warns(RuntimeWarning):
            _run_traced_tcp(light=False)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            _run_traced_tcp(light=False)  # second run: silent

    def test_light_tracer_keeps_flows_planned(self, monkeypatch):
        monkeypatch.setattr(flowtransit, "_warned_tracer", False)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            tracer = _run_traced_tcp(light=True)
        snap = tracer.collect_metrics().snapshot()
        planned = sum(
            s["value"] for s in snap["repro_fastpath_flows_total"]["samples"]
        )
        assert planned >= 1
        fallbacks = {
            s["labels"]["reason"]: s["value"]
            for s in snap["repro_fastpath_flow_fallback_total"]["samples"]
        }
        assert fallbacks["tracer"] == 0


# ----------------------------------------------------------------------
# Declared-but-zero series in the exposition
# ----------------------------------------------------------------------
class TestDeclaredZeroSeries:
    def test_known_reason_labels_present_at_zero(self):
        from repro.netsim.flowtransit import FLOW_FALLBACK_REASONS
        from repro.netsim.kernels import KERNEL_FALLBACK_REASONS, KERNELS
        from repro.netsim.streamtransit import STREAM_FALLBACK_REASONS

        text = Tracer().collect_metrics().to_prometheus()
        for reason in FLOW_FALLBACK_REASONS:
            assert (
                f'repro_fastpath_flow_fallback_total{{reason="{reason}"}}'
                in text
            )
        for reason in STREAM_FALLBACK_REASONS:
            assert f'repro_fastpath_fallback_total{{reason="{reason}"}}' in text
        for reason in KERNEL_FALLBACK_REASONS:
            assert f'repro_kernel_fallback_total{{reason="{reason}"}}' in text
        for kernel in KERNELS:
            assert f'repro_kernel_calls_total{{kernel="{kernel}"}}' in text
        for path in ("elided", "per-packet"):
            assert f'repro_probe_packets_total{{path="{path}"}}' in text
        assert "repro_fastpath_streams_total 0" in text
        assert "repro_fastpath_flows_total 0" in text


# ----------------------------------------------------------------------
# JSONL -> Perfetto -> summarize round trip (decision records included)
# ----------------------------------------------------------------------
class TestRoundTrip:
    @pytest.fixture()
    def trace_file(self, tmp_path):
        tracer = Tracer(light=True)
        measure_avail_bw_sim(
            capacity_bps=10e6, utilization=0.5, seed=2, config=FAST,
            tracer=tracer,
        )
        path = tmp_path / "run.jsonl"
        tracer.write_jsonl(str(path))
        return tracer, str(path)

    def test_jsonl_round_trips_decisions(self, trace_file):
        tracer, path = trace_file
        events, decisions, snapshot = read_jsonl_full(path)
        assert len(events) == len(tracer.events)
        assert events_digest(events) == tracer.event_digest()
        assert len(decisions) == len(tracer.decisions) > 0
        assert decisions[0] == tracer.decisions[0]
        assert snapshot is not None

    def test_perfetto_and_summarize_json(self, trace_file, tmp_path, capsys):
        tracer, path = trace_file
        out = str(tmp_path / "run.perfetto.json")
        assert trace_main(["perfetto", path, "-o", out]) == 0
        with open(out) as fh:
            doc = json.load(fh)
        names = [
            e["args"]["name"] for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        ]
        assert "pathload" in names
        capsys.readouterr()

        assert trace_main(["summarize", path, "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["n_events"] == len(tracer.events)
        assert summary["n_decisions"] == len(tracer.decisions)
        assert summary["digest"] == tracer.event_digest()
        health = summary["health"]
        assert health["streams"]["fast"] > 0
        assert health["probe_packets"]["elided"] > 0

    def test_health_subcommand(self, trace_file, capsys):
        _tracer, path = trace_file
        assert trace_main(["health", path]) == 0
        text = capsys.readouterr().out
        assert "probe packets" in text and "fast-path" in text

        assert trace_main(["health", path, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["probe_packets"]["elided_fraction"] == 1.0


# ----------------------------------------------------------------------
# Health report semantics
# ----------------------------------------------------------------------
class TestRunHealth:
    def test_live_tracer_health_matches_snapshot_path(self):
        tracer = Tracer(light=True)
        measure_avail_bw_sim(
            capacity_bps=10e6, utilization=0.5, seed=4, config=FAST,
            tracer=tracer,
        )
        live = health_from_tracer(tracer)
        replay = health_from_snapshot(tracer.collect_metrics().snapshot())
        assert live.to_dict() == replay.to_dict()
        assert live.streams_fast > 0
        assert live.elided_fraction == 1.0
        assert live.links  # per-link table populated
        assert live.hints == []

    def test_tracer_dissolve_hint(self, monkeypatch):
        monkeypatch.setattr(flowtransit, "_warned_tracer", True)  # silence
        tracer = _run_traced_tcp(light=False)
        health = health_from_tracer(tracer)
        assert health.flow_fallbacks["tracer"] >= 1
        assert any("--trace-light" in hint for hint in health.hints)
        assert "--trace-light" in health.render_text()

    def test_empty_snapshot_is_renderable(self):
        health = health_from_snapshot(None)
        assert health.probe_packets_total == 0
        assert health.hints  # points at the missing metrics line
        assert "none observed" in health.render_text()


# ----------------------------------------------------------------------
# Sampling profiler
# ----------------------------------------------------------------------
class TestProfiler:
    def test_samples_only_while_enabled(self, tmp_path):
        profiler = Profiler(interval_s=0.001)
        assert profiler.samples == []  # disabled: zero samples, zero cost
        with profiler:
            deadline = time.perf_counter() + 0.08  # simlint: disable=SIM001 -- host-side busy-wait for the sampler, outside the simulation
            while time.perf_counter() < deadline:  # simlint: disable=SIM001 -- host-side busy-wait for the sampler, outside the simulation
                sum(i * i for i in range(500))
        n = len(profiler.samples)
        assert n > 0
        assert all(sample.stack for sample in profiler.samples)
        time.sleep(0.01)  # simlint: disable=SIM001 -- host-side pause proving the sampler stopped
        assert len(profiler.samples) == n  # stopped: no further samples

        collapsed = tmp_path / "prof.txt"
        profiler.write(str(collapsed))
        lines = collapsed.read_text().splitlines()
        assert lines
        for line in lines:
            stack, count = line.rsplit(" ", 1)
            assert ";" in stack or stack
            assert int(count) >= 1

        scope = tmp_path / "prof.speedscope.json"
        profiler.write(str(scope))
        doc = json.loads(scope.read_text())
        profile = doc["profiles"][0]
        assert profile["type"] == "sampled"
        assert len(profile["samples"]) == n == len(profile["simTimes"])
        assert len(doc["shared"]["frames"]) > 0

    def test_sim_time_correlation_via_ambient_hook(self):
        with Profiler(interval_s=0.001) as profiler:
            sim = Simulator()
            assert profiler._sim is sim  # construction-time ambient hook
            sim.schedule(1.5, lambda: None)
            sim.run()
        from repro.netsim.engine import set_ambient_profiler

        assert set_ambient_profiler(None) is None  # stop() deregistered it

    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError, match="interval"):
            Profiler(interval_s=0.0)
