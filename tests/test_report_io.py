"""Tests for pathload report serialization."""

import math

import pytest

from repro.core import FluidLink, FluidPath, PathloadController, run_controller_fluid
from repro.core.report_io import (
    dump_report,
    load_report,
    report_from_dict,
    report_to_dict,
)
from repro.core.trend import StreamType


@pytest.fixture(scope="module")
def report():
    path = FluidPath([FluidLink(10e6, 4e6)], prop_delay=0.02)
    return run_controller_fluid(PathloadController(rtt=0.04), path)


class TestRoundTrip:
    def test_headline_fields_preserved(self, report):
        restored = report_from_dict(report_to_dict(report))
        assert restored.low_bps == report.low_bps
        assert restored.high_bps == report.high_bps
        assert restored.termination == report.termination
        assert restored.n_streams_sent == report.n_streams_sent
        assert restored.mid_bps == report.mid_bps

    def test_fleet_structure_preserved(self, report):
        restored = report_from_dict(report_to_dict(report))
        assert len(restored.fleets) == len(report.fleets)
        for a, b in zip(restored.fleets, report.fleets):
            assert a.rate_bps == b.rate_bps
            assert a.outcome is b.outcome
            assert a.n_increasing == b.n_increasing
            assert a.n_nonincreasing == b.n_nonincreasing

    def test_measurements_not_serialized(self, report):
        restored = report_from_dict(report_to_dict(report))
        assert all(f.measurements == [] for f in restored.fleets)

    def test_file_round_trip(self, report, tmp_path):
        path = tmp_path / "report.json"
        dump_report(report, str(path))
        restored = load_report(str(path))
        assert restored.low_bps == report.low_bps
        assert restored.high_bps == report.high_bps

    def test_json_is_plain(self, report, tmp_path):
        import json

        path = tmp_path / "report.json"
        dump_report(report, str(path))
        data = json.loads(path.read_text())
        assert data["schema_version"] == 1
        assert isinstance(data["fleets"], list)

    def test_nan_metrics_round_trip(self):
        """UNUSABLE streams carry NaN metrics; JSON must survive them."""
        from repro.core.fleet import FleetOutcome, FleetRecord
        from repro.core.pathload import PathloadReport
        from repro.core.trend import StreamClassification

        report = PathloadReport(
            low_bps=1e6,
            high_bps=2e6,
            grey_low_bps=None,
            grey_high_bps=None,
            termination="resolution",
            fleets=[
                FleetRecord(
                    rate_bps=1.5e6,
                    outcome=FleetOutcome.GREY,
                    classifications=[
                        StreamClassification(
                            stream_type=StreamType.UNUSABLE,
                            pct=float("nan"),
                            pdt=float("nan"),
                            n_groups=0,
                        )
                    ],
                )
            ],
        )
        restored = report_from_dict(report_to_dict(report))
        c = restored.fleets[0].classifications[0]
        assert c.stream_type is StreamType.UNUSABLE
        assert math.isnan(c.pct) and math.isnan(c.pdt)

    def test_unknown_schema_rejected(self, report):
        data = report_to_dict(report)
        data["schema_version"] = 99
        with pytest.raises(ValueError, match="schema"):
            report_from_dict(data)
