"""Unit tests for the discrete-event kernel."""

import pytest

from repro.netsim.engine import Event, SimulationError, Simulator


class TestScheduling:
    def test_callbacks_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(2.0, order.append, "b")
        sim.schedule(1.0, order.append, "a")
        sim.schedule(3.0, order.append, "c")
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_are_fifo(self):
        sim = Simulator()
        order = []
        for tag in range(5):
            sim.schedule(1.0, order.append, tag)
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_clock_advances_to_event_times(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [1.5]
        assert sim.now == 1.5

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)

    def test_cancellation_skips_callback(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, fired.append, 1)
        handle.cancel()
        sim.run()
        assert fired == []

    def test_run_until_time_limit_advances_clock(self):
        sim = Simulator()
        sim.schedule(10.0, lambda: None)
        sim.run(until=5.0)
        assert sim.now == 5.0
        # the event at t=10 still pending
        assert sim.pending_count() == 1
        sim.run()
        assert sim.now == 10.0

    def test_events_scheduled_during_run_are_processed(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: sim.schedule(1.0, seen.append, sim.now + 1.0))
        sim.run()
        assert seen == [2.0]

    def test_run_until_event_returns_value(self):
        sim = Simulator()
        ev = sim.event()
        sim.schedule(2.0, ev.trigger, 42)
        assert sim.run_until(ev) == 42

    def test_run_until_deadlock_raises(self):
        sim = Simulator()
        ev = sim.event()
        with pytest.raises(SimulationError, match="drained"):
            sim.run_until(ev)


class TestEvent:
    def test_double_trigger_raises(self):
        sim = Simulator()
        ev = sim.event()
        ev.trigger(1)
        with pytest.raises(SimulationError):
            ev.trigger(2)

    def test_trigger_if_pending(self):
        sim = Simulator()
        ev = sim.event()
        assert ev.trigger_if_pending("x") is True
        assert ev.trigger_if_pending("y") is False
        assert ev.value == "x"

    def test_callback_after_trigger_runs_immediately(self):
        sim = Simulator()
        ev = sim.event()
        ev.trigger("done")
        got = []
        ev.add_callback(got.append)
        assert got == ["done"]

    def test_timeout_event(self):
        sim = Simulator()
        ev = sim.timeout(3.0, "late")
        sim.run()
        assert ev.triggered and ev.value == "late"
        assert sim.now == 3.0

    def test_any_of_fires_on_first(self):
        sim = Simulator()
        a, b = sim.event(), sim.event()
        combined = sim.any_of([a, b])
        sim.schedule(1.0, b.trigger, "bee")
        sim.schedule(2.0, a.trigger, "aye")
        sim.run()
        assert combined.value == (1, "bee")

    def test_all_of_collects_values_in_order(self):
        sim = Simulator()
        a, b = sim.event(), sim.event()
        combined = sim.all_of([a, b])
        sim.schedule(2.0, a.trigger, "aye")
        sim.schedule(1.0, b.trigger, "bee")
        sim.run()
        assert combined.value == ["aye", "bee"]

    def test_all_of_empty_triggers_immediately(self):
        sim = Simulator()
        assert sim.all_of([]).triggered


class TestProcess:
    def test_sleep_and_return_value(self):
        sim = Simulator()

        def proc():
            yield 1.5
            yield 0.5
            return sim.now

        p = sim.process(proc())
        sim.run()
        assert p.done_event.value == 2.0
        assert not p.is_alive

    def test_wait_on_event_receives_value(self):
        sim = Simulator()
        ev = sim.event()

        def proc():
            value = yield ev
            return value * 2

        p = sim.process(proc())
        sim.schedule(1.0, ev.trigger, 21)
        sim.run()
        assert p.done_event.value == 42

    def test_process_composition(self):
        sim = Simulator()

        def child():
            yield 2.0
            return "child-result"

        def parent():
            result = yield sim.process(child())
            return ("got", result)

        p = sim.process(parent())
        sim.run()
        assert p.done_event.value == ("got", "child-result")

    def test_invalid_yield_raises(self):
        sim = Simulator()

        def proc():
            yield "nonsense"

        sim.process(proc())
        with pytest.raises(SimulationError, match="unsupported"):
            sim.run()

    def test_exceptions_propagate_out_of_run(self):
        sim = Simulator()

        def proc():
            yield 1.0
            raise ValueError("boom")

        sim.process(proc())
        with pytest.raises(ValueError, match="boom"):
            sim.run()
