"""Unit tests for the discrete-event kernel."""

import pytest

from repro.netsim.engine import Event, SimulationError, Simulator


class TestScheduling:
    def test_callbacks_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(2.0, order.append, "b")
        sim.schedule(1.0, order.append, "a")
        sim.schedule(3.0, order.append, "c")
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_are_fifo(self):
        sim = Simulator()
        order = []
        for tag in range(5):
            sim.schedule(1.0, order.append, tag)
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_clock_advances_to_event_times(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [1.5]
        assert sim.now == 1.5

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)

    def test_cancellation_skips_callback(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, fired.append, 1)
        handle.cancel()
        sim.run()
        assert fired == []

    def test_run_until_time_limit_advances_clock(self):
        sim = Simulator()
        sim.schedule(10.0, lambda: None)
        sim.run(until=5.0)
        assert sim.now == 5.0
        # the event at t=10 still pending
        assert sim.pending_count() == 1
        sim.run()
        assert sim.now == 10.0

    def test_events_scheduled_during_run_are_processed(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: sim.schedule(1.0, seen.append, sim.now + 1.0))
        sim.run()
        assert seen == [2.0]

    def test_run_until_event_returns_value(self):
        sim = Simulator()
        ev = sim.event()
        sim.schedule(2.0, ev.trigger, 42)
        assert sim.run_until(ev) == 42

    def test_run_until_deadlock_raises(self):
        sim = Simulator()
        ev = sim.event()
        with pytest.raises(SimulationError, match="drained"):
            sim.run_until(ev)


class TestEvent:
    def test_double_trigger_raises(self):
        sim = Simulator()
        ev = sim.event()
        ev.trigger(1)
        with pytest.raises(SimulationError):
            ev.trigger(2)

    def test_trigger_if_pending(self):
        sim = Simulator()
        ev = sim.event()
        assert ev.trigger_if_pending("x") is True
        assert ev.trigger_if_pending("y") is False
        assert ev.value == "x"

    def test_callback_after_trigger_runs_immediately(self):
        sim = Simulator()
        ev = sim.event()
        ev.trigger("done")
        got = []
        ev.add_callback(got.append)
        assert got == ["done"]

    def test_timeout_event(self):
        sim = Simulator()
        ev = sim.timeout(3.0, "late")
        sim.run()
        assert ev.triggered and ev.value == "late"
        assert sim.now == 3.0

    def test_any_of_fires_on_first(self):
        sim = Simulator()
        a, b = sim.event(), sim.event()
        combined = sim.any_of([a, b])
        sim.schedule(1.0, b.trigger, "bee")
        sim.schedule(2.0, a.trigger, "aye")
        sim.run()
        assert combined.value == (1, "bee")

    def test_all_of_collects_values_in_order(self):
        sim = Simulator()
        a, b = sim.event(), sim.event()
        combined = sim.all_of([a, b])
        sim.schedule(2.0, a.trigger, "aye")
        sim.schedule(1.0, b.trigger, "bee")
        sim.run()
        assert combined.value == ["aye", "bee"]

    def test_all_of_empty_triggers_immediately(self):
        sim = Simulator()
        assert sim.all_of([]).triggered


class TestProcess:
    def test_sleep_and_return_value(self):
        sim = Simulator()

        def proc():
            yield 1.5
            yield 0.5
            return sim.now

        p = sim.process(proc())
        sim.run()
        assert p.done_event.value == 2.0
        assert not p.is_alive

    def test_wait_on_event_receives_value(self):
        sim = Simulator()
        ev = sim.event()

        def proc():
            value = yield ev
            return value * 2

        p = sim.process(proc())
        sim.schedule(1.0, ev.trigger, 21)
        sim.run()
        assert p.done_event.value == 42

    def test_process_composition(self):
        sim = Simulator()

        def child():
            yield 2.0
            return "child-result"

        def parent():
            result = yield sim.process(child())
            return ("got", result)

        p = sim.process(parent())
        sim.run()
        assert p.done_event.value == ("got", "child-result")

    def test_invalid_yield_raises(self):
        sim = Simulator()

        def proc():
            yield "nonsense"

        sim.process(proc())
        with pytest.raises(SimulationError, match="unsupported"):
            sim.run()

    def test_exceptions_propagate_out_of_run(self):
        sim = Simulator()

        def proc():
            yield 1.0
            raise ValueError("boom")

        sim.process(proc())
        with pytest.raises(ValueError, match="boom"):
            sim.run()


class TestInterrupt:
    def test_interrupt_triggers_done_event(self):
        sim = Simulator()

        def proc():
            yield 100.0

        p = sim.process(proc())
        sim.run(until=1.0)
        p.interrupt()
        assert not p.is_alive
        assert p.done_event.triggered
        assert p.done_event.value is None

    def test_parent_waiting_on_interrupted_child_resumes(self):
        """Regression: interrupting a child used to leave the parent's
        ``yield child`` waiting forever (done_event never triggered)."""
        sim = Simulator()

        def child():
            yield 100.0
            return "never"

        def parent():
            result = yield child_proc
            return ("resumed", result)

        child_proc = sim.process(child())
        parent_proc = sim.process(parent())
        sim.schedule(1.0, child_proc.interrupt)
        sim.run()
        assert parent_proc.done_event.triggered
        assert parent_proc.done_event.value == ("resumed", None)

    def test_interrupted_child_return_value_reaches_parent(self):
        sim = Simulator()

        def child():
            try:
                yield 100.0
            except RuntimeError:
                return "cleaned-up"
            return "never"

        def parent():
            result = yield child_proc
            return result

        child_proc = sim.process(child())
        parent_proc = sim.process(parent())
        sim.schedule(1.0, child_proc.interrupt, RuntimeError("stop"))
        sim.run()
        assert parent_proc.done_event.value == "cleaned-up"

    def test_uncaught_interrupt_exception_propagates_after_done(self):
        sim = Simulator()

        def proc():
            yield 100.0

        p = sim.process(proc())
        sim.run(until=1.0)
        with pytest.raises(RuntimeError, match="stop"):
            p.interrupt(RuntimeError("stop"))
        assert p.done_event.triggered
        assert not p.is_alive

    def test_interrupt_is_idempotent(self):
        sim = Simulator()

        def proc():
            yield 100.0

        p = sim.process(proc())
        sim.run(until=1.0)
        p.interrupt()
        p.interrupt()  # second call must be a no-op
        assert p.done_event.triggered

    def test_interrupt_after_completion_is_noop(self):
        sim = Simulator()

        def proc():
            yield 1.0
            return "done"

        p = sim.process(proc())
        sim.run()
        p.interrupt()
        assert p.done_event.value == "done"


class TestSchedulingEdgeCases:
    def test_cancel_after_pop_is_harmless(self):
        # Cancelling a handle whose heap entry has already been popped and
        # executed must be an idempotent no-op, not an error.
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, fired.append, "x")
        sim.run()
        assert fired == ["x"]
        handle.cancel()
        handle.cancel()
        assert handle.cancelled
        sim.schedule(1.0, fired.append, "y")
        sim.run()
        assert fired == ["x", "y"]

    def test_event_double_trigger_raises_simulation_error(self):
        sim = Simulator()
        ev = sim.event()
        ev.trigger("first")
        with pytest.raises(SimulationError, match="twice"):
            ev.trigger("second")

    def test_run_until_boundary_is_inclusive(self):
        # An event at exactly t=until executes, and the clock lands exactly
        # on the boundary — with or without later events queued.
        sim = Simulator()
        fired = []
        sim.schedule(5.0, fired.append, "at-boundary")
        sim.schedule(5.0 + 1e-9, fired.append, "just-after")
        end = sim.run(until=5.0)
        assert fired == ["at-boundary"]
        assert end == 5.0 and sim.now == 5.0
        sim.run()
        assert fired == ["at-boundary", "just-after"]

    def test_run_until_boundary_with_empty_gap(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        assert sim.run(until=3.0) == 3.0
        assert sim.now == 3.0


class TestSanitizer:
    def test_digest_requires_sanitize_mode(self):
        sim = Simulator()
        with pytest.raises(SimulationError, match="sanitize=True"):
            sim.digest()

    def test_identical_seeded_runs_have_identical_digests(self):
        import numpy as np

        def workload(sim, rng):
            def proc():
                for _ in range(20):
                    yield float(rng.exponential(0.01))
                    sim.schedule(float(rng.uniform(0.0, 0.5)), lambda: None)
                return sim.now

            sim.process(proc())
            sim.run()

        digests = []
        for _ in range(2):
            sim = Simulator(sanitize=True)
            workload(sim, np.random.default_rng(42))
            assert sim.diagnostics == []
            digests.append(sim.digest())
        assert digests[0] == digests[1]

        other = Simulator(sanitize=True)
        workload(other, np.random.default_rng(43))
        assert other.digest() != digests[0]

    def test_non_finite_delay_rejected(self):
        sim = Simulator(sanitize=True)
        with pytest.raises(SimulationError, match="non-finite"):
            sim.schedule(float("nan"), lambda: None)
        with pytest.raises(SimulationError, match="non-finite"):
            sim.schedule(float("inf"), lambda: None)
        with pytest.raises(SimulationError, match="non-finite"):
            sim.schedule_at(float("nan"), lambda: None)

    def test_nan_delay_passes_silently_without_sanitize(self):
        # Documents the hazard the sanitizer exists for: NaN compares false
        # against everything, so the non-sanitizing hot path accepts it.
        sim = Simulator()
        sim.schedule(float("nan"), lambda: None)
        assert sim.pending_count() == 1

    def test_past_scheduling_diagnostic_names_callback(self):
        sim = Simulator(sanitize=True)
        sim.schedule(1.0, lambda: None)
        sim.run()

        def named_callback():
            pass

        with pytest.raises(SimulationError, match="named_callback"):
            sim.schedule_at(0.25, named_callback)

    def test_fifo_tie_violation_recorded(self):
        # Corrupt the queue deliberately: a broken heap invariant makes the
        # root (seq 7) pop before seq 3 at the same timestamp.  The heap
        # itself can't produce this, which is the point — the sanitizer
        # guards against in-place mutation of queued entries.
        from repro.netsim.engine import ScheduledCall

        sim = Simulator(sanitize=True, scheduler="heap")
        first = ScheduledCall(1.0, lambda: None, ())
        second = ScheduledCall(1.0, lambda: None, ())
        sim._queue = [(1.0, 7, first), (1.0, 3, second)]
        sim.run()
        assert any("FIFO" in d for d in sim.diagnostics)

    def test_clean_run_has_no_diagnostics(self):
        sim = Simulator(sanitize=True)
        for i in range(10):
            sim.schedule(0.5, lambda: None)
            sim.schedule(0.5 * i, lambda: None)
        sim.run()
        assert sim.diagnostics == []
        assert len(sim.digest()) == 32  # blake2b-128 hex


class TestSanitizerEndToEnd:
    def test_fig01_03_owd_experiment_sanitized_and_reproducible(self):
        # Acceptance criterion: the OWD experiment runs under the sanitizer
        # with zero diagnostics, and equal seeds give equal digests.
        from repro.experiments.fig01_03_owd import measure_single_stream

        digests = []
        for _ in range(2):
            sim = Simulator(sanitize=True)
            measurement, classification = measure_single_stream(
                96e6, seed=7, sim=sim
            )
            assert measurement.n_received > 0
            assert sim.diagnostics == []
            digests.append(sim.digest())
        assert digests[0] == digests[1]

        other = Simulator(sanitize=True)
        measure_single_stream(96e6, seed=8, sim=other)
        assert other.digest() != digests[0]


def _edge_case_workload(sim):
    """Scheduler stress mix: ties, cancellations, far-future events,
    zero-delay chains, bounded runs with resume, and post-run scheduling
    that lands *behind* a previously peeked future event (the calendar
    queue's anchor-rewind case)."""
    order = []

    def tag(x):
        order.append((sim.now, x))

    # FIFO ties at one timestamp, interleaved with a cancellation.
    for i in range(6):
        sim.schedule(1.0, tag, f"tie{i}")
    victim = sim.schedule(1.0, tag, "cancelled")
    victim.cancel()
    # Far-future event forces a sparse year scan / overflow-adjacent bucket.
    sim.schedule(1e9, tag, "far")
    # Zero-delay chain: each callback schedules the next at the same time.
    def chain(k):
        tag(f"chain{k}")
        if k < 5:
            sim.schedule(0.0, chain, k + 1)

    sim.schedule(0.5, chain, 0)
    # Bounded run, then schedule events *earlier* than the pending ones.
    sim.run(until=0.75)
    sim.schedule_at(0.8, tag, "late-insert-a")
    sim.schedule(0.05, tag, "late-insert-b")
    for i in range(50):
        sim.schedule(2.0 + (i % 7) * 0.25, tag, f"bulk{i}")
    sim.run(until=3.0)
    sim.schedule(0.125, tag, "resume")
    sim.run()
    return order


class TestCalendarScheduler:
    def test_scheduler_dispatch_and_validation(self, monkeypatch):
        from repro.netsim.engine import _CalendarSimulator

        monkeypatch.delenv("REPRO_SCHEDULER", raising=False)
        heap = Simulator()
        cal = Simulator(scheduler="calendar")
        assert heap.scheduler == "heap"
        assert cal.scheduler == "calendar"
        assert type(cal) is _CalendarSimulator
        with pytest.raises(ValueError, match="scheduler"):
            Simulator(scheduler="fibonacci")

    def test_env_var_selects_calendar(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCHEDULER", "calendar")
        assert Simulator().scheduler == "calendar"
        # Explicit argument beats the environment.
        assert Simulator(scheduler="heap").scheduler == "heap"

    def test_edge_case_order_and_digest_match_heap(self):
        heap = Simulator(sanitize=True, scheduler="heap")
        cal = Simulator(sanitize=True, scheduler="calendar")
        order_heap = _edge_case_workload(heap)
        order_cal = _edge_case_workload(cal)
        assert order_cal == order_heap
        assert cal.diagnostics == [] and heap.diagnostics == []
        assert cal.digest() == heap.digest()

    def test_flow_workload_digest_matches_heap(self):
        # End-to-end digest equality on a real TCP flow-transit workload.
        from repro.experiments.fig01_03_owd import measure_single_stream

        digests = []
        for scheduler in ("heap", "calendar"):
            sim = Simulator(sanitize=True, scheduler=scheduler)
            measure_single_stream(96e6, seed=7, sim=sim)
            assert sim.diagnostics == []
            digests.append(sim.digest())
        assert digests[0] == digests[1]

    def test_peek_time_matches_heap_with_cancellations(self):
        for scheduler in ("heap", "calendar"):
            sim = Simulator(scheduler=scheduler)
            assert sim.peek_time() is None
            head = sim.schedule(0.5, lambda: None)
            sim.schedule(1.0, lambda: None)
            assert sim.peek_time() == 0.5
            head.cancel()
            assert sim.peek_time() == 1.0
            # Peeking never consumes: the event still runs.
            ran = []
            sim.schedule(2.0, ran.append, "x")
            sim.run()
            assert ran == ["x"]

    def test_non_finite_timestamps_overflow_not_lost(self):
        # Without sanitize, inf delays are accepted; the calendar queue
        # parks them in the overflow list and pops them last.
        sim = Simulator(scheduler="calendar")
        seen = []
        sim.schedule(float("inf"), seen.append, "inf")
        sim.schedule(1.0, seen.append, "finite")
        assert sim.pending_count() == 2
        sim.run(until=10.0)
        assert seen == ["finite"]
        assert sim.pending_count() == 1  # inf event pushed back, not lost

    def test_resize_cycles_preserve_order(self):
        # Push enough to force repeated bucket-array doublings, drain to
        # force downsizing, and interleave both with pops.
        heap = Simulator(scheduler="heap")
        cal = Simulator(scheduler="calendar")
        orders = []
        for sim in (heap, cal):
            order = []
            for i in range(400):
                sim.schedule((i * 37 % 101) * 0.01, order.append, i)
            sim.run(until=0.3)
            for i in range(100):
                sim.schedule((i * 13 % 17) * 0.05, order.append, 1000 + i)
            sim.run()
            orders.append(order)
        assert orders[0] == orders[1]
