"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_no_command_prints_help(self, capsys):
        assert main([]) == 0
        assert "repro-pathload" in capsys.readouterr().out

    def test_figure_list(self, capsys):
        assert main(["figure", "--list"]) == 0
        out = capsys.readouterr().out
        assert "fig05" in out and "fig15-16" in out

    def test_figure_unknown(self, capsys):
        assert main(["figure", "fig99"]) == 2
        assert "unknown figure" in capsys.readouterr().err

    def test_measure_single_hop(self, capsys):
        code = main(
            [
                "measure",
                "--capacity-mbps",
                "10",
                "--utilization",
                "0.5",
                "--seed",
                "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "avail-bw range" in out
        assert "true average 5.00" in out

    def test_measure_with_json_output(self, capsys, tmp_path):
        out = tmp_path / "report.json"
        code = main(
            [
                "measure",
                "--capacity-mbps",
                "10",
                "--utilization",
                "0.5",
                "--seed",
                "2",
                "--output",
                str(out),
            ]
        )
        assert code == 0
        from repro.core.report_io import load_report

        report = load_report(str(out))
        assert report.low_bps <= report.high_bps

    def test_measure_multihop(self, capsys):
        code = main(
            ["measure", "--hops", "3", "--utilization", "0.6", "--seed", "3"]
        )
        assert code == 0
        assert "avail-bw range" in capsys.readouterr().out
