"""Tests for the chirp-train (pathChirp-style) extension estimator."""

import numpy as np
import pytest

from repro.baselines.pathchirp import (
    chirp_estimate_from_owds,
    chirp_rates,
    run_pathchirp,
)
from repro.netsim import Simulator, build_single_hop_path


class TestChirpRates:
    def test_geometric_sweep(self):
        rates = chirp_rates(1e6, 16e6, 10)
        assert rates[0] == pytest.approx(1e6)
        assert rates[-1] == pytest.approx(16e6)
        ratios = rates[1:] / rates[:-1]
        assert np.allclose(ratios, ratios[0])

    def test_validation(self):
        with pytest.raises(ValueError):
            chirp_rates(2e6, 1e6, 20)
        with pytest.raises(ValueError):
            chirp_rates(0.0, 1e6, 20)
        with pytest.raises(ValueError):
            chirp_rates(1e6, 2e6, 4)


class TestExcursionDetection:
    def test_clean_knee_located(self):
        """Flat OWDs until rate crosses A, then rising: knee at A."""
        rates = chirp_rates(1e6, 16e6, 40)
        owds = np.zeros(40)
        knee = np.searchsorted(rates, 4e6)
        owds[knee + 1:] = np.cumsum(np.full(40 - knee - 1, 1e-4))
        estimate = chirp_estimate_from_owds(owds, rates, smooth=1)
        assert estimate == pytest.approx(4e6, rel=0.35)

    def test_never_saturating_chirp_returns_max(self):
        rates = chirp_rates(1e6, 16e6, 40)
        owds = np.zeros(40)
        assert chirp_estimate_from_owds(owds, rates, smooth=1) == rates[-1]

    def test_transient_bump_skipped(self):
        """A short mid-chirp bump (cross burst) must not become the knee."""
        rates = chirp_rates(1e6, 16e6, 60)
        owds = np.zeros(60)
        owds[10:13] += 5e-4  # bump that decays
        knee = np.searchsorted(rates, 8e6)
        owds[knee + 1:] = np.cumsum(np.full(60 - knee - 1, 1e-4))
        estimate = chirp_estimate_from_owds(owds, rates, smooth=1)
        assert estimate > 4e6  # far above the bump's rate (~1.6 Mb/s)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            chirp_estimate_from_owds(np.zeros(10), chirp_rates(1e6, 2e6, 12))


class TestEndToEnd:
    def test_estimates_near_truth(self):
        sim = Simulator()
        rng = np.random.default_rng(0)
        setup = build_single_hop_path(sim, 10e6, 0.6, rng, prop_delay=0.01)
        result = run_pathchirp(sim, setup.network, start=2.0)
        assert result.avail_bw_estimate_bps == pytest.approx(4e6, rel=0.5)
        assert result.n_chirps == 8
        assert result.bytes_sent == 8 * 120 * 1000

    def test_idle_path_reports_sweep_top(self):
        sim = Simulator()
        rng = np.random.default_rng(1)
        setup = build_single_hop_path(sim, 10e6, 0.0, rng, prop_delay=0.01)
        result = run_pathchirp(sim, setup.network, start=0.5, n_chirps=3)
        # nothing to saturate below capacity: estimate lands at/near the top
        assert result.avail_bw_estimate_bps > 0.7 * 10e6

    def test_validation(self):
        sim = Simulator()
        rng = np.random.default_rng(2)
        setup = build_single_hop_path(sim, 10e6, 0.5, rng)
        with pytest.raises(ValueError):
            run_pathchirp(sim, setup.network, n_chirps=0)
