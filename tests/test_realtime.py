"""Tests for the real-UDP-socket transport (loopback only).

These exercise the plumbing — pacing, arrival timestamping, the
end-of-stream protocol, the full controller loop — with assertions that
tolerate interpreter scheduling noise (the documented limitation of the
real-socket driver).
"""

import time

import numpy as np
import pytest

from repro.core.config import PathloadConfig
from repro.core.probing import StreamSpec
from repro.transport.realtime import (
    UdpProbeReceiver,
    UdpProbeSender,
    measure_loopback,
)


@pytest.fixture
def pair():
    receiver = UdpProbeReceiver()
    receiver.start()
    sender = UdpProbeSender(receiver.address)
    yield sender, receiver
    sender.close()
    receiver.stop()


class TestStreamTransport:
    def test_all_packets_delivered_and_ordered(self, pair):
        sender, receiver = pair
        spec = StreamSpec(rate_bps=20e6, packet_size=250, n_packets=80)
        stream_id, n_sent, _t0 = sender.send_stream(spec)
        m = receiver.measurement_for(spec, stream_id, timeout=1.0)
        assert n_sent == 80
        assert m.n_received == 80
        assert [r.seq for r in m.records] == list(range(80))
        assert m.loss_rate == 0.0

    def test_pacing_holds_the_period(self, pair):
        """The hybrid sleep/spin sender holds the mean gap near T."""
        sender, receiver = pair
        spec = StreamSpec(rate_bps=40e6, packet_size=500, n_packets=100)
        stream_id, _n, _t0 = sender.send_stream(spec)
        m = receiver.measurement_for(spec, stream_id, timeout=1.0)
        gaps = m.sender_gaps()
        assert gaps.mean() == pytest.approx(spec.period, rel=0.05)
        # individual sends land within the gap-deviation tolerance mostly
        deviant = np.mean(np.abs(gaps - spec.period) > 0.3 * spec.period)
        assert deviant < 0.2

    def test_owds_are_positive_and_bounded(self, pair):
        sender, receiver = pair
        spec = StreamSpec(rate_bps=10e6, packet_size=200, n_packets=50)
        stream_id, _n, _t0 = sender.send_stream(spec)
        m = receiver.measurement_for(spec, stream_id, timeout=1.0)
        owds = m.relative_owds()
        assert np.all(owds > 0)  # same clock: true one-way delays
        assert owds.max() < 0.1  # loopback: well under 100 ms

    def test_consecutive_streams_do_not_leak(self, pair):
        """Stream-id routing: stragglers from one stream cannot poison the
        next measurement (a real bug caught during development)."""
        sender, receiver = pair
        for _ in range(3):
            spec = StreamSpec(rate_bps=20e6, packet_size=250, n_packets=30)
            stream_id, _n, _t0 = sender.send_stream(spec)
            m = receiver.measurement_for(spec, stream_id, timeout=1.0)
            assert m.n_received == 30
            assert m.n_sent == 30

    def test_unknown_datagrams_ignored(self, pair):
        sender, receiver = pair
        # garbage and wrong-magic datagrams must be dropped silently
        sender.sock.sendto(b"junk", receiver.address)
        sender.sock.sendto(b"\x00" * 64, receiver.address)
        spec = StreamSpec(rate_bps=20e6, packet_size=250, n_packets=20)
        stream_id, _n, _t0 = sender.send_stream(spec)
        m = receiver.measurement_for(spec, stream_id, timeout=1.0)
        assert m.n_received == 20


class TestLoopbackMeasurement:
    def test_full_measurement_completes_quickly(self):
        t0 = time.perf_counter()
        report = measure_loopback(time_budget=20.0)
        wall = time.perf_counter() - t0
        assert wall < 20.0
        assert report.fleets or report.termination in ("max-fleets", "max-rate-reached")

    def test_loopback_reports_more_bandwidth_than_probeable(self):
        """Loopback's capacity exceeds the max probing rate, so the lower
        bound must climb toward it (the correct 'A >= max rate' verdict).

        Wall-clock timestamps are at the mercy of host load, so the check
        retries: one quiet attempt suffices.
        """
        config = PathloadConfig(n_streams=6, idle_factor=1.0, max_fleets=10)
        best = 0.0
        for _attempt in range(3):
            report = measure_loopback(config=config)
            best = max(best, report.low_bps)
            if best > 0.4 * config.max_rate_bps:
                break
        assert best > 0.4 * config.max_rate_bps
