"""Integration tests of pathload's loss-handling path over the DES.

The paper: a stream with >10 % loss is discarded; a fleet with several
moderately lossy streams is aborted and the next fleet probes a lower
rate.  A small drop-tail buffer on the tight link exercises all of it.
"""

import numpy as np
import pytest

from repro.core.config import PathloadConfig
from repro.core.fleet import FleetOutcome
from repro.netsim import Simulator, build_single_hop_path
from repro.transport.probe import run_pathload

FAST = PathloadConfig(idle_factor=1.0)


class TestLossyPath:
    def test_measurement_completes_despite_losses(self):
        """A 12 kB buffer drops probe bursts at high rates; pathload must
        still converge to a sane range."""
        sim = Simulator()
        rng = np.random.default_rng(0)
        setup = build_single_hop_path(
            sim, 10e6, 0.6, rng, prop_delay=0.01, buffer_bytes=12_000
        )
        report = run_pathload(
            sim, setup.network, config=FAST, start=2.0, time_limit=1200.0
        )
        # high rates are unprobeable (they overflow the buffer), so the
        # estimate cannot exceed them; the truth is 4 Mb/s
        assert report.high_bps <= 10e6
        assert report.low_bps <= 4e6 + 1e6

    def test_aborted_fleets_lower_the_search(self):
        """Fleets aborted on loss count as R > A and push rmax down."""
        sim = Simulator()
        rng = np.random.default_rng(1)
        setup = build_single_hop_path(
            sim, 10e6, 0.6, rng, prop_delay=0.01, buffer_bytes=8_000
        )
        report = run_pathload(
            sim, setup.network, config=FAST, start=2.0, time_limit=1200.0
        )
        aborted = [
            f for f in report.fleets if f.outcome is FleetOutcome.ABORTED_LOSS
        ]
        if aborted:  # with this buffer, the first high-rate fleets abort
            first_aborted = aborted[0]
            assert report.high_bps <= first_aborted.rate_bps

    def test_stream_level_loss_recorded(self):
        sim = Simulator()
        rng = np.random.default_rng(2)
        setup = build_single_hop_path(
            sim, 10e6, 0.6, rng, prop_delay=0.01, buffer_bytes=8_000
        )
        report = run_pathload(
            sim, setup.network, config=FAST, start=2.0, time_limit=1200.0
        )
        all_streams = [m for f in report.fleets for m in f.measurements]
        assert any(m.loss_rate > 0 for m in all_streams)

    def test_infinite_buffer_has_no_losses(self):
        sim = Simulator()
        rng = np.random.default_rng(3)
        setup = build_single_hop_path(
            sim, 10e6, 0.6, rng, prop_delay=0.01, buffer_bytes=None
        )
        report = run_pathload(
            sim, setup.network, config=FAST, start=2.0, time_limit=1200.0
        )
        all_streams = [m for f in report.fleets for m in f.measurements]
        assert all(m.loss_rate == 0 for m in all_streams)
        assert setup.tight_link.stats.packets_dropped == 0
