"""Tests for the probing primitives (specs, measurements, actions)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.probing import (
    Idle,
    PacketRecord,
    SendStream,
    StreamMeasurement,
    StreamSpec,
    stream_spec_for_rate,
)


class TestStreamSpec:
    def test_period_and_duration(self):
        spec = StreamSpec(rate_bps=8e6, packet_size=1000, n_packets=100)
        assert spec.period == pytest.approx(0.001)
        assert spec.duration == pytest.approx(0.099)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rate_bps": 0, "packet_size": 100, "n_packets": 10},
            {"rate_bps": 1e6, "packet_size": 0, "n_packets": 10},
            {"rate_bps": 1e6, "packet_size": 100, "n_packets": 1},
        ],
    )
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            StreamSpec(**kwargs)

    @given(rate=st.floats(1e3, 119e6))
    @settings(max_examples=100)
    def test_spec_for_rate_invariants(self, rate):
        """For any feasible rate: size within [min,mtu], period >= T_min,
        and the rate is realized exactly."""
        spec = stream_spec_for_rate(rate)
        assert 200 <= spec.packet_size <= 1500
        if spec.packet_size > 200:  # not pinned at the minimum size
            assert spec.period >= 100e-6 - 1e-12
        assert spec.packet_size * 8 / spec.period == pytest.approx(rate)


class TestMeasurementEdgeCases:
    def spec(self):
        return StreamSpec(rate_bps=1e6, packet_size=200, n_packets=10)

    def test_total_loss(self):
        m = StreamMeasurement(spec=self.spec(), records=[], n_sent=10)
        assert m.loss_rate == 1.0
        assert m.n_received == 0
        assert len(m.relative_owds()) == 0

    def test_dispersion_needs_two_packets(self):
        m = StreamMeasurement(
            spec=self.spec(),
            records=[PacketRecord(seq=0, sender_stamp=0.0, recv_stamp=0.1)],
            n_sent=10,
        )
        with pytest.raises(ValueError, match="two received"):
            m.dispersion_rate_bps()

    def test_simultaneous_arrivals_rejected_in_dispersion(self):
        records = [
            PacketRecord(seq=0, sender_stamp=0.0, recv_stamp=0.1),
            PacketRecord(seq=1, sender_stamp=0.01, recv_stamp=0.1),
        ]
        m = StreamMeasurement(spec=self.spec(), records=records, n_sent=2)
        with pytest.raises(ValueError, match="span"):
            m.dispersion_rate_bps()

    def test_zero_sent_loss_rate(self):
        m = StreamMeasurement(spec=self.spec(), records=[], n_sent=0)
        assert m.loss_rate == 0.0

    def test_single_record_sender_gaps_empty(self):
        m = StreamMeasurement(
            spec=self.spec(),
            records=[PacketRecord(seq=0, sender_stamp=0.0, recv_stamp=0.1)],
            n_sent=10,
        )
        assert len(m.sender_gaps()) == 0

    def test_relative_owd_property(self):
        r = PacketRecord(seq=3, sender_stamp=1.5, recv_stamp=1.62)
        assert r.relative_owd == pytest.approx(0.12)


class TestActions:
    def test_idle_rejects_negative(self):
        with pytest.raises(ValueError):
            Idle(-0.1)

    def test_idle_zero_allowed(self):
        assert Idle(0.0).duration == 0.0

    def test_send_stream_carries_spec(self):
        spec = StreamSpec(rate_bps=1e6, packet_size=200, n_packets=10)
        assert SendStream(spec).spec is spec
