"""Tests for the measurement-campaign API."""

import numpy as np
import pytest

from repro.campaign import MeasurementCampaign
from repro.core.config import PathloadConfig
from repro.netsim import Simulator, build_single_hop_path
from repro.netsim.crosstraffic import attach_cross_traffic

FAST = PathloadConfig(idle_factor=1.0)


def build(seed=0, utilization=0.6, modulation=None):
    sim = Simulator()
    rng = np.random.default_rng(seed)
    setup = build_single_hop_path(
        sim, 10e6, utilization, rng, prop_delay=0.01, modulation=modulation
    )
    return sim, setup


class TestCampaign:
    def test_collects_requested_measurements(self):
        sim, setup = build(seed=1)
        campaign = MeasurementCampaign(
            sim, setup.network, setup.tight_link, config=FAST
        )
        result = campaign.run(3)
        assert len(result.samples) == 3
        # samples are consecutive in time
        times = [(s.t_start, s.t_end) for s in result.samples]
        assert all(t0 < t1 for t0, t1 in times)
        assert all(a[1] <= b[0] + 1e-9 for a, b in zip(times, times[1:]))

    def test_monitor_series_spans_the_campaign(self):
        sim, setup = build(seed=2)
        campaign = MeasurementCampaign(
            sim, setup.network, setup.tight_link, config=FAST, monitor_window=5.0
        )
        result = campaign.run(2)
        assert result.monitor_series
        assert result.monitor_series[-1][0] >= result.samples[-1].t_end - 5.0

    def test_coverage_against_stationary_truth(self):
        sim, setup = build(seed=3)
        campaign = MeasurementCampaign(
            sim, setup.network, setup.tight_link, config=FAST, monitor_window=10.0
        )
        result = campaign.run(3)
        # stationary load at A=4: most ranges cover the monitored value
        assert result.coverage_fraction(slack_bps=1.5e6) >= 2 / 3

    def test_tracks_a_load_shift(self):
        """A mid-campaign load increase must show up in the measured series."""
        sim, setup = build(seed=4, utilization=0.2)
        # at t=30 an extra 5 Mb/s aggregate arrives: avail 8 -> 3 Mb/s
        attach_cross_traffic(
            sim, setup.network, setup.tight_link, 5e6,
            np.random.default_rng(99), start=30.0,
        )
        campaign = MeasurementCampaign(
            sim, setup.network, setup.tight_link, config=FAST, gap=2.0
        )
        result = campaign.run(8, time_limit=300.0)
        series = result.measured_series()
        early = [mid for (t, lo, hi) in series[:2] for mid in [(lo + hi) / 2] if t < 30]
        late = [(lo + hi) / 2 for (t, lo, hi) in series if t > 40]
        assert early and late
        assert np.mean(late) < np.mean(early) - 2e6

    def test_gap_reduces_probe_footprint(self):
        def probe_bytes(gap):
            sim, setup = build(seed=5)
            campaign = MeasurementCampaign(
                sim, setup.network, setup.tight_link, config=FAST, gap=gap
            )
            campaign.run(2)
            elapsed = sim.now - 2.0
            return campaign.channel.bytes_sent * 8 / elapsed

        assert probe_bytes(10.0) < probe_bytes(0.0)

    def test_validation(self):
        sim, setup = build(seed=6)
        with pytest.raises(ValueError):
            MeasurementCampaign(
                sim, setup.network, setup.tight_link, gap=-1.0
            )
        campaign = MeasurementCampaign(sim, setup.network, setup.tight_link)
        with pytest.raises(ValueError):
            campaign.run(0)
