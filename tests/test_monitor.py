"""Tests for the MRTG-style link monitors and queue monitor."""

import numpy as np
import pytest

from repro.netsim import (
    LinkMonitor,
    LinkSpec,
    MRTGMonitor,
    QueueMonitor,
    Simulator,
    attach_cross_traffic,
    build_path,
)
from repro.netsim.packet import Packet


class TestLinkMonitor:
    def test_utilization_of_cbr_load(self):
        sim = Simulator()
        net = build_path(sim, [LinkSpec(10e6)])
        link = net.forward_links[0]
        rng = np.random.default_rng(0)
        attach_cross_traffic(sim, net, link, 6e6, rng, model="cbr", n_sources=2)
        mon = LinkMonitor(sim, link, window=1.0)
        sim.run(until=10.5)
        utils = [s.utilization for s in mon.samples]
        assert len(utils) == 10
        assert np.mean(utils) == pytest.approx(0.6, rel=0.05)

    def test_avail_bw_is_complement(self):
        sim = Simulator()
        net = build_path(sim, [LinkSpec(10e6)])
        link = net.forward_links[0]
        rng = np.random.default_rng(1)
        attach_cross_traffic(sim, net, link, 4e6, rng, model="cbr")
        mon = LinkMonitor(sim, link, window=2.0)
        sim.run(until=9.0)
        for s in mon.samples:
            assert s.avail_bw_bps == pytest.approx(10e6 * (1 - s.utilization))
        assert mon.mean_avail_bw() == pytest.approx(6e6, rel=0.05)

    def test_idle_link_full_avail_bw(self):
        sim = Simulator()
        net = build_path(sim, [LinkSpec(10e6)])
        mon = LinkMonitor(sim, net.forward_links[0], window=1.0)
        sim.schedule(5.0, lambda: None)  # keep the sim alive
        sim.run(until=5.0)
        assert all(s.utilization == 0.0 for s in mon.samples)

    def test_sample_covering(self):
        sim = Simulator()
        net = build_path(sim, [LinkSpec(10e6)])
        mon = LinkMonitor(sim, net.forward_links[0], window=1.0)
        sim.schedule(3.5, lambda: None)
        sim.run(until=3.5)
        s = mon.sample_covering(1.5)
        assert s is not None and s.t_start <= 1.5 < s.t_end
        assert mon.sample_covering(99.0) is None

    def test_windows_do_not_double_count(self):
        sim = Simulator()
        net = build_path(sim, [LinkSpec(10e6)])
        link = net.forward_links[0]
        rng = np.random.default_rng(2)
        attach_cross_traffic(sim, net, link, 5e6, rng, model="poisson")
        mon = LinkMonitor(sim, link, window=0.5)
        sim.run(until=10.25)
        total_from_windows = sum(s.bytes_forwarded for s in mon.samples)
        assert total_from_windows <= link.stats.bytes_forwarded

    def test_no_samples_raises(self):
        sim = Simulator()
        net = build_path(sim, [LinkSpec(10e6)])
        mon = LinkMonitor(sim, net.forward_links[0], window=10.0)
        with pytest.raises(ValueError):
            mon.mean_avail_bw()

    def test_bad_window_rejected(self):
        sim = Simulator()
        net = build_path(sim, [LinkSpec(10e6)])
        with pytest.raises(ValueError):
            LinkMonitor(sim, net.forward_links[0], window=0.0)


class TestMRTGMonitor:
    def test_banded_reading_contains_sample(self):
        sim = Simulator()
        net = build_path(sim, [LinkSpec(10e6)])
        link = net.forward_links[0]
        rng = np.random.default_rng(3)
        attach_cross_traffic(sim, net, link, 6e6, rng, model="cbr")
        mon = MRTGMonitor(sim, link, window=1.0, band_bps=1e6)
        sim.run(until=5.5)
        for s in mon.samples:
            lo, hi = mon.reading_band(s)
            assert lo <= s.avail_bw_bps < hi
            assert hi - lo == pytest.approx(1e6)

    def test_band_quantization(self):
        sim = Simulator()
        net = build_path(sim, [LinkSpec(100e6)])
        mon = MRTGMonitor(sim, net.forward_links[0], window=1.0, band_bps=6e6)
        sim.schedule(1.5, lambda: None)
        sim.run(until=1.5)
        (lo, hi) = mon.reading_band(mon.samples[0])
        # idle 100 Mb/s link: avail-bw 100 => band [96, 102)
        assert lo == pytest.approx(96e6)
        assert hi == pytest.approx(102e6)


class TestQueueMonitor:
    def test_tracks_backlog_growth(self):
        sim = Simulator()
        net = build_path(sim, [LinkSpec(1e6, name="slow")])
        link = net.forward_links[0]
        mon = QueueMonitor(sim, link, interval=0.01)
        # dump 20 kB instantly into a 1 Mb/s link: ~160 ms backlog
        for _ in range(20):
            net.inject_at(link, Packet(1000))
        sim.run(until=0.05)
        assert mon.max_backlog() > 10000
        sim.run(until=0.5)

    def test_empty_queue_samples_zero(self):
        sim = Simulator()
        net = build_path(sim, [LinkSpec(1e9)])
        mon = QueueMonitor(sim, net.forward_links[0], interval=0.1, stop=1.0)
        sim.run(until=2.0)
        assert mon.max_backlog() == 0
        assert mon.mean_backlog() == 0.0

    def test_stop_time(self):
        sim = Simulator()
        net = build_path(sim, [LinkSpec(1e9)])
        mon = QueueMonitor(sim, net.forward_links[0], interval=0.1, stop=0.55)
        sim.run(until=2.0)
        assert len(mon.samples) <= 7


class TestDetachAndStop:
    def test_link_monitor_stop_bounds_sampling(self):
        sim = Simulator()
        net = build_path(sim, [LinkSpec(10e6)])
        mon = LinkMonitor(sim, net.forward_links[0], window=1.0, stop=3.5)
        sim.schedule(10.0, lambda: None)
        sim.run(until=10.0)
        # windows end at 1, 2, 3, 4 (the one containing stop=3.5 is last)
        assert len(mon.samples) == 4
        assert mon.samples[-1].t_end == pytest.approx(4.0)

    def test_link_monitor_detach_before_start(self):
        sim = Simulator()
        net = build_path(sim, [LinkSpec(10e6)])
        mon = LinkMonitor(sim, net.forward_links[0], window=1.0)
        mon.detach()
        mon.detach()  # idempotent
        sim.run(until=5.0)
        assert mon.samples == []

    def test_link_monitor_detach_mid_run(self):
        sim = Simulator()
        net = build_path(sim, [LinkSpec(10e6)])
        mon = LinkMonitor(sim, net.forward_links[0], window=1.0)
        sim.schedule(2.5, mon.detach)
        sim.schedule(10.0, lambda: None)
        sim.run(until=10.0)
        assert len(mon.samples) == 2  # windows ending at 1.0 and 2.0 survive

    def test_monitor_does_not_keep_idle_sim_alive(self):
        # Without stop, the self-rescheduling tick runs to the horizon; with
        # stop set, the scheduler executes only begin + the bounded ticks.
        from repro.obs import Tracer

        def events_with(stop):
            sim = Simulator()
            tracer = Tracer()
            tracer.attach(sim)
            net = build_path(sim, [LinkSpec(10e6)])
            LinkMonitor(sim, net.forward_links[0], window=1.0, stop=stop)
            sim.run(until=100.0)
            return tracer._engine_events

        assert events_with(stop=2.0) == 3  # begin + ticks at 1.0 and 2.0
        assert events_with(stop=None) == 101

    def test_queue_monitor_detach(self):
        sim = Simulator()
        net = build_path(sim, [LinkSpec(1e9)])
        mon = QueueMonitor(sim, net.forward_links[0], interval=0.1)
        sim.schedule(0.35, mon.detach)
        sim.schedule(5.0, lambda: None)
        sim.run(until=5.0)
        assert len(mon.samples) <= 4
        mon.detach()  # idempotent after the scheduled detach already ran

    def test_sample_covering_matches_linear_scan(self):
        sim = Simulator()
        net = build_path(sim, [LinkSpec(10e6)])
        mon = LinkMonitor(sim, net.forward_links[0], window=0.7)
        sim.schedule(20.0, lambda: None)
        sim.run(until=20.0)
        assert len(mon.samples) > 20

        def linear(t):
            for s in mon.samples:
                if s.t_start <= t < s.t_end:
                    return s
            return None

        for t in np.linspace(-1.0, 21.0, 223):
            assert mon.sample_covering(float(t)) is linear(float(t))
