"""Fixture: every violation is pragma-suppressed — linter must report none."""

import time

import numpy as np


def justified():
    t0 = time.time()  # simlint: disable=SIM001 -- fixture exercising pragmas
    rng = np.random.default_rng()  # simlint: disable=SIM002 -- fixture
    bad_default = lambda xs=[]: xs  # simlint: disable -- bare pragma: all rules
    return t0, rng, bad_default
