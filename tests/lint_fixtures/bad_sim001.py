"""Known-bad fixture: wall-clock calls (SIM001 at lines 9, 13, 14)."""

import time
from datetime import datetime
from time import perf_counter as pc


def stamp():
    return time.time()


def more():
    a = pc()
    b = datetime.now()
    return a, b
