"""Known-bad fixture: mutable default arguments (SIM005 at lines 4, 8)."""


def collect(values=[]):
    return values


def tally(counts={}, *, label=None):
    return counts, label


def fine(values=None, window=(1, 2)):
    return values, window
