"""SIM008 fixture: RNG draws under unordered (set/dict) iteration."""


def _draw_one(rng):
    return rng.pareto(1.5)


def direct_draws(rng):
    out = []
    flows = {3, 1, 2}
    for flow in flows:  # reaching defs chase 'flows' back to the set literal
        out.append(rng.exponential(flow))
    for flow in {4, 5}:  # set literal in the header
        out.append(rng.normal(flow))
    for key in {"a": 1}.keys():  # dict view
        out.append(rng.random())
    return out


def indirect_draw(rng):
    total = 0.0
    for flow in {1, 2}:  # draw happens inside the called helper
        total += _draw_one(rng)
    return total


def comprehension_draw(rng):
    return [rng.random() for _ in {6, 7}]


def ordered_is_clean(rng):
    out = []
    flows = {3, 1, 2}
    for flow in sorted(flows):  # sorted(): the sanctioned fix
        out.append(rng.exponential(flow))
    for flow in flows:  # unordered but no draw: clean
        out.append(flow)
    ordered = [9, 8]
    for flow in ordered:  # list: insertion order is deterministic
        out.append(rng.normal(flow))
    return out


def suppressed(rng):
    acc = 0.0
    for flow in {1, 2}:  # simlint: disable=SIM008 -- commutative sum, order-free
        acc += rng.random()
    return acc
