"""SIM009 fixture: impure fast-path hooks and guard bypasses."""


def pure_observer(pkt, now):
    return (pkt, now)


def scheduling_hook(pkt, now):
    pkt.sim.schedule(0.001, pkt)


def drawing_hook(pkt, now, rng):
    return rng.normal()


def mutating_hook(link, pkt):
    link.capacity_bps = 0.0


def setup(link, sink):
    link.deliver = pure_observer  # pure observer: clean
    link.deliver = scheduling_hook  # reschedules from inside the data path
    link.drop_hook = drawing_hook  # draws RNG per drop
    link.qdisc = mutating_hook  # mutates link state
    link._drop_hook = pure_observer  # bypasses the property setter guard
    link.deliver = sink.append  # unresolvable bound method: clean


def construct(Link, net):
    good = Link(deliver=pure_observer)
    bad = Link(drop_hook=drawing_hook)  # keyword install of an impure hook
    return good, bad


def suppressed(link):
    link.deliver = scheduling_hook  # simlint: disable=SIM009 -- test harness
