"""Known-bad fixture: unit-suffix hygiene (SIM004 at lines 6, 9, 10, 11, 12)."""


def configure(run, rate_bps, capacity_mbps):
    # direct cross-unit binding
    rate_mbps = rate_bps
    # cross-unit keyword arguments, both directions
    run(
        target_mbps=rate_bps,
        capacity_bps=capacity_mbps,
        link_mbps=155e6,
        floor_bps=10,
    )
    # arithmetic on the right-hand side is treated as the conversion itself
    ok_mbps = rate_bps / 1e6
    run(capacity_bps=155e6, window_mbps=96.0)
    return rate_mbps, ok_mbps
