"""SIM010 fixture: vector-safe annotations the classifier must reject.

The classifier itself only produces the work list; findings fire when a
loop annotated ``# simlint: vector-safe`` fails to classify VECTOR-SAFE.
"""


def lindley_safe(times, sizes, cap):
    free_at = 0.0
    total = 0
    for i in range(len(times)):  # simlint: vector-safe
        t = times[i]
        size = sizes[i]
        start = free_at if free_at > t else t
        free_at = start + size * 8.0 / cap
        total += size
    return free_at, total


def drop_tail_annotated(times, sizes, cap, buffer_limit):
    free_at = 0.0
    backlog = 0
    dropped = 0
    i = 0
    # simlint: vector-safe
    while i < len(times):
        t = times[i]
        size = sizes[i]
        if backlog + size > buffer_limit:
            dropped += 1
        else:
            start = free_at if free_at > t else t
            free_at = start + size * 8.0 / cap
            backlog += size
        i += 1
    return free_at, dropped


def annotated_without_recursion(xs):
    out = []
    for x in xs:  # simlint: vector-safe
        out.append(str(x))
    return out


def suppressed_drop_tail(times, cap, buffer_limit):
    free_at = 0.0
    backlog = 0
    # simlint: vector-safe
    for t in times:  # simlint: disable=SIM010 -- vectorization experiment
        if backlog + 1 > buffer_limit:
            backlog = 0
        else:
            start = free_at if free_at > t else t
            free_at = start + 8.0 / cap
            backlog += 1
    return free_at
