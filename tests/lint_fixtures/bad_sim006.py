"""Known-bad fixture: never-yielding process body (SIM006 at line 15)."""


def runs_instantly(sim):
    sim.schedule(1.0, print, "not a generator")
    return 42


def proper_body(sim):
    yield 1.0
    return "done"


def driver(sim):
    bad = sim.process(runs_instantly(sim))
    good = sim.process(proper_body(sim))
    return bad, good
