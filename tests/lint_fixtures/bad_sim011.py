"""SIM011 fixture: sweep task fns depending on cross-process shared state."""

from repro.parallel import SweepTask

_RESULTS = []
_CONFIG = {"mode": "fast"}


def _set_slow_mode():
    _CONFIG["mode"] = "slow"


def _worker_clean(seed_entropy, scale):
    return seed_entropy * scale


def _worker_mutates(seed_entropy):
    _RESULTS.append(seed_entropy)
    return seed_entropy


def _worker_reads_stale(seed_entropy):
    return (seed_entropy, _CONFIG["mode"])


def _worker_env(seed_entropy):
    import os

    return (seed_entropy, os.getenv("REPRO_MODE"))


def build_tasks():
    tasks = [
        SweepTask(fn=_worker_clean, kwargs={"scale": 2}, seed_entropy=1),
        SweepTask(fn=_worker_mutates, seed_entropy=2),
        SweepTask(fn=_worker_reads_stale, seed_entropy=3),
        SweepTask(fn=_worker_env, seed_entropy=4),
        SweepTask(fn=lambda e: e, seed_entropy=5),
    ]

    def local_worker(seed_entropy):
        return seed_entropy

    tasks.append(SweepTask(fn=local_worker, seed_entropy=6))
    tasks.append(
        SweepTask(fn=_worker_mutates, seed_entropy=7)  # simlint: disable=SIM011 -- exercised deliberately
    )
    return tasks
