"""Known-bad fixture: bare print() in library code (SIM007 at lines 7, 12)."""

import sys


def report(value):
    print("value:", value)
    sys.stdout.write("fine: not a print call\n")


def shout(label, count):
    print(f"{label}: {count}")


def suppressed():
    print("allowed here")  # simlint: disable=SIM007 -- fixture suppression
