"""Known-bad fixture: unseeded randomness (SIM002 at lines 10, 11, 12, 13)."""

import random

import numpy as np
from numpy.random import default_rng


def draw():
    g = default_rng()
    x = np.random.uniform(0.0, 1.0)
    y = np.random.default_rng()
    z = random.random()
    ok = np.random.default_rng(42)  # seeded: not a finding
    return g, x, y, z, ok
