"""Fixture: idiomatic simulator code — the linter must stay silent."""

import numpy as np


def controller(sim, rng: np.random.Generator, rate_bps: float):
    """A well-behaved process body: virtual time, injected RNG, real units."""
    period = 1200 * 8.0 / rate_bps
    while sim.now < 10.0:
        jitter = rng.uniform(0.0, period / 100.0)
        yield period + jitter
    return sim.now


def launch(sim, rng: np.random.Generator):
    rate_mbps = 96.0
    return sim.process(controller(sim, rng, rate_bps=rate_mbps * 1e6))
