"""Known-bad fixture: virtual-time equality (SIM003 at lines 5, 11, 16)."""


def check(sim, t0, pkt):
    if sim.now == t0:
        return True
    return False


def deadline_check(deadline, now):
    return deadline != now


def arrival(pkt, stamp):
    # attribute chains with a *_at terminal name also count
    return pkt.sent_at == stamp
