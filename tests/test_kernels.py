"""Bit-equality and degradation tests for the vectorized planning kernels.

Every kernel in ``repro.netsim.kernels`` must either return a result that
is ``==``-equal to the scalar loop it replaces, or decline (return None /
degrade to the scalar path) — never approximate.  These tests drive the
kernels directly across dtypes, shapes, and load regimes, and exercise
the degradation machinery: REPRO_NO_VECTOR, self-check failure, and the
fallback counters.
"""

import random

import pytest

from repro.netsim import kernels
from repro.netsim.bulkarrivals import CrossAggregator
from repro.netsim.fastpath import NO_VECTOR_ENV


@pytest.fixture(autouse=True)
def _fresh_kernels(monkeypatch):
    monkeypatch.delenv(NO_VECTOR_ENV, raising=False)
    kernels._reset_for_tests()
    yield
    kernels._reset_for_tests()


def _random_lindley_case(rng, n, regime):
    """(free_at, times, txs) in a given load regime."""
    times = []
    t = rng.random()
    for _ in range(n):
        t += rng.random() * (0.1 if regime == "busy" else 10.0)
        times.append(t)
    if regime == "idle":
        txs = [rng.random() * 1e-3 for _ in range(n)]
    elif regime == "busy":
        txs = [1.0 + rng.random() for _ in range(n)]
    else:  # mixed
        txs = [rng.choice([1e-4, 0.05, 3.0]) * (1 + rng.random()) for _ in range(n)]
    return rng.random() * 2.0, times, txs


class TestLindley:
    @pytest.mark.parametrize("regime", ["idle", "busy", "mixed"])
    @pytest.mark.parametrize("n", [1, 2, 7, 64, 513])
    def test_matches_scalar_exactly(self, regime, n):
        rng = random.Random(hash((regime, n)) & 0xFFFF)
        for trial in range(10):
            free_at, times, txs = _random_lindley_case(rng, n, regime)
            # min_mean_seg=0 forces the segment walk even where the
            # regime heuristic would decline, so every shape is exercised.
            got = kernels.lindley(free_at, times, txs, min_mean_seg=0.0)
            want = kernels._lindley_scalar(free_at, times, txs)
            if got is not None:
                assert got == want, f"trial {trial}: kernel != scalar"

    def test_empty(self):
        assert kernels.lindley(0.0, [], [], min_mean_seg=0.0) in ([], None)

    def test_exact_time_ties(self):
        times = [1.0, 1.0, 1.0, 2.5, 2.5]
        txs = [0.3, 0.2, 0.1, 0.4, 0.05]
        got = kernels.lindley(0.9, times, txs, min_mean_seg=0.0)
        assert got == kernels._lindley_scalar(0.9, times, txs)

    def test_extreme_magnitudes(self):
        tiny = 5e-324
        times = [tiny, 2 * tiny, 1.0, 1e300]
        txs = [tiny, 1e-17, 1e285, 1.0]
        got = kernels.lindley(tiny, times, txs, min_mean_seg=0.0)
        assert got == kernels._lindley_scalar(tiny, times, txs)

    def test_declines_rather_than_approximates(self):
        # Moderate load, short segments: the kernel may decline (None)
        # but must never return a non-==-equal list.
        rng = random.Random(99)
        for _ in range(50):
            free_at, times, txs = _random_lindley_case(rng, 40, "mixed")
            got = kernels.lindley(free_at, times, txs)
            if got is not None:
                assert got == kernels._lindley_scalar(free_at, times, txs)


class TestLindleySegmented:
    def _schedule(self, rng, t0, t1):
        """Random piecewise schedule with 1-3 boundaries inside [t0, t1]."""
        nb = rng.randrange(1, 4)
        bounds = sorted(t0 + rng.random() * (t1 - t0) for _ in range(nb))
        caps = [rng.choice([2e6, 8e6, 10e6, 16e6]) for _ in range(nb + 1)]
        return bounds, caps

    def _case(self, rng, n, spread):
        t, times, sizes = rng.random(), [], []
        for _ in range(n):
            t += rng.random() * spread
            times.append(t)
            sizes.append(rng.choice([40, 550, 1500]))
        return times, sizes

    def test_matches_scalar_exactly(self):
        import numpy as np

        rng = random.Random(17)
        engaged = 0
        for trial in range(100):
            times, sizes = self._case(rng, 64, spread=2e-3)
            bounds, caps = self._schedule(rng, times[0], times[-1])
            free_at = times[0] - rng.random() * 1e-3
            got = kernels._lindley_segmented_numpy(
                free_at,
                np.asarray(times, dtype=np.float64),
                np.asarray(sizes, dtype=np.int64),
                bounds,
                caps,
                min_seg=0.0,
            )
            want = kernels._lindley_segmented_scalar(
                free_at, times, sizes, bounds, caps
            )
            if got is not None:
                engaged += 1
                assert got.tolist() == want, f"trial {trial}"
        assert engaged > 0

    def test_arrival_on_boundary_takes_new_rate(self):
        # side="left" partitioning must mirror bisect_right in the
        # capacity lookup: an arrival exactly on a boundary is served at
        # the new rate.
        got = kernels.lindley_segmented(
            0.0, [0.5, 1.0], [1500, 1500], [1.0], [1e6, 1e7]
        )
        want = kernels._lindley_segmented_scalar(
            0.0, [0.5, 1.0], [1500, 1500], [1.0], [1e6, 1e7]
        )
        if got is not None:
            assert got == want
            assert got[1] == 1.0 + 1500 * 8.0 / 1e7

    def test_busy_spill_declines(self):
        # Three 12.5 kB packets at 1 Mb/s take 0.1 s each: the backlog
        # pushes a transmission start past the boundary at 0.15, so the
        # partitioned fold would price it at the wrong rate — it must
        # decline, never approximate.
        before = kernels.kernel_fallbacks.get("segment-spill", 0)
        got = kernels.lindley_segmented(
            0.0, [0.0, 0.01, 0.02], [12500, 12500, 12500], [0.15], [1e6, 1e7]
        )
        assert got is None
        if kernels.enabled():
            assert kernels.kernel_fallbacks.get("segment-spill", 0) == before + 1
        want = kernels._lindley_segmented_scalar(
            0.0, [0.0, 0.01, 0.02], [12500, 12500, 12500], [0.15], [1e6, 1e7]
        )
        # The scalar ground truth prices the third start (0.2) at 10 Mb/s.
        assert want[2] == pytest.approx(0.2 + 12500 * 8.0 / 1e7)

    def test_empty_partitions_and_out_of_range_bounds(self):
        import numpy as np

        times = [1.0, 1.001, 1.002, 1.003]
        sizes = [1500] * 4
        bounds = [0.5, 2.0, 3.0]  # all arrivals in the middle segment
        caps = [1e6, 8e6, 1e7, 2e6]
        got = kernels._lindley_segmented_numpy(
            0.0,
            np.asarray(times, dtype=np.float64),
            np.asarray(sizes, dtype=np.int64),
            bounds,
            caps,
            min_seg=0.0,
        )
        want = kernels._lindley_segmented_scalar(0.0, times, sizes, bounds, caps)
        if got is not None:
            assert got.tolist() == want

    def test_disabled_returns_none(self, monkeypatch):
        monkeypatch.setenv(NO_VECTOR_ENV, "1")
        kernels._reset_for_tests()
        assert (
            kernels.lindley_segmented(0.0, [1.0], [1500], [2.0], [1e6, 1e7])
            is None
        )


class TestFoldSliceSegmented:
    def _scalar_fold(self, free_at, times, sizes, lo, hi, bounds, caps, keep_after):
        from bisect import bisect_right

        kept, kept_bytes, fold_bytes = [], 0, 0
        for i in range(lo, hi):
            tc, sz = times[i], sizes[i]
            start = free_at if free_at > tc else tc
            cap = caps[bisect_right(bounds, start)]
            free_at = start + sz * 8.0 / cap
            fold_bytes += sz
            if free_at > keep_after:
                kept.append((free_at, sz))
                kept_bytes += sz
        return free_at, kept, kept_bytes, fold_bytes

    def test_saturated_fold_bit_equal(self):
        rng = random.Random(21)
        size, cap = 1000, 1e7
        gap = size * 8.0 / (1.2 * cap)
        t, times, sizes = 0.0, [], []
        for _ in range(512):
            t += rng.random() * 2 * gap
            times.append(t)
            sizes.append(size)
        bounds = [times[150] + 1e-7, times[350] + 1e-7]
        caps = [cap, 2e7, 1.5e7]
        keep_after = times[-1]
        got = kernels.fold_slice_segmented(
            0.0, times, sizes, 0, 512, bounds, caps, keep_after
        )
        want = self._scalar_fold(
            0.0, times, sizes, 0, 512, bounds, caps, keep_after
        )
        if got is not None:
            assert got == want

    def test_disabled_returns_none(self, monkeypatch):
        monkeypatch.setenv(NO_VECTOR_ENV, "1")
        kernels._reset_for_tests()
        got = kernels.fold_slice_segmented(
            0.0, [1.0], [1000], 0, 1, [2.0], [1e6, 1e7], 0.0
        )
        assert got is None


class TestPrefixSums:
    def test_prefix_sum_never_declines(self):
        rng = random.Random(7)
        for n in (0, 1, 5, 300):
            deltas = [rng.random() * rng.choice([1e-9, 1.0, 1e9]) for _ in range(n)]
            initial = rng.random()
            assert kernels.prefix_sum(initial, deltas) == kernels._prefix_sum_scalar(
                initial, deltas
            )

    def test_prefix_sum_degrades_when_disabled(self, monkeypatch):
        monkeypatch.setenv(NO_VECTOR_ENV, "1")
        kernels._reset_for_tests()
        assert kernels.prefix_sum(1.0, [0.5, 0.25]) == [1.0, 1.5, 1.75]
        assert kernels.kernel_fallbacks.get("disabled") == 1

    def test_masked_prefix_sum_int_and_float(self):
        rng = random.Random(3)
        for values in (
            [rng.randrange(1500) for _ in range(64)],
            [rng.random() for _ in range(64)],
        ):
            mask = [rng.random() < 0.4 for _ in range(64)]
            got = kernels.masked_prefix_sum(values, mask, 0)
            want = kernels._masked_prefix_sum_scalar(values, mask, 0)
            assert len(got) == len(want)
            assert all(a == b for a, b in zip(got, want))


class TestMergeParts:
    def test_matches_heap_order_with_ties(self):
        rng = random.Random(11)
        parts_t, parts_s = [], []
        for _ in range(3):
            ts, acc = [], 0.0
            for _ in range(50):
                acc += rng.choice([0.0, 0.1, 0.1, 0.25])  # exact ties across parts
                ts.append(acc)
            parts_t.append(ts)
            parts_s.append([rng.randrange(40, 1500) for _ in ts])
        mt, ms, pidx, t_arr, s_arr = kernels.merge_parts(parts_t, parts_s)
        # Reference: stable sort of (time, part, index) like a k-way heap.
        entries = [
            (parts_t[k][j], k, j)
            for k in range(3)
            for j in range(len(parts_t[k]))
        ]
        entries.sort(key=lambda e: e[0])
        assert mt == [e[0] for e in entries]
        assert ms == [parts_s[e[1]][e[2]] for e in entries]
        assert pidx == [e[1] for e in entries]
        if t_arr is not None:
            assert list(t_arr) == mt and list(s_arr) == ms

    def test_single_part_uncopied(self):
        ts, ss = [1.0, 2.0], [100, 200]
        mt, ms, pidx, _t, _s = kernels.merge_parts([ts], [ss])
        assert mt is ts and ms is ss and pidx is None


class TestFoldSlice:
    def _case(self, n, cap, rho):
        rng = random.Random(n)
        size = 1000
        gap = size * 8.0 / (rho * cap)
        t, times, sizes = 0.0, [], []
        for _ in range(n):
            t += rng.random() * 2 * gap
            times.append(t)
            sizes.append(size)
        return times, sizes, cap

    def _scalar_fold(self, free_at, times, sizes, lo, hi, cap, keep_after):
        kept, kept_bytes, fold_bytes = [], 0, 0
        for i in range(lo, hi):
            tc, sz = times[i], sizes[i]
            start = free_at if free_at > tc else tc
            free_at = start + sz * 8.0 / cap
            fold_bytes += sz
            if free_at > keep_after:
                kept.append((free_at, sz))
                kept_bytes += sz
        return free_at, kept, kept_bytes, fold_bytes

    def test_saturated_fold_bit_equal(self):
        times, sizes, cap = self._case(512, 1e7, 1.2)
        keep_after = times[-1]
        got = kernels.fold_slice(0.0, times, sizes, 0, 512, cap, keep_after)
        assert got is not None, "saturated fold must engage"
        assert got == self._scalar_fold(0.0, times, sizes, 0, 512, cap, keep_after)

    def test_low_load_declines(self):
        times, sizes, cap = self._case(512, 1e7, 0.3)
        got = kernels.fold_slice(0.0, times, sizes, 0, 512, cap, times[-1])
        assert got is None
        assert kernels.kernel_fallbacks.get("short-segments", 0) >= 1

    def test_array_mirror_path_equal(self):
        import numpy as np

        times, sizes, cap = self._case(512, 1e7, 1.2)
        arrays = (
            np.asarray(times, dtype=np.float64),
            np.asarray(sizes, dtype=np.int64),
        )
        keep_after = times[256]
        a = kernels.fold_slice(0.0, times, sizes, 0, 512, cap, keep_after)
        b = kernels.fold_slice(0.0, times, sizes, 0, 512, cap, keep_after, arrays)
        assert a == b


class TestPlanHop:
    def _scalar_plan(self, free_at, c_times, c_sizes, ci, cut, p_times, p_size,
                     cap, t_end, prop):
        dones, exits, eif = [], [], []
        fwd = 0
        tx = p_size * 8.0 / cap
        for t in p_times:
            while ci < cut and c_times[ci] <= t:
                sz = c_sizes[ci]
                start = free_at if free_at > c_times[ci] else c_times[ci]
                free_at = start + sz * 8.0 / cap
                if free_at > t_end:
                    eif.append((free_at, sz))
                fwd += sz
                ci += 1
            start = free_at if free_at > t else t
            free_at = start + tx
            if free_at > t_end:
                eif.append((free_at, p_size))
            dones.append(free_at)
            exits.append(free_at + prop)
        while ci < cut:
            sz = c_sizes[ci]
            start = free_at if free_at > c_times[ci] else c_times[ci]
            free_at = start + sz * 8.0 / cap
            if free_at > t_end:
                eif.append((free_at, sz))
            fwd += sz
            ci += 1
        return dones, exits, eif, free_at, fwd + p_size * len(p_times)

    def test_cross_free_closed_forms(self):
        cap, size, prop = 1e7, 300, 1e-3
        for rate in (0.5e7, 2e7):  # under and over capacity
            gap = size * 8.0 / rate
            p = [i * gap for i in range(kernels.MIN_PROBES)]
            t_end = p[-1]
            got = kernels.plan_hop(0.0, [], [], 0, 0, p, size, cap, t_end, prop)
            assert got is not None
            dones, exits, eif, free_at, fwd = self._scalar_plan(
                0.0, [], [], 0, 0, p, size, cap, t_end, prop
            )
            g_dones, g_exits, g_eif, g_free, g_fwd = got
            assert g_dones == dones and g_exits == exits
            assert g_eif == eif and g_free == free_at and g_fwd == fwd  # simlint: disable=SIM003 -- bit-identity contract

    def test_merged_cross_traffic_bit_equal(self):
        rng = random.Random(21)
        cap, size, prop = 1e7, 300, 1e-3
        # Saturating cross traffic so the merged fold engages.
        c_times, c_sizes, t = [], [], 0.0
        for _ in range(400):
            t += rng.random() * 2 * (1500 * 8.0 / (1.1 * cap))
            c_times.append(t)
            c_sizes.append(1500)
        gap = size * 8.0 / 2e6
        p = [i * gap for i in range(200)]
        t_end = p[-1]
        cut = sum(1 for tc in c_times if tc <= t_end)
        got = kernels.plan_hop(
            0.0, c_times, c_sizes, 0, cut, p, size, cap, t_end, prop
        )
        if got is None:
            pytest.skip("kernel declined on this host's regime gates")
        want = self._scalar_plan(
            0.0, c_times, c_sizes, 0, cut, p, size, cap, t_end, prop
        )
        g_dones, g_exits, g_eif, g_free, g_fwd = got
        assert g_dones == want[0] and g_exits == want[1]
        assert g_free == want[3] and g_fwd == want[4]

    def test_unsorted_probes_decline(self):
        # Saturated enough to pass the rho gate, so the decline must come
        # from the sortedness check itself.
        p = [0.0, 2.0, 1.0] * 100
        got = kernels.plan_hop(
            0.0, [0.5], [1500], 0, 1, p, 1500, 1e6, 2.0, 1e-3
        )
        assert got is None
        assert kernels.kernel_fallbacks.get("unsorted-probes", 0) >= 1


class TestMaskedPending:
    def test_identity_semantics(self):
        class Src:  # no __eq__: identity comparison like real sources
            pass

        a, b = Src(), Src()
        owners = [a, b, a, a, b, a]
        sizes = [10, 20, 30, 40, 50, 60]
        got = kernels.masked_pending(owners, sizes, 0, 6, a)
        assert got == (4, 140)
        got = kernels.masked_pending(owners, sizes, 2, 5, b)
        assert got == (1, 50)


class TestDegradation:
    def test_no_vector_env_disables(self, monkeypatch):
        monkeypatch.setenv(NO_VECTOR_ENV, "1")
        kernels._reset_for_tests()
        assert not kernels.enabled()
        assert kernels.lindley(0.0, [1.0], [0.5]) is None
        assert kernels.fold_slice(0.0, [1.0], [100], 0, 1, 1e7, 0.0) is None
        assert kernels.kernel_fallbacks.get("disabled") == 1  # noted once

    def test_self_check_failure_disables_permanently(self, monkeypatch):
        monkeypatch.setattr(kernels, "_self_check", lambda: False)
        assert not kernels.enabled()
        assert kernels.kernel_fallbacks.get("self-check") == 1
        # Sticky: the check is not re-run per call.
        assert not kernels.enabled()
        assert kernels.kernel_fallbacks.get("self-check") == 1

    def test_self_check_exception_never_raises(self, monkeypatch):
        def boom():
            raise RuntimeError("broken numpy")

        monkeypatch.setattr(kernels, "_self_check", boom)
        assert not kernels.enabled()
        assert kernels.kernel_fallbacks.get("self-check") == 1

    def test_numpy_missing_disables(self, monkeypatch):
        monkeypatch.setattr(kernels, "np", None)
        assert not kernels.enabled()
        assert kernels.kernel_fallbacks.get("numpy-missing") == 1

    def test_self_check_passes_for_real(self):
        assert kernels._self_check()

    def test_counters_and_publish(self):
        from repro.obs.metrics import MetricsRegistry

        kernels.prefix_sum(0.0, [1.0, 2.0])
        assert kernels.kernel_calls.get("prefix_sum") == 1
        m = MetricsRegistry()
        kernels.publish(m)
        assert ("repro_kernel_calls_total", (("kernel", "prefix_sum"),)) in m._metrics

    def test_tracer_publishes_kernel_counters(self):
        from repro.netsim.engine import Simulator
        from repro.obs import Tracer

        kernels.prefix_sum(0.0, [1.0])
        tracer = Tracer()
        tracer.attach(Simulator())
        m = tracer.collect_metrics()
        assert any(k[0] == "repro_kernel_calls_total" for k in m._metrics)


class _StubSource:
    """Stands in for CrossTrafficSource in the owners list (identity only)."""


def _make_agg(parts):
    """Aggregator with finished feeds holding ``parts``; not yet merged."""
    from repro.netsim.bulkarrivals import _Feed
    from repro.netsim.engine import Simulator

    link = type("_L", (), {"_agenda": None, "_agg": None})()
    agg = CrossAggregator(Simulator(), link)
    for k, (ts, ss) in enumerate(parts):
        feed = _Feed(_StubSource(), order=k)
        feed.times = list(ts)
        feed.sizes = list(ss)
        feed.done = True  # finished source: the whole buffer is merge-safe
        feed.source._feed = feed
        agg.feeds.append(feed)
    return agg


def _two_parts(n=300, seed=5, start=0.0):
    rng = random.Random(seed)
    parts = []
    for _ in range(2):
        ts, acc = [], start
        for _ in range(n):
            acc += rng.random()
            ts.append(acc)
        parts.append((ts, [1500] * n))
    return parts


class TestAggregatorMirror:
    """The CrossAggregator's chunked array mirror must cover exactly the
    merged tail, through compaction, unmerge, and kernel toggling."""

    def test_arrays_cover_merged_tail(self):
        agg = _make_agg(_two_parts())
        agg._merge()
        n = len(agg.times)
        arrays = agg.arrays(0, n)
        if arrays is None:
            pytest.skip("mirror off (kernels disabled on this host)")
        t_arr, s_arr = arrays
        assert list(t_arr) == agg.times
        assert list(s_arr) == agg.sizes

    def test_arrays_none_when_vector_off(self, monkeypatch):
        monkeypatch.setenv(NO_VECTOR_ENV, "1")
        kernels._reset_for_tests()
        agg = _make_agg(_two_parts())
        agg._merge()
        assert agg.times  # merged fine, just no mirror
        assert agg.arrays(0, len(agg.times)) is None

    def test_arrays_after_compact(self, monkeypatch):
        import repro.netsim.bulkarrivals as ba

        monkeypatch.setattr(ba, "_COMPACT_THRESHOLD", 100)
        agg = _make_agg(_two_parts())
        agg._merge()
        n = len(agg.times)
        agg.idx = n // 3
        agg.compact()
        assert agg.idx == 0  # trimmed
        m = len(agg.times)
        arrays = agg.arrays(0, m)
        if arrays is None:
            pytest.skip("mirror off (kernels disabled on this host)")
        t_arr, s_arr = arrays
        assert list(t_arr) == agg.times
        assert list(s_arr) == agg.sizes

    def test_mirror_restarts_after_vector_off_merge(self, monkeypatch):
        from repro.netsim.bulkarrivals import _Feed

        if not kernels.enabled():
            pytest.skip("kernels disabled on this host")
        first, second = _two_parts(n=100), _two_parts(n=100, start=1000.0)
        # First merge with kernels off: list-only, mirror invalidated.
        monkeypatch.setenv(NO_VECTOR_ENV, "1")
        kernels._reset_for_tests()
        agg = _make_agg(first)
        agg._merge()
        monkeypatch.delenv(NO_VECTOR_ENV)
        kernels._reset_for_tests()
        n0 = len(agg.times)
        assert agg.arrays(0, n0) is None
        # Second merge with kernels on: mirror restarts at the new tail.
        for k, (ts, ss) in enumerate(second):
            feed = _Feed(_StubSource(), order=len(agg.feeds))
            feed.times = list(ts)
            feed.sizes = list(ss)
            feed.done = True
            feed.source._feed = feed
            agg.feeds.append(feed)
        agg._merge()
        n = len(agg.times)
        assert agg.arrays(0, n) is None  # head predates the mirror
        tail = agg.arrays(n0, n)
        assert tail is not None
        t_arr, s_arr = tail
        assert list(t_arr) == agg.times[n0:]
        assert list(s_arr) == agg.sizes[n0:]

    def test_unmerge_resets_mirror(self):
        agg = _make_agg(_two_parts())
        agg._merge()
        agg._unmerge()
        assert agg.times == [] and agg._mirror_lo == 0 and not agg._mirror_t
