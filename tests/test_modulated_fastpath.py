"""Bit-equality matrix for the segment-planned modulation fast paths.

The PR this file rides with makes ``modulation=(interval, sigma)``
cross-traffic sources *bulk-eligible*: their piecewise-constant rate
walk is generated in batched per-segment chunks (same RNG draw order)
instead of per-packet events, so the stream- and flow-transit planners
stay engaged under non-stationary load.  The contract is unchanged —
every observable ``==`` the full per-packet run — and this matrix pins
it across the axes that interact with segmentation: modulation on/off,
finite versus infinite buffers, one versus two hops, and a probe-stream
versus TCP foreground.

The figure-level rows (Figs. 10-11) are pinned at reduced scale; the
full-scale point runs live behind ``REPRO_PERF_GATE`` in
``benchmarks/test_perf_substrate.py``.
"""

import numpy as np
import pytest

from repro.core.probing import StreamSpec
from repro.netsim import LinkSpec, Simulator, attach_cross_traffic, build_path
from repro.netsim.topologies import build_single_hop_path
from repro.transport.probe import ProbeChannel, run_pathload
from repro.transport.tcp import TCPConfig, open_connection

MODULATION = (0.5, 0.3)


def run_config(
    fast,
    modulation=None,
    buffer_bytes=None,
    hops=1,
    foreground="probe",
    seed=23,
    until=6.0,
):
    """One seeded run; ``fast`` flips every elision layer at once.

    ``fast=True`` is the default stack (bulk cross + planners);
    ``fast=False`` is the full per-packet machinery (``bulk=False``
    cross sources, per-packet probe channel / TCP flow).
    """
    sim = Simulator()
    specs = [
        LinkSpec(10e6, prop_delay=0.002, buffer_bytes=buffer_bytes, name=f"hop{i}")
        for i in range(hops)
    ]
    net = build_path(sim, specs)
    rng = np.random.default_rng(seed)
    sources = []
    for h in range(hops):
        sources.extend(
            attach_cross_traffic(
                sim,
                net,
                net.forward_links[h],
                6e6 if h == 0 else 3e6,
                rng,
                n_sources=4,
                model="pareto",
                modulation=modulation,
                bulk=None if fast else False,
            )
        )
    chan = None
    flow = None
    measurements = []
    if foreground == "probe":
        chan = ProbeChannel(sim, net, fast=fast)
        spec = StreamSpec(rate_bps=8e6, packet_size=300, n_packets=60)

        def launch():
            ev = chan.send_stream(spec)
            ev.add_callback(
                lambda m: measurements.append(
                    (
                        m.n_sent,
                        m.n_received,
                        tuple(
                            (r.seq, r.sender_stamp, r.recv_stamp)
                            for r in m.records
                        ),
                    )
                )
            )

        for k in range(3):
            sim.schedule_at(1.0 + 0.7013 * k, launch)
    else:
        snd, rcv = open_connection(
            sim,
            net,
            config=TCPConfig(min_rto=0.5),
            total_bytes=400_000,
            start=0.5,
            fast=fast,
        )
        flow = (snd, rcv)
    sim.run(until=until)
    if flow is not None:
        snd, rcv = flow
        measurements.append(
            (
                snd.segments_sent,
                snd.retransmits,
                snd.timeouts,
                snd.cwnd,
                snd.srtt,
                rcv.rcv_nxt,
                rcv.acks_sent,
            )
        )
    stats = [lk.stats.snapshot() for lk in net.forward_links]
    return measurements, stats, sources, chan, net


MATRIX = [
    # (modulation, buffer_bytes, hops, foreground)
    (MODULATION, None, 1, "probe"),
    (MODULATION, None, 2, "tcp"),
    (MODULATION, 12_000, 1, "tcp"),
    (MODULATION, 12_000, 2, "probe"),
    (None, None, 2, "probe"),
    (None, 12_000, 1, "probe"),
    (None, None, 1, "tcp"),
    (None, 12_000, 2, "tcp"),
]

IDS = [
    "mod-inf-1hop-probe",
    "mod-inf-2hop-tcp",
    "mod-finite-1hop-tcp",
    "mod-finite-2hop-probe",
    "plain-inf-2hop-probe",
    "plain-finite-1hop-probe",
    "plain-inf-1hop-tcp",
    "plain-finite-2hop-tcp",
]


class TestMatrix:
    @pytest.mark.parametrize(
        "modulation,buffer_bytes,hops,foreground", MATRIX, ids=IDS
    )
    def test_fast_stack_bit_identical(
        self, modulation, buffer_bytes, hops, foreground
    ):
        kwargs = dict(
            modulation=modulation,
            buffer_bytes=buffer_bytes,
            hops=hops,
            foreground=foreground,
        )
        mf, sf, srcf, chf, netf = run_config(True, **kwargs)
        ms, ss, srcs, _, _ = run_config(False, **kwargs)
        assert mf == ms
        assert sf == ss
        # Engagement: modulation no longer demotes anything.
        assert all(s.is_bulk for s in srcf)
        assert not any(s.is_bulk for s in srcs)
        if foreground == "probe":
            assert chf.fastpath_streams == len(mf)
            assert not chf.fastpath_fallbacks
        else:
            assert netf._ft_flows == 1


class TestNoFallbacksOnDefaultModulatedTopology:
    def test_fallback_counters_stay_zero(self):
        # The acceptance criterion for segment-planned modulation: a
        # default modulated topology drives the whole stack — bulk cross,
        # planned streams — without a single fallback increment.
        from repro.obs import Tracer

        tracer = Tracer()
        sim = Simulator()
        tracer.attach(sim)
        rng = np.random.default_rng(31)
        setup = build_single_hop_path(
            sim, 10e6, 0.5, rng, modulation=MODULATION
        )
        tracer.register_network(setup.network)
        chan = ProbeChannel(sim, setup.network)
        spec = StreamSpec(rate_bps=8e6, packet_size=300, n_packets=60)
        holder = {}
        for k in range(3):
            sim.schedule_at(
                1.0 + 0.7013 * k,
                lambda: holder.update(ev=chan.send_stream(spec)),
            )
        sim.run(until=4.0)
        assert all(s.is_bulk for s in setup.sources)
        assert chan.fastpath_streams == 3
        m = tracer.collect_metrics()
        for metric in m:
            for name, labels, value in metric.samples():
                if name in (
                    "repro_fastpath_fallback_total",
                    "repro_fastpath_flow_fallback_total",
                ):
                    assert value == 0, (
                        f"{name}{labels} incremented on a default "
                        "modulated topology"
                    )


class TestFigureRows:
    def test_fig11_point_row_bit_identical(self, monkeypatch):
        # One reduced-scale Fig. 11 sample: the Section VI dynamics
        # worker (Pareto traffic, modulation=(2.0, 0.25)) must produce
        # the same rho whether cross traffic and probes ride the
        # segment-planned paths or the per-packet machinery.
        from repro.experiments.base import fast_pathload_config
        from repro.experiments.dynamics import _rho_one

        kwargs = dict(
            entropy=987654321,
            capacity_bps=12.4e6,
            utilization=0.45,
            config=fast_pathload_config(),
            n_sources=10,
            warmup=2.0,
            prop_delay=0.01,
            modulation=(2.0, 0.25),
        )
        monkeypatch.delenv("REPRO_NO_FAST", raising=False)
        rho_fast = _rho_one(**kwargs)
        monkeypatch.setenv("REPRO_NO_FAST", "1")
        rho_slow = _rho_one(**kwargs)
        assert rho_fast == rho_slow

    def test_fig10_point_row_bit_identical(self, monkeypatch):
        # One reduced-scale Fig. 10 window: pathload runs against the
        # MRTG monitor on the two-link testbed.
        from repro.experiments.fig10_mrtg import measure_window

        def one():
            rng = np.random.default_rng(77)
            return measure_window(rng, window=30.0, tight_utilization=0.55)

        monkeypatch.delenv("REPRO_NO_FAST", raising=False)
        fast = one()
        monkeypatch.setenv("REPRO_NO_FAST", "1")
        slow = one()
        assert fast == slow
