"""Tests for the TCP Reno/NewReno implementation."""

import numpy as np
import pytest

from repro.netsim import LinkSpec, Simulator, build_path, attach_cross_traffic
from repro.transport.tcp import TCPConfig, open_connection


def bottleneck(sim, capacity=8e6, prop=0.05, buffer_bytes=100_000):
    return build_path(
        sim, [LinkSpec(capacity, prop_delay=prop, buffer_bytes=buffer_bytes, name="b")]
    )


class TestBasicTransfer:
    def test_sized_transfer_completes(self):
        sim = Simulator()
        net = bottleneck(sim)
        done = []
        snd, rcv = open_connection(
            sim, net, total_bytes=500_000, start=0.0,
            on_complete=lambda s: done.append(sim.now),
        )
        sim.run(until=30.0)
        assert done, "transfer did not complete"
        assert rcv.delivered_bytes == 500_000
        assert snd.acked_bytes == 500_000

    def test_no_losses_on_big_buffer(self):
        sim = Simulator()
        net = bottleneck(sim, buffer_bytes=None)
        snd, rcv = open_connection(sim, net, total_bytes=300_000, start=0.0)
        sim.run(until=30.0)
        assert snd.retransmits == 0
        assert snd.timeouts == 0

    def test_delivery_is_exactly_once_in_order(self):
        sim = Simulator()
        net = bottleneck(sim, buffer_bytes=30_000)  # forces drops
        snd, rcv = open_connection(sim, net, total_bytes=400_000, start=0.0)
        sim.run(until=60.0)
        assert rcv.delivered_bytes == 400_000
        logged = [b for _t, b in rcv.delivered_log]
        assert logged == sorted(logged)

    def test_slow_start_doubles_per_rtt(self):
        sim = Simulator()
        net = bottleneck(sim, capacity=1e9, prop=0.1, buffer_bytes=None)
        snd, rcv = open_connection(sim, net, start=0.0)
        sim.run(until=0.9)  # ~4 RTTs
        snd.stop()
        # cwnd should have grown well beyond initial (exponential growth)
        assert snd.cwnd > 16 * snd.config.mss


class TestCongestionControl:
    def test_saturates_bottleneck(self):
        sim = Simulator()
        net = bottleneck(sim, capacity=8e6, prop=0.05, buffer_bytes=100_000)
        snd, rcv = open_connection(sim, net, config=TCPConfig(min_rto=0.5), start=0.0)
        sim.run(until=60.0)
        snd.stop()
        thr = rcv.throughput_bps(20.0, 60.0)
        assert thr > 0.75 * 8e6

    def test_fast_retransmit_recovers_single_loss(self):
        """A single drop is repaired without a timeout."""
        sim = Simulator()
        net = bottleneck(sim, capacity=8e6, buffer_bytes=60_000)
        snd, rcv = open_connection(sim, net, config=TCPConfig(min_rto=2.0), start=0.0)
        sim.run(until=30.0)
        snd.stop()
        assert snd.retransmits > 0
        # with a reasonable buffer, fast retransmit handles most losses
        assert snd.timeouts <= 2

    def test_sawtooth_cwnd(self):
        """cwnd must repeatedly rise and fall in steady state."""
        sim = Simulator()
        net = bottleneck(sim, capacity=8e6, buffer_bytes=100_000)
        snd, rcv = open_connection(sim, net, config=TCPConfig(min_rto=0.5), start=0.0)
        sim.run(until=120.0)
        snd.stop()
        cw = np.array([c for t, c in snd.cwnd_log if t > 20.0])
        drops = np.sum(np.diff(cw) < -snd.config.mss)
        assert drops >= 3, "no multiplicative decreases observed"

    def test_two_flows_share_bottleneck(self):
        sim = Simulator()
        net = bottleneck(sim, capacity=8e6, buffer_bytes=100_000)
        cfg = TCPConfig(min_rto=0.5)
        s1, r1 = open_connection(sim, net, config=cfg, start=0.0)
        s2, r2 = open_connection(sim, net, config=cfg, start=0.0)
        sim.run(until=120.0)
        t1 = r1.throughput_bps(30, 120)
        t2 = r2.throughput_bps(30, 120)
        assert t1 + t2 > 0.7 * 8e6
        assert 0.2 < t1 / (t1 + t2) < 0.8  # rough fairness

    def test_queue_fills_under_greedy_tcp(self):
        """Section VII: the BTC connection inflates the tight-link queue."""
        sim = Simulator()
        net = bottleneck(sim, capacity=8e6, buffer_bytes=170_000)
        snd, rcv = open_connection(sim, net, config=TCPConfig(min_rto=0.5), start=0.0)
        max_backlog = 0
        for t in np.arange(1.0, 40.0, 0.25):
            sim.run(until=float(t))
            max_backlog = max(max_backlog, net.forward_links[0].backlog_bytes())
        assert max_backlog > 100_000

    def test_rto_recovers_after_blackout(self):
        """If the path loses everything for a while, RTO must recover."""
        sim = Simulator()
        # tiny buffer => brutal loss episodes
        net = bottleneck(sim, capacity=2e6, buffer_bytes=4_000)
        snd, rcv = open_connection(
            sim, net, config=TCPConfig(min_rto=0.2), total_bytes=200_000, start=0.0
        )
        sim.run(until=120.0)
        assert rcv.delivered_bytes == 200_000


class TestRTTEstimation:
    def test_srtt_close_to_path_rtt(self):
        sim = Simulator()
        net = bottleneck(sim, capacity=1e9, prop=0.08, buffer_bytes=None)
        snd, rcv = open_connection(sim, net, total_bytes=100_000, start=0.0)
        sim.run(until=10.0)
        assert snd.srtt == pytest.approx(0.16, rel=0.2)

    def test_rto_bounded_below(self):
        sim = Simulator()
        net = bottleneck(sim, capacity=1e9, prop=0.001, buffer_bytes=None)
        cfg = TCPConfig(min_rto=1.0)
        snd, rcv = open_connection(sim, net, config=cfg, total_bytes=50_000, start=0.0)
        sim.run(until=5.0)
        assert snd.rto >= 1.0


class TestDelayedAck:
    def test_delayed_ack_halves_ack_count(self):
        sim = Simulator()
        net = bottleneck(sim, capacity=1e9, prop=0.01, buffer_bytes=None)
        cfg = TCPConfig(delayed_ack=True)
        snd, rcv = open_connection(sim, net, config=cfg, total_bytes=292_000, start=0.0)
        sim.run(until=10.0)
        n_segments = 292_000 // 1460
        assert rcv.acks_sent < n_segments * 0.75


class TestValidation:
    def test_bad_mss(self):
        with pytest.raises(ValueError):
            TCPConfig(mss=0)

    def test_bad_rto_bounds(self):
        with pytest.raises(ValueError):
            TCPConfig(min_rto=2.0, max_rto=1.0)
