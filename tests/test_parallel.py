"""Tests for :mod:`repro.parallel`: the sweep executor and its cache.

The contract under test, in order of importance:

1. a process pool reproduces the serial reference bit-for-bit on a real
   figure (fig05 at reduced scale);
2. one crashed worker reports its seed/config without losing siblings;
3. a cache hit returns the stored value without re-simulating;
4. the integer seed-entropy tokens reconstruct exactly the generators
   ``SeedSequence.spawn`` would have produced (serial streams unchanged).
"""

import numpy as np
import pytest

from repro.campaign import CampaignResult, CampaignSample
from repro.core.pathload import PathloadReport
from repro.experiments import fig05_load
from repro.experiments.base import (
    Scale,
    rng_from_entropy,
    spawn_seed_entropy,
    spawn_seeds,
)
from repro.parallel import (
    SweepError,
    SweepTask,
    cache_key,
    run_sweep,
    sweep_values,
)

# ----------------------------------------------------------------------
# Module-level workers (process pools pickle them by reference)
# ----------------------------------------------------------------------


def _square(seed_entropy, offset=0):
    return seed_entropy * seed_entropy + offset


def _boom(seed_entropy):
    raise ValueError(f"boom at {seed_entropy}")


_CALLS = {"n": 0}


def _counting(seed_entropy):
    _CALLS["n"] += 1
    return seed_entropy + 1


def _tiny_pathload(seed_entropy):
    """One small single-hop pathload; honors ``REPRO_NO_FAST`` via the
    default ``fast=None`` resolution inside :class:`ProbeChannel`."""
    from repro.core.config import PathloadConfig
    from repro.runner import measure_avail_bw_sim

    report = measure_avail_bw_sim(
        capacity_bps=10e6,
        utilization=0.3,
        seed=seed_entropy,
        config=PathloadConfig(idle_factor=1.0),
    )
    return (
        report.low_bps,
        report.high_bps,
        report.termination,
        report.n_streams_sent,
    )


# ----------------------------------------------------------------------
# Seed entropy tokens
# ----------------------------------------------------------------------


class TestSeedEntropy:
    def test_tokens_pack_master_and_index(self):
        assert spawn_seed_entropy(7, 3) == [(7 << 32) | i for i in range(3)]

    def test_rejects_negative_inputs(self):
        with pytest.raises(ValueError):
            spawn_seed_entropy(-1, 2)
        with pytest.raises(ValueError):
            spawn_seed_entropy(1, -2)

    def test_matches_seedsequence_spawn(self):
        """The streams must equal SeedSequence(master).spawn(n) exactly —
        this is what keeps every pre-existing serial experiment's sample
        path unchanged."""
        master, n = 1234, 5
        reference = [
            np.random.default_rng(child)
            for child in np.random.SeedSequence(master).spawn(n)
        ]
        for ref, got in zip(reference, spawn_seeds(master, n)):
            assert ref.random(8).tolist() == got.random(8).tolist()

    def test_token_reconstructs_stream_across_boundary(self):
        master, n = 99, 4
        reference = [
            np.random.default_rng(child)
            for child in np.random.SeedSequence(master).spawn(n)
        ]
        for token, ref in zip(spawn_seed_entropy(master, n), reference):
            assert rng_from_entropy(token).random(8).tolist() == ref.random(8).tolist()


# ----------------------------------------------------------------------
# Pool-vs-serial equality on a real figure
# ----------------------------------------------------------------------


class TestPoolMatchesSerial:
    def test_fig05_rows_identical(self):
        scale = Scale(runs=1, interval=10.0, full=False)
        serial = fig05_load.run(scale=scale, jobs=1, cache=False)
        pooled = fig05_load.run(scale=scale, jobs=2, cache=False)
        assert pooled.rows == serial.rows


class TestTaskValidation:
    """fn must be pickle-by-reference friendly, rejected at construction
    (the static side of the same contract is lint rule SIM011)."""

    def test_lambda_rejected(self):
        with pytest.raises(TypeError, match="module-level"):
            SweepTask(fn=lambda e: e, seed_entropy=1)  # simlint: disable=SIM011 -- asserting this is rejected

    def test_nested_def_rejected(self):
        def local_worker(seed_entropy):
            return seed_entropy

        with pytest.raises(TypeError, match="module-level"):
            SweepTask(fn=local_worker, seed_entropy=1)  # simlint: disable=SIM011 -- asserting this is rejected

    def test_module_level_fn_accepted(self):
        task = SweepTask(fn=_square, seed_entropy=1)
        assert task.fn is _square


# ----------------------------------------------------------------------
# Failure capture
# ----------------------------------------------------------------------


class TestFailureCapture:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_crash_keeps_siblings_and_names_offender(self, jobs):
        tasks = [
            SweepTask(fn=_square, seed_entropy=3, experiment="unit"),
            SweepTask(fn=_boom, seed_entropy=7, experiment="unit"),
            SweepTask(fn=_square, seed_entropy=5, experiment="unit"),
        ]
        outcomes = run_sweep(tasks, jobs=jobs, cache=False)
        assert [o.ok for o in outcomes] == [True, False, True]
        assert outcomes[0].value == 9
        assert outcomes[2].value == 25
        assert "boom at 7" in outcomes[1].error
        with pytest.raises(SweepError) as excinfo:
            sweep_values(outcomes)
        message = str(excinfo.value)
        assert "seed_entropy=7" in message
        assert "experiment='unit'" in message

    def test_bad_jobs_rejected(self):
        with pytest.raises(ValueError):
            run_sweep([SweepTask(fn=_square, seed_entropy=1)], jobs=0)


# ----------------------------------------------------------------------
# Result cache
# ----------------------------------------------------------------------


class TestCache:
    def test_hit_skips_execution(self, tmp_path):
        tasks = [
            SweepTask(fn=_counting, seed_entropy=e, experiment="unit")
            for e in (10, 11)
        ]
        _CALLS["n"] = 0
        first = run_sweep(tasks, jobs=1, cache=True, cache_dir=str(tmp_path))
        assert _CALLS["n"] == 2
        assert [o.cached for o in first] == [False, False]

        second = run_sweep(tasks, jobs=1, cache=True, cache_dir=str(tmp_path))
        assert _CALLS["n"] == 2  # nothing re-ran
        assert [o.cached for o in second] == [True, True]
        assert sweep_values(second) == sweep_values(first)

    def test_no_cache_reexecutes(self, tmp_path):
        task = SweepTask(fn=_counting, seed_entropy=20, experiment="unit")
        _CALLS["n"] = 0
        run_sweep([task], jobs=1, cache=True, cache_dir=str(tmp_path))
        run_sweep([task], jobs=1, cache=False, cache_dir=str(tmp_path))
        assert _CALLS["n"] == 2

    def test_key_separates_tasks(self):
        base = SweepTask(fn=_square, seed_entropy=1, experiment="unit")
        assert cache_key(base) == cache_key(
            SweepTask(fn=_square, seed_entropy=1, experiment="unit")
        )
        for other in (
            SweepTask(fn=_square, seed_entropy=2, experiment="unit"),
            SweepTask(fn=_square, seed_entropy=1, experiment="other"),
            SweepTask(
                fn=_square, seed_entropy=1, experiment="unit", kwargs={"offset": 1}
            ),
            SweepTask(fn=_counting, seed_entropy=1, experiment="unit"),
        ):
            assert cache_key(other) != cache_key(base)

    def test_fast_flag_stays_out_of_cache_key(self, tmp_path, monkeypatch):
        """Stream-transit fast path is invisible to the cache.

        The fast path is bit-identical to per-packet transit, so (a) the
        package version — which every cache key folds in — stays at 1.1.0
        and existing ``.repro_cache/`` trees remain valid, and (b) an entry
        written by a fast run must satisfy a per-packet run and vice versa:
        ``REPRO_NO_FAST`` never enters the key.
        """
        import repro

        assert repro.__version__ == "1.1.0"

        task = SweepTask(
            fn=_tiny_pathload, seed_entropy=5, experiment="unit-fast"
        )
        monkeypatch.delenv("REPRO_NO_FAST", raising=False)
        fast = run_sweep([task], jobs=1, cache=True, cache_dir=str(tmp_path))
        assert [o.cached for o in fast] == [False]

        # Same task under forced per-packet transit: must hit the entry the
        # fast run wrote (jobs=1 executes in-process, so the monkeypatched
        # environment is the one any re-simulation would see).
        monkeypatch.setenv("REPRO_NO_FAST", "1")
        hit = run_sweep([task], jobs=1, cache=True, cache_dir=str(tmp_path))
        assert [o.cached for o in hit] == [True]
        assert sweep_values(hit) == sweep_values(fast)

        # The hit is honest, not a stale alias: an uncached per-packet run
        # reproduces the value the fast run stored.
        slow = run_sweep([task], jobs=1, cache=False, cache_dir=str(tmp_path))
        assert [o.cached for o in slow] == [False]
        assert sweep_values(slow) == sweep_values(fast)

    def test_kernel_and_scheduler_flags_stay_out_of_cache_key(
        self, tmp_path, monkeypatch
    ):
        """Vector kernels and the calendar scheduler are invisible to the
        cache, exactly like ``REPRO_NO_FAST`` above: both are bit-identity
        execution strategies, so an entry written under any combination of
        ``REPRO_NO_VECTOR`` / ``REPRO_SCHEDULER`` must satisfy every other
        combination, and the package version stays at 1.1.0.
        """
        import repro

        assert repro.__version__ == "1.1.0"

        task = SweepTask(
            fn=_tiny_pathload, seed_entropy=5, experiment="unit-kernel"
        )
        monkeypatch.delenv("REPRO_NO_VECTOR", raising=False)
        monkeypatch.delenv("REPRO_SCHEDULER", raising=False)
        base_key = cache_key(task)
        first = run_sweep([task], jobs=1, cache=True, cache_dir=str(tmp_path))
        assert [o.cached for o in first] == [False]

        for env in (
            {"REPRO_NO_VECTOR": "1"},
            {"REPRO_SCHEDULER": "calendar"},
            {"REPRO_NO_VECTOR": "1", "REPRO_SCHEDULER": "calendar"},
        ):
            for name, value in env.items():
                monkeypatch.setenv(name, value)
            assert cache_key(task) == base_key
            hit = run_sweep(
                [task], jobs=1, cache=True, cache_dir=str(tmp_path)
            )
            assert [o.cached for o in hit] == [True]
            assert sweep_values(hit) == sweep_values(first)
            for name in env:
                monkeypatch.delenv(name)

    def test_key_rejects_unstable_kwargs(self):
        task = SweepTask(
            fn=_square, seed_entropy=1, kwargs={"bad": object()}, experiment="unit"
        )
        with pytest.raises(TypeError):
            cache_key(task)


# ----------------------------------------------------------------------
# coverage_fraction bisect rewrite
# ----------------------------------------------------------------------


def _campaign_sample(t_start, t_end, low_bps, high_bps):
    report = PathloadReport(
        low_bps=low_bps,
        high_bps=high_bps,
        grey_low_bps=None,
        grey_high_bps=None,
        termination="converged",
    )
    return CampaignSample(t_start=t_start, t_end=t_end, report=report)


class TestCoverageFraction:
    def _brute_force(self, result, slack_bps):
        """The O(S*M) scan coverage_fraction replaced."""
        hits = 0
        for sample in result.samples:
            mid = (sample.t_start + sample.t_end) / 2.0
            truth = min(result.monitor_series, key=lambda p: abs(p[0] - mid))[1]
            if (
                sample.report.low_bps - slack_bps
                <= truth
                <= sample.report.high_bps + slack_bps
            ):
                hits += 1
        return hits / len(result.samples)

    def test_matches_bruteforce_on_random_series(self):
        rng = np.random.default_rng(3)
        times = np.sort(rng.uniform(0.0, 100.0, size=40))
        values = rng.uniform(1e6, 9e6, size=40)
        monitor = [(float(t), float(v)) for t, v in zip(times, values)]
        samples = []
        for _ in range(60):
            # midpoints land inside, before, and after the monitored span
            t0 = float(rng.uniform(-10.0, 110.0))
            t1 = t0 + float(rng.uniform(0.1, 20.0))
            low = float(rng.uniform(0.5e6, 5e6))
            samples.append(
                _campaign_sample(t0, t1, low, low + float(rng.uniform(0.0, 4e6)))
            )
        result = CampaignResult(samples=samples, monitor_series=monitor)
        for slack in (0.0, 5e5):
            assert result.coverage_fraction(slack) == self._brute_force(result, slack)

    def test_exact_tie_picks_earlier_window(self):
        # midpoint 15 is equidistant from windows at t=10 (covering) and
        # t=20 (not); min() picked the first, i.e. the earlier one.
        monitor = [(10.0, 5e6), (20.0, 9e6)]
        samples = [_campaign_sample(14.0, 16.0, 4e6, 6e6)]
        result = CampaignResult(samples=samples, monitor_series=monitor)
        assert result.coverage_fraction() == 1.0

    def test_unsorted_monitor_series(self):
        monitor = [(30.0, 9e6), (10.0, 5e6), (20.0, 7e6)]
        samples = [_campaign_sample(9.0, 13.0, 4e6, 6e6)]
        result = CampaignResult(samples=samples, monitor_series=monitor)
        assert result.coverage_fraction() == self._brute_force(result, 0.0)

    def test_empty_inputs_rejected(self):
        with pytest.raises(ValueError):
            CampaignResult(samples=[], monitor_series=[]).coverage_fraction()
