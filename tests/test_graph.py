"""Tests for graph-based topology construction."""

import networkx as nx
import numpy as np
import pytest

from repro.netsim import Simulator
from repro.netsim.graph import build_graph_path, route_nodes
from repro.transport.probe import run_pathload
from repro.experiments.base import fast_pathload_config


def demo_graph():
    """A diamond: two routes from A to D, one fast, one slow."""
    g = nx.Graph()
    g.add_edge("A", "B", capacity_bps=100e6, prop_delay=0.005, utilization=0.1)
    g.add_edge("B", "D", capacity_bps=10e6, prop_delay=0.005, utilization=0.6)
    g.add_edge("A", "C", capacity_bps=100e6, prop_delay=0.050, utilization=0.1)
    g.add_edge("C", "D", capacity_bps=100e6, prop_delay=0.050, utilization=0.1)
    return g


class TestRouting:
    def test_latency_routing_prefers_fast_branch(self):
        assert route_nodes(demo_graph(), "A", "D") == ["A", "B", "D"]

    def test_hop_routing(self):
        g = demo_graph()
        g.add_edge("A", "D", capacity_bps=1e6, prop_delay=10.0)
        assert route_nodes(g, "A", "D", weight="hops") == ["A", "D"]

    def test_unknown_endpoint_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            route_nodes(demo_graph(), "A", "Z")

    def test_disconnected_rejected(self):
        g = demo_graph()
        g.add_node("X")
        with pytest.raises(ValueError, match="no route"):
            route_nodes(g, "A", "X")


class TestBuildGraphPath:
    def test_ground_truth_from_routed_links(self):
        sim = Simulator()
        setup = build_graph_path(
            sim, demo_graph(), "A", "D", np.random.default_rng(0)
        )
        # route A-B-D: tight link is B-D with avail 10*(1-0.6) = 4 Mb/s
        assert setup.avail_bw_bps == pytest.approx(4e6)
        assert setup.capacity_bps == 10e6
        assert setup.tight_link.name == "B->D"

    def test_cross_traffic_attached_per_link(self):
        sim = Simulator()
        setup = build_graph_path(
            sim, demo_graph(), "A", "D", np.random.default_rng(1),
            sources_per_link=3,
        )
        # both routed links are loaded: 2 links x 3 sources
        assert len(setup.sources) == 6
        sim.run(until=5.0)
        util = (
            setup.tight_link.stats.bytes_forwarded * 8 / 5.0
            / setup.tight_link.capacity_bps
        )
        assert util == pytest.approx(0.6, rel=0.3)

    def test_pathload_over_graph_route(self):
        sim = Simulator()
        setup = build_graph_path(
            sim, demo_graph(), "A", "D", np.random.default_rng(2)
        )
        report = run_pathload(
            sim, setup.network, config=fast_pathload_config(), start=2.0,
            time_limit=600.0,
        )
        assert report.low_bps - 1e6 <= setup.avail_bw_bps <= report.high_bps + 1e6

    def test_missing_capacity_rejected(self):
        g = nx.Graph()
        g.add_edge("A", "B", prop_delay=0.01)
        with pytest.raises(ValueError, match="capacity"):
            build_graph_path(Simulator(), g, "A", "B", np.random.default_rng(0))

    def test_bad_utilization_rejected(self):
        g = nx.Graph()
        g.add_edge("A", "B", capacity_bps=1e6, utilization=1.0)
        with pytest.raises(ValueError, match="utilization"):
            build_graph_path(Simulator(), g, "A", "B", np.random.default_rng(0))

    def test_same_endpoint_rejected(self):
        with pytest.raises(ValueError):
            build_graph_path(
                Simulator(), demo_graph(), "A", "A", np.random.default_rng(0)
            )
