"""Tests of the analytic fluid model against the paper's Appendix results."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fluid import FluidLink, FluidPath
from repro.core.probing import StreamSpec


def spec(rate, size=200, k=100):
    return StreamSpec(rate_bps=rate, packet_size=size, n_packets=k)


class TestSingleLink:
    def test_proposition1_below_avail_bw_constant_owds(self):
        path = FluidPath([FluidLink(10e6, 4e6)])
        owds = path.stream_owds(spec(3e6))
        assert np.all(np.diff(owds) == 0.0)

    def test_proposition1_above_avail_bw_strictly_increasing(self):
        path = FluidPath([FluidLink(10e6, 4e6)])
        owds = path.stream_owds(spec(5e6))
        assert np.all(np.diff(owds) > 0.0)

    def test_rate_equal_avail_bw_is_boundary_constant(self):
        path = FluidPath([FluidLink(10e6, 4e6)])
        owds = path.stream_owds(spec(4e6))
        assert np.all(np.diff(owds) == 0.0)

    def test_exit_rate_formula(self):
        """Appendix Eq. (16): R_out = R*C / (C + R - A)."""
        path = FluidPath([FluidLink(10e6, 4e6)])
        r = 8e6
        expected = r * 10e6 / (10e6 + r - 4e6)
        assert path.exit_rate(r) == pytest.approx(expected)

    def test_exit_rate_transparent_below_avail_bw(self):
        path = FluidPath([FluidLink(10e6, 4e6)])
        assert path.exit_rate(3e6) == 3e6

    def test_owd_slope_matches_queue_growth(self):
        """delta = L8 (R - A) / (R C) per packet."""
        link = FluidLink(10e6, 4e6)
        path = FluidPath([link])
        s = spec(8e6)
        slope = path.owd_slope_per_packet(s)
        expected = s.packet_size * 8 * (8e6 - 4e6) / (8e6 * 10e6)
        assert slope == pytest.approx(expected)

    def test_base_owd_includes_serialization_and_prop(self):
        path = FluidPath([FluidLink(10e6, 10e6)], prop_delay=0.05)
        owds = path.stream_owds(spec(1e6, size=1250))
        assert owds[0] == pytest.approx(0.05 + 1250 * 8 / 10e6)


class TestMultiHop:
    def test_tight_link_determines_behaviour(self):
        path = FluidPath(
            [FluidLink(100e6, 40e6), FluidLink(10e6, 4e6), FluidLink(50e6, 30e6)]
        )
        assert path.avail_bw_bps == 4e6
        assert path.tight_link_index == 1
        assert np.all(np.diff(path.stream_owds(spec(3.9e6))) == 0)
        assert np.all(np.diff(path.stream_owds(spec(4.1e6))) > 0)

    def test_proposition2_exit_rate_depends_on_all_saturated_links(self):
        """Rate attenuates at each link whose avail-bw it exceeds."""
        l1 = FluidLink(10e6, 5e6)
        l2 = FluidLink(8e6, 4e6)
        path = FluidPath([l1, l2])
        r = 9e6
        r1 = r * 10e6 / (10e6 + r - 5e6)
        expected = r1 * 8e6 / (8e6 + r1 - 4e6) if r1 > 4e6 else r1
        assert path.exit_rate(r) == pytest.approx(expected)

    def test_entry_rates_monotonically_nonincreasing(self):
        path = FluidPath([FluidLink(10e6, 5e6), FluidLink(8e6, 4e6), FluidLink(6e6, 3e6)])
        rates = path.entry_rates(9e6)
        assert all(a >= b for a, b in zip(rates, rates[1:]))

    def test_narrow_vs_tight_distinction(self):
        # narrow link (min capacity) is link 0; tight (min avail-bw) is link 1
        path = FluidPath([FluidLink(10e6, 8e6), FluidLink(100e6, 5e6)])
        assert path.capacity_bps == 10e6
        assert path.avail_bw_bps == 5e6
        assert path.tight_link_index == 1


class TestMeasurement:
    def test_measurement_has_all_packets(self):
        path = FluidPath([FluidLink(10e6, 4e6)])
        m = path.measure_stream(spec(5e6), t_start=3.0)
        assert m.n_received == 100
        assert m.loss_rate == 0.0
        assert m.t_start == 3.0

    def test_clock_offset_shifts_owds_uniformly(self):
        path = FluidPath([FluidLink(10e6, 4e6)])
        plain = path.measure_stream(spec(5e6))
        shifted = path.measure_stream(spec(5e6), clock_offset=7.5)
        d = shifted.relative_owds() - plain.relative_owds()
        assert np.allclose(d, 7.5)

    def test_noise_is_reproducible_with_seed(self):
        path = FluidPath([FluidLink(10e6, 4e6)])
        a = path.measure_stream(spec(5e6), noise_rng=np.random.default_rng(9), noise_std=1e-4)
        b = path.measure_stream(spec(5e6), noise_rng=np.random.default_rng(9), noise_std=1e-4)
        assert np.array_equal(a.relative_owds(), b.relative_owds())


class TestValidation:
    def test_avail_bw_above_capacity_rejected(self):
        with pytest.raises(ValueError):
            FluidLink(10e6, 11e6)

    def test_empty_path_rejected(self):
        with pytest.raises(ValueError):
            FluidPath([])

    def test_nonpositive_rate_rejected(self):
        path = FluidPath([FluidLink(10e6, 4e6)])
        with pytest.raises(ValueError):
            path.entry_rates(0.0)


class TestProposition1Property:
    @given(
        capacity=st.floats(1e6, 1e9),
        utilization=st.floats(0.0, 0.99),
        rate_factor=st.floats(0.01, 10.0),
    )
    @settings(max_examples=200, deadline=None)
    def test_owd_trend_iff_rate_above_avail_bw(
        self, capacity, utilization, rate_factor
    ):
        """Proposition 1 as a property over the whole parameter space."""
        avail = capacity * (1.0 - utilization)
        if avail <= 0:
            return
        path = FluidPath([FluidLink(capacity, avail)])
        rate = avail * rate_factor
        if rate <= 0:
            return
        diffs = np.diff(path.stream_owds(spec(rate)))
        if rate > avail * (1 + 1e-9):
            assert np.all(diffs > 0)
        elif rate < avail * (1 - 1e-9):
            assert np.all(diffs == 0)
