"""Unit tests for the store-and-forward link model."""

import pytest

from repro.netsim.engine import Simulator
from repro.netsim.link import Link
from repro.netsim.packet import Packet


def make_link(sim, capacity=8e6, prop=0.01, buffer_bytes=None):
    link = Link(sim, capacity, prop_delay=prop, buffer_bytes=buffer_bytes, name="L")
    arrivals = []
    link.deliver = lambda pkt: arrivals.append((sim.now, pkt))
    return link, arrivals


class TestTransmission:
    def test_single_packet_timing(self):
        sim = Simulator()
        link, arrivals = make_link(sim, capacity=8e6, prop=0.01)
        link.send(Packet(1000))
        sim.run()
        # 1000 B at 8 Mb/s = 1 ms serialization + 10 ms propagation
        assert arrivals[0][0] == pytest.approx(0.011)

    def test_back_to_back_packets_are_spaced_by_serialization(self):
        sim = Simulator()
        link, arrivals = make_link(sim, capacity=8e6, prop=0.0)
        link.send(Packet(1000))
        link.send(Packet(1000))
        sim.run()
        t0, t1 = arrivals[0][0], arrivals[1][0]
        assert t1 - t0 == pytest.approx(0.001)

    def test_fifo_order_preserved(self):
        sim = Simulator()
        link, arrivals = make_link(sim)
        pkts = [Packet(500, seq=i) for i in range(10)]
        for p in pkts:
            link.send(p)
        sim.run()
        assert [p.seq for _t, p in arrivals] == list(range(10))

    def test_idle_link_has_no_queueing(self):
        sim = Simulator()
        link, arrivals = make_link(sim, capacity=1e6, prop=0.0)
        link.send(Packet(1000))
        sim.run()
        sim.schedule_at(1.0, lambda: link.send(Packet(1000)))
        sim.run()
        # second packet sent long after the first drained: serialization only
        assert arrivals[1][0] == pytest.approx(1.008)

    def test_transmission_time_helper(self):
        sim = Simulator()
        link, _ = make_link(sim, capacity=10e6)
        assert link.transmission_time(1250) == pytest.approx(0.001)


class TestBacklogAccounting:
    def test_backlog_counts_unserved_bytes(self):
        sim = Simulator()
        link, _ = make_link(sim, capacity=8e6, prop=0.0)
        link.send(Packet(1000))
        link.send(Packet(1000))
        assert link.backlog_bytes() == 2000
        sim.run(until=0.0015)  # first packet done at 1 ms
        assert link.backlog_bytes() == 1000
        sim.run()
        assert link.backlog_bytes() == 0

    def test_queueing_delay_estimate(self):
        sim = Simulator()
        link, _ = make_link(sim, capacity=8e6, prop=0.0)
        link.send(Packet(1000))
        link.send(Packet(1000))
        assert link.queueing_delay() == pytest.approx(0.002)


class TestDropTail:
    def test_drops_when_buffer_full(self):
        sim = Simulator()
        link, arrivals = make_link(sim, capacity=8e6, prop=0.0, buffer_bytes=1500)
        assert link.send(Packet(1000)) is True
        assert link.send(Packet(1000)) is False  # 2000 > 1500
        sim.run()
        assert len(arrivals) == 1
        assert link.stats.packets_dropped == 1
        assert link.stats.bytes_dropped == 1000

    def test_buffer_frees_as_packets_complete(self):
        sim = Simulator()
        link, arrivals = make_link(sim, capacity=8e6, prop=0.0, buffer_bytes=1000)
        link.send(Packet(1000))
        sim.run()
        assert link.send(Packet(1000)) is True
        sim.run()
        assert len(arrivals) == 2

    def test_drop_hook_invoked(self):
        sim = Simulator()
        link, _ = make_link(sim, capacity=8e6, prop=0.0, buffer_bytes=500)
        dropped = []
        link.drop_hook = dropped.append
        ok = Packet(400)
        bad = Packet(400)
        link.send(ok)
        link.send(bad)
        assert dropped == [bad]

    def test_infinite_buffer_never_drops(self):
        sim = Simulator()
        link, arrivals = make_link(sim, capacity=1e6, prop=0.0, buffer_bytes=None)
        for _ in range(1000):
            link.send(Packet(1500))
        sim.run()
        assert len(arrivals) == 1000
        assert link.stats.packets_dropped == 0


class TestStats:
    def test_forwarded_counters(self):
        sim = Simulator()
        link, _ = make_link(sim)
        for _ in range(3):
            link.send(Packet(700))
        assert link.stats.bytes_forwarded == 2100
        assert link.stats.packets_forwarded == 3

    def test_utilization_of(self):
        sim = Simulator()
        link, _ = make_link(sim, capacity=10e6)
        # 625000 B in 1 s = 5 Mb/s on a 10 Mb/s link
        assert link.utilization_of(625000, 1.0) == pytest.approx(0.5)


class TestValidation:
    def test_bad_capacity(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Link(sim, 0.0)

    def test_bad_prop_delay(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Link(sim, 1e6, prop_delay=-1.0)

    def test_bad_buffer(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Link(sim, 1e6, buffer_bytes=0)

    def test_unwired_delivery_raises(self):
        sim = Simulator()
        link = Link(sim, 1e6)
        link.send(Packet(100))
        with pytest.raises(RuntimeError, match="delivery callback"):
            sim.run()

    def test_bad_packet_size(self):
        with pytest.raises(ValueError):
            Packet(0)
