"""Unit tests for the store-and-forward link model."""

import pytest

from repro.netsim.engine import Simulator
from repro.netsim.link import Link
from repro.netsim.packet import Packet


def make_link(sim, capacity=8e6, prop=0.01, buffer_bytes=None):
    link = Link(sim, capacity, prop_delay=prop, buffer_bytes=buffer_bytes, name="L")
    arrivals = []
    link.deliver = lambda pkt: arrivals.append((sim.now, pkt))
    return link, arrivals


class TestTransmission:
    def test_single_packet_timing(self):
        sim = Simulator()
        link, arrivals = make_link(sim, capacity=8e6, prop=0.01)
        link.send(Packet(1000))
        sim.run()
        # 1000 B at 8 Mb/s = 1 ms serialization + 10 ms propagation
        assert arrivals[0][0] == pytest.approx(0.011)

    def test_back_to_back_packets_are_spaced_by_serialization(self):
        sim = Simulator()
        link, arrivals = make_link(sim, capacity=8e6, prop=0.0)
        link.send(Packet(1000))
        link.send(Packet(1000))
        sim.run()
        t0, t1 = arrivals[0][0], arrivals[1][0]
        assert t1 - t0 == pytest.approx(0.001)

    def test_fifo_order_preserved(self):
        sim = Simulator()
        link, arrivals = make_link(sim)
        pkts = [Packet(500, seq=i) for i in range(10)]
        for p in pkts:
            link.send(p)
        sim.run()
        assert [p.seq for _t, p in arrivals] == list(range(10))

    def test_idle_link_has_no_queueing(self):
        sim = Simulator()
        link, arrivals = make_link(sim, capacity=1e6, prop=0.0)
        link.send(Packet(1000))
        sim.run()
        sim.schedule_at(1.0, lambda: link.send(Packet(1000)))
        sim.run()
        # second packet sent long after the first drained: serialization only
        assert arrivals[1][0] == pytest.approx(1.008)

    def test_transmission_time_helper(self):
        sim = Simulator()
        link, _ = make_link(sim, capacity=10e6)
        assert link.transmission_time(1250) == pytest.approx(0.001)


class TestBacklogAccounting:
    def test_backlog_counts_unserved_bytes(self):
        sim = Simulator()
        link, _ = make_link(sim, capacity=8e6, prop=0.0)
        link.send(Packet(1000))
        link.send(Packet(1000))
        assert link.backlog_bytes() == 2000
        sim.run(until=0.0015)  # first packet done at 1 ms
        assert link.backlog_bytes() == 1000
        sim.run()
        assert link.backlog_bytes() == 0

    def test_queueing_delay_estimate(self):
        sim = Simulator()
        link, _ = make_link(sim, capacity=8e6, prop=0.0)
        link.send(Packet(1000))
        link.send(Packet(1000))
        assert link.queueing_delay() == pytest.approx(0.002)


class TestDropTail:
    def test_drops_when_buffer_full(self):
        sim = Simulator()
        link, arrivals = make_link(sim, capacity=8e6, prop=0.0, buffer_bytes=1500)
        assert link.send(Packet(1000)) is True
        assert link.send(Packet(1000)) is False  # 2000 > 1500
        sim.run()
        assert len(arrivals) == 1
        assert link.stats.packets_dropped == 1
        assert link.stats.bytes_dropped == 1000

    def test_buffer_frees_as_packets_complete(self):
        sim = Simulator()
        link, arrivals = make_link(sim, capacity=8e6, prop=0.0, buffer_bytes=1000)
        link.send(Packet(1000))
        sim.run()
        assert link.send(Packet(1000)) is True
        sim.run()
        assert len(arrivals) == 2

    def test_drop_hook_invoked(self):
        sim = Simulator()
        link, _ = make_link(sim, capacity=8e6, prop=0.0, buffer_bytes=500)
        dropped = []
        link.drop_hook = dropped.append
        ok = Packet(400)
        bad = Packet(400)
        link.send(ok)
        link.send(bad)
        assert dropped == [bad]

    def test_infinite_buffer_never_drops(self):
        sim = Simulator()
        link, arrivals = make_link(sim, capacity=1e6, prop=0.0, buffer_bytes=None)
        for _ in range(1000):
            link.send(Packet(1500))
        sim.run()
        assert len(arrivals) == 1000
        assert link.stats.packets_dropped == 0


class TestStats:
    def test_forwarded_counters(self):
        sim = Simulator()
        link, _ = make_link(sim)
        for _ in range(3):
            link.send(Packet(700))
        assert link.stats.bytes_forwarded == 2100
        assert link.stats.packets_forwarded == 3

    def test_utilization_of(self):
        sim = Simulator()
        link, _ = make_link(sim, capacity=10e6)
        # 625000 B in 1 s = 5 Mb/s on a 10 Mb/s link
        assert link.utilization_of(625000, 1.0) == pytest.approx(0.5)


class TestCapacitySchedule:
    def test_capacity_at_boundary_semantics(self):
        sim = Simulator()
        link, _ = make_link(sim, capacity=8e6)
        link.set_capacity_segments([(1.0, 4e6), (2.0, 16e6)])
        assert link.capacity_at(0.5) == 8e6
        assert link.capacity_at(1.0) == 4e6  # boundary takes the new rate
        assert link.capacity_at(1.5) == 4e6
        assert link.capacity_at(2.0) == 16e6
        assert link.capacity_at(100.0) == 16e6  # last rate holds forever
        assert link.capacity_bps == 8e6  # base rate untouched

    def test_serialization_uses_rate_at_transmission_start(self):
        sim = Simulator()
        link, arrivals = make_link(sim, capacity=8e6, prop=0.0)
        link.set_capacity_segments([(1.0, 4e6)])
        # Admitted at t=0 on an idle link: starts immediately at 8 Mb/s.
        link.send(Packet(1000))
        # Admitted at t=1.5: starts after the boundary, at 4 Mb/s.
        sim.schedule_at(1.5, lambda: link.send(Packet(1000)))
        sim.run()
        assert arrivals[0][0] == pytest.approx(0.001)
        assert arrivals[1][0] == pytest.approx(1.502)

    def test_queued_start_after_boundary_takes_new_rate(self):
        # Admission *time* is before the boundary, but the queue pushes
        # the transmission start past it: the new rate applies, because
        # serialization is priced at transmission start.
        sim = Simulator()
        link, arrivals = make_link(sim, capacity=8e6, prop=0.0)
        link.set_capacity_segments([(0.0015, 4e6)])

        def burst():
            link.send(Packet(1000))  # starts idle at 0.0012 (8 Mb/s)
            link.send(Packet(1000))  # queued: starts 0.0022 > boundary

        sim.schedule_at(0.0012, burst)
        sim.run()
        assert arrivals[0][0] == pytest.approx(0.0022)
        assert arrivals[1][0] == pytest.approx(0.0042)

    def test_mid_transmission_boundary_does_not_reprice(self):
        # A transmission under way when the boundary passes completes at
        # its admission rate (store-and-forward idealization).
        sim = Simulator()
        link, arrivals = make_link(sim, capacity=8e6, prop=0.0)
        link.set_capacity_segments([(0.0005, 1e6)])
        link.send(Packet(1000))  # starts at t=0 under 8 Mb/s
        sim.run()
        assert arrivals[0][0] == pytest.approx(0.001)

    def test_reinstall_replaces_schedule(self):
        sim = Simulator()
        link, _ = make_link(sim, capacity=8e6)
        link.set_capacity_segments([(1.0, 4e6)])
        sim.schedule_at(
            1.5, lambda: link.set_capacity_segments([(2.0, 16e6)])
        )
        sim.run(until=1.6)
        # Rate in force at reinstall (4 Mb/s) becomes the pre-boundary rate.
        assert link.capacity_at(1.7) == 4e6
        assert link.capacity_at(2.0) == 16e6

    def test_validation_errors(self):
        sim = Simulator()
        link, _ = make_link(sim)
        with pytest.raises(ValueError, match="at least one"):
            link.set_capacity_segments([])
        with pytest.raises(ValueError, match="positive"):
            link.set_capacity_segments([(1.0, 0.0)])
        with pytest.raises(ValueError, match="future"):
            link.set_capacity_segments([(0.0, 1e6)])
        with pytest.raises(ValueError, match="increasing"):
            link.set_capacity_segments([(1.0, 1e6), (1.0, 2e6)])


class TestValidation:
    def test_bad_capacity(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Link(sim, 0.0)

    def test_bad_prop_delay(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Link(sim, 1e6, prop_delay=-1.0)

    def test_bad_buffer(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Link(sim, 1e6, buffer_bytes=0)

    def test_unwired_delivery_raises(self):
        sim = Simulator()
        link = Link(sim, 1e6)
        link.send(Packet(100))
        with pytest.raises(RuntimeError, match="delivery callback"):
            sim.run()

    def test_bad_packet_size(self):
        with pytest.raises(ValueError):
            Packet(0)
