"""Equivalence tests for the event-elided cross-traffic data path.

The bulk path's contract is *bit identity*: on every eligible
configuration, probe OWD series, link stats, monitor samples, and source
counters must equal — with ``==``, not ``approx`` — what the per-packet
path produces, because the arrival times are the same floating-point sums
over the same RNG draws — including modulated sources, whose arrivals are
batch-generated per rate-factor segment.  Ineligible configurations
(qdisc, drop hooks, taps) must fall back automatically; rebinding a
link's hooks mid-run must decommission bulk sources without perturbing
the sample path.
"""

import itertools

import numpy as np
import pytest

from repro.netsim import (
    LinkMonitor,
    LinkSpec,
    LinkTap,
    Packet,
    PacketKind,
    QueueMonitor,
    REDQueue,
    Simulator,
    attach_cross_traffic,
    build_path,
)


def run_experiment(
    bulk,
    model="poisson",
    hops=1,
    buffer_bytes=None,
    stop=None,
    sanitize=False,
    monitors=False,
    seed=42,
    until=4.0,
    capacity=10e6,
    utilization=0.6,
    n_sources=4,
    probe_gap=0.01,
    modulation=None,
    mutate_at=None,
):
    """One seeded run; returns every foreground-observable series.

    ``bulk`` selects the cross-traffic data path; everything else is
    identical between the two runs being compared.  ``mutate_at`` is an
    optional ``(time, fn)`` pair; ``fn(network)`` runs mid-simulation
    (used to trigger bulk decommissioning).
    """
    sim = Simulator(sanitize=sanitize)
    specs = [
        LinkSpec(capacity, prop_delay=0.002, buffer_bytes=buffer_bytes, name=f"hop{i}")
        for i in range(hops)
    ]
    net = build_path(sim, specs)
    rng = np.random.default_rng(seed)
    sources = []
    for link in net.forward_links:
        sources.extend(
            attach_cross_traffic(
                sim,
                net,
                link,
                capacity * utilization,
                rng,
                n_sources=n_sources,
                model=model,
                stop=stop,
                modulation=modulation,
                bulk=bulk,
            )
        )

    owds = []

    def on_probe(pkt):
        owds.append((pkt.seq, pkt.delivered_at - pkt.created_at))

    seq = itertools.count()

    def send_probe():
        pkt = Packet(200, flow_id="probe", seq=next(seq), kind=PacketKind.PROBE)
        net.send_forward(pkt, on_probe)
        sim.schedule(probe_gap, send_probe)

    sim.schedule_at(0.005, send_probe)
    qmon = QueueMonitor(sim, net.forward_links[0], interval=0.05) if monitors else None
    lmon = LinkMonitor(sim, net.forward_links[0], window=0.5) if monitors else None
    if mutate_at is not None:
        t_mut, fn = mutate_at
        sim.schedule_at(t_mut, fn, net)
    sim.run(until=until)
    result = {
        "owds": owds,
        "stats": [link.stats.snapshot() for link in net.forward_links],
        "sent": [(s.packets_sent, s.bytes_sent) for s in sources],
        "backlog": [link.backlog_bytes() for link in net.forward_links],
        "sources": sources,
        "net": net,
    }
    if monitors:
        result["queue"] = list(qmon.samples)
        result["util"] = [
            (s.t_start, s.t_end, s.bytes_forwarded, s.utilization, s.avail_bw_bps)
            for s in lmon.samples
        ]
    if sanitize:
        result["digest"] = sim.digest()
    return result


OBSERVABLES = ("owds", "stats", "sent", "backlog")


def assert_equivalent(kwargs, keys=OBSERVABLES):
    per_packet = run_experiment(False, **kwargs)
    bulk = run_experiment(None, **kwargs)
    assert all(s.is_bulk for s in bulk["sources"]), "bulk path did not engage"
    assert not any(s.is_bulk for s in per_packet["sources"])
    assert bulk["owds"], "probe stream produced no deliveries"
    for key in keys:
        assert bulk[key] == per_packet[key], f"{key} diverged"
    return per_packet, bulk


class TestBitIdentity:
    @pytest.mark.parametrize("model", ["poisson", "pareto", "cbr"])
    def test_single_hop_infinite_buffer(self, model):
        assert_equivalent({"model": model})

    @pytest.mark.parametrize("model", ["poisson", "pareto", "cbr"])
    def test_drop_tail_buffer(self, model):
        """Finite buffer at high load: admission decisions must replay
        identically (drops and all)."""
        pp, bulk = assert_equivalent(
            {"model": model, "buffer_bytes": 6000, "utilization": 0.95}
        )
        assert bulk["stats"][0]["packets_dropped"] > 0, "workload caused no drops"

    @pytest.mark.parametrize("hops", [2, 3])
    def test_multi_hop(self, hops):
        assert_equivalent({"hops": hops, "model": "pareto"})

    def test_monitor_windows(self):
        keys = OBSERVABLES + ("queue", "util")
        assert_equivalent({"monitors": True, "model": "pareto"}, keys=keys)

    def test_source_stop_time(self):
        pp, bulk = assert_equivalent({"model": "poisson", "stop": 1.5})
        # no arrivals after stop: counters frozen from 1.5s on
        assert bulk["sent"] == pp["sent"]

    def test_refill_horizon_crossing(self):
        """Long enough that each source consumes several 4096-sample
        batches — boundary gap/size pairing must survive the refills."""
        assert_equivalent(
            {"model": "cbr", "n_sources": 1, "until": 12.0, "utilization": 0.9}
        )

    @pytest.mark.parametrize("model", ["poisson", "pareto", "cbr"])
    def test_modulated_single_hop(self, model):
        """Segment-planned generation: modulated sources stay bulk and
        stay bit-identical."""
        assert_equivalent({"model": model, "modulation": (0.5, 0.3)})

    def test_modulated_drop_tail_multi_hop(self):
        pp, bulk = assert_equivalent(
            {
                "model": "pareto",
                "modulation": (0.5, 0.3),
                "hops": 2,
                "buffer_bytes": 6000,
                "utilization": 0.95,
            }
        )
        assert bulk["stats"][0]["packets_dropped"] > 0, "workload caused no drops"

    def test_modulated_stop_time(self):
        """The boundary chain dies at ``stop`` on both paths (the frozen
        factor must match through the truncated final batch)."""
        assert_equivalent({"model": "pareto", "modulation": (0.3, 0.4), "stop": 1.7})

    def test_modulated_refill_horizon_crossing(self):
        """Several refills per source with short segments: leftover
        boundary draws must carry across batch edges in RNG order."""
        assert_equivalent(
            {
                "model": "poisson",
                "modulation": (0.1, 0.5),
                "n_sources": 1,
                "until": 12.0,
                "utilization": 0.9,
            }
        )

    def test_bulk_digest_is_reproducible(self):
        """Two equal-seed bulk runs execute the identical event order."""
        a = run_experiment(None, sanitize=True, model="pareto")
        b = run_experiment(None, sanitize=True, model="pareto")
        assert a["digest"] == b["digest"]
        assert a["owds"] == b["owds"]

    def test_per_packet_digest_is_reproducible(self):
        a = run_experiment(False, sanitize=True, model="pareto")
        b = run_experiment(False, sanitize=True, model="pareto")
        assert a["digest"] == b["digest"]


class TestFallback:
    def test_qdisc_forces_per_packet(self):
        sim = Simulator()
        net = build_path(sim, [LinkSpec(10e6)])
        link = net.forward_links[0]
        link.qdisc = REDQueue(5000, 20000, np.random.default_rng(1))
        sources = attach_cross_traffic(
            sim, net, link, 5e6, np.random.default_rng(0), n_sources=2
        )
        assert not any(s.is_bulk for s in sources)
        sim.run(until=1.0)
        assert link.stats.packets_forwarded > 0

    def test_modulation_stays_bulk(self):
        """Modulation is piecewise-constant, so it no longer disqualifies
        the bulk path: arrivals are batch-generated per rate-factor
        segment with boundary draws at their per-packet RNG positions."""
        sim = Simulator()
        net = build_path(sim, [LinkSpec(10e6)])
        sources = attach_cross_traffic(
            sim,
            net,
            net.forward_links[0],
            5e6,
            np.random.default_rng(0),
            n_sources=2,
            modulation=(0.5, 0.3),
        )
        assert all(s.is_bulk for s in sources)
        sim.run(until=2.0)
        assert all(s.is_bulk for s in sources)
        assert net.forward_links[0].stats.packets_forwarded > 0

    def test_drop_hook_forces_per_packet(self):
        sim = Simulator()
        net = build_path(sim, [LinkSpec(10e6, buffer_bytes=5000)])
        link = net.forward_links[0]
        link.drop_hook = lambda pkt: None
        sources = attach_cross_traffic(
            sim, net, link, 5e6, np.random.default_rng(0), n_sources=2
        )
        assert not any(s.is_bulk for s in sources)

    def test_tap_before_attach_forces_per_packet(self):
        sim = Simulator()
        net = build_path(sim, [LinkSpec(10e6)])
        link = net.forward_links[0]
        LinkTap(link, flow_prefix="cross")
        sources = attach_cross_traffic(
            sim, net, link, 5e6, np.random.default_rng(0), n_sources=2
        )
        assert not any(s.is_bulk for s in sources)

    def test_bulk_false_forces_per_packet(self):
        sim = Simulator()
        net = build_path(sim, [LinkSpec(10e6)])
        sources = attach_cross_traffic(
            sim,
            net,
            net.forward_links[0],
            5e6,
            np.random.default_rng(0),
            n_sources=2,
            bulk=False,
        )
        assert not any(s.is_bulk for s in sources)

    def test_clean_link_defaults_to_bulk(self):
        sim = Simulator()
        net = build_path(sim, [LinkSpec(10e6)])
        sources = attach_cross_traffic(
            sim, net, net.forward_links[0], 5e6, np.random.default_rng(0), n_sources=2
        )
        assert all(s.is_bulk for s in sources)


class TestCapacitySchedule:
    """A piecewise-constant capacity schedule is *not* a decommission for
    bulk cross traffic: the folds look the rate up per segment, so the
    sources stay bulk and every observable still matches per-packet."""

    SEGMENTS = ((1.0, 6e6), (2.0, 14e6), (3.0, 9e6))

    @classmethod
    def _install(cls, net):
        net.forward_links[0].set_capacity_segments(cls.SEGMENTS)

    @pytest.mark.parametrize("model", ["poisson", "pareto", "cbr"])
    def test_scheduled_link_bit_identical(self, model):
        kwargs = {"model": model, "mutate_at": (0.5, self._install)}
        pp = run_experiment(False, **kwargs)
        bulk = run_experiment(None, **kwargs)
        assert all(s.is_bulk for s in bulk["sources"]), "bulk dropped out"
        for key in OBSERVABLES:
            assert bulk[key] == pp[key], f"{key} diverged under schedule"

    def test_scheduled_finite_buffer(self):
        # Shrinking the rate to 6 Mb/s under near-saturating load makes
        # the drop-tail replay cross rate boundaries with a hot buffer.
        kwargs = {
            "model": "pareto",
            "buffer_bytes": 9_000,
            "utilization": 0.95,
            "mutate_at": (0.5, self._install),
        }
        pp = run_experiment(False, **kwargs)
        bulk = run_experiment(None, **kwargs)
        assert all(s.is_bulk for s in bulk["sources"])
        assert pp["stats"][0]["packets_dropped"] > 0, "test needs drops"
        for key in OBSERVABLES:
            assert bulk[key] == pp[key], f"{key} diverged under schedule"

    def test_scheduled_modulated_source(self):
        # Non-stationary offered load over a non-stationary link: the
        # segmented generator and the segmented fold compose.
        kwargs = {
            "model": "pareto",
            "modulation": (0.5, 0.3),
            "mutate_at": (0.5, self._install),
        }
        pp = run_experiment(False, **kwargs)
        bulk = run_experiment(None, **kwargs)
        assert all(s.is_bulk for s in bulk["sources"])
        for key in OBSERVABLES:
            assert bulk[key] == pp[key], f"{key} diverged under schedule"

    def test_scheduled_no_vector_layout(self, monkeypatch):
        # The scalar segmented fold (REPRO_NO_VECTOR) must agree with
        # the kernel dispatch bit for bit.
        kwargs = {"model": "poisson", "mutate_at": (0.5, self._install)}
        fast = run_experiment(None, **kwargs)
        monkeypatch.setenv("REPRO_NO_VECTOR", "1")
        from repro.netsim import kernels

        kernels._reset_for_tests()
        try:
            scalar = run_experiment(None, **kwargs)
        finally:
            monkeypatch.delenv("REPRO_NO_VECTOR")
            kernels._reset_for_tests()
        for key in OBSERVABLES:
            assert fast[key] == scalar[key], f"{key} diverged across layouts"


class TestDecommission:
    """Rebinding a link hook mid-run reverts bulk sources without
    perturbing the sample path."""

    @staticmethod
    def _attach_drop_hook(net):
        net.forward_links[0].drop_hook = lambda pkt: None

    @staticmethod
    def _attach_tap(net):
        net.tap = LinkTap(net.forward_links[0], flow_prefix="probe")

    @pytest.mark.parametrize("model", ["poisson", "pareto", "cbr"])
    def test_drop_hook_mid_run_preserves_sample_path(self, model):
        kwargs = {"model": model, "mutate_at": (2.0, self._attach_drop_hook)}
        pp = run_experiment(False, **kwargs)
        bulk = run_experiment(None, **kwargs)
        assert not any(s.is_bulk for s in bulk["sources"]), "decommission missed"
        for key in OBSERVABLES:
            assert bulk[key] == pp[key], f"{key} diverged across decommission"

    @pytest.mark.parametrize("model", ["poisson", "pareto", "cbr"])
    def test_modulated_drop_hook_mid_run(self, model):
        """A modulated bulk source must resume per-packet with its
        boundary chain restarted at the right RNG position."""
        kwargs = {
            "model": model,
            "modulation": (0.5, 0.3),
            "mutate_at": (2.0, self._attach_drop_hook),
        }
        pp = run_experiment(False, **kwargs)
        bulk = run_experiment(None, **kwargs)
        assert not any(s.is_bulk for s in bulk["sources"]), "decommission missed"
        for key in OBSERVABLES:
            assert bulk[key] == pp[key], f"{key} diverged across decommission"

    def test_modulated_decommission_before_first_batch(self):
        kwargs = {
            "model": "pareto",
            "modulation": (0.5, 0.3),
            "mutate_at": (0.0, self._attach_drop_hook),
        }
        pp = run_experiment(False, **kwargs)
        bulk = run_experiment(None, **kwargs)
        assert not any(s.is_bulk for s in bulk["sources"])
        for key in OBSERVABLES:
            assert bulk[key] == pp[key], f"{key} diverged across decommission"

    def test_tap_mid_run_preserves_probe_records(self):
        kwargs = {"model": "pareto", "mutate_at": (2.0, self._attach_tap)}
        pp = run_experiment(False, **kwargs)
        bulk = run_experiment(None, **kwargs)
        assert not any(s.is_bulk for s in bulk["sources"])
        for key in OBSERVABLES:
            assert bulk[key] == pp[key], f"{key} diverged across decommission"
        pp_records = [(r.time, r.seq, r.size) for r in pp["net"].tap.records]
        bulk_records = [(r.time, r.seq, r.size) for r in bulk["net"].tap.records]
        assert bulk_records == pp_records

    def test_decommission_before_first_batch(self):
        """Hook attached at t=0 (before the deferred merge ever runs):
        sources must start per-packet exactly as the constructor would."""
        kwargs = {"model": "cbr", "mutate_at": (0.0, self._attach_drop_hook)}
        pp = run_experiment(False, **kwargs)
        bulk = run_experiment(None, **kwargs)
        assert not any(s.is_bulk for s in bulk["sources"])
        for key in OBSERVABLES:
            assert bulk[key] == pp[key], f"{key} diverged across decommission"

    def test_mid_run_registration_joins_bulk(self):
        """A source attached while the link already carries merged bulk
        traffic must slot into the same sample path."""

        def run(bulk):
            sim = Simulator()
            net = build_path(sim, [LinkSpec(10e6, name="L")])
            link = net.forward_links[0]
            rng = np.random.default_rng(7)
            first = attach_cross_traffic(
                sim, net, link, 4e6, rng, n_sources=2, bulk=bulk
            )
            late = []

            def attach_late():
                late.extend(
                    attach_cross_traffic(
                        sim, net, link, 2e6, rng, n_sources=1, start=1.0, bulk=bulk
                    )
                )

            sim.schedule_at(1.0, attach_late)
            sim.run(until=3.0)
            return link.stats.snapshot(), [
                (s.packets_sent, s.bytes_sent) for s in (*first, *late)
            ]

        assert run(None) == run(False)
