"""White-box tests of the pathload controller's internal paths."""

import numpy as np
import pytest

from repro.core import (
    FluidLink,
    FluidPath,
    PathloadConfig,
    PathloadController,
    Termination,
    run_controller_fluid,
)
from repro.core.fleet import FleetOutcome
from repro.core.probing import Idle, PacketRecord, SendStream, StreamMeasurement


def lossy_measurement(spec, received_fraction, t_start=0.0):
    """A measurement with only the first fraction of packets received."""
    n = max(2, int(spec.n_packets * received_fraction))
    period = spec.period
    records = [
        PacketRecord(seq=i, sender_stamp=i * period, recv_stamp=i * period + 0.01)
        for i in range(n)
    ]
    return StreamMeasurement(
        spec=spec, records=records, n_sent=spec.n_packets,
        t_start=t_start, t_end=t_start + spec.duration,
    )


class TestFleetEarlyAbort:
    def test_lossy_streams_abort_the_fleet_early(self):
        """More than max_lossy_streams moderate-loss streams cut the fleet
        short, and the outcome is ABORTED_LOSS."""
        cfg = PathloadConfig(initial_rate_bps=5e6, max_lossy_streams=2)
        controller = PathloadController(cfg, rtt=0.01)
        gen = controller.run()
        action = next(gen)
        streams_in_first_fleet = 0
        first_fleet_rate = action.spec.rate_bps
        while True:
            if isinstance(action, SendStream):
                if action.spec.rate_bps != first_fleet_rate:
                    break  # fleet over; a new rate means a new fleet
                streams_in_first_fleet += 1
                action = gen.send(lossy_measurement(action.spec, 0.9))  # 10% loss
            else:
                action = gen.send(None)
        # aborted after max_lossy_streams + 1 = 3 streams, not the full 12
        assert streams_in_first_fleet == 3

    def test_abort_lowers_next_fleet_rate(self):
        cfg = PathloadConfig(initial_rate_bps=8e6, max_lossy_streams=1)
        controller = PathloadController(cfg, rtt=0.01)
        gen = controller.run()
        action = next(gen)
        rates = []
        for _ in range(30):
            if isinstance(action, SendStream):
                rates.append(action.spec.rate_bps)
                action = gen.send(lossy_measurement(action.spec, 0.85))
            else:
                action = gen.send(None)
            if len(set(rates)) >= 2:
                break
        distinct = sorted(set(rates), reverse=True)
        assert distinct[0] == pytest.approx(8e6)
        assert distinct[1] < 8e6  # rate decreased after the aborted fleet


class TestTerminationPaths:
    def test_max_rate_reached_on_unloaded_fast_path(self):
        """A fluid path faster than the probing ceiling terminates with
        max-rate-reached and a lower bound near the ceiling."""
        cfg = PathloadConfig()
        path = FluidPath([FluidLink(1e9, 0.9e9)])
        report = run_controller_fluid(PathloadController(cfg, rtt=0.01), path)
        assert report.termination == Termination.MAX_RATE
        assert report.low_bps >= 0.9 * cfg.max_rate_bps

    def test_max_fleets_cap_respected(self):
        """A pathological path (every fleet grey) stops at the cap."""
        cfg = PathloadConfig(initial_rate_bps=5e6, max_fleets=3)
        controller = PathloadController(cfg, rtt=0.01)
        gen = controller.run()
        action = next(gen)
        fleet_count = 0
        stream_in_fleet = 0
        try:
            while True:
                if isinstance(action, SendStream):
                    spec = action.spec
                    # half the streams increasing, half not => grey forever
                    stream_in_fleet += 1
                    rising = stream_in_fleet % 2 == 0
                    period = spec.period
                    slope = 1e-4 if rising else 0.0
                    records = [
                        PacketRecord(
                            seq=i,
                            sender_stamp=i * period,
                            recv_stamp=i * period + 0.01 + slope * i,
                        )
                        for i in range(spec.n_packets)
                    ]
                    m = StreamMeasurement(
                        spec=spec, records=records, n_sent=spec.n_packets
                    )
                    if stream_in_fleet == cfg.n_streams:
                        fleet_count += 1
                        stream_in_fleet = 0
                    action = gen.send(m)
                else:
                    action = gen.send(None)
        except StopIteration as stop:
            report = stop.value
        assert len(report.fleets) <= 3
        assert report.termination in (
            Termination.MAX_FLEETS,
            Termination.GREY_RESOLUTION,
        )

    def test_fleet_record_times_span_the_fleet(self):
        path = FluidPath([FluidLink(10e6, 4e6)])
        report = run_controller_fluid(
            PathloadController(PathloadConfig(initial_rate_bps=6e6), rtt=0.02), path
        )
        for fleet in report.fleets:
            assert fleet.t_end >= fleet.t_start
        # fleets are time-ordered
        starts = [f.t_start for f in report.fleets]
        assert starts == sorted(starts)


class TestGoldenDeterminism:
    """Seed-locked regression values: if these change, the measurement
    pipeline's behaviour changed (deliberately or not)."""

    def test_fluid_run_is_bit_stable(self):
        path = FluidPath([FluidLink(10e6, 4e6)], prop_delay=0.02)
        a = run_controller_fluid(PathloadController(rtt=0.04), path)
        b = run_controller_fluid(PathloadController(rtt=0.04), path)
        assert (a.low_bps, a.high_bps) == (b.low_bps, b.high_bps)
        # the exact converged range for this configuration
        assert a.low_bps == pytest.approx(3.515625e6)
        assert a.high_bps == pytest.approx(4.1015625e6)

    def test_des_seeded_run_is_stable_within_session(self):
        from repro import measure_avail_bw_sim

        fast = PathloadConfig(idle_factor=1.0)
        a = measure_avail_bw_sim(10e6, 0.6, seed=99, config=fast)
        b = measure_avail_bw_sim(10e6, 0.6, seed=99, config=fast)
        assert (a.low_bps, a.high_bps) == (b.low_bps, b.high_bps)
        assert [f.outcome for f in a.fleets] == [f.outcome for f in b.fleets]
