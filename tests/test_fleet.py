"""Tests for fleet-level classification and the loss rules."""

import numpy as np
import pytest

from repro.core.config import PathloadConfig
from repro.core.fleet import FleetOutcome, classify_fleet, classify_stream
from repro.core.probing import PacketRecord, StreamMeasurement, StreamSpec
from repro.core.trend import StreamClassification, StreamType


def make_measurement(owds, n_sent=None, rate=5e6, size=200):
    """Build a StreamMeasurement with the given OWDs (one record each)."""
    k = len(owds)
    spec = StreamSpec(rate_bps=rate, packet_size=size, n_packets=max(k, 2))
    period = spec.period
    records = [
        PacketRecord(seq=i, sender_stamp=i * period, recv_stamp=i * period + owd)
        for i, owd in enumerate(owds)
    ]
    return StreamMeasurement(
        spec=spec, records=records, n_sent=n_sent if n_sent is not None else k
    )


def cls(stream_type):
    return StreamClassification(stream_type=stream_type, pct=0.5, pdt=0.0, n_groups=10)


class TestClassifyStream:
    def test_increasing_owds_classified_type_i(self):
        m = make_measurement(np.linspace(0, 1e-3, 100))
        c = classify_stream(m, PathloadConfig())
        assert c.stream_type is StreamType.INCREASING

    def test_excessive_loss_is_unusable(self):
        # 100 sent, 80 received => 20% loss > 10% threshold
        m = make_measurement(np.zeros(80), n_sent=100)
        c = classify_stream(m, PathloadConfig())
        assert c.stream_type is StreamType.UNUSABLE

    def test_nearly_empty_stream_is_unusable(self):
        m = make_measurement(np.zeros(3), n_sent=100)
        assert classify_stream(m, PathloadConfig()).stream_type is StreamType.UNUSABLE

    def test_sender_rate_deviation_discards_stream(self):
        """Context switches at the sender: the receiver sees wrong gaps."""
        spec = StreamSpec(rate_bps=5e6, packet_size=200, n_packets=100)
        period = spec.period
        rng = np.random.default_rng(0)
        records = []
        t = 0.0
        for i in range(100):
            records.append(PacketRecord(seq=i, sender_stamp=t, recv_stamp=t + 0.01))
            # a third of the gaps are badly late (context switches)
            gap = period * (3.0 if rng.random() < 0.33 else 1.0)
            t += gap
        m = StreamMeasurement(spec=spec, records=records, n_sent=100)
        c = classify_stream(m, PathloadConfig())
        assert c.stream_type is StreamType.UNUSABLE

    def test_small_send_jitter_tolerated(self):
        spec = StreamSpec(rate_bps=5e6, packet_size=200, n_packets=100)
        period = spec.period
        rng = np.random.default_rng(1)
        records = []
        t = 0.0
        for i in range(100):
            records.append(PacketRecord(seq=i, sender_stamp=t, recv_stamp=t + 0.01))
            t += period * (1.0 + rng.uniform(-0.05, 0.05))
        m = StreamMeasurement(spec=spec, records=records, n_sent=100)
        c = classify_stream(m, PathloadConfig())
        assert c.stream_type is not StreamType.UNUSABLE

    def test_paper_rule_dispatch(self):
        m = make_measurement(np.linspace(0, 1e-3, 100))
        cfg = PathloadConfig(classification_rule="paper")
        assert classify_stream(m, cfg).stream_type is StreamType.INCREASING


class TestClassifyFleet:
    def setup_method(self):
        self.cfg = PathloadConfig()  # N=12, f=0.7 => need ceil(0.7*12)=9
        self.clean = [make_measurement(np.zeros(100)) for _ in range(12)]

    def test_unanimous_increasing_is_above(self):
        cs = [cls(StreamType.INCREASING)] * 12
        assert classify_fleet(cs, self.clean, self.cfg) is FleetOutcome.ABOVE

    def test_unanimous_nonincreasing_is_below(self):
        cs = [cls(StreamType.NONINCREASING)] * 12
        assert classify_fleet(cs, self.clean, self.cfg) is FleetOutcome.BELOW

    def test_exact_fraction_boundary(self):
        cs = [cls(StreamType.INCREASING)] * 9 + [cls(StreamType.NONINCREASING)] * 3
        assert classify_fleet(cs, self.clean, self.cfg) is FleetOutcome.ABOVE
        cs = [cls(StreamType.INCREASING)] * 8 + [cls(StreamType.NONINCREASING)] * 4
        assert classify_fleet(cs, self.clean, self.cfg) is FleetOutcome.GREY

    def test_split_verdict_is_grey(self):
        cs = [cls(StreamType.INCREASING)] * 6 + [cls(StreamType.NONINCREASING)] * 6
        assert classify_fleet(cs, self.clean, self.cfg) is FleetOutcome.GREY

    def test_ambiguous_streams_push_toward_grey(self):
        cs = (
            [cls(StreamType.INCREASING)] * 7
            + [cls(StreamType.AMBIGUOUS)] * 4
            + [cls(StreamType.NONINCREASING)]
        )
        # 7 < ceil(0.7*12)=9 increasing
        assert classify_fleet(cs, self.clean, self.cfg) is FleetOutcome.GREY

    def test_unusable_excluded_from_denominator(self):
        cs = [cls(StreamType.INCREASING)] * 6 + [cls(StreamType.UNUSABLE)] * 6
        # 6 usable, need ceil(0.7*6)=5 increasing: above
        assert classify_fleet(cs, self.clean, self.cfg) is FleetOutcome.ABOVE

    def test_too_few_usable_streams_aborts(self):
        cs = [cls(StreamType.INCREASING)] * 2 + [cls(StreamType.UNUSABLE)] * 10
        assert classify_fleet(cs, self.clean, self.cfg) is FleetOutcome.ABORTED_LOSS

    def test_moderate_loss_streams_abort_fleet(self):
        lossy = [make_measurement(np.zeros(95), n_sent=100) for _ in range(4)]
        measurements = lossy + self.clean[:8]
        cs = [cls(StreamType.NONINCREASING)] * 12
        # 4 streams with 5% loss > max_lossy_streams=3
        assert classify_fleet(cs, measurements, self.cfg) is FleetOutcome.ABORTED_LOSS

    def test_fraction_configurable(self):
        cfg = PathloadConfig(fleet_fraction=0.5)
        cs = [cls(StreamType.INCREASING)] * 6 + [cls(StreamType.NONINCREASING)] * 6
        assert classify_fleet(cs, self.clean, cfg) is FleetOutcome.ABOVE


class TestMeasurementAccessors:
    def test_loss_rate(self):
        m = make_measurement(np.zeros(90), n_sent=100)
        assert m.loss_rate == pytest.approx(0.1)

    def test_records_sorted_by_seq(self):
        spec = StreamSpec(rate_bps=1e6, packet_size=200, n_packets=3)
        records = [
            PacketRecord(seq=2, sender_stamp=0.2, recv_stamp=0.25),
            PacketRecord(seq=0, sender_stamp=0.0, recv_stamp=0.05),
            PacketRecord(seq=1, sender_stamp=0.1, recv_stamp=0.15),
        ]
        m = StreamMeasurement(spec=spec, records=records, n_sent=3)
        assert [r.seq for r in m.records] == [0, 1, 2]

    def test_sender_gaps_normalized_over_losses(self):
        spec = StreamSpec(rate_bps=1e6, packet_size=200, n_packets=4)
        t = spec.period
        records = [
            PacketRecord(seq=0, sender_stamp=0.0, recv_stamp=0.1),
            # seq 1 lost
            PacketRecord(seq=2, sender_stamp=2 * t, recv_stamp=0.1 + 2 * t),
            PacketRecord(seq=3, sender_stamp=3 * t, recv_stamp=0.1 + 3 * t),
        ]
        m = StreamMeasurement(spec=spec, records=records, n_sent=4)
        gaps = m.sender_gaps()
        assert np.allclose(gaps, t)

    def test_dispersion_rate(self):
        spec = StreamSpec(rate_bps=8e6, packet_size=1000, n_packets=2)
        records = [
            PacketRecord(seq=0, sender_stamp=0.0, recv_stamp=0.010),
            PacketRecord(seq=1, sender_stamp=0.001, recv_stamp=0.012),
        ]
        m = StreamMeasurement(spec=spec, records=records, n_sent=2)
        # 1 packet * 8000 bits in 2 ms = 4 Mb/s
        assert m.dispersion_rate_bps() == pytest.approx(4e6)
