"""Tests for the host clock models."""

import numpy as np
import pytest

from repro.netsim.clock import (
    NoisyClock,
    OffsetClock,
    PerfectClock,
    SkewedClock,
    make_clock,
)


class TestClocks:
    def test_perfect_clock_is_identity(self):
        clock = PerfectClock()
        for t in (0.0, 1.5, 1e6):
            assert clock.read(t) == t

    def test_offset_clock_constant_shift(self):
        clock = OffsetClock(3.25)
        assert clock.read(0.0) == 3.25
        assert clock.read(10.0) == 13.25

    def test_offset_preserves_differences(self):
        clock = OffsetClock(-7.0)
        assert clock.read(5.0) - clock.read(2.0) == pytest.approx(3.0)

    def test_skewed_clock_drift_magnitude(self):
        clock = SkewedClock(skew_ppm=50.0)
        # 50 ppm over 1 second = 50 microseconds
        assert clock.read(1.0) - 1.0 == pytest.approx(50e-6)

    def test_skew_over_stream_duration_is_nanoseconds(self):
        """The paper's claim: skew over a few-ms stream is negligible."""
        clock = SkewedClock(skew_ppm=100.0)
        stream_duration = 0.020
        distortion = (clock.read(stream_duration) - clock.read(0.0)) - stream_duration
        assert abs(distortion) < 5e-6  # microseconds at worst

    def test_noisy_clock_one_sided(self):
        rng = np.random.default_rng(0)
        clock = NoisyClock(rng, noise_max=10e-6)
        readings = np.array([clock.read(1.0) for _ in range(200)])
        assert np.all(readings >= 1.0)
        assert np.all(readings <= 1.0 + 10e-6)

    def test_noisy_clock_zero_noise(self):
        rng = np.random.default_rng(0)
        clock = NoisyClock(rng, noise_max=0.0)
        assert clock.read(2.0) == 2.0

    def test_negative_noise_rejected(self):
        with pytest.raises(ValueError):
            NoisyClock(np.random.default_rng(0), noise_max=-1e-6)


class TestFactory:
    def test_factory_kinds(self):
        assert isinstance(make_clock("perfect"), PerfectClock)
        assert isinstance(make_clock("offset", offset=1.0), OffsetClock)
        assert isinstance(make_clock("skewed", skew_ppm=10.0), SkewedClock)
        assert isinstance(
            make_clock("noisy", rng=np.random.default_rng(0)), NoisyClock
        )

    def test_noisy_requires_rng(self):
        with pytest.raises(ValueError):
            make_clock("noisy")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            make_clock("atomic")
