"""Tests for the application layer: ssthresh tuning and streaming."""

import numpy as np
import pytest

from repro.apps import compare_slow_start, compare_streamers, tuned_tcp_config
from repro.apps.streaming import AdaptiveStreamer, FixedStreamer
from repro.netsim import Simulator, build_single_hop_path
from repro.transport.tcp import TCPConfig


class TestTunedConfig:
    def test_bdp_sizing(self):
        cfg = tuned_tcp_config(8e6, 0.2)
        assert cfg.initial_ssthresh_bytes == int(8e6 * 0.2 / 8)

    def test_floor_at_four_mss(self):
        cfg = tuned_tcp_config(10e3, 0.001)
        assert cfg.initial_ssthresh_bytes == 4 * cfg.mss

    def test_base_config_preserved(self):
        base = TCPConfig(mss=500, min_rto=0.3)
        cfg = tuned_tcp_config(8e6, 0.2, base=base)
        assert cfg.mss == 500
        assert cfg.min_rto == 0.3

    def test_validation(self):
        with pytest.raises(ValueError):
            tuned_tcp_config(0.0, 0.1)
        with pytest.raises(ValueError):
            tuned_tcp_config(1e6, 0.0)


class TestSlowStartComparison:
    def test_tuning_reduces_slow_start_losses(self):
        """The Allman & Paxson use case, end-to-end."""
        comparison = compare_slow_start(seed=3)
        assert comparison.tuned.packets_dropped <= comparison.untuned.packets_dropped
        assert comparison.tuned.retransmits <= comparison.untuned.retransmits
        # and the transfer does not get slower
        assert (
            comparison.tuned.completion_time
            <= comparison.untuned.completion_time * 1.1
        )

    def test_measurement_is_sane(self):
        comparison = compare_slow_start(seed=3)
        # truth is 7 Mb/s on the default path
        assert 4e6 < comparison.measured_avail_bw_bps < 10e6


class TestStreaming:
    def test_fixed_streamer_counts_all_segments(self):
        sim = Simulator()
        rng = np.random.default_rng(0)
        setup = build_single_hop_path(sim, 10e6, 0.2, rng, prop_delay=0.01)
        streamer = FixedStreamer(sim, setup.network, rate_bps=2e6, segment_duration=1.0)
        process = sim.process(streamer.run(3))
        sim.run_until(process.done_event, limit=60.0)
        assert len(streamer.report.segments) == 3
        assert streamer.report.overall_loss_rate == 0.0
        assert streamer.report.mean_rate_bps == 2e6

    def test_adaptive_picks_within_ladder(self):
        sim = Simulator()
        rng = np.random.default_rng(1)
        setup = build_single_hop_path(sim, 10e6, 0.3, rng, prop_delay=0.01)
        ladder = (0.5e6, 1e6, 2e6, 4e6)
        streamer = AdaptiveStreamer(
            sim, setup.network, ladder_bps=ladder, segment_duration=1.0
        )
        holder = {}
        sim.schedule_at(2.0, lambda: holder.update(p=sim.process(streamer.run(2))))
        sim.run(until=2.0)
        sim.run_until(holder["p"].done_event, limit=600.0)
        assert all(r in ladder for r in streamer.report.chosen_rates())
        assert len(streamer.measurements) == 2

    def test_adaptation_beats_fixed_rate_through_a_surge(self):
        fixed, adaptive = compare_streamers(seed=4, n_segments=4)
        assert adaptive.overall_loss_rate < fixed.overall_loss_rate
        # the adaptive client downshifts after the surge
        rates = adaptive.chosen_rates()
        assert min(rates[-2:]) <= min(rates[:2])

    def test_empty_ladder_rejected(self):
        sim = Simulator()
        rng = np.random.default_rng(2)
        setup = build_single_hop_path(sim, 10e6, 0.2, rng)
        with pytest.raises(ValueError):
            AdaptiveStreamer(sim, setup.network, ladder_bps=())

    def test_bad_safety_rejected(self):
        sim = Simulator()
        rng = np.random.default_rng(3)
        setup = build_single_hop_path(sim, 10e6, 0.2, rng)
        with pytest.raises(ValueError):
            AdaptiveStreamer(sim, setup.network, ladder_bps=(1e6,), safety=0.0)
