"""Tests for the ``repro.obs`` observability layer.

The two load-bearing properties are at the top: attaching a tracer changes
*nothing* about a run (engine digest and pathload report bit-identical),
and a traced run actually captures the stream / fleet / drop structure the
observability docs promise.  The rest covers the metrics registry, the
three exporters, sweep telemetry, and the ``repro-trace`` CLI.
"""

import json
import math

import numpy as np
import pytest

from repro.core.config import PathloadConfig
from repro.netsim import LinkSpec, Simulator, build_path
from repro.netsim.topologies import Fig4Config
from repro.obs import (
    MetricsRegistry,
    TraceEvent,
    Tracer,
    events_digest,
    read_jsonl,
    summarize,
    to_perfetto,
    write_jsonl,
)
from repro.obs.cli import main as trace_main
from repro.runner import build_single_hop_path, measure_avail_bw_sim, measure_fig4_path
from repro.transport.tcp import open_connection

FAST = PathloadConfig(idle_factor=1.0)


# ----------------------------------------------------------------------
# Determinism: tracing is an observer, never a participant
# ----------------------------------------------------------------------
class TestTracedRunsAreBitIdentical:
    def test_engine_digest_with_tcp_and_drops(self):
        # A tracer-attached run refuses the flow-transit domain, so its
        # event stream is the per-packet one: compare it against an
        # untraced run with the fast path disabled (cross-mode digests
        # differ by design — the domain elides engine events).
        def run(tracer):
            sim = Simulator(sanitize=True)
            if tracer is not None:
                tracer.attach(sim)
            net = build_path(
                sim, [LinkSpec(4e6, prop_delay=0.02, buffer_bytes=20_000, name="b")]
            )
            if tracer is not None:
                tracer.register_network(net)
            open_connection(sim, net, total_bytes=300_000, start=0.0)
            sim.run(until=10.0)
            return sim.digest()

        def run_per_packet():
            sim = Simulator(sanitize=True)
            net = build_path(
                sim, [LinkSpec(4e6, prop_delay=0.02, buffer_bytes=20_000, name="b")]
            )
            open_connection(sim, net, total_bytes=300_000, start=0.0, fast=False)
            sim.run(until=10.0)
            return sim.digest()

        tracer = Tracer()
        assert run(tracer) == run_per_packet()
        # ... and the planned (untraced, fast) run is itself reproducible.
        assert run(None) == run(None)
        # ... and the trace is non-trivial: drops and cwnd events happened
        cats = {e.cat for e in tracer.events}
        assert {"link", "tcp"} <= cats

    def test_single_hop_report_equal(self):
        tracer = Tracer()
        traced = measure_avail_bw_sim(
            capacity_bps=10e6, utilization=0.6, seed=7, config=FAST, tracer=tracer
        )
        plain = measure_avail_bw_sim(
            capacity_bps=10e6, utilization=0.6, seed=7, config=FAST
        )
        assert traced == plain
        assert len(tracer.decisions) == len(traced.fleets)

    def test_fig4_point_report_equal(self):
        # The fig05-style operating point CI re-checks on every push.
        cfg = Fig4Config(tight_utilization=0.6)
        tracer = Tracer()
        traced, _ = measure_fig4_path(cfg, seed=7, config=FAST, tracer=tracer)
        plain, _ = measure_fig4_path(cfg, seed=7, config=FAST)
        assert traced == plain
        assert {"stream", "fleet"} <= {e.cat for e in tracer.events}

    def test_same_seed_same_event_digest(self):
        def trace():
            tracer = Tracer()
            measure_avail_bw_sim(
                capacity_bps=10e6, utilization=0.5, seed=3, config=FAST, tracer=tracer
            )
            return tracer

        a, b = trace(), trace()
        assert a.event_digest() == b.event_digest()
        assert a.decisions == b.decisions


# ----------------------------------------------------------------------
# Captured structure
# ----------------------------------------------------------------------
class TestTraceContent:
    @pytest.fixture(scope="class")
    def traced_run(self):
        tracer = Tracer()
        report = measure_avail_bw_sim(
            capacity_bps=10e6, utilization=0.6, seed=7, config=FAST, tracer=tracer
        )
        return tracer, report

    def test_stream_events(self, traced_run):
        tracer, _report = traced_run
        sends = [e for e in tracer.events if e.cat == "stream" and e.name == "send"]
        spans = [e for e in tracer.events if e.cat == "stream" and e.dur is not None]
        assert sends and spans
        for e in sends:
            assert e.args["n_packets"] > 0 and e.args["rate_bps"] > 0
        for e in spans:
            assert 0 <= e.args["n_received"] <= e.args["n_sent"]

    def test_fleet_decisions_audit_the_bracket(self, traced_run):
        tracer, report = traced_run
        assert [d.index for d in tracer.decisions] == list(
            range(len(tracer.decisions))
        )
        for d in tracer.decisions:
            assert d.outcome in {"R>A", "R<A", "grey", "aborted-loss"}
            assert len(d.stream_types) == len(d.pct) == len(d.pdt)
            rmin, rmax, _, _ = d.bracket_after
            assert rmin <= rmax
            assert d.t_start < d.t_end
        # the final bracket matches the published report range
        last = tracer.decisions[-1]
        assert last.bracket_after[0] == pytest.approx(report.low_bps)
        assert last.bracket_after[1] == pytest.approx(report.high_bps)

    def test_nan_pct_pdt_survive_export(self, tmp_path, traced_run):
        tracer, _report = traced_run
        # aborted/lossy streams report NaN metrics; exports map them to None
        path = tmp_path / "t.jsonl"
        tracer.write_jsonl(str(path))
        events, _snap = read_jsonl(str(path))
        for e in events:
            for vals in (e.args.get("pct"), e.args.get("pdt")):
                if vals is not None:
                    assert not any(
                        isinstance(v, float) and math.isnan(v) for v in vals
                    )

    def test_drop_events_carry_flow_and_backlog(self):
        sim = Simulator()
        tracer = Tracer().attach(sim)
        net = build_path(
            sim, [LinkSpec(2e6, prop_delay=0.01, buffer_bytes=10_000, name="b")]
        )
        tracer.register_network(net)
        open_connection(sim, net, total_bytes=200_000, start=0.0)
        sim.run(until=10.0)
        drops = [e for e in tracer.events if e.cat == "link" and e.name == "drop"]
        assert drops
        for e in drops:
            assert e.track == "b"
            assert e.args["size"] > 0
            assert e.args["backlog"] > 0

    def test_metrics_fold(self, traced_run):
        tracer, _report = traced_run
        snap = tracer.collect_metrics().snapshot()
        assert snap["repro_engine_events_executed"]["samples"][0]["value"] > 0
        assert snap["repro_engine_heap_high_water"]["samples"][0]["value"] > 0
        fwd = {
            s["labels"]["link"]: s["value"]
            for s in snap["repro_link_bytes_forwarded"]["samples"]
        }
        assert fwd["tight"] > 0
        # folding twice is stable (gauges are set, not accumulated)
        assert tracer.collect_metrics().snapshot() == snap


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------
class TestMetricsRegistry:
    def test_counter(self):
        m = MetricsRegistry()
        c = m.counter("hits", help="h")
        c.inc()
        c.inc(4)
        assert c.value == 5
        assert m.counter("hits") is c
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_high_water(self):
        g = MetricsRegistry().gauge("depth")
        g.high_water(7)
        g.high_water(3)
        assert g.value == 7
        g.set(1)
        assert g.value == 1

    def test_histogram_buckets_cumulate(self):
        h = MetricsRegistry().histogram("lat", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 5.0, 50.0):
            h.observe(v)
        samples = {(n, dict(p).get("le")): v for n, p, v in h.samples()}
        assert samples[("lat_bucket", "0.1")] == 1
        assert samples[("lat_bucket", "1.0")] == 3
        assert samples[("lat_bucket", "10.0")] == 4
        assert samples[("lat_bucket", "+Inf")] == 5
        assert samples[("lat_count", None)] == 5
        assert samples[("lat_sum", None)] == pytest.approx(56.05)

    def test_labels_make_distinct_series(self):
        m = MetricsRegistry()
        a = m.counter("c", labels={"link": "a"})
        b = m.counter("c", labels={"link": "b"})
        assert a is not b
        a.inc()
        assert (a.value, b.value) == (1, 0)

    def test_kind_conflict_rejected(self):
        m = MetricsRegistry()
        m.counter("x")
        with pytest.raises(TypeError):
            m.gauge("x")
        with pytest.raises(TypeError):
            m.gauge("x", labels={"l": "1"})  # even under a fresh label set

    def test_prometheus_text_is_deterministic(self):
        def build():
            m = MetricsRegistry()
            m.counter("b_total", labels={"z": "2"}, help="b").inc(2)
            m.counter("b_total", labels={"a": "1"}).inc(1)
            m.gauge("a_gauge", help="a").set(1.5)
            return m.to_prometheus()

        text = build()
        assert text == build()
        assert text.index("a_gauge") < text.index("b_total")
        assert "# TYPE a_gauge gauge" in text
        assert "# HELP b_total b" in text
        assert 'b_total{a="1"} 1' in text
        assert "a_gauge 1.5" in text


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------
def _sample_events():
    return [
        TraceEvent(ts=1.0, name="send", cat="stream", track="probe-0",
                   args={"rate_bps": 5e6}),
        TraceEvent(ts=1.0, name="stream", cat="stream", track="probe-0", dur=0.5,
                   args={"n_sent": 100, "n_received": 98}),
        TraceEvent(ts=2.5, name="drop", cat="link", track="tight",
                   args={"size": 1500, "bad": float("nan")}),
    ]


class TestExporters:
    def test_jsonl_round_trip(self, tmp_path):
        events = _sample_events()
        path = tmp_path / "t.jsonl"
        write_jsonl(events, str(path))
        back, snapshot = read_jsonl(str(path))
        assert snapshot is None
        assert events_digest(back) == events_digest(events)
        assert [e.name for e in back] == [e.name for e in events]
        # NaN arg came back as None, identically in both digests
        assert back[2].args["bad"] is None

    def test_jsonl_header_validated(self, tmp_path):
        path = tmp_path / "bogus.jsonl"
        path.write_text('{"format": "something-else"}\n')
        with pytest.raises(ValueError, match="not a repro-trace"):
            read_jsonl(str(path))

    def test_wall_args_excluded_from_digest(self):
        a = TraceEvent(ts=0.0, name="task", cat="sweep", track="sweep",
                       args={"index": 0, "wall_s": 0.123})
        b = TraceEvent(ts=0.0, name="task", cat="sweep", track="sweep",
                       args={"index": 0, "wall_s": 9.876})
        c = TraceEvent(ts=0.0, name="task", cat="sweep", track="sweep",
                       args={"index": 1, "wall_s": 0.123})
        assert events_digest([a]) == events_digest([b])
        assert events_digest([a]) != events_digest([c])

    def test_perfetto_structure(self):
        doc = to_perfetto(_sample_events())
        assert doc["displayTimeUnit"] == "ms"
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        body = [e for e in doc["traceEvents"] if e["ph"] != "M"]
        thread_names = {e["args"]["name"] for e in meta
                        if e["name"] == "thread_name"}
        assert {"probe-0", "tight"} <= thread_names
        # one tid per track, sim seconds scaled to microseconds
        span = next(e for e in body if e["ph"] == "X")
        assert span["ts"] == pytest.approx(1.0 * 1e6)
        assert span["dur"] == pytest.approx(0.5 * 1e6)
        instants = [e for e in body if e["ph"] == "i"]
        assert all(e["s"] == "t" for e in instants)
        assert [e["ts"] for e in body] == sorted(e["ts"] for e in body)

    def test_summarize(self):
        info = summarize(_sample_events())
        assert info["n_events"] == 3
        assert info["by_cat"] == {"stream": 2, "link": 1}
        assert info["t_start"] == 1.0 and info["t_end"] == 2.5
        assert info["digest"] == events_digest(_sample_events())


# ----------------------------------------------------------------------
# Sweep telemetry
# ----------------------------------------------------------------------
def _sweep_work(x, rng=None):
    return {"doubled": x * 2}


class TestSweepTelemetry:
    def test_cache_hits_and_wall_times(self, tmp_path):
        from repro.parallel import SweepTask, run_sweep

        tasks = [
            SweepTask(experiment="demo", fn=_sweep_work, kwargs={"x": i})
            for i in range(3)
        ]
        tracer = Tracer()
        first = run_sweep(tasks, jobs=1, cache_dir=str(tmp_path), tracer=tracer)
        second = run_sweep(tasks, jobs=1, cache_dir=str(tmp_path), tracer=tracer)
        assert all(o.ok for o in first + second)
        assert all(o.wall_s is not None and o.wall_s >= 0 for o in first)
        snap = tracer.metrics.snapshot()
        hits = snap["repro_sweep_cache_hits_total"]["samples"][0]["value"]
        misses = snap["repro_sweep_cache_misses_total"]["samples"][0]["value"]
        assert (misses, hits) == (3, 3)
        assert snap["repro_sweep_task_wall_seconds"]["samples"]
        events = [e for e in tracer.events if e.cat == "sweep"]
        assert len(events) == 6
        # host_ prefix marks executor-layout facts the digest excludes
        assert {e.args["host_cached"] for e in events} == {False, True}
        # sweep timestamps are submission indices, not wall clock
        assert sorted(e.ts for e in events) == [0.0, 0.0, 1.0, 1.0, 2.0, 2.0]

    def test_default_tracer_hook(self, tmp_path):
        from repro.parallel import SweepTask, run_sweep, set_default_tracer

        tracer = Tracer()
        previous = set_default_tracer(tracer)
        try:
            run_sweep(
                [SweepTask(experiment="demo", fn=_sweep_work, kwargs={"x": 5})],
                jobs=1, cache_dir=str(tmp_path),
            )
        finally:
            assert set_default_tracer(previous) is tracer
        assert [e.cat for e in tracer.events] == ["sweep"]


# ----------------------------------------------------------------------
# repro-trace CLI
# ----------------------------------------------------------------------
class TestTraceCli:
    @pytest.fixture()
    def trace_file(self, tmp_path):
        tracer = Tracer()
        measure_avail_bw_sim(
            capacity_bps=10e6, utilization=0.5, seed=2, config=FAST, tracer=tracer
        )
        path = tmp_path / "run.jsonl"
        tracer.write_jsonl(str(path))
        return str(path)

    def test_summarize(self, trace_file, capsys):
        assert trace_main(["summarize", trace_file]) == 0
        out = capsys.readouterr().out
        assert "cat fleet" in out and "cat stream" in out
        assert "digest" in out

    def test_perfetto_convert(self, trace_file, tmp_path, capsys):
        out_path = tmp_path / "run.perfetto.json"
        assert trace_main(["perfetto", trace_file, "-o", str(out_path)]) == 0
        doc = json.loads(out_path.read_text())
        assert doc["traceEvents"]

    def test_diff_identical_and_divergent(self, trace_file, tmp_path, capsys):
        assert trace_main(["diff", trace_file, trace_file]) == 0
        assert "identical" in capsys.readouterr().out
        other = tmp_path / "other.jsonl"
        tracer = Tracer()
        measure_avail_bw_sim(
            capacity_bps=10e6, utilization=0.7, seed=2, config=FAST, tracer=tracer
        )
        tracer.write_jsonl(str(other))
        assert trace_main(["diff", trace_file, str(other)]) == 1
        assert "first divergence" in capsys.readouterr().out

    def test_missing_file_exits_2(self, tmp_path, capsys):
        assert trace_main(["summarize", str(tmp_path / "nope.jsonl")]) == 2
        assert "repro-trace" in capsys.readouterr().err


# ----------------------------------------------------------------------
# repro-pathload --trace end-to-end
# ----------------------------------------------------------------------
class TestPathloadCliTrace:
    def test_measure_writes_trace(self, tmp_path, capsys):
        from repro.cli import main as pathload_main

        path = tmp_path / "run.jsonl"
        code = pathload_main([
            "measure", "--capacity", "10", "--utilization", "0.8",
            "--seed", "4", "--buffer-kb", "15", "--trace", str(path),
        ])
        assert code == 0
        events, snapshot = read_jsonl(str(path))
        assert events and snapshot is not None
        # the acceptance triple: streams, fleet decisions, and link drops
        assert {"stream", "fleet", "link"} <= {e.cat for e in events}
