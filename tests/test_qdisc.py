"""Tests for the RED queue discipline."""

import numpy as np
import pytest

from repro.netsim import LinkSpec, Simulator, build_path
from repro.netsim.qdisc import REDQueue
from repro.transport.tcp import TCPConfig, open_connection


class TestREDUnit:
    def make(self, **kwargs):
        defaults = dict(
            min_th_bytes=10_000,
            max_th_bytes=30_000,
            rng=np.random.default_rng(0),
            weight=0.5,  # fast-moving average for unit tests
        )
        defaults.update(kwargs)
        return REDQueue(**defaults)

    def test_no_drops_below_min_threshold(self):
        red = self.make()
        for _ in range(100):
            assert not red.should_drop(5_000, 1500, 0.0, 1e6)
        assert red.early_drops == 0

    def test_forced_drops_above_max_threshold(self):
        red = self.make()
        # drive the average above max_th
        for _ in range(20):
            red.should_drop(50_000, 1500, 0.0, 1e6)
        assert red.forced_drops > 0
        assert red.should_drop(50_000, 1500, 0.0, 1e6) is True

    def test_probabilistic_drops_in_linear_region(self):
        red = self.make(max_p=0.5)
        decisions = [red.should_drop(20_000, 1500, 0.0, 1e6) for _ in range(400)]
        drop_rate = sum(decisions) / len(decisions)
        assert 0.05 < drop_rate < 0.95  # some but not all

    def test_average_decays_when_idle(self):
        red = self.make()
        for _ in range(10):
            red.should_drop(25_000, 1500, 0.0, 1e6)
        high_avg = red.avg
        # queue empty for a long time at high capacity: average collapses
        red.should_drop(0, 1500, 10.0, 1e9)
        red.should_drop(0, 1500, 20.0, 1e9)
        assert red.avg < high_avg / 2

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"min_th_bytes": 0, "max_th_bytes": 100},
            {"min_th_bytes": 200, "max_th_bytes": 100},
            {"max_p": 0.0},
            {"max_p": 1.5},
            {"weight": 0.0},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        defaults = dict(
            min_th_bytes=10_000, max_th_bytes=30_000, rng=np.random.default_rng(0)
        )
        defaults.update(kwargs)
        with pytest.raises(ValueError):
            REDQueue(**defaults)


class TestREDOnLink:
    def build(self, qdisc):
        sim = Simulator()
        net = build_path(
            sim,
            [
                LinkSpec(8e6, prop_delay=0.05, buffer_bytes=170_000, name="tight"),
            ],
        )
        net.forward_links[0].qdisc = qdisc
        return sim, net

    def test_red_keeps_tcp_queue_shorter_than_droptail(self):
        """The AQM property: early drops cap the standing queue."""

        def max_backlog(qdisc):
            sim, net = self.build(qdisc)
            snd, rcv = open_connection(
                sim, net, config=TCPConfig(min_rto=0.5), start=0.0
            )
            worst = 0
            for t in np.arange(1.0, 40.0, 0.2):
                sim.run(until=float(t))
                worst = max(worst, net.forward_links[0].backlog_bytes())
            snd.stop()
            return worst

        droptail = max_backlog(None)
        red = max_backlog(
            REDQueue(
                min_th_bytes=15_000,
                max_th_bytes=60_000,
                rng=np.random.default_rng(1),
            )
        )
        assert red < 0.7 * droptail

    def test_red_drops_counted_in_link_stats(self):
        qdisc = REDQueue(
            min_th_bytes=5_000, max_th_bytes=20_000, rng=np.random.default_rng(2)
        )
        sim, net = self.build(qdisc)
        snd, rcv = open_connection(sim, net, config=TCPConfig(min_rto=0.5), start=0.0)
        sim.run(until=30.0)
        snd.stop()
        assert net.forward_links[0].stats.packets_dropped > 0
        assert (
            qdisc.early_drops + qdisc.forced_drops
            == net.forward_links[0].stats.packets_dropped
        )
