"""End-to-end tests of the pathload controller over the fluid model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    FluidLink,
    FluidPath,
    PathloadConfig,
    PathloadController,
    Termination,
    run_controller_fluid,
)
from repro.core.probing import Idle, SendStream, stream_spec_for_rate


class TestStreamSpecSelection:
    def test_normal_rate_uses_min_period(self):
        spec = stream_spec_for_rate(48e6)
        # L = R * Tmin / 8 = 600 B, within [200, 1500]
        assert spec.packet_size == 600
        assert spec.period == pytest.approx(100e-6)

    def test_low_rate_stretches_period(self):
        spec = stream_spec_for_rate(1e6)
        assert spec.packet_size == 200
        assert spec.period == pytest.approx(200 * 8 / 1e6)

    def test_high_rate_stays_at_or_above_min_period(self):
        spec = stream_spec_for_rate(119e6)
        assert spec.packet_size <= 1500
        assert spec.period >= 100e-6 - 1e-12

    def test_max_rate_uses_mtu(self):
        spec = stream_spec_for_rate(120e6)
        assert spec.packet_size == 1500
        assert spec.period == pytest.approx(100e-6)

    def test_rate_beyond_maximum_rejected(self):
        with pytest.raises(ValueError, match="maximum measurable"):
            stream_spec_for_rate(121e6)

    def test_round_trip_rate_preserved(self):
        for rate in (0.5e6, 5e6, 50e6, 100e6):
            spec = stream_spec_for_rate(rate)
            assert spec.packet_size * 8 / spec.period == pytest.approx(rate)


class TestConvergenceOnFluidPaths:
    def test_brackets_constant_avail_bw(self):
        path = FluidPath([FluidLink(10e6, 4e6)], prop_delay=0.02)
        report = run_controller_fluid(PathloadController(rtt=0.04), path)
        assert report.low_bps <= 4e6 <= report.high_bps
        assert report.termination in (Termination.RESOLUTION, Termination.GREY_RESOLUTION)

    def test_resolution_width_without_grey(self):
        path = FluidPath([FluidLink(10e6, 4e6)], prop_delay=0.02)
        cfg = PathloadConfig(resolution_bps=0.5e6)
        report = run_controller_fluid(PathloadController(cfg, rtt=0.04), path)
        if report.termination == Termination.RESOLUTION:
            assert report.width_bps <= 0.5e6

    @pytest.mark.parametrize("avail_mbps", [1.0, 4.0, 8.0, 25.0, 60.0, 95.0])
    def test_brackets_across_magnitudes(self, avail_mbps):
        avail = avail_mbps * 1e6
        path = FluidPath([FluidLink(max(avail * 1.6, 10e6), avail)], prop_delay=0.02)
        report = run_controller_fluid(PathloadController(rtt=0.04), path)
        assert report.low_bps <= avail * (1 + 1e-9)
        assert avail <= report.high_bps * (1 + 1e-9)

    def test_multihop_path(self):
        path = FluidPath(
            [FluidLink(30e6, 12e6), FluidLink(10e6, 4e6), FluidLink(30e6, 12e6)],
            prop_delay=0.05,
        )
        report = run_controller_fluid(PathloadController(rtt=0.1), path)
        assert report.low_bps <= 4e6 <= report.high_bps

    def test_explicit_initial_rate_skips_dispersion_probe(self):
        path = FluidPath([FluidLink(10e6, 4e6)])
        cfg = PathloadConfig(initial_rate_bps=6e6)
        report = run_controller_fluid(PathloadController(cfg, rtt=0.02), path)
        assert report.low_bps <= 4e6 <= report.high_bps
        # first fleet probes the configured rate
        assert report.fleets[0].rate_bps == pytest.approx(6e6)

    def test_report_counts_streams(self):
        path = FluidPath([FluidLink(10e6, 4e6)])
        report = run_controller_fluid(PathloadController(rtt=0.02), path)
        expected = sum(len(f.measurements) for f in report.fleets) + 1  # +initial
        assert report.n_streams_sent == expected

    def test_noise_tolerance_moderate(self):
        """With modest OWD noise the range still brackets the truth."""
        path = FluidPath([FluidLink(10e6, 4e6)], prop_delay=0.02)
        rng = np.random.default_rng(5)
        report = run_controller_fluid(
            PathloadController(rtt=0.04), path, noise_rng=rng, noise_std=20e-6
        )
        assert report.low_bps <= 4e6 <= report.high_bps

    def test_clock_offset_invariance(self):
        """A constant clock offset must not change the report at all."""
        path = FluidPath([FluidLink(10e6, 4e6)], prop_delay=0.02)
        a = run_controller_fluid(PathloadController(rtt=0.04), path, clock_offset=0.0)
        b = run_controller_fluid(PathloadController(rtt=0.04), path, clock_offset=42.0)
        assert a.low_bps == pytest.approx(b.low_bps, rel=1e-9)
        assert a.high_bps == pytest.approx(b.high_bps, rel=1e-9)


class TestControllerProtocol:
    def test_actions_are_streams_and_idles(self):
        ctl = PathloadController(PathloadConfig(initial_rate_bps=5e6), rtt=0.02)
        gen = ctl.run()
        action = next(gen)
        assert isinstance(action, SendStream)
        path = FluidPath([FluidLink(10e6, 4e6)])
        m = path.measure_stream(action.spec)
        action = gen.send(m)
        assert isinstance(action, Idle)
        assert action.duration >= 0.02  # at least the RTT

    def test_idle_respects_idle_factor(self):
        cfg = PathloadConfig(initial_rate_bps=5e6, idle_factor=9.0)
        ctl = PathloadController(cfg, rtt=0.001)
        gen = ctl.run()
        action = next(gen)
        spec = action.spec
        path = FluidPath([FluidLink(10e6, 4e6)])
        idle = gen.send(path.measure_stream(spec))
        assert idle.duration == pytest.approx(max(0.001, 9.0 * spec.duration))

    def test_invalid_rtt_rejected(self):
        with pytest.raises(ValueError):
            PathloadController(rtt=0.0)


class TestSaturatedPath:
    def test_nearly_zero_avail_bw_reports_saturated_range(self):
        path = FluidPath([FluidLink(10e6, 0.05e6)])
        cfg = PathloadConfig(min_rate_bps=200e3)
        report = run_controller_fluid(PathloadController(cfg, rtt=0.02), path)
        # search collapses to the floor; reported range must cover the truth
        assert report.low_bps <= 0.05e6
        assert report.high_bps <= 2e6
        assert report.termination in (
            Termination.SATURATED,
            Termination.RESOLUTION,
            Termination.GREY_RESOLUTION,
        )


class TestPropertyBasedConvergence:
    @given(
        avail=st.floats(0.5e6, 100e6),
        cap_factor=st.floats(1.05, 20.0),
        seed=st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_fluid_convergence_brackets_truth(self, avail, cap_factor, seed):
        capacity = min(avail * cap_factor, 1e9)
        path = FluidPath([FluidLink(capacity, avail)], prop_delay=0.01)
        rng = np.random.default_rng(seed)
        report = run_controller_fluid(
            PathloadController(rtt=0.02), path, noise_rng=rng, noise_std=5e-6
        )
        low, high = report.low_bps, report.high_bps
        omega = PathloadConfig().resolution_bps
        # allow one resolution step of slack around the truth
        assert low - omega <= avail <= high + omega
