"""Tests for the path/topology builders and the PathNetwork forwarding."""

import numpy as np
import pytest

from repro.netsim import (
    Fig4Config,
    LinkSpec,
    Packet,
    Simulator,
    build_fig4_path,
    build_path,
    build_single_hop_path,
    build_two_link_path,
)


class TestPathNetwork:
    def test_forward_traverses_all_links(self):
        sim = Simulator()
        net = build_path(
            sim, [LinkSpec(10e6, prop_delay=0.01), LinkSpec(10e6, prop_delay=0.01)]
        )
        got = []
        net.send_forward(Packet(1000), lambda p: got.append(sim.now))
        sim.run()
        # 2 x (0.8 ms serialization + 10 ms prop)
        assert got[0] == pytest.approx(2 * (0.0008 + 0.01))

    def test_reverse_path_default_is_single_link(self):
        sim = Simulator()
        net = build_path(sim, [LinkSpec(10e6, prop_delay=0.02)])
        assert len(net.reverse_links) == 1
        assert net.reverse_links[0].prop_delay == pytest.approx(0.02)

    def test_min_rtt_includes_serialization(self):
        sim = Simulator()
        net = build_path(sim, [LinkSpec(10e6, prop_delay=0.01)])
        rtt = net.min_rtt(probe_size=1250)
        # fwd: 10 ms prop + 1 ms ser; rev (1 Gb/s): 10 ms prop + 10 us ser
        assert rtt == pytest.approx(0.01 + 0.001 + 0.01 + 1250 * 8 / 1e9)

    def test_capacity_is_narrow_link(self):
        sim = Simulator()
        net = build_path(sim, [LinkSpec(10e6), LinkSpec(5e6), LinkSpec(20e6)])
        assert net.capacity_bps == 5e6
        assert net.narrow_link.capacity_bps == 5e6

    def test_dropped_packet_never_reaches_handler(self):
        sim = Simulator()
        net = build_path(sim, [LinkSpec(1e6, buffer_bytes=1000)])
        got = []
        net.send_forward(Packet(900), got.append)
        net.send_forward(Packet(900), got.append)  # dropped
        sim.run()
        assert len(got) == 1

    def test_empty_path_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            build_path(sim, [])


class TestFig4Topology:
    def test_default_parameters_match_paper(self):
        cfg = Fig4Config()
        assert cfg.hops == 5
        assert cfg.tight_capacity_bps == 10e6
        assert cfg.avail_bw_bps == pytest.approx(4e6)

    def test_derived_nontight_capacity(self):
        cfg = Fig4Config(
            tight_capacity_bps=10e6,
            tight_utilization=0.6,
            tightness_factor=0.3,
            nontight_utilization=0.2,
        )
        # A_t = 4, A_x = 13.33, C_x = 16.67 Mb/s
        assert cfg.nontight_avail_bw_bps == pytest.approx(4e6 / 0.3)
        assert cfg.nontight_capacity_bps == pytest.approx(4e6 / 0.3 / 0.8)

    def test_tight_link_in_middle(self):
        sim = Simulator()
        setup = build_fig4_path(sim, Fig4Config(hops=5), np.random.default_rng(0))
        assert setup.tight_link is setup.network.forward_links[2]
        assert setup.tight_link.capacity_bps == 10e6

    def test_beta_one_makes_all_links_tight(self):
        cfg = Fig4Config(tightness_factor=1.0, nontight_utilization=0.2)
        assert cfg.nontight_avail_bw_bps == pytest.approx(cfg.tight_avail_bw_bps)

    def test_cross_traffic_loads_each_link(self):
        sim = Simulator()
        cfg = Fig4Config(hops=3, sources_per_link=5)
        setup = build_fig4_path(sim, cfg, np.random.default_rng(1))
        sim.run(until=10.0)
        for i, link in enumerate(setup.network.forward_links):
            util = link.stats.bytes_forwarded * 8 / 10.0 / link.capacity_bps
            expected = (
                cfg.tight_utilization if i == 1 else cfg.nontight_utilization
            )
            assert util == pytest.approx(expected, rel=0.25)

    def test_propagation_split_evenly(self):
        sim = Simulator()
        setup = build_fig4_path(
            sim, Fig4Config(hops=5, total_prop_delay=0.05), np.random.default_rng(2)
        )
        assert setup.network.one_way_prop_delay() == pytest.approx(0.05)

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            Fig4Config(hops=0)
        with pytest.raises(ValueError):
            Fig4Config(tight_utilization=1.0)
        with pytest.raises(ValueError):
            Fig4Config(tightness_factor=0.0)
        with pytest.raises(ValueError):
            Fig4Config(tightness_factor=1.2)


class TestOtherTopologies:
    def test_single_hop_truth(self):
        sim = Simulator()
        setup = build_single_hop_path(sim, 10e6, 0.3, np.random.default_rng(0))
        assert setup.avail_bw_bps == pytest.approx(7e6)
        assert setup.capacity_bps == 10e6

    def test_two_link_narrow_differs_from_tight(self):
        sim = Simulator()
        setup = build_two_link_path(
            sim,
            narrow_capacity_bps=100e6,
            narrow_utilization=0.1,
            tight_capacity_bps=155e6,
            tight_utilization=0.6,
            rng=np.random.default_rng(0),
        )
        assert setup.capacity_bps == 100e6  # narrow
        assert setup.avail_bw_bps == pytest.approx(155e6 * 0.4)  # tight
        assert setup.tight_link.capacity_bps == 155e6

    def test_two_link_rejects_wrong_tightness(self):
        sim = Simulator()
        with pytest.raises(ValueError, match="tight"):
            build_two_link_path(
                sim,
                narrow_capacity_bps=10e6,
                narrow_utilization=0.9,
                tight_capacity_bps=155e6,
                tight_utilization=0.0,
                rng=np.random.default_rng(0),
            )
