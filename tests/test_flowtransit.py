"""Equivalence tests for the event-elided TCP flow transit.

The flow-transit domain's contract mirrors the stream fast path's: bit
identity, with ``==`` and never ``approx``.  Every sender/receiver
observable — sequence state, cwnd trajectory, RTT estimator internals,
delivery log, link statistics — must equal what the per-packet path
produces on every eligible configuration, because the domain walks the
same per-hop Lindley recursion in the same floating-point order.
Ineligible flows (Vegas is carried with its real transport code under
the domain's shims, tracer-attached runs are refused) and mid-flight
eligibility breaks (link decommission while an RTO timer is pending)
must land on a sample path identical to a run that never planned.

The headline regression here is intrusiveness (paper Section VII /
figs 17-18): a *planned* foreground TCP flow no longer claims the
network for per-packet operation, so concurrent SLoPS probe streams are
adopted into the domain's walk instead of being refused with
``foreground-active``.
"""

import numpy as np
import pytest

from repro.core.probing import StreamSpec
from repro.netsim import LinkSpec, Simulator, build_path
from repro.netsim.qdisc import REDQueue
from repro.netsim.topologies import build_single_hop_path
from repro.transport.probe import ProbeChannel
from repro.transport.tcp import TCPConfig, open_connection


# ----------------------------------------------------------------------
# Drivers
# ----------------------------------------------------------------------
def flow_state(snd, rcv):
    """Every observable a TCP connection exposes, as an ``==``-able tuple."""
    return (
        snd.snd_una,
        snd.snd_nxt,
        snd.cwnd,
        snd.ssthresh,
        snd.srtt,
        snd.rttvar,
        snd.rto,
        snd.base_rtt,
        snd.segments_sent,
        snd.retransmits,
        snd.timeouts,
        tuple(snd.cwnd_log),
        rcv.rcv_nxt,
        rcv.acks_sent,
        tuple(rcv.delivered_log),
        tuple(sorted(rcv._out_of_order.items())),
    )


def run_flow(
    fast,
    cc="reno",
    delayed_ack=False,
    buffer_bytes=None,
    hops=1,
    utilization=0.0,
    total_bytes=600_000,
    until=30.0,
    sanitize=False,
    min_rto=0.5,
    seed=7,
    n_streams=0,
    stream_start=0.05,
    mutate_at=None,
    mutate=None,
    second_flow_at=None,
):
    """One TCP transfer (plus optional concurrent probe streams)."""
    sim = Simulator(sanitize=sanitize)
    if utilization > 0.0:
        rng = np.random.default_rng(seed)
        setup = build_single_hop_path(
            sim, 10e6, utilization, rng, buffer_bytes=buffer_bytes
        )
        net = setup.network
    else:
        specs = [
            LinkSpec(10e6, prop_delay=1e-3, buffer_bytes=buffer_bytes, name=f"hop{i}")
            for i in range(hops)
        ]
        net = build_path(sim, specs)
    cfg = TCPConfig(
        congestion_control=cc, delayed_ack=delayed_ack, min_rto=min_rto
    )
    snd, rcv = open_connection(
        sim, net, config=cfg, total_bytes=total_bytes, start=0.0, fast=fast
    )
    flows = [(snd, rcv)]
    if second_flow_at is not None:
        snd2, rcv2 = open_connection(
            sim,
            net,
            config=cfg,
            total_bytes=total_bytes // 2,
            start=second_flow_at,
            fast=fast,
        )
        flows.append((snd2, rcv2))
    chan = None
    measurements = []
    if n_streams:
        chan = ProbeChannel(sim, net, fast=fast)
        spec = StreamSpec(rate_bps=4e6, packet_size=300, n_packets=40)

        def launch(i):
            ev = chan.send_stream(spec)
            ev.add_callback(
                lambda m: measurements.append(
                    (
                        m.n_sent,
                        m.n_received,
                        tuple(
                            (r.seq, r.sender_stamp, r.recv_stamp)
                            for r in m.records
                        ),
                    )
                )
            )

        for i in range(n_streams):
            sim.schedule_at(stream_start + 0.0513 * i, launch, i)
    if mutate_at is not None:
        sim.schedule_at(mutate_at, mutate, net)
    sim.run(until=until)
    states = tuple(flow_state(s, r) for s, r in flows)
    stats = tuple(lk.stats.snapshot() for lk in net.forward_links)
    return states, stats, measurements, net, chan


MATRIX = [
    # (cc, delayed_ack, buffer_bytes, hops, utilization)
    ("reno", False, None, 1, 0.0),
    ("reno", False, None, 2, 0.0),
    ("reno", False, 25_000, 1, 0.0),  # finite buffer: loss recovery + RTO
    ("reno", False, 25_000, 1, 0.3),  # ... plus cross traffic
    ("reno", True, None, 1, 0.0),  # delayed ack: receiver off-kernel
    ("reno", True, 25_000, 1, 0.3),
    ("vegas", False, None, 1, 0.0),  # Vegas: sender off-kernel
    ("vegas", True, 25_000, 1, 0.3),
]


# ----------------------------------------------------------------------
# The bit-equality matrix
# ----------------------------------------------------------------------
class TestEquality:
    @pytest.mark.parametrize("cc,delack,buf,hops,util", MATRIX)
    def test_flow_matrix(self, cc, delack, buf, hops, util):
        kwargs = dict(
            cc=cc, delayed_ack=delack, buffer_bytes=buf, hops=hops,
            utilization=util,
        )
        stf, sf, _, netf, _ = run_flow(True, **kwargs)
        sts, ss, _, _, _ = run_flow(False, **kwargs)
        assert stf == sts
        assert sf == ss
        assert netf._ft_flows == 1

    def test_two_planned_flows_share_domain(self):
        kwargs = dict(total_bytes=300_000, second_flow_at=0.31003)
        stf, sf, _, netf, _ = run_flow(True, **kwargs)
        sts, ss, _, _, _ = run_flow(False, **kwargs)
        assert stf == sts
        assert sf == ss
        assert netf._ft_flows == 2

    def test_sanitize_shadow_verification_passes(self):
        st1, s1, _, _, _ = run_flow(True, sanitize=True, utilization=0.3)
        st2, s2, _, _, _ = run_flow(True, sanitize=False, utilization=0.3)
        assert st1 == st2 and s1 == s2

    def test_flow_spans_recorded(self):
        _, _, _, net, _ = run_flow(True, total_bytes=100_000)
        assert len(net._ft_spans) == 1
        t0, t1, flow_id, segments = net._ft_spans[0]
        assert t1 > t0 and segments > 0


# ----------------------------------------------------------------------
# Probe coexistence (the figs 17-18 intrusiveness fix)
# ----------------------------------------------------------------------
class TestProbeCoexistence:
    def test_probe_not_refused_while_flow_planned(self):
        # The regression this PR exists for: with the foreground flow
        # planner-managed, probe streams are adopted, not refused.
        kwargs = dict(n_streams=3, utilization=0.3, total_bytes=2_000_000)
        stf, sf, mf, netf, chf = run_flow(True, **kwargs)
        assert chf.fastpath_streams == 3
        assert "foreground-active" not in chf.fastpath_fallbacks
        assert netf._ft_flows == 1
        sts, ss, ms, _, chs = run_flow(False, **kwargs)
        assert stf == sts
        assert sf == ss
        assert mf == ms

    def test_per_packet_flow_still_refuses_probes(self):
        # A flow that genuinely runs per-packet (fast=False) claims the
        # network, so probe planning must still fall back.
        sim = Simulator()
        rng = np.random.default_rng(7)
        setup = build_single_hop_path(sim, 10e6, 0.3, rng)
        net = setup.network
        open_connection(
            sim, net, config=TCPConfig(min_rto=0.5), total_bytes=2_000_000,
            start=0.0, fast=False,
        )
        chan = ProbeChannel(sim, net, fast=True)
        spec = StreamSpec(rate_bps=4e6, packet_size=300, n_packets=40)
        sim.schedule_at(0.05, lambda: chan.send_stream(spec))
        sim.run(until=5.0)
        assert chan.fastpath_streams == 0
        assert chan.fastpath_fallbacks == {"foreground-active": 1}

    def test_flow_attach_revokes_solo_stream_plan(self):
        # Probe stream planned solo first; the TCP flow attaching mid-
        # stream revokes it under the familiar "foreign-send" label, and
        # the sample path still matches per-packet exactly.
        def run(fast):
            sim = Simulator()
            net = build_path(sim, [LinkSpec(10e6, prop_delay=1e-3)])
            chan = ProbeChannel(sim, net, fast=fast)
            spec = StreamSpec(rate_bps=4e6, packet_size=300, n_packets=200)
            out = []
            def launch():
                ev = chan.send_stream(spec)
                ev.add_callback(
                    lambda m: out.append(
                        tuple(
                            (r.seq, r.sender_stamp, r.recv_stamp)
                            for r in m.records
                        )
                    )
                )
            sim.schedule_at(1.0, launch)
            snd, rcv = open_connection(
                sim, net, config=TCPConfig(min_rto=0.5),
                total_bytes=200_000, start=1.0123457, fast=fast,
            )
            sim.run(until=10.0)
            return out, flow_state(snd, rcv), chan
        outf, stf, chf = run(True)
        outs, sts, _ = run(False)
        assert outf == outs
        assert stf == sts
        assert chf.fastpath_fallbacks.get("foreign-send") == 1


# ----------------------------------------------------------------------
# Mid-flight revocation
# ----------------------------------------------------------------------
class TestRevocation:
    def test_link_decommission_dissolves_domain(self):
        # Installing a qdisc mid-transfer (with segments in virtual
        # flight and an RTO timer pending) must dissolve the domain onto
        # the per-packet path with an unchanged sample path.
        def mutate(net):
            net.forward_links[0].qdisc = REDQueue(
                1 << 29, 1 << 30, np.random.default_rng(3)
            )

        kwargs = dict(
            total_bytes=2_000_000, mutate_at=0.2000123, mutate=mutate
        )
        stf, sf, _, netf, _ = run_flow(True, **kwargs)
        sts, ss, _, _, _ = run_flow(False, **kwargs)
        assert stf == sts
        assert netf._ft_flows == 1
        assert netf._ft_fallbacks == {"link-decommission": 1}

    def test_decommission_with_adopted_streams(self):
        def mutate(net):
            net.forward_links[0].qdisc = REDQueue(
                1 << 29, 1 << 30, np.random.default_rng(3)
            )

        kwargs = dict(
            total_bytes=2_000_000, utilization=0.3, n_streams=3,
            mutate_at=0.1070123, mutate=mutate,
        )
        stf, sf, mf, netf, chf = run_flow(True, **kwargs)
        sts, ss, ms, _, _ = run_flow(False, **kwargs)
        assert stf == sts
        assert sf == ss
        assert mf == ms
        assert netf._ft_fallbacks == {"link-decommission": 1}

    def test_stop_detaches_cleanly(self):
        def run(fast):
            sim = Simulator()
            net = build_path(sim, [LinkSpec(10e6, prop_delay=1e-3)])
            snd, rcv = open_connection(
                sim, net, config=TCPConfig(min_rto=0.5),
                total_bytes=10_000_000, start=0.0, fast=fast,
            )
            sim.schedule_at(1.5000123, snd.stop)
            sim.run(until=5.0)
            return flow_state(snd, rcv)

        assert run(True) == run(False)

    def test_capacity_schedule_refuses_attach(self):
        # The virtual-link walk hoists one capacity per hop, so a link
        # with a pre-installed piecewise schedule refuses flow planning
        # outright — the per-packet path handles the rate changes
        # exactly.
        def run(fast):
            sim = Simulator()
            net = build_path(sim, [LinkSpec(10e6, prop_delay=1e-3)])
            net.forward_links[0].set_capacity_segments(
                [(0.5000789, 6e6), (0.9000456, 12e6)]
            )
            snd, rcv = open_connection(
                sim, net, config=TCPConfig(min_rto=0.5),
                total_bytes=2_000_000, start=0.0, fast=fast,
            )
            sim.run(until=30.0)
            return flow_state(snd, rcv), net

        stf, netf = run(True)
        sts, _ = run(False)
        assert stf == sts
        assert netf._ft_flows == 0
        assert netf._ft_fallbacks == {"capacity-schedule": 1}

    def test_capacity_schedule_install_dissolves_domain(self):
        # Installing a schedule mid-transfer is a planning chokepoint
        # like rebinding deliver: the domain dissolves onto the
        # per-packet path with an unchanged sample path.
        def mutate_install(net):
            net.forward_links[0].set_capacity_segments(
                [(0.5000789, 6e6), (0.9000456, 12e6)]
            )

        kwargs = dict(
            total_bytes=2_000_000, mutate_at=0.2000123, mutate=mutate_install
        )
        stf, sf, _, netf, _ = run_flow(True, **kwargs)
        sts, ss, _, _, _ = run_flow(False, **kwargs)
        assert stf == sts
        assert sf == ss
        assert netf._ft_flows == 1
        assert netf._ft_fallbacks == {"link-decommission": 1}


# ----------------------------------------------------------------------
# Figure-level regression: the Section VII point run
# ----------------------------------------------------------------------
class TestFigurePointRun:
    def test_fig15_point_run_bit_identical(self, monkeypatch):
        # The full figs 15-16 testbed — BTC intervals, window-limited
        # background flows, pinger, MRTG monitor — must report the same
        # rows whether its TCP rides the planner or the per-packet path.
        from repro.experiments.fig15_16_btc import _simulate

        monkeypatch.delenv("REPRO_NO_FAST", raising=False)
        rows_fast = _simulate(seed=150, interval=12.0)
        monkeypatch.setenv("REPRO_NO_FAST", "1")
        rows_slow = _simulate(seed=150, interval=12.0)
        assert rows_fast == rows_slow
