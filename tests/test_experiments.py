"""Tests for the experiment harness: registries, testbeds, small runs."""

import numpy as np
import pytest

from repro.experiments import REGISTRY
from repro.experiments.base import Scale
from repro.experiments.fig01_03_owd import measure_single_stream
from repro.experiments.sectionvii import INTERVAL_NAMES, IntervalSchedule, build_testbed


class TestRegistry:
    def test_every_paper_figure_is_registered(self):
        expected = {
            "fig01-03", "fig05", "fig06", "fig07", "fig08", "fig09",
            "fig10", "fig11", "fig12", "fig13", "fig14", "fig15-16",
            "fig17-18",
        }
        assert set(REGISTRY) == expected

    def test_entries_are_callable(self):
        assert all(callable(fn) for fn in REGISTRY.values())


class TestIntervalSchedule:
    def test_bounds(self):
        sched = IntervalSchedule(t0=10.0, interval=60.0)
        assert sched.bounds("A") == (10.0, 70.0)
        assert sched.bounds("E") == (250.0, 310.0)
        assert sched.end == 310.0

    def test_unknown_interval_rejected(self):
        sched = IntervalSchedule(t0=0.0, interval=1.0)
        with pytest.raises(ValueError):
            sched.bounds("Z")

    def test_names_are_consecutive(self):
        sched = IntervalSchedule(t0=0.0, interval=5.0)
        bounds = [sched.bounds(n) for n in INTERVAL_NAMES]
        for (s1, e1), (s2, _e2) in zip(bounds, bounds[1:]):
            assert e1 == s2


class TestSectionViiTestbed:
    def test_background_leaves_expected_avail_bw(self):
        bed = build_testbed(seed=1, interval=20.0)
        bed.sim.run(until=bed.schedule.bounds("A")[1] + 0.1)
        avail = bed.interval_avail_bw("A")
        # 4 flows x ~1.3 Mb/s on 8.2 Mb/s => ~3 Mb/s left
        assert 1.5e6 < avail < 4.5e6

    def test_quiescent_rtt_is_base_rtt(self):
        bed = build_testbed(seed=2, interval=20.0)
        bed.sim.run(until=bed.schedule.bounds("A")[1] + 0.1)
        rtts = bed.interval_rtts("A")
        assert min(rtts) == pytest.approx(0.2, rel=0.05)

    def test_missing_window_raises(self):
        bed = build_testbed(seed=3, interval=20.0)
        with pytest.raises(ValueError):
            bed.interval_avail_bw("E")  # nothing simulated yet


class TestFig0103Harness:
    def test_stream_above_avail_bw_detected(self):
        measurement, classification = measure_single_stream(96e6, seed=5)
        assert classification.stream_type.value == "I"
        assert measurement.n_received == 100

    def test_stream_below_avail_bw_not_detected(self):
        _m, classification = measure_single_stream(37e6, seed=6)
        assert classification.stream_type.value in ("N", "A")


class TestSmallFigureRuns:
    """End-to-end sanity of representative experiment modules at tiny scale
    (well-formedness, not statistical shape — the benches do that)."""

    def test_fig08_rows_well_formed(self):
        from repro.experiments import fig08_fraction

        result = fig08_fraction.run(scale=Scale(runs=1, interval=10.0, full=False))
        assert len(result.rows) == len(fig08_fraction.FRACTIONS)
        assert all(r["avg_width_mbps"] >= 0 for r in result.rows)

    def test_fig11_percentile_grid_complete(self):
        from repro.experiments import fig11_load_variability

        result = fig11_load_variability.run(
            scale=Scale(runs=2, interval=10.0, full=False)
        )
        # 3 load ranges x 10 percentiles
        assert len(result.rows) == 30
        assert all(0 <= r["rho"] <= 2.0 for r in result.rows)

    def test_table_rendering(self):
        from repro.experiments import fig01_03_owd

        table = fig01_03_owd.run().to_table()
        assert "fig01-03" in table
        assert "R>A" in table
