"""Shared test fixtures.

The sweep executor's on-disk cache (``repro.parallel``) defaults to
``.repro_cache/`` in the working directory.  Tests must never read or
populate that shared location — a stale entry from an earlier checkout
would mask the very code under test — so every test session gets its own
throwaway cache root.
"""

import pytest


@pytest.fixture(autouse=True, scope="session")
def _isolated_sweep_cache(tmp_path_factory):
    from repro.parallel import CACHE_DIR_ENV

    root = tmp_path_factory.mktemp("repro_cache")
    mp = pytest.MonkeyPatch()
    mp.setenv(CACHE_DIR_ENV, str(root))
    yield
    mp.undo()
