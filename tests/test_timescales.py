"""Tests for the avail-bw timescale analysis (variance-time, Hurst)."""

import numpy as np
import pytest

from repro.analysis.timescales import (
    aggregate_series,
    avail_bw_process,
    estimate_hurst,
    variance_time_curve,
)
from repro.netsim import Simulator, build_single_hop_path


class TestAggregation:
    def test_block_means(self):
        agg = aggregate_series([1.0, 3.0, 5.0, 7.0], 2)
        assert list(agg) == [2.0, 6.0]

    def test_remainder_dropped(self):
        agg = aggregate_series([1.0, 3.0, 5.0], 2)
        assert list(agg) == [2.0]

    def test_factor_one_is_identity(self):
        series = [1.0, 2.0, 3.0]
        assert list(aggregate_series(series, 1)) == series

    def test_validation(self):
        with pytest.raises(ValueError):
            aggregate_series([1.0], 0)
        with pytest.raises(ValueError):
            aggregate_series([1.0], 5)


class TestVarianceTime:
    def test_variance_decreases_with_aggregation_for_iid(self):
        rng = np.random.default_rng(0)
        series = rng.normal(0, 1, 4096)
        curve = variance_time_curve(series, base_tau=0.01)
        variances = [v for _t, v in curve]
        assert variances[0] > variances[-1]

    def test_iid_hurst_near_half(self):
        rng = np.random.default_rng(1)
        series = rng.normal(0, 1, 8192)
        curve = variance_time_curve(series, base_tau=0.01)
        assert estimate_hurst(curve) == pytest.approx(0.5, abs=0.1)

    def test_long_range_dependent_series_high_hurst(self):
        """A random-walk-flavored series has H near 1."""
        rng = np.random.default_rng(2)
        walk = np.cumsum(rng.normal(0, 1, 4096))
        curve = variance_time_curve(walk, base_tau=0.01)
        assert estimate_hurst(curve) > 0.8

    def test_hurst_needs_points(self):
        with pytest.raises(ValueError):
            estimate_hurst([(0.1, 1.0), (0.2, 0.5)])


class TestAvailBwProcess:
    def test_mean_matches_configured_avail_bw(self):
        sim = Simulator()
        rng = np.random.default_rng(3)
        setup = build_single_hop_path(sim, 10e6, 0.6, rng)
        series = avail_bw_process(
            sim, setup.tight_link, duration=20.0, base_tau=0.1, start=1.0
        )
        assert len(series) == 200
        assert series.mean() == pytest.approx(4e6, rel=0.1)

    def test_pareto_traffic_burstier_than_poisson(self):
        """The variance at short timescales is larger under heavy tails."""

        def short_tau_var(model, seed):
            sim = Simulator()
            rng = np.random.default_rng(seed)
            setup = build_single_hop_path(
                sim, 10e6, 0.6, rng, traffic_model=model
            )
            series = avail_bw_process(
                sim, setup.tight_link, duration=30.0, base_tau=0.05, start=1.0
            )
            return float(np.var(series))

        assert short_tau_var("pareto", 4) > short_tau_var("cbr", 4)

    def test_validation(self):
        sim = Simulator()
        rng = np.random.default_rng(5)
        setup = build_single_hop_path(sim, 10e6, 0.5, rng)
        with pytest.raises(ValueError):
            avail_bw_process(sim, setup.tight_link, duration=1.0, base_tau=0.0)
        with pytest.raises(ValueError):
            avail_bw_process(sim, setup.tight_link, duration=0.05, base_tau=0.1)
