"""Self-tests for the ``repro.lint`` static analyzer.

The fixture files in ``tests/lint_fixtures/`` are known-bad snippets; each
test asserts the expected rule fires at exactly the expected lines and
nowhere else.  The mutation tests then assert the two acceptance properties
from the rule catalogue: a wall-clock call inserted into ``netsim/link.py``
and an unseeded ``default_rng()`` inserted into ``core/probing.py`` are
both caught, and the shipped tree itself lints clean.
"""

import json
from pathlib import Path

import pytest

from repro.lint import lint_paths, lint_source
from repro.lint.cli import main as lint_main
from repro.lint.registry import ALL_RULES, DEFAULT_ALLOWLIST, get_rules

pytestmark = pytest.mark.lint

FIXTURES = Path(__file__).parent / "lint_fixtures"
REPO_ROOT = Path(__file__).parent.parent


def fire_lines(filename: str, rule_id: str) -> list[int]:
    """Lines at which ``rule_id`` fires in one fixture file (sorted)."""
    path = FIXTURES / filename
    findings = lint_source(path.read_text(), str(path))
    assert all(f.rule_id == rule_id for f in findings), (
        f"unexpected extra rules in {filename}: "
        f"{sorted({f.rule_id for f in findings})}"
    )
    return sorted(f.line for f in findings)


class TestRulesOnFixtures:
    def test_sim001_wall_clock(self):
        assert fire_lines("bad_sim001.py", "SIM001") == [9, 13, 14]

    def test_sim002_unseeded_randomness(self):
        assert fire_lines("bad_sim002.py", "SIM002") == [10, 11, 12, 13]

    def test_sim003_virtual_time_equality(self):
        assert fire_lines("bad_sim003.py", "SIM003") == [5, 11, 16]

    def test_sim004_unit_suffixes(self):
        assert fire_lines("bad_sim004.py", "SIM004") == [6, 9, 10, 11, 12]

    def test_sim005_mutable_defaults(self):
        assert fire_lines("bad_sim005.py", "SIM005") == [4, 8]

    def test_sim006_never_yielding_process(self):
        assert fire_lines("bad_sim006.py", "SIM006") == [15]

    def test_sim007_bare_print(self):
        # line 16's print carries an inline pragma; only 7 and 12 fire
        assert fire_lines("bad_sim007.py", "SIM007") == [7, 12]

    def test_pragmas_suppress_everything(self):
        path = FIXTURES / "pragmas_ok.py"
        assert lint_source(path.read_text(), str(path)) == []

    def test_clean_fixture_is_clean(self):
        path = FIXTURES / "clean.py"
        assert lint_source(path.read_text(), str(path)) == []


class TestSuppression:
    def test_pragma_only_suppresses_named_rule(self):
        source = (
            "import time\n"
            "t = time.time()  # simlint: disable=SIM002 -- wrong rule id\n"
        )
        findings = lint_source(source, "x.py")
        assert [f.rule_id for f in findings] == ["SIM001"]

    def test_allowlist_matches_path_suffix(self):
        source = "import time\nt = time.time()\n"
        hit = lint_source(source, "src/repro/netsim/link.py")
        assert [f.rule_id for f in hit] == ["SIM001"]
        allowed = lint_source(source, "src/repro/transport/realtime.py")
        assert allowed == []

    def test_rule_selection(self):
        source = "import time\n\ndef f(xs=[]):\n    return time.time()\n"
        only_5 = lint_source(source, "x.py", rules=get_rules(select=["SIM005"]))
        assert [f.rule_id for f in only_5] == ["SIM005"]
        without_1 = lint_source(source, "x.py", rules=get_rules(disable=["SIM001"]))
        assert [f.rule_id for f in without_1] == ["SIM005"]

    def test_unknown_rule_id_rejected(self):
        with pytest.raises(ValueError, match="SIM999"):
            get_rules(select=["SIM999"])

    def test_sim007_allowlists_cli_and_directories(self):
        source = 'print("hello")\n'
        hit = lint_source(source, "src/repro/netsim/link.py")
        assert [f.rule_id for f in hit] == ["SIM007"]
        # CLI front ends are allowlisted by file suffix ...
        assert lint_source(source, "src/repro/cli.py") == []
        assert lint_source(source, "src/repro/obs/cli.py") == []
        # ... examples and benchmarks by directory entry
        assert lint_source(source, "examples/quickstart.py") == []
        assert lint_source(source, "benchmarks/test_perf_substrate.py") == []
        # a directory entry must match a whole path component
        assert lint_source(source, "src/repro/notexamples/x.py") != []


class TestMutationAcceptance:
    """Deliberately corrupt real source files (in memory) — must be caught."""

    def test_wall_clock_in_link_py_is_caught(self):
        path = REPO_ROOT / "src" / "repro" / "netsim" / "link.py"
        source = path.read_text() + (
            "\nimport time\n\n\ndef _bad_stamp():\n    return time.time()\n"
        )
        findings = lint_source(source, str(path))
        assert any(f.rule_id == "SIM001" for f in findings)

    def test_unseeded_rng_in_probing_py_is_caught(self):
        path = REPO_ROOT / "src" / "repro" / "core" / "probing.py"
        source = path.read_text() + (
            "\nimport numpy as _np_lintcheck\n\n"
            "_BAD_RNG = _np_lintcheck.random.default_rng()\n"
        )
        findings = lint_source(source, str(path))
        assert any(f.rule_id == "SIM002" for f in findings)

    def test_print_in_engine_py_is_caught(self):
        path = REPO_ROOT / "src" / "repro" / "netsim" / "engine.py"
        source = path.read_text() + (
            '\n\ndef _bad_debug(sim):\n    print("now =", sim.now)\n'
        )
        findings = lint_source(source, str(path))
        assert any(f.rule_id == "SIM007" for f in findings)

    def test_shipped_tree_is_clean(self):
        result = lint_paths(
            [REPO_ROOT / "src", REPO_ROOT / "benchmarks", REPO_ROOT / "examples"]
        )
        assert result.parse_errors == []
        assert result.findings == [], "\n".join(
            f"{f.location()}: {f.rule_id} {f.message}" for f in result.findings
        )
        assert result.files_checked > 100  # the whole tree, not a subset


class TestCli:
    def test_exit_codes_and_text_output(self, capsys):
        assert lint_main([str(FIXTURES / "clean.py")]) == 0
        assert lint_main([str(FIXTURES / "bad_sim001.py")]) == 1
        out = capsys.readouterr().out
        assert "SIM001" in out and "bad_sim001.py:9" in out

    def test_json_format(self, capsys):
        code = lint_main([str(FIXTURES / "bad_sim005.py"), "--format", "json"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["finding_count"] == 2
        assert {f["rule_id"] for f in payload["findings"]} == {"SIM005"}
        assert payload["files_checked"] == 1

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ALL_RULES:
            assert rule.id in out

    def test_no_allowlist_reports_realtime(self):
        realtime = REPO_ROOT / "src" / "repro" / "transport" / "realtime.py"
        assert lint_main([str(realtime)]) == 0
        assert lint_main([str(realtime), "--no-allowlist"]) == 1

    def test_syntax_error_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "broken.py"
        bad.write_text("def f(:\n")
        assert lint_main([str(bad)]) == 2
        assert "syntax error" in capsys.readouterr().err

    def test_missing_path_exits_2(self, capsys):
        # A typo'd path must not silently lint zero files and pass CI.
        assert lint_main(["does/not/exist"]) == 2
        assert "does not exist" in capsys.readouterr().err


class TestRegistryConsistency:
    def test_every_rule_has_a_checker(self):
        from repro.lint.rules import CHECKERS

        assert set(CHECKERS) == {rule.id for rule in ALL_RULES}

    def test_default_allowlist_rules_exist(self):
        assert set(DEFAULT_ALLOWLIST) <= {rule.id for rule in ALL_RULES}
