"""Self-tests for the ``repro.lint`` static analyzer.

The fixture files in ``tests/lint_fixtures/`` are known-bad snippets; each
test asserts the expected rule fires at exactly the expected lines and
nowhere else.  The mutation tests then assert the two acceptance properties
from the rule catalogue: a wall-clock call inserted into ``netsim/link.py``
and an unseeded ``default_rng()`` inserted into ``core/probing.py`` are
both caught, and the shipped tree itself lints clean.
"""

import ast
import json
from pathlib import Path

import pytest

from repro.lint import lint_paths, lint_source
from repro.lint.baseline import apply_baseline, load_baseline, write_baseline
from repro.lint.cli import main as lint_main
from repro.lint.dataflow import ModuleTable, ProjectContext, module_name_for_path
from repro.lint.pragmas import extract_markers, extract_pragmas
from repro.lint.registry import ALL_RULES, DEFAULT_ALLOWLIST, get_rules
from repro.lint.report import render_sarif

pytestmark = pytest.mark.lint

FIXTURES = Path(__file__).parent / "lint_fixtures"
REPO_ROOT = Path(__file__).parent.parent


def fire_lines(filename: str, rule_id: str) -> list[int]:
    """Lines at which ``rule_id`` fires in one fixture file (sorted)."""
    path = FIXTURES / filename
    findings = lint_source(path.read_text(), str(path))
    assert all(f.rule_id == rule_id for f in findings), (
        f"unexpected extra rules in {filename}: "
        f"{sorted({f.rule_id for f in findings})}"
    )
    return sorted(f.line for f in findings)


class TestRulesOnFixtures:
    def test_sim001_wall_clock(self):
        assert fire_lines("bad_sim001.py", "SIM001") == [9, 13, 14]

    def test_sim002_unseeded_randomness(self):
        assert fire_lines("bad_sim002.py", "SIM002") == [10, 11, 12, 13]

    def test_sim003_virtual_time_equality(self):
        assert fire_lines("bad_sim003.py", "SIM003") == [5, 11, 16]

    def test_sim004_unit_suffixes(self):
        assert fire_lines("bad_sim004.py", "SIM004") == [6, 9, 10, 11, 12]

    def test_sim005_mutable_defaults(self):
        assert fire_lines("bad_sim005.py", "SIM005") == [4, 8]

    def test_sim006_never_yielding_process(self):
        assert fire_lines("bad_sim006.py", "SIM006") == [15]

    def test_sim007_bare_print(self):
        # line 16's print carries an inline pragma; only 7 and 12 fire
        assert fire_lines("bad_sim007.py", "SIM007") == [7, 12]

    def test_sim008_rng_in_unordered_iteration(self):
        assert fire_lines("bad_sim008.py", "SIM008") == [11, 13, 15, 22, 28]

    def test_sim009_impure_hooks_and_guard_bypass(self):
        assert fire_lines("bad_sim009.py", "SIM009") == [22, 23, 24, 25, 31]

    def test_sim010_annotated_loops_pinned(self):
        # line 12 (safe Lindley) and line 50 (pragma) must NOT fire
        assert fire_lines("bad_sim010.py", "SIM010") == [26, 41]

    def test_sim011_sweep_shared_state(self):
        assert fire_lines("bad_sim011.py", "SIM011") == [35, 36, 37, 38, 44]

    def test_project_rules_respect_allowlist(self):
        for name, rule_id in (
            ("bad_sim008.py", "SIM008"),
            ("bad_sim011.py", "SIM011"),
        ):
            path = FIXTURES / name
            allow = dict(DEFAULT_ALLOWLIST)
            allow[rule_id] = (f"lint_fixtures/{name}",)
            findings = lint_source(path.read_text(), str(path), allowlist=allow)
            assert [f for f in findings if f.rule_id == rule_id] == []

    def test_pragmas_suppress_everything(self):
        path = FIXTURES / "pragmas_ok.py"
        assert lint_source(path.read_text(), str(path)) == []

    def test_clean_fixture_is_clean(self):
        path = FIXTURES / "clean.py"
        assert lint_source(path.read_text(), str(path)) == []


class TestSuppression:
    def test_pragma_only_suppresses_named_rule(self):
        source = (
            "import time\n"
            "t = time.time()  # simlint: disable=SIM002 -- wrong rule id\n"
        )
        findings = lint_source(source, "x.py")
        assert [f.rule_id for f in findings] == ["SIM001"]

    def test_allowlist_matches_path_suffix(self):
        source = "import time\nt = time.time()\n"
        hit = lint_source(source, "src/repro/netsim/link.py")
        assert [f.rule_id for f in hit] == ["SIM001"]
        allowed = lint_source(source, "src/repro/transport/realtime.py")
        assert allowed == []

    def test_rule_selection(self):
        source = "import time\n\ndef f(xs=[]):\n    return time.time()\n"
        only_5 = lint_source(source, "x.py", rules=get_rules(select=["SIM005"]))
        assert [f.rule_id for f in only_5] == ["SIM005"]
        without_1 = lint_source(source, "x.py", rules=get_rules(disable=["SIM001"]))
        assert [f.rule_id for f in without_1] == ["SIM005"]

    def test_unknown_rule_id_rejected(self):
        with pytest.raises(ValueError, match="SIM999"):
            get_rules(select=["SIM999"])

    def test_sim007_allowlists_cli_and_directories(self):
        source = 'print("hello")\n'
        hit = lint_source(source, "src/repro/netsim/link.py")
        assert [f.rule_id for f in hit] == ["SIM007"]
        # CLI front ends are allowlisted by file suffix ...
        assert lint_source(source, "src/repro/cli.py") == []
        assert lint_source(source, "src/repro/obs/cli.py") == []
        # ... examples and benchmarks by directory entry
        assert lint_source(source, "examples/quickstart.py") == []
        assert lint_source(source, "benchmarks/test_perf_substrate.py") == []
        # a directory entry must match a whole path component
        assert lint_source(source, "src/repro/notexamples/x.py") != []


class TestPragmaSpans:
    """Satellite: pragmas on the first line of a multi-line statement."""

    def test_pragma_on_decorator_line_covers_signature(self):
        source = (
            "import functools\n"
            "\n"
            "\n"
            "@functools.lru_cache  # simlint: disable=SIM005 -- frozen wrapper\n"
            "def f(\n"
            "    xs=[],\n"
            "):\n"
            "    return xs\n"
        )
        assert lint_source(source, "x.py") == []

    def test_pragma_on_wrapped_call_first_line(self):
        source = (
            "import time\n"
            "\n"
            "t = max(  # simlint: disable=SIM001 -- harness-side timing\n"
            "    time.time(),\n"
            "    time.time(),\n"
            ")\n"
        )
        assert lint_source(source, "x.py") == []

    def test_pragma_does_not_blanket_a_def_body(self):
        source = (
            "import time\n"
            "\n"
            "\n"
            "def f():  # simlint: disable=SIM001\n"
            "    return time.time()\n"
        )
        findings = lint_source(source, "x.py")
        assert [f.rule_id for f in findings] == ["SIM001"]

    def test_span_expansion_only_from_first_line(self):
        source = (
            "import time\n"
            "\n"
            "t = max(\n"
            "    time.time(),  # simlint: disable=SIM001 -- this line only\n"
            "    time.time(),\n"
            ")\n"
        )
        findings = lint_source(source, "x.py")
        assert [f.line for f in findings] == [5]

    def test_extract_markers_own_line_governs_next(self):
        source = "# simlint: vector-safe\nfor_line = 2\nx = 1  # simlint: vector-safe\n"
        assert extract_markers(source) == frozenset({2, 3})


class TestDataflow:
    """Unit tests for the ProjectContext core under SIM008-SIM011."""

    def test_module_name_for_path(self):
        assert (
            module_name_for_path("/repo/src/repro/netsim/link.py")
            == "repro.netsim.link"
        )
        assert module_name_for_path("src/repro/__init__.py") == "repro"
        assert (
            module_name_for_path("/a/b/tests/lint_fixtures/bad_sim008.py")
            == "tests.lint_fixtures.bad_sim008"
        )

    def test_import_resolution_absolute_and_relative(self):
        source = (
            "from repro.parallel import SweepTask as ST\n"
            "import numpy as np\n"
            "from . import engine\n"
            "from ..core import probing\n"
        )
        tree = ast.parse(source)
        table = ModuleTable("src/repro/netsim/link.py", "repro.netsim.link", tree)
        assert table.imports["ST"] == "repro.parallel.SweepTask"
        assert table.imports["np"] == "numpy"
        assert table.imports["engine"] == "repro.netsim.engine"
        assert table.imports["probing"] == "repro.core.probing"

    def test_cross_module_function_resolution_and_call_graph(self):
        lib = (
            "def draw(rng):\n"
            "    return rng.normal()\n"
        )
        app = (
            "from repro.liblike import draw\n"
            "\n"
            "def run(rng):\n"
            "    return draw(rng)\n"
        )
        project = ProjectContext.build(
            [
                ("src/repro/liblike.py", ast.parse(lib)),
                ("src/repro/applike.py", ast.parse(app)),
            ]
        )
        run_info = project.modules["repro.applike"].functions["run"]
        callees = project.callees(run_info)
        assert [c.dotted for c in callees] == ["repro.liblike.draw"]
        assert project.draws_rng(run_info)  # transitively, through the callee
        graph = project.call_graph()
        assert graph["repro.applike.run"] == {"repro.liblike.draw"}

    def test_reaching_defs_sees_through_branches(self):
        source = (
            "def f(flag, rng):\n"
            "    xs = {1, 2}\n"
            "    if flag:\n"
            "        xs = sorted(xs)\n"
            "    for x in xs:\n"
            "        rng.normal()\n"
        )
        tree = ast.parse(source)
        table = ModuleTable("m.py", "m", tree)
        project = ProjectContext.build([("m.py", tree)])
        qual, scope = next(s for s in table.scopes if s[0] == "f")
        loop = next(n for n in ast.walk(scope) if isinstance(n, ast.For))
        walk = project.reaching(table, scope)
        cands = walk.candidates(loop, "xs")
        # both the set literal and the sorted() call reach the loop
        kinds = {type(c).__name__ for c in cands if c is not None}
        assert kinds == {"Set", "Call"}


class TestBaseline:
    def _findings(self, path="tests/x.py"):
        source = "import time\nt = time.time()\n"
        return lint_source(source, path)

    def test_roundtrip_and_ratchet(self, tmp_path):
        findings = self._findings()
        assert len(findings) == 1
        baseline_file = tmp_path / "base.json"
        write_baseline(baseline_file, findings)
        baseline = load_baseline(baseline_file)
        split = apply_baseline(findings, baseline)
        assert split.new == [] and len(split.baselined) == 1 and split.stale == []

    def test_second_occurrence_is_new(self, tmp_path):
        findings = self._findings()
        baseline_file = tmp_path / "base.json"
        write_baseline(baseline_file, findings)
        baseline = load_baseline(baseline_file)
        split = apply_baseline(findings + findings, baseline)
        assert len(split.new) == 1 and len(split.baselined) == 1

    def test_stale_entries_reported(self, tmp_path):
        baseline_file = tmp_path / "base.json"
        write_baseline(baseline_file, self._findings())
        baseline = load_baseline(baseline_file)
        split = apply_baseline([], baseline)
        assert split.new == [] and len(split.stale) == 1

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "absent.json") == {}

    def test_cli_strict_tolerates_baselined(self, tmp_path, capsys):
        bad = tmp_path / "pkg" / "clock.py"
        bad.parent.mkdir()
        bad.write_text("import time\nt = time.time()\n")
        assert lint_main([str(bad)]) == 1
        baseline_file = tmp_path / "pkg" / ".simlint-baseline.json"
        assert (
            lint_main([str(bad), "--write-baseline", "--baseline", str(baseline_file)])
            == 0
        )
        capsys.readouterr()
        # auto-discovered baseline (it sits next to the linted file)
        assert lint_main([str(bad), "--strict"]) == 0
        assert "1 baselined finding(s) tolerated" in capsys.readouterr().out
        # a new finding still fails strict mode
        bad.write_text("import time\nt = time.time()\nu = time.monotonic()\n")
        assert lint_main([str(bad), "--strict"]) == 1


class TestSarifAndReports:
    def test_render_sarif_structure(self):
        findings = lint_source("import time\nt = time.time()\n", "src/x.py")
        log = json.loads(render_sarif(findings, ALL_RULES, tool_version="1.2.3"))
        assert log["version"] == "2.1.0"
        run = log["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        assert {r["id"] for r in run["tool"]["driver"]["rules"]} == {
            rule.id for rule in ALL_RULES
        }
        result = run["results"][0]
        assert result["ruleId"] == "SIM001"
        loc = result["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"] == "src/x.py"
        assert loc["region"]["startLine"] == 2

    def test_cli_sarif_file_and_format(self, tmp_path, capsys):
        bad = FIXTURES / "bad_sim001.py"
        sarif_file = tmp_path / "out" / "lint.sarif"
        code = lint_main(
            [str(bad), "--format", "sarif", "--sarif-file", str(sarif_file)]
        )
        assert code == 1
        stdout_log = json.loads(capsys.readouterr().out)
        file_log = json.loads(sarif_file.read_text())
        for log in (stdout_log, file_log):
            assert {r["ruleId"] for r in log["runs"][0]["results"]} == {"SIM001"}

    def test_cli_explain(self, capsys):
        assert lint_main(["--explain", "SIM010"]) == 0
        out = capsys.readouterr().out
        assert "SIM010" in out and "vectoriz" in out.lower()
        assert "# simlint: disable=SIM010" in out
        assert lint_main(["--explain", "SIM999"]) == 2


class TestVectorization:
    """SIM010 acceptance: the fast-path Lindley loops are provably safe."""

    @pytest.fixture(scope="class")
    def loops(self):
        result = lint_paths([REPO_ROOT / "src"])
        assert result.findings == []
        return result.loop_reports

    def _find(self, loops, module, function, label):
        return [
            l
            for l in loops
            if l.module == module and l.function == function and l.label == label
        ]

    def test_plan_stream_infinite_buffer_loop_is_vector_safe(self, loops):
        safe = self._find(
            loops, "repro.netsim.streamtransit", "plan_stream", "VECTOR-SAFE"
        )
        annotated = [l for l in safe if l.annotated]
        # The general interleaved walk plus its specialized cross-free twin.
        assert len(annotated) == 2
        for report in annotated:
            assert "max+add (Lindley)" in report.accumulators.get("free_at", "")
            assert report.reasons and "accumulate" in report.reasons[0]
            # Both sit next to the kernels.plan_hop dispatch: sanctioned.
            assert report.kernelized

    def test_bulk_arrivals_fold_loops_are_vector_safe(self, loops):
        # The bulk-arrivals fold lives in Link.sync: it consumes the
        # CrossAggregator's merged (times, sizes) arrays.  Two flavours:
        # the fixed-rate fold and its capacity-schedule twin (per-start
        # rate lookup), each sitting next to its kernel dispatch.
        safe = self._find(loops, "repro.netsim.link", "Link.sync", "VECTOR-SAFE")
        annotated = [l for l in safe if l.annotated]
        assert len(annotated) == 2
        for report in annotated:
            assert "max+add (Lindley)" in report.accumulators.get("free_at", "")

    def test_drop_tail_counterparts_are_unsafe_with_reasons(self, loops):
        for module, function in (
            ("repro.netsim.streamtransit", "plan_stream"),
            ("repro.netsim.link", "Link.sync"),
        ):
            unsafe = self._find(loops, module, function, "VECTOR-UNSAFE")
            assert unsafe, f"no UNSAFE loops reported for {module}.{function}"
            assert all(l.reasons for l in unsafe)

    def test_committed_report_matches_analysis(self, loops):
        committed = json.loads((REPO_ROOT / "vectorization.json").read_text())
        fresh = {
            (l.module, l.function, l.line): l.label for l in loops
        }
        recorded = {
            (l["module"], l["function"], l["line"]): l["label"]
            for l in committed["loops"]
        }
        assert recorded == fresh, (
            "vectorization.json is stale — regenerate with "
            "PYTHONPATH=src python -m repro.lint src "
            "--vectorization-report vectorization.json"
        )


class TestMutationAcceptance:
    """Deliberately corrupt real source files (in memory) — must be caught."""

    def test_wall_clock_in_link_py_is_caught(self):
        path = REPO_ROOT / "src" / "repro" / "netsim" / "link.py"
        source = path.read_text() + (
            "\nimport time\n\n\ndef _bad_stamp():\n    return time.time()\n"
        )
        findings = lint_source(source, str(path))
        assert any(f.rule_id == "SIM001" for f in findings)

    def test_unseeded_rng_in_probing_py_is_caught(self):
        path = REPO_ROOT / "src" / "repro" / "core" / "probing.py"
        source = path.read_text() + (
            "\nimport numpy as _np_lintcheck\n\n"
            "_BAD_RNG = _np_lintcheck.random.default_rng()\n"
        )
        findings = lint_source(source, str(path))
        assert any(f.rule_id == "SIM002" for f in findings)

    def test_print_in_engine_py_is_caught(self):
        path = REPO_ROOT / "src" / "repro" / "netsim" / "engine.py"
        source = path.read_text() + (
            '\n\ndef _bad_debug(sim):\n    print("now =", sim.now)\n'
        )
        findings = lint_source(source, str(path))
        assert any(f.rule_id == "SIM007" for f in findings)

    def test_shipped_tree_is_clean(self):
        result = lint_paths(
            [REPO_ROOT / "src", REPO_ROOT / "benchmarks", REPO_ROOT / "examples"]
        )
        assert result.parse_errors == []
        assert result.findings == [], "\n".join(
            f"{f.location()}: {f.rule_id} {f.message}" for f in result.findings
        )
        assert result.files_checked > 100  # the whole tree, not a subset

    def test_full_tree_is_clean_modulo_baseline(self):
        # The strict-CI contract: src/tests/benchmarks/examples produce no
        # findings beyond the committed .simlint-baseline.json ratchet.
        result = lint_paths(
            [
                REPO_ROOT / "src",
                REPO_ROOT / "tests",
                REPO_ROOT / "benchmarks",
                REPO_ROOT / "examples",
            ]
        )
        assert result.parse_errors == []
        baseline = load_baseline(REPO_ROOT / ".simlint-baseline.json")
        assert baseline, "committed baseline is missing or empty"
        split = apply_baseline(result.findings, baseline)
        assert split.new == [], "\n".join(
            f"{f.location()}: {f.rule_id} {f.message}" for f in split.new
        )
        assert split.stale == [], (
            "baseline entries went stale - remove them: "
            + json.dumps(split.stale, indent=2)
        )


class TestCli:
    def test_exit_codes_and_text_output(self, capsys):
        assert lint_main([str(FIXTURES / "clean.py")]) == 0
        assert lint_main([str(FIXTURES / "bad_sim001.py")]) == 1
        out = capsys.readouterr().out
        assert "SIM001" in out and "bad_sim001.py:9" in out

    def test_json_format(self, capsys):
        code = lint_main([str(FIXTURES / "bad_sim005.py"), "--format", "json"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["finding_count"] == 2
        assert {f["rule_id"] for f in payload["findings"]} == {"SIM005"}
        assert payload["files_checked"] == 1

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ALL_RULES:
            assert rule.id in out

    def test_no_allowlist_reports_realtime(self):
        realtime = REPO_ROOT / "src" / "repro" / "transport" / "realtime.py"
        assert lint_main([str(realtime)]) == 0
        assert lint_main([str(realtime), "--no-allowlist"]) == 1

    def test_syntax_error_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "broken.py"
        bad.write_text("def f(:\n")
        assert lint_main([str(bad)]) == 2
        assert "syntax error" in capsys.readouterr().err

    def test_missing_path_exits_2(self, capsys):
        # A typo'd path must not silently lint zero files and pass CI.
        assert lint_main(["does/not/exist"]) == 2
        assert "does not exist" in capsys.readouterr().err


class TestRegistryConsistency:
    def test_every_rule_has_a_checker(self):
        from repro.lint.projectrules import PROJECT_RULE_IDS
        from repro.lint.rules import CHECKERS

        assert set(CHECKERS) | PROJECT_RULE_IDS == {rule.id for rule in ALL_RULES}
        assert not set(CHECKERS) & PROJECT_RULE_IDS  # each rule in one pass

    def test_default_allowlist_rules_exist(self):
        assert set(DEFAULT_ALLOWLIST) <= {rule.id for rule in ALL_RULES}
