"""Tests for PathloadConfig and the experiment scaffolding."""

import pytest

from repro.core.config import PAPER_EXPERIMENT_CONFIG, PathloadConfig
from repro.experiments.base import (
    FigureResult,
    Scale,
    default_scale,
    fast_pathload_config,
    spawn_seeds,
)


class TestPathloadConfig:
    def test_paper_defaults(self):
        cfg = PathloadConfig()
        assert cfg.n_packets == 100
        assert cfg.n_streams == 12
        assert cfg.fleet_fraction == 0.7
        assert cfg.pct_threshold == 0.55
        assert cfg.pdt_threshold == 0.4
        assert cfg.resolution_bps == 1e6
        assert cfg.grey_resolution_bps == 1.5e6
        assert cfg.classification_rule == "tool"

    def test_max_rate(self):
        cfg = PathloadConfig()
        # MTU-sized packets at the minimum period: 1500*8/100us = 120 Mb/s
        assert cfg.max_rate_bps == pytest.approx(120e6)

    def test_with_changes(self):
        cfg = PathloadConfig().with_(n_streams=24)
        assert cfg.n_streams == 24
        assert cfg.n_packets == 100  # untouched

    def test_experiment_config_thresholds(self):
        assert PAPER_EXPERIMENT_CONFIG.pct_threshold == 0.6
        assert PAPER_EXPERIMENT_CONFIG.pdt_threshold == 0.5

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_packets": 2},
            {"n_streams": 0},
            {"fleet_fraction": 0.4},
            {"fleet_fraction": 1.1},
            {"min_period": 0.0},
            {"min_packet_size": 2000},
            {"use_pct": False, "use_pdt": False},
            {"classification_rule": "magic"},
            {"resolution_bps": 0},
            {"grey_resolution_bps": -1},
            {"moderate_loss": 0.2, "stream_loss_abort": 0.1},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            PathloadConfig(**kwargs)


class TestExperimentScaffolding:
    def test_default_scale_reduced(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL", raising=False)
        scale = default_scale(runs=5, full_runs=50)
        assert scale.runs == 5 and not scale.full

    def test_default_scale_full(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL", "1")
        scale = default_scale(runs=5, full_runs=50)
        assert scale.runs == 50 and scale.full

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            Scale(runs=0, interval=1.0, full=False)
        with pytest.raises(ValueError):
            Scale(runs=1, interval=0.0, full=False)

    def test_spawn_seeds_independent_and_deterministic(self):
        a = [g.integers(0, 1 << 30) for g in spawn_seeds(7, 3)]
        b = [g.integers(0, 1 << 30) for g in spawn_seeds(7, 3)]
        assert a == b
        assert len(set(a)) == 3

    def test_fast_config_only_touches_idle(self):
        cfg = fast_pathload_config()
        assert cfg.idle_factor == 1.0
        assert cfg.n_packets == PathloadConfig().n_packets

    def test_figure_result_roundtrip(self):
        fig = FigureResult(
            figure_id="figX", title="test", columns=["a", "b"]
        )
        fig.add_row(a=1, b=2.5)
        fig.add_row(a=2)
        assert fig.column("a") == [1, 2]
        assert fig.column("b") == [2.5, None]
        table = fig.to_table()
        assert "figX" in table and "2.500" in table

    def test_figure_result_rejects_unknown_columns(self):
        fig = FigureResult(figure_id="f", title="t", columns=["a"])
        with pytest.raises(ValueError):
            fig.add_row(zzz=1)

    def test_figure_result_unknown_column_lookup(self):
        fig = FigureResult(figure_id="f", title="t", columns=["a"])
        with pytest.raises(KeyError):
            fig.column("zzz")
