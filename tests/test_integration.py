"""Integration tests: full pathload measurements over the DES.

These are the end-to-end checks of the repository's headline claim — that
the reproduced pathload brackets the configured avail-bw over the
reproduced network simulator — plus robustness to host imperfections.
"""

import numpy as np
import pytest

from repro import measure_avail_bw_sim
from repro.core.config import PathloadConfig
from repro.netsim import Simulator, build_fig4_path, build_single_hop_path, Fig4Config
from repro.netsim.clock import NoisyClock, OffsetClock, SkewedClock
from repro.runner import measure_fig4_path
from repro.transport.probe import ProbeChannel, SendJitter, run_pathload

FAST = PathloadConfig(idle_factor=1.0)


class TestSingleHopAccuracy:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_range_brackets_truth(self, seed):
        report = measure_avail_bw_sim(
            capacity_bps=10e6, utilization=0.6, seed=seed, config=FAST
        )
        assert report.low_bps <= 4e6 <= report.high_bps

    def test_light_load(self):
        report = measure_avail_bw_sim(
            capacity_bps=10e6, utilization=0.2, seed=3, config=FAST
        )
        # A = 8; allow the resolution omega of slack
        assert report.low_bps - 1e6 <= 8e6 <= report.high_bps + 1e6

    def test_heavy_load(self):
        report = measure_avail_bw_sim(
            capacity_bps=10e6, utilization=0.8, seed=4, config=FAST
        )
        assert report.low_bps - 1e6 <= 2e6 <= report.high_bps + 1e6

    def test_poisson_traffic(self):
        report = measure_avail_bw_sim(
            capacity_bps=10e6, utilization=0.6, seed=5, config=FAST,
            traffic_model="poisson",
        )
        assert report.low_bps <= 4e6 <= report.high_bps

    def test_deterministic_given_seed(self):
        a = measure_avail_bw_sim(capacity_bps=10e6, utilization=0.5, seed=11, config=FAST)
        b = measure_avail_bw_sim(capacity_bps=10e6, utilization=0.5, seed=11, config=FAST)
        assert a.low_bps == b.low_bps
        assert a.high_bps == b.high_bps
        assert len(a.fleets) == len(b.fleets)


class TestFig4Accuracy:
    def test_default_topology(self):
        report, setup = measure_fig4_path(Fig4Config(), seed=21, config=FAST)
        assert report.low_bps <= setup.avail_bw_bps <= report.high_bps


class TestHostImperfections:
    def _measure(self, seed=31, **channel_kwargs):
        sim = Simulator()
        rng = np.random.default_rng(seed)
        setup = build_single_hop_path(sim, 10e6, 0.6, rng, prop_delay=0.01)
        channel = ProbeChannel(sim, setup.network, **channel_kwargs)
        return run_pathload(
            sim, setup.network, config=FAST, start=2.0, channel=channel,
            time_limit=600.0,
        )

    def test_clock_offset_between_hosts(self):
        """Unsynchronized clocks (the paper's Section IV claim)."""
        report = self._measure(
            sender_clock=OffsetClock(-17.3), receiver_clock=OffsetClock(42.0)
        )
        assert report.low_bps <= 4e6 <= report.high_bps

    def test_clock_skew(self):
        """Tens of ppm of skew are nanoseconds per stream: harmless."""
        report = self._measure(
            sender_clock=SkewedClock(skew_ppm=50.0),
            receiver_clock=SkewedClock(skew_ppm=-30.0),
        )
        assert report.low_bps <= 4e6 <= report.high_bps

    def test_timestamp_noise(self):
        rng = np.random.default_rng(77)
        report = self._measure(
            receiver_clock=NoisyClock(rng, noise_max=5e-6)
        )
        assert report.low_bps <= 4e6 <= report.high_bps

    def test_send_jitter(self):
        """Occasional context-switch delays at the sender."""
        rng = np.random.default_rng(78)
        report = self._measure(
            jitter=SendJitter(rng, prob=0.02, max_delay=300e-6)
        )
        # jitter adds noise; the range may widen but should stay sane
        assert report.low_bps <= 4e6 + 1e6
        assert report.high_bps >= 4e6 - 1e6


class TestSaturatedPathIntegration:
    def test_nearly_full_link(self):
        report = measure_avail_bw_sim(
            capacity_bps=10e6, utilization=0.97, seed=41, config=FAST
        )
        # avail-bw 0.3 Mb/s: the report must not claim much bandwidth
        assert report.low_bps <= 1e6
        assert report.high_bps <= 4e6
