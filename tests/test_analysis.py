"""Tests for the analysis statistics and validation helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    PAPER_PERCENTILES,
    cdf_points,
    percentile_grid,
    relative_variation,
    summarize_ranges,
    validate_many,
    validate_range,
    weighted_range_average,
)


class TestRelativeVariation:
    def test_paper_example(self):
        # a range [3.5, 5.5]: width 2 around center 4.5
        assert relative_variation(3.5e6, 5.5e6) == pytest.approx(2 / 4.5)

    def test_zero_width(self):
        assert relative_variation(4e6, 4e6) == 0.0

    def test_degenerate_zero_range(self):
        assert relative_variation(0.0, 0.0) == 0.0

    def test_invalid_order_rejected(self):
        with pytest.raises(ValueError):
            relative_variation(5e6, 4e6)

    @given(
        low=st.floats(0, 1e9),
        width=st.floats(0, 1e9),
    )
    @settings(max_examples=100)
    def test_bounded_zero_two(self, low, width):
        """rho = width/center is in [0, 2] whenever low >= 0."""
        rho = relative_variation(low, low + width)
        assert 0.0 <= rho <= 2.0 + 1e-9


class TestPercentiles:
    def test_paper_grid(self):
        assert PAPER_PERCENTILES == tuple(range(5, 100, 10))

    def test_grid_values_sorted(self):
        rng = np.random.default_rng(0)
        grid = percentile_grid(rng.uniform(size=200))
        values = [v for _p, v in grid]
        assert values == sorted(values)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile_grid([])

    def test_cdf_points(self):
        xs, ps = cdf_points([3.0, 1.0, 2.0])
        assert list(xs) == [1.0, 2.0, 3.0]
        assert list(ps) == pytest.approx([1 / 3, 2 / 3, 1.0])

    def test_cdf_empty_rejected(self):
        with pytest.raises(ValueError):
            cdf_points([])


class TestWeightedAverage:
    def test_equal_durations_is_plain_mean(self):
        low, high = weighted_range_average(
            [(10.0, 2e6, 4e6), (10.0, 4e6, 6e6)]
        )
        assert low == pytest.approx(3e6)
        assert high == pytest.approx(5e6)

    def test_duration_weighting(self):
        """Eq. 11: longer runs dominate the average."""
        low, high = weighted_range_average(
            [(30.0, 2e6, 4e6), (10.0, 6e6, 8e6)]
        )
        assert low == pytest.approx((30 * 2e6 + 10 * 6e6) / 40)
        assert high == pytest.approx((30 * 4e6 + 10 * 8e6) / 40)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            weighted_range_average([])

    def test_zero_total_duration_rejected(self):
        with pytest.raises(ValueError):
            weighted_range_average([(0.0, 1e6, 2e6)])


class TestSummarizeRanges:
    def test_mean_bounds(self):
        summary = summarize_ranges([(2e6, 6e6), (4e6, 8e6)])
        assert summary.mean_low_bps == pytest.approx(3e6)
        assert summary.mean_high_bps == pytest.approx(7e6)
        assert summary.mean_center_bps == pytest.approx(5e6)
        assert summary.n_runs == 2

    def test_cv_zero_for_identical_runs(self):
        summary = summarize_ranges([(2e6, 6e6)] * 5)
        assert summary.cv_low == 0.0
        assert summary.cv_high == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_ranges([])


class TestValidation:
    def test_contains(self):
        v = validate_range(3e6, 5e6, 4e6)
        assert v.contains_truth
        assert not v.underestimates and not v.overestimates
        assert v.center_error == 0.0

    def test_underestimate(self):
        v = validate_range(1e6, 3e6, 4e6)
        assert v.underestimates
        assert not v.contains_truth
        assert v.center_error == pytest.approx(-0.5)

    def test_overestimate(self):
        v = validate_range(5e6, 7e6, 4e6)
        assert v.overestimates
        assert v.center_error == pytest.approx(0.5)

    def test_zero_truth_error_undefined(self):
        v = validate_range(0.0, 1e6, 0.0)
        with pytest.raises(ValueError):
            _ = v.center_error

    def test_invalid_range_rejected(self):
        with pytest.raises(ValueError):
            validate_range(5e6, 4e6, 4.5e6)

    def test_validate_many(self):
        checks = validate_many([(3e6, 5e6), (1e6, 2e6)], truth_bps=4e6)
        assert [c.contains_truth for c in checks] == [True, False]
