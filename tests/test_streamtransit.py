"""Equivalence tests for the event-elided probe-stream transit.

The stream-transit fast path's contract is *bit identity*: on every
eligible configuration, :class:`PacketRecord` stamps, link stats, monitor
samples, and pathload reports must equal — with ``==``, not ``approx`` —
what the per-packet path produces, because the planner evaluates the same
per-hop Lindley recursion in the same floating-point order.  Ineligible
configurations (qdiscs, RNG-bearing clocks, active foreground flows) must
fall back automatically, and mid-stream eligibility breaks (a TCP flow
attaching, a link decommission) must revoke the plan onto the per-packet
machinery with an identical sample path.

One deliberate contract caveat (documented in docs/performance.md): an
*exact-time tie* between a foreign flow's first send and a planned probe
send resolves probe-first on the fast path, while the per-packet order
depends on event-heap insertion history.  Interference times in these
tests are therefore off-grid, as any real configuration's are.
"""

import numpy as np
import pytest

from repro.core.probing import StreamSpec
from repro.netsim import LinkSpec, Simulator, build_path
from repro.netsim.clock import NoisyClock, SkewedClock
from repro.netsim.engine import SimulationError
from repro.netsim.qdisc import REDQueue
from repro.netsim.topologies import build_single_hop_path
from repro.transport.probe import ProbeChannel, SendJitter, run_pathload
from repro.transport.tcp import open_connection


# ----------------------------------------------------------------------
# Drivers
# ----------------------------------------------------------------------
def run_streams(
    fast,
    hops=1,
    buffer_bytes=None,
    utilization=0.0,
    jitter_prob=0.0,
    skewed_clocks=False,
    n_streams=3,
    rate_bps=8e6,
    n_packets=60,
    seed=7,
    sanitize=False,
    tcp_at=None,
    tcp_bytes=120_000,
    tcp_fast=None,
    monitor_at=(),
    qdisc_hop=None,
    clocks=None,
    cap_install=None,
):
    """Send ``n_streams`` probe streams; return every observable series."""
    sim = Simulator(sanitize=sanitize)
    if utilization > 0.0:
        rng = np.random.default_rng(seed)
        setup = build_single_hop_path(
            sim, 10e6, utilization, rng, buffer_bytes=buffer_bytes
        )
        net = setup.network
    else:
        specs = [
            LinkSpec(10e6, prop_delay=1e-3, buffer_bytes=buffer_bytes, name=f"hop{i}")
            for i in range(hops)
        ]
        net = build_path(sim, specs)
    if qdisc_hop is not None:
        net.forward_links[qdisc_hop].qdisc = REDQueue(
            5_000, 20_000, np.random.default_rng(seed + 1)
        )
    if cap_install is not None:
        at, segments = cap_install
        sim.schedule_at(
            at, lambda: net.forward_links[0].set_capacity_segments(segments)
        )
    if clocks is not None:
        sender_clock, receiver_clock = clocks(sim)
    elif skewed_clocks:
        sender_clock = SkewedClock(offset=0.013, skew_ppm=40.0)
        receiver_clock = SkewedClock(offset=-0.007, skew_ppm=-25.0)
    else:
        sender_clock = receiver_clock = None
    jitter = (
        SendJitter(np.random.default_rng(seed + 2), prob=jitter_prob, max_delay=2e-4)
        if jitter_prob
        else None
    )
    chan = ProbeChannel(
        sim,
        net,
        sender_clock=sender_clock,
        receiver_clock=receiver_clock,
        jitter=jitter,
        fast=fast,
    )
    if tcp_at is not None:
        open_connection(
            sim, net, total_bytes=tcp_bytes, start=tcp_at, fast=tcp_fast
        )
    backlog_samples = []
    for t in monitor_at:
        sim.schedule_at(
            t,
            lambda: backlog_samples.append(
                (sim.now, [lk.backlog_bytes() for lk in net.forward_links])
            ),
        )
    spec = StreamSpec(rate_bps=rate_bps, packet_size=300, n_packets=n_packets)
    measurements = []
    start = 2.0
    for _ in range(n_streams):
        holder = {}
        sim.schedule_at(start, lambda: holder.update(ev=chan.send_stream(spec)))
        sim.run(until=start)
        m = sim.run_until(holder["ev"], limit=start + 30.0)
        measurements.append(
            (
                m.n_sent,
                m.n_received,
                tuple((r.seq, r.sender_stamp, r.recv_stamp) for r in m.records),
            )
        )
        start = sim.now + 0.013
    stats = [lk.stats.snapshot() for lk in net.forward_links]
    return measurements, stats, backlog_samples, chan, sim


def run_quick_pathload(
    fast, seed=11, utilization=0.3, tcp_at=None, tcp_fast=None, tracer=None
):
    """One short single-hop pathload; returns (report, stats, channel)."""
    sim = Simulator()
    if tracer is not None:
        tracer.attach(sim)
    rng = np.random.default_rng(seed)
    setup = build_single_hop_path(sim, 10e6, utilization, rng)
    if tracer is not None:
        tracer.register_network(setup.network)
    chan = ProbeChannel(sim, setup.network, fast=fast)
    if tcp_at is not None:
        open_connection(
            sim, setup.network, total_bytes=150_000, start=tcp_at, fast=tcp_fast
        )
    report = run_pathload(
        sim, setup.network, start=2.0, channel=chan, time_limit=600.0
    )
    stats = [lk.stats.snapshot() for lk in setup.network.forward_links]
    return report, stats, chan


# ----------------------------------------------------------------------
# Bit equality on eligible configurations
# ----------------------------------------------------------------------
class TestBitEquality:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(hops=1),
            dict(hops=3),
            dict(hops=2, buffer_bytes=4_000, rate_bps=9.5e6),
            dict(utilization=0.5),
            dict(utilization=0.7, buffer_bytes=15_000),
            dict(hops=2, jitter_prob=0.3),
            dict(utilization=0.4, jitter_prob=0.2, skewed_clocks=True),
            dict(hops=1, skewed_clocks=True, rate_bps=12e6),
        ],
        ids=[
            "idle-1hop",
            "idle-3hop",
            "droptail-2hop",
            "cross-0.5",
            "cross-0.7-finite",
            "jitter-2hop",
            "cross-jitter-skew",
            "overload-skew",
        ],
    )
    def test_streams_bit_identical(self, kwargs):
        mf, sf, _, chf, _ = run_streams(True, **kwargs)
        ms, ss, _, chs, _ = run_streams(False, **kwargs)
        assert mf == ms
        assert sf == ss
        assert chf.fastpath_streams == len(mf)
        assert not chf.fastpath_fallbacks
        assert chs.fastpath_streams == 0
        assert chs.fastpath_fallbacks.get("disabled") == len(ms)

    def test_pathload_report_bit_identical(self):
        rf, sf, chf = run_quick_pathload(True)
        rs, ss, _ = run_quick_pathload(False)
        assert rf == rs
        assert sf == ss
        assert chf.fastpath_streams == rf.n_streams_sent
        assert not chf.fastpath_fallbacks

    def test_mid_stream_monitor_read_uses_interleaved_fold(self):
        # Reads landing inside the stream window advance the agenda fold
        # cursor mid-plan, which also disables the wholesale fast-forward:
        # both fold flavours must reproduce the per-packet queue state.
        # Off the send grid (multiples of the 0.3 ms period) — exact-time
        # ties against probe sends are outside the identity contract.
        times = (2.0051234, 2.0087071, 2.0123777)
        mf, sf, bf, _, _ = run_streams(
            True, utilization=0.6, monitor_at=times, n_streams=2
        )
        ms, ss, bs, _, _ = run_streams(
            False, utilization=0.6, monitor_at=times, n_streams=2
        )
        assert bf == bs
        assert len(bf) == len(times)
        assert mf == ms
        assert sf == ss


# ----------------------------------------------------------------------
# Piecewise-constant capacity schedules (Section VI dynamics)
# ----------------------------------------------------------------------
class TestCapacitySchedule:
    # Boundaries off the 0.3 ms probe-send grid, straddling the first
    # stream's ~17.7 ms window so the plan crosses rate changes mid-walk.
    SEGMENTS = ((2.00312345, 6e6), (2.00921234, 14e6))

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(hops=1),
            dict(hops=2),
            dict(utilization=0.5),
            dict(hops=1, buffer_bytes=4_000, rate_bps=9.5e6),
            dict(utilization=0.6, buffer_bytes=15_000),
        ],
        ids=["idle-1hop", "idle-2hop", "cross-0.5", "droptail", "cross-finite"],
    )
    def test_scheduled_link_bit_identical(self, kwargs):
        kwargs = dict(kwargs, cap_install=(1.0, self.SEGMENTS))
        mf, sf, _, chf, _ = run_streams(True, **kwargs)
        ms, ss, _, chs, _ = run_streams(False, **kwargs)
        assert mf == ms
        assert sf == ss
        # Planning stays engaged: the walks look the rate up per
        # admission instead of refusing the hop.
        assert chf.fastpath_streams == len(mf)
        assert not chf.fastpath_fallbacks
        assert chs.fastpath_streams == 0

    def test_scheduled_link_shadow_verify_passes(self):
        mf, sf, _, chf, _ = run_streams(
            True, utilization=0.5, sanitize=True,
            cap_install=(1.0, self.SEGMENTS),
        )
        assert chf._shadow_checked
        assert chf.fastpath_streams == len(mf)

    def test_install_mid_stream_revokes_then_matches(self):
        # Installing a schedule while a planned stream is in transit is a
        # planning chokepoint: the plan is revoked (its walk assumed the
        # old rate function) and the remainder replays per-packet.
        segments = ((2.00791234, 6e6), (2.01321234, 14e6))
        kwargs = dict(
            utilization=0.4, cap_install=(2.00512345, segments)
        )
        mf, sf, _, chf, _ = run_streams(True, **kwargs)
        ms, ss, _, _, _ = run_streams(False, **kwargs)
        assert mf == ms
        assert sf == ss
        assert chf.fastpath_fallbacks.get("link-decommission") == 1


# ----------------------------------------------------------------------
# Planning refusals (fallback before the stream starts)
# ----------------------------------------------------------------------
class TestRefusal:
    def test_disabled_channel_counts_fallbacks(self):
        _, _, _, chan, _ = run_streams(False, n_streams=2)
        assert chan.fast is False
        assert chan.fastpath_fallbacks == {"disabled": 2}

    def test_no_fast_env_disables_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_FAST", "1")
        sim = Simulator()
        net = build_path(sim, [LinkSpec(10e6)])
        assert ProbeChannel(sim, net).fast is False
        monkeypatch.delenv("REPRO_NO_FAST")
        assert ProbeChannel(sim, net).fast is True

    def test_qdisc_forces_per_packet(self):
        mf, sf, _, chan, _ = run_streams(True, hops=2, qdisc_hop=1, n_streams=2)
        assert chan.fastpath_streams == 0
        assert chan.fastpath_fallbacks == {"link-config": 2}
        ms, ss, _, _, _ = run_streams(False, hops=2, qdisc_hop=1, n_streams=2)
        assert mf == ms and sf == ss

    def test_impure_clock_forces_per_packet(self):
        def clocks(sim):
            return NoisyClock(np.random.default_rng(5), noise_max=2e-6), None

        _, _, _, chan, _ = run_streams(True, clocks=clocks, n_streams=2)
        assert chan.fastpath_streams == 0
        assert chan.fastpath_fallbacks == {"impure-clock": 2}

    def test_active_foreground_flow_refuses_planning(self):
        # A *per-packet* TCP flow attached before the first stream claims
        # the network the whole time, so planning is refused.  (A planner-
        # managed flow no longer claims — probe coexistence with planned
        # flows is covered in tests/test_flowtransit.py.)
        kwargs = dict(
            tcp_at=1.50007, tcp_bytes=30_000_000, tcp_fast=False,
            n_streams=2, utilization=0.3,
        )
        mf, sf, _, chan, _ = run_streams(True, **kwargs)
        assert chan.fastpath_streams == 0
        assert "foreground-active" in chan.fastpath_fallbacks
        ms, ss, _, _, _ = run_streams(False, **kwargs)
        assert mf == ms and sf == ss


# ----------------------------------------------------------------------
# Mid-stream revocation (fallback after the plan is installed)
# ----------------------------------------------------------------------
class TestRevocation:
    @pytest.mark.parametrize("tcp_at", [2.0123457, 2.0300003])
    def test_tcp_attach_mid_stream(self, tcp_at):
        # The TCP handshake's first segment hits a planned hop mid-stream
        # (off-grid instant): the plan revokes, in-flight packets replay at
        # their committed exit times, the unsent suffix re-enters the
        # self-rescheduling sender — and every observable matches.
        kwargs = dict(
            tcp_at=tcp_at, n_streams=1, n_packets=200, buffer_bytes=25_000,
            utilization=0.3,
        )
        mf, sf, _, chan, _ = run_streams(True, **kwargs)
        assert chan.fastpath_fallbacks.get("foreign-send") == 1
        ms, ss, _, _, _ = run_streams(False, **kwargs)
        assert mf == ms
        assert sf == ss

    def test_pathload_with_tcp_crossfire(self):
        # The crossfire flow runs per-packet so its first segment is a
        # foreign send that revokes at least one installed stream plan.
        rf, sf, chf = run_quick_pathload(True, tcp_at=2.01003, tcp_fast=False)
        rs, ss, _ = run_quick_pathload(False, tcp_at=2.01003, tcp_fast=False)
        assert rf == rs and sf == ss
        assert chf.fastpath_fallbacks.get("foreign-send", 0) >= 1

    def test_deadline_finalize_with_drops(self):
        # A stream over its own tiny drop-tail buffer: the closing packet
        # can be dropped, so the deadline event finalizes, and straggler
        # commit order (strict < at the deadline) must match per-packet.
        kwargs = dict(
            buffer_bytes=1_200, rate_bps=14e6, n_packets=80, n_streams=2
        )
        mf, sf, _, _, _ = run_streams(True, **kwargs)
        ms, ss, _, _, _ = run_streams(False, **kwargs)
        assert mf == ms
        assert sf == ss
        # The scenario actually exercises loss.
        assert any(m[1] < m[0] for m in mf)


# ----------------------------------------------------------------------
# Observability: tracing, digests, counters
# ----------------------------------------------------------------------
class TestObservability:
    def test_traced_report_equals_untraced(self):
        from repro.obs import Tracer

        tracer = Tracer()
        rt, st, _ = run_quick_pathload(True, tracer=tracer)
        ru, su, _ = run_quick_pathload(True)
        assert rt == ru
        assert st == su
        streams = tracer.metrics.counter("repro_fastpath_streams_total")
        assert streams.value == rt.n_streams_sent

    def test_traced_digest_reproducible_within_mode(self):
        from repro.obs import Tracer

        t1, t2 = Tracer(), Tracer()
        r1, _, _ = run_quick_pathload(True, tracer=t1)
        r2, _, _ = run_quick_pathload(True, tracer=t2)
        assert r1 == r2
        assert t1.event_digest() == t2.event_digest()

    def test_fallback_counter_labels(self):
        from repro.obs import Tracer

        tracer = Tracer()
        sim = Simulator()
        tracer.attach(sim)
        net = build_path(sim, [LinkSpec(10e6, prop_delay=1e-3)])
        chan = ProbeChannel(sim, net, fast=False)
        holder = {}
        spec = StreamSpec(rate_bps=8e6, packet_size=300, n_packets=10)
        sim.schedule_at(1.0, lambda: holder.update(ev=chan.send_stream(spec)))
        sim.run(until=1.0)
        sim.run_until(holder["ev"], limit=10.0)
        fallback = tracer.metrics.counter(
            "repro_fastpath_fallback_total", labels={"reason": "disabled"}
        )
        assert fallback.value == 1


# ----------------------------------------------------------------------
# Sanitize mode: shadow verification
# ----------------------------------------------------------------------
class TestSanitize:
    def test_digest_reproducible_in_fast_mode(self):
        # Digests are compared within a mode only (events are elided
        # relative to per-packet, so cross-mode digests differ by design).
        _, _, _, _, sim1 = run_streams(True, utilization=0.5, sanitize=True)
        _, _, _, _, sim2 = run_streams(True, utilization=0.5, sanitize=True)
        assert sim1.digest() == sim2.digest()

    def test_shadow_runs_once_per_channel(self):
        _, _, _, chan, _ = run_streams(True, utilization=0.5, sanitize=True)
        assert chan._shadow_checked is True
        _, _, _, chan, _ = run_streams(True, utilization=0.5, sanitize=False)
        assert chan._shadow_checked is False

    def test_shadow_detects_planner_corruption(self, monkeypatch):
        import repro.netsim.streamtransit as st

        # The planner feeds exit times through ``_exit_t``; nudging the
        # first one must trip the shadow verifier.
        orig_prop = st.HopAgenda.exit_pairs.fget

        def bad_exit_pairs(self):
            if self._exit_pairs is None and self._exit_t:
                self._exit_t = [self._exit_t[0] + 1e-9] + self._exit_t[1:]
            return orig_prop(self)

        monkeypatch.setattr(
            st.HopAgenda, "exit_pairs", property(bad_exit_pairs)
        )
        with pytest.raises(SimulationError, match="shadow"):
            run_streams(True, utilization=0.5, sanitize=True, n_streams=1)
