"""Unit and property tests for the grey-region binary search."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fleet import FleetOutcome
from repro.core.rate_adjust import RateAdjuster


def make(rmax=100e6, omega=1e6, chi=1.5e6):
    return RateAdjuster(rmax_bps=rmax, omega_bps=omega, chi_bps=chi)


class TestBasicBisection:
    def test_initial_probe_is_midpoint(self):
        adj = make()
        assert adj.next_rate() == pytest.approx(50e6)

    def test_above_lowers_rmax(self):
        adj = make()
        adj.record(50e6, FleetOutcome.ABOVE)
        assert adj.rmax == 50e6
        assert adj.next_rate() == pytest.approx(25e6)

    def test_below_raises_rmin(self):
        adj = make()
        adj.record(50e6, FleetOutcome.BELOW)
        assert adj.rmin == 50e6
        assert adj.next_rate() == pytest.approx(75e6)

    def test_aborted_loss_treated_as_above(self):
        adj = make()
        adj.record(50e6, FleetOutcome.ABORTED_LOSS)
        assert adj.rmax == 50e6

    def test_converges_on_constant_avail_bw(self):
        """Binary search around a fixed A converges within omega."""
        truth = 37.3e6
        adj = make()
        for _ in range(60):
            if adj.converged():
                break
            rate = adj.next_rate()
            outcome = FleetOutcome.ABOVE if rate > truth else FleetOutcome.BELOW
            adj.record(rate, outcome)
        assert adj.converged()
        low, high = adj.report_range()
        assert low <= truth <= high
        assert high - low <= adj.omega

    def test_iteration_count_is_logarithmic(self):
        """Paper Section III-B: convergence in ~log2(Rmax/omega) fleets."""
        truth = 37.3e6
        adj = make()
        n = 0
        while not adj.converged():
            rate = adj.next_rate()
            adj.record(
                rate, FleetOutcome.ABOVE if rate > truth else FleetOutcome.BELOW
            )
            n += 1
        assert n <= 8  # log2(100/1) ≈ 6.6


class TestGreyRegion:
    def test_first_grey_sets_both_bounds(self):
        adj = make()
        adj.record(50e6, FleetOutcome.GREY)
        assert adj.gmin == adj.gmax == 50e6

    def test_grey_expands_upward_and_downward(self):
        adj = make()
        adj.record(50e6, FleetOutcome.GREY)
        adj.record(60e6, FleetOutcome.GREY)
        adj.record(45e6, FleetOutcome.GREY)
        assert adj.gmin == 45e6
        assert adj.gmax == 60e6

    def test_probes_gaps_around_grey(self):
        adj = make()
        adj.record(50e6, FleetOutcome.GREY)
        rate = adj.next_rate()
        # wider gap is above (50..100): probe (50+100)/2
        assert rate == pytest.approx(75e6)
        adj.record(75e6, FleetOutcome.ABOVE)
        rate = adj.next_rate()
        # now lower gap (0..50) is wider: probe 25
        assert rate == pytest.approx(25e6)

    def test_grey_termination_condition(self):
        adj = make()
        adj.record(50e6, FleetOutcome.GREY)
        adj.record(51e6, FleetOutcome.ABOVE)
        adj.record(49e6, FleetOutcome.BELOW)
        assert adj.rmax - adj.gmax <= adj.chi
        assert adj.gmin - adj.rmin <= adj.chi
        assert adj.converged()

    def test_grey_outside_bounds_is_clamped(self):
        adj = make()
        adj.record(40e6, FleetOutcome.ABOVE)  # rmax = 40
        adj.record(60e6, FleetOutcome.GREY)  # grey wholly above rmax: stale
        # a grey interval that contradicts the outer bounds is dropped
        assert adj.gmin is None and adj.gmax is None
        adj.record(30e6, FleetOutcome.GREY)
        adj.record(50e6, FleetOutcome.GREY)  # upper edge clamps to rmax
        assert adj.gmax <= adj.rmax
        assert adj.gmin <= adj.gmax

    def test_contradicted_grey_is_dropped(self):
        adj = make()
        adj.record(50e6, FleetOutcome.GREY)
        # avail-bw drifted: everything below 60 now clearly above A
        adj.record(45e6, FleetOutcome.ABOVE)
        # grey interval [50,50] > rmax=45: contradicted, dropped
        assert adj.gmin is None and adj.gmax is None

    def test_report_overestimates_grey_by_at_most_two_chi(self):
        """The Section VI guarantee on the reported range width."""
        adj = make()
        truth_lo, truth_hi = 30e6, 40e6  # the "true" grey band

        def outcome(rate):
            if rate > truth_hi:
                return FleetOutcome.ABOVE
            if rate < truth_lo:
                return FleetOutcome.BELOW
            return FleetOutcome.GREY

        for _ in range(60):
            if adj.converged():
                break
            rate = adj.next_rate()
            adj.record(rate, outcome(rate))
        assert adj.converged()
        low, high = adj.report_range()
        assert low <= truth_lo and high >= truth_hi
        assert (high - low) <= (truth_hi - truth_lo) + 2 * adj.chi


class TestValidation:
    def test_bad_bounds(self):
        with pytest.raises(ValueError):
            RateAdjuster(rmax_bps=1e6, omega_bps=1e6, chi_bps=1e6, rmin_bps=2e6)

    def test_bad_resolutions(self):
        with pytest.raises(ValueError):
            RateAdjuster(rmax_bps=10e6, omega_bps=0, chi_bps=1e6)


class TestPropertyBased:
    @given(
        truth=st.floats(1e6, 99e6),
        seed=st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=50, deadline=None)
    def test_always_converges_and_brackets_constant_truth(self, truth, seed):
        """For any constant avail-bw, the search terminates and brackets it."""
        import random

        rng = random.Random(seed)
        adj = make()
        for _ in range(100):
            if adj.converged():
                break
            rate = adj.next_rate()
            # 10% of fleets are grey (borderline), otherwise truthful
            if abs(rate - truth) < 2e6 and rng.random() < 0.5:
                outcome = FleetOutcome.GREY
            else:
                outcome = (
                    FleetOutcome.ABOVE if rate > truth else FleetOutcome.BELOW
                )
            adj.record(rate, outcome)
        assert adj.converged()
        low, high = adj.report_range()
        # the grey shortcut can stop within chi of the truth's neighbourhood
        assert low <= truth + 2e6 + adj.chi
        assert high >= truth - 2e6 - adj.chi

    @given(
        seed=st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=50, deadline=None)
    def test_invariants_hold_under_arbitrary_outcomes(self, seed):
        """rmin <= gmin <= gmax <= rmax after any update sequence."""
        import random

        rng = random.Random(seed)
        adj = make()
        outcomes = [
            FleetOutcome.ABOVE,
            FleetOutcome.BELOW,
            FleetOutcome.GREY,
            FleetOutcome.ABORTED_LOSS,
        ]
        for _ in range(40):
            rate = rng.uniform(0, 100e6)
            adj.record(rate, rng.choice(outcomes))
            assert adj.rmin <= adj.rmax + 1e-9
            if adj.gmin is not None:
                assert adj.rmin - 1e-9 <= adj.gmin <= adj.gmax <= adj.rmax + 1e-9
