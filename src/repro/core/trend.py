"""Increasing-trend detection for one-way delays (paper Section IV).

Pathload does not expect the strict per-packet ordering of Proposition 1 to
hold under real (non-fluid) cross traffic.  Instead it looks for an *overall*
increasing OWD trend across a stream:

1. The ``K`` relative OWDs are partitioned into ``Gamma = floor(sqrt(K))``
   groups of consecutive measurements, and the **median** of each group is
   taken — robust to outliers and timestamping errors.
2. Two complementary statistics are computed on the medians
   ``D_1 .. D_Gamma``:

   * **PCT** (pairwise comparison test), Eq. (8)::

         S_PCT = (1 / (Gamma-1)) * sum_{k=2}^{Gamma} I(D_k > D_{k-1})

     the fraction of consecutive increasing pairs — 0.5 in expectation for
     independent OWDs, → 1 under a strong trend.

   * **PDT** (pairwise difference test), Eq. (9)::

         S_PDT = (D_Gamma - D_1) / sum_{k=2}^{Gamma} |D_k - D_{k-1}|

     the start-to-end variation relative to total absolute variation — 0 in
     expectation for independent OWDs, → 1 under a strong trend, and bounded
     in [-1, 1].

3. The stream is **type I** (increasing) if *either* metric exceeds its
   threshold (defaults: PCT 0.55, PDT 0.4 — the released tool's values), and
   **type N** otherwise.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

__all__ = [
    "StreamType",
    "StreamClassification",
    "median_groups",
    "pct_metric",
    "pdt_metric",
    "classify_owds",
    "classify_owds_two_sided",
]


class StreamType(enum.Enum):
    """Pathload's per-stream verdict."""

    INCREASING = "I"  # rate above avail-bw during the stream
    NONINCREASING = "N"  # rate below avail-bw during the stream
    AMBIGUOUS = "A"  # metrics inconclusive or contradictory (tool rule)
    UNUSABLE = "U"  # discarded: losses or send-rate deviations


@dataclass(frozen=True)
class StreamClassification:
    """Verdict plus the raw trend statistics behind it."""

    stream_type: StreamType
    pct: float
    pdt: float
    n_groups: int

    @property
    def is_increasing(self) -> bool:
        """True when the stream is type I."""
        return self.stream_type is StreamType.INCREASING


def median_groups(owds: Sequence[float], n_groups: Optional[int] = None) -> np.ndarray:
    """Group-median preprocessing of a stream's relative OWDs.

    Splits ``owds`` into ``n_groups`` (default ``floor(sqrt(K))``) groups of
    consecutive measurements and returns the per-group medians.  Trailing
    measurements that do not fill a complete group are folded into the last
    group, so no data is discarded.
    """
    owds = np.asarray(owds, dtype=np.float64)
    k = len(owds)
    if k < 2:
        raise ValueError(f"need at least 2 OWDs, got {k}")
    if n_groups is None:
        n_groups = max(2, int(math.isqrt(k)))
    if n_groups < 2:
        raise ValueError(f"need at least 2 groups, got {n_groups}")
    if n_groups > k:
        n_groups = k
    group_size = k // n_groups
    medians = np.empty(n_groups, dtype=np.float64)
    for g in range(n_groups):
        start = g * group_size
        end = (g + 1) * group_size if g < n_groups - 1 else k
        medians[g] = np.median(owds[start:end])
    return medians


def pct_metric(medians: Sequence[float]) -> float:
    """Pairwise comparison test statistic (Eq. 8) over group medians."""
    medians = np.asarray(medians, dtype=np.float64)
    if len(medians) < 2:
        raise ValueError(f"need at least 2 group medians, got {len(medians)}")
    increases = np.diff(medians) > 0
    return float(np.count_nonzero(increases)) / (len(medians) - 1)


def pdt_metric(medians: Sequence[float]) -> float:
    """Pairwise difference test statistic (Eq. 9) over group medians.

    Returns 0 when the OWDs show no variation at all (a stream through an
    idle fluid-like path), since there is then no trend to speak of.
    """
    medians = np.asarray(medians, dtype=np.float64)
    if len(medians) < 2:
        raise ValueError(f"need at least 2 group medians, got {len(medians)}")
    total_variation = float(np.sum(np.abs(np.diff(medians))))
    if total_variation == 0.0:
        return 0.0
    return float(medians[-1] - medians[0]) / total_variation


def classify_owds(
    owds: Sequence[float],
    pct_threshold: float = 0.55,
    pdt_threshold: float = 0.4,
    use_pct: bool = True,
    use_pdt: bool = True,
    n_groups: Optional[int] = None,
) -> StreamClassification:
    """Classify a stream's OWD sequence as type I or type N.

    The stream is type I if any *enabled* metric exceeds its threshold
    (the tool's "either metric shows an increasing trend" rule).  Disabling
    one metric reproduces the paper's single-metric sensitivity studies
    (Fig. 9 uses PDT only).
    """
    if not (use_pct or use_pdt):
        raise ValueError("at least one of PCT/PDT must be enabled")
    medians = median_groups(owds, n_groups=n_groups)
    pct = pct_metric(medians)
    pdt = pdt_metric(medians)
    increasing = (use_pct and pct > pct_threshold) or (use_pdt and pdt > pdt_threshold)
    return StreamClassification(
        stream_type=StreamType.INCREASING if increasing else StreamType.NONINCREASING,
        pct=pct,
        pdt=pdt,
        n_groups=len(medians),
    )


def _three_way(value: float, incr_threshold: float, nonincr_threshold: float) -> StreamType:
    """One metric's three-way verdict."""
    if value > incr_threshold:
        return StreamType.INCREASING
    if value < nonincr_threshold:
        return StreamType.NONINCREASING
    return StreamType.AMBIGUOUS


def classify_owds_two_sided(
    owds: Sequence[float],
    pct_incr: float = 0.66,
    pct_nonincr: float = 0.54,
    pdt_incr: float = 0.55,
    pdt_nonincr: float = 0.45,
    use_pct: bool = True,
    use_pdt: bool = True,
    n_groups: Optional[int] = None,
) -> StreamClassification:
    """Classify a stream with the *released tool's* two-sided rule.

    The ToN paper describes a simplified one-sided rule ("type I if either
    metric exceeds its threshold"); the actual pathload implementation is
    stricter, and the difference matters: under the one-sided rule, a stream
    with *no* trend at all still lands type I with probability ≈ 0.25
    (PCT of independent OWDs is Binomial(Gamma-1, 0.5)/(Gamma-1), which
    exceeds 0.55 that often).  That noise floor prevents fleets below the
    avail-bw from ever reaching the ``f`` agreement needed for an ``R < A``
    verdict, collapsing the search's lower bound.

    The tool rule gives each metric three outcomes

    * PCT: increasing if > ``pct_incr`` (0.66), non-increasing if
      < ``pct_nonincr`` (0.54), else ambiguous;
    * PDT: increasing if > ``pdt_incr`` (0.55), non-increasing if
      < ``pdt_nonincr`` (0.45), else ambiguous;

    and combines them: agreement (or one metric ambiguous) yields the
    non-ambiguous verdict, contradiction yields
    :attr:`StreamType.AMBIGUOUS`.  Ambiguous streams count toward neither
    fleet fraction, feeding the grey region instead — which is precisely the
    role Section IV assigns to it.
    """
    if not (use_pct or use_pdt):
        raise ValueError("at least one of PCT/PDT must be enabled")
    if pct_nonincr > pct_incr or pdt_nonincr > pdt_incr:
        raise ValueError("non-increasing thresholds must not exceed increasing ones")
    medians = median_groups(owds, n_groups=n_groups)
    pct = pct_metric(medians)
    pdt = pdt_metric(medians)
    verdicts = []
    if use_pct:
        verdicts.append(_three_way(pct, pct_incr, pct_nonincr))
    if use_pdt:
        verdicts.append(_three_way(pdt, pdt_incr, pdt_nonincr))
    informative = [v for v in verdicts if v is not StreamType.AMBIGUOUS]
    if not informative:
        combined = StreamType.AMBIGUOUS
    elif all(v is informative[0] for v in informative):
        combined = informative[0]
    else:  # PCT and PDT contradict each other
        combined = StreamType.AMBIGUOUS
    return StreamClassification(
        stream_type=combined, pct=pct, pdt=pdt, n_groups=len(medians)
    )
