"""Fleet-level classification (paper Section IV, "Fleets of Streams").

A *fleet* is ``N`` back-to-back streams at the same rate ``R``, each
classified individually as type I (increasing OWD trend) or type N.  The
fleet verdict is:

* ``R > A`` when at least a fraction ``f`` of usable streams are type I;
* ``R < A`` when at least ``f`` are type N;
* **grey** (``R ≈ A``) otherwise — the avail-bw moved above and below ``R``
  during the fleet, so some streams sampled each regime.

Streams with excessive loss (> 10 %) are discarded, and a fleet in which
several streams suffer moderate loss (> 3 %) is aborted outright, treated
like ``R > A`` so the next fleet probes a lower rate.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field

import numpy as np

from .config import PathloadConfig
from .probing import StreamMeasurement
from .trend import (
    StreamClassification,
    StreamType,
    classify_owds,
    classify_owds_two_sided,
)

__all__ = ["FleetOutcome", "FleetRecord", "classify_stream", "classify_fleet"]


class FleetOutcome(enum.Enum):
    """Relation between the fleet rate and the avail-bw, as inferred."""

    ABOVE = "R>A"
    BELOW = "R<A"
    GREY = "grey"
    ABORTED_LOSS = "aborted-loss"


@dataclass
class FleetRecord:
    """Complete trace of one fleet: per-stream data plus the verdict."""

    rate_bps: float
    outcome: FleetOutcome
    classifications: list[StreamClassification] = field(default_factory=list)
    measurements: list[StreamMeasurement] = field(default_factory=list)
    t_start: float = 0.0
    t_end: float = 0.0

    @property
    def n_increasing(self) -> int:
        """Streams classified type I."""
        return sum(
            1 for c in self.classifications if c.stream_type is StreamType.INCREASING
        )

    @property
    def n_nonincreasing(self) -> int:
        """Streams classified type N."""
        return sum(
            1 for c in self.classifications if c.stream_type is StreamType.NONINCREASING
        )

    @property
    def n_ambiguous(self) -> int:
        """Streams whose metrics were inconclusive (tool rule only)."""
        return sum(
            1 for c in self.classifications if c.stream_type is StreamType.AMBIGUOUS
        )

    @property
    def n_unusable(self) -> int:
        """Streams discarded for loss or send-rate deviations."""
        return sum(
            1 for c in self.classifications if c.stream_type is StreamType.UNUSABLE
        )

    def decision_summary(self) -> dict:
        """Plain-data digest of the verdict evidence, for decision logs.

        One letter per stream (I/N/A/U, in send order) plus the PCT/PDT
        metric values behind each classification — the Section IV
        quantities an observer needs to audit the fleet verdict.
        """
        return {
            "rate_bps": self.rate_bps,
            "outcome": self.outcome.value,
            "streams": "".join(c.stream_type.value for c in self.classifications),
            "pct": [c.pct for c in self.classifications],
            "pdt": [c.pdt for c in self.classifications],
            "n_increasing": self.n_increasing,
            "n_nonincreasing": self.n_nonincreasing,
        }


def _unusable() -> StreamClassification:
    return StreamClassification(
        stream_type=StreamType.UNUSABLE, pct=float("nan"), pdt=float("nan"), n_groups=0
    )


def _sender_rate_deviates(
    measurement: StreamMeasurement, config: PathloadConfig
) -> bool:
    """Receiver-side context-switch detection (paper Section IV).

    The sender timestamps let the receiver reconstruct the actual packet
    interspacing; if too many gaps deviate from the nominal period, the
    stream did not probe at its intended rate and must be discarded.
    """
    gaps = measurement.sender_gaps()
    if len(gaps) == 0:
        return False
    period = measurement.spec.period
    deviant = int(np.sum(np.abs(gaps - period) > config.gap_deviation_tolerance * period))
    return deviant > config.max_deviant_gap_fraction * len(gaps)


def classify_stream(
    measurement: StreamMeasurement, config: PathloadConfig
) -> StreamClassification:
    """Classify one stream, applying the discard rules first.

    A stream is unusable when it lost too many packets (> 10 %), arrived
    nearly empty, or — per the receiver's sender-timestamp check — was not
    actually transmitted at its nominal rate (context switches at the
    sender).
    """
    if (
        measurement.loss_rate > config.stream_loss_abort
        or measurement.n_received < 6
    ):
        return _unusable()
    if _sender_rate_deviates(measurement, config):
        return _unusable()
    if config.classification_rule == "paper":
        return classify_owds(
            measurement.relative_owds(),
            pct_threshold=config.pct_threshold,
            pdt_threshold=config.pdt_threshold,
            use_pct=config.use_pct,
            use_pdt=config.use_pdt,
        )
    return classify_owds_two_sided(
        measurement.relative_owds(),
        pct_incr=config.pct_incr_threshold,
        pct_nonincr=config.pct_nonincr_threshold,
        pdt_incr=config.pdt_incr_threshold,
        pdt_nonincr=config.pdt_nonincr_threshold,
        use_pct=config.use_pct,
        use_pdt=config.use_pdt,
    )


def classify_fleet(
    classifications: list[StreamClassification],
    measurements: list[StreamMeasurement],
    config: PathloadConfig,
) -> FleetOutcome:
    """Aggregate per-stream verdicts into the fleet verdict."""
    lossy = sum(1 for m in measurements if m.loss_rate > config.moderate_loss)
    if lossy > config.max_lossy_streams:
        return FleetOutcome.ABORTED_LOSS
    usable = [c for c in classifications if c.stream_type is not StreamType.UNUSABLE]
    if len(usable) < config.min_usable_streams:
        return FleetOutcome.ABORTED_LOSS
    needed = math.ceil(config.fleet_fraction * len(usable))
    n_increasing = sum(1 for c in usable if c.stream_type is StreamType.INCREASING)
    n_nonincreasing = sum(
        1 for c in usable if c.stream_type is StreamType.NONINCREASING
    )
    # Ambiguous streams (tool rule) count toward neither side; they lower
    # both fractions and therefore push the fleet toward the grey region.
    if n_increasing >= needed:
        return FleetOutcome.ABOVE
    if n_nonincreasing >= needed:
        return FleetOutcome.BELOW
    return FleetOutcome.GREY
