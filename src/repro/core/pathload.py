"""The pathload controller: SLoPS as an executable, transport-agnostic
state machine.

:class:`PathloadController.run` is a generator implementing the complete
measurement algorithm of Section IV:

1. **Initialization** — probe once at a high rate and use the stream's
   dispersion rate (the ADR) as the first fleet rate; the search's upper
   bound starts at the tool's maximum measurable rate.
2. **Fleets** — send ``N`` streams at the current rate, classifying each
   via PCT/PDT on group medians; an idle interval ``max(RTT, 9V)`` follows
   every stream so the tool's average rate stays below 10 % of the probe
   rate.
3. **Verdict + rate adjustment** — grey-region-aware binary search
   (:class:`~repro.core.rate_adjust.RateAdjuster`).
4. **Termination** — resolution ω reached, grey-region resolution χ
   reached, the path looks saturated (rate floor hit), or the fleet budget
   is exhausted.

The generator yields :class:`~repro.core.probing.SendStream` and
:class:`~repro.core.probing.Idle` actions and receives
:class:`~repro.core.probing.StreamMeasurement` objects, so the identical
logic runs over the discrete-event simulator, a synthetic test harness, or
(in principle) real sockets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional, Union

from .config import PathloadConfig
from .fleet import FleetOutcome, FleetRecord, classify_fleet, classify_stream
from .probing import Idle, SendStream, StreamMeasurement, stream_spec_for_rate
from .rate_adjust import RateAdjuster

__all__ = ["PathloadController", "PathloadReport", "Termination"]


class Termination:
    """Why a pathload run ended (plain-string constants)."""

    RESOLUTION = "resolution"  # R_max - R_min <= omega, no grey region
    GREY_RESOLUTION = "grey-resolution"  # both gaps around the grey region <= chi
    SATURATED = "saturated"  # rate floor hit; path has ~no avail-bw
    MAX_RATE = "max-rate-reached"  # avail-bw exceeds the highest probeable rate
    MAX_FLEETS = "max-fleets"  # safety cap reached before convergence


@dataclass
class PathloadReport:
    """Final output of one pathload run.

    The headline result is the range ``[low_bps, high_bps]`` in which the
    avail-bw varied during the measurement, at the averaging timescale set
    by the stream duration.
    """

    low_bps: float
    high_bps: float
    grey_low_bps: Optional[float]
    grey_high_bps: Optional[float]
    termination: str
    fleets: list[FleetRecord] = field(default_factory=list)
    n_streams_sent: int = 0
    t_start: float = 0.0
    t_end: float = 0.0

    @property
    def mid_bps(self) -> float:
        """Center of the reported range."""
        return (self.low_bps + self.high_bps) / 2.0

    @property
    def width_bps(self) -> float:
        """Width of the reported range."""
        return self.high_bps - self.low_bps

    @property
    def relative_variation(self) -> float:
        """The paper's variability metric ρ (Eq. 12): range width over its
        center."""
        if self.mid_bps == 0:
            return 0.0
        return self.width_bps / self.mid_bps

    @property
    def duration(self) -> float:
        """Wall (simulated) time the measurement took."""
        return self.t_end - self.t_start

    def contains(self, value_bps: float) -> bool:
        """True when ``value_bps`` lies inside the reported range."""
        return self.low_bps <= value_bps <= self.high_bps

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<PathloadReport [{self.low_bps / 1e6:.2f}, {self.high_bps / 1e6:.2f}] "
            f"Mb/s, {len(self.fleets)} fleets, {self.termination}>"
        )


Action = Union[SendStream, Idle]


class PathloadController:
    """Sans-IO pathload measurement logic.

    Parameters
    ----------
    config:
        Tool parameters (defaults = the released tool's).
    rtt:
        The path round-trip time, used to size idle intervals.  A real
        deployment measures it during connection setup; simulation drivers
        pass the known value.
    tracer:
        Optional :class:`repro.obs.Tracer`.  When set, every fleet emits a
        structured decision record (rate, PCT/PDT values, verdict, bracket
        and grey region before→after).  Pure observation: the measurement
        itself is bit-identical with or without it.
    """

    def __init__(
        self,
        config: Optional[PathloadConfig] = None,
        rtt: float = 0.1,
        tracer=None,
    ):
        if rtt <= 0:
            raise ValueError(f"rtt must be positive, got {rtt}")
        self.config = config if config is not None else PathloadConfig()
        self.rtt = float(rtt)
        self.tracer = tracer

    # ------------------------------------------------------------------
    # Stream/fleet helpers
    # ------------------------------------------------------------------
    def _spec_for(self, rate_bps: float) -> "SendStream":
        cfg = self.config
        return SendStream(
            stream_spec_for_rate(
                rate_bps,
                n_packets=cfg.n_packets,
                min_period=cfg.min_period,
                min_packet_size=cfg.min_packet_size,
                mtu=cfg.mtu,
            )
        )

    def _idle_after_stream(self, stream_duration: float) -> Idle:
        """Interstream idle: ``max(RTT, idle_factor * V)`` (Section IV)."""
        return Idle(max(self.rtt, self.config.idle_factor * stream_duration))

    def _run_fleet(
        self, rate_bps: float
    ) -> Generator[Action, StreamMeasurement, FleetRecord]:
        """Send one fleet and classify it.  (Sub-generator of :meth:`run`.)"""
        cfg = self.config
        record = FleetRecord(rate_bps=rate_bps, outcome=FleetOutcome.GREY)
        lossy = 0
        for index in range(cfg.n_streams):
            action = self._spec_for(rate_bps)
            measurement = yield action
            if index == 0:
                record.t_start = measurement.t_start
            record.t_end = measurement.t_end
            record.measurements.append(measurement)
            record.classifications.append(classify_stream(measurement, cfg))
            if measurement.loss_rate > cfg.moderate_loss:
                lossy += 1
                if lossy > cfg.max_lossy_streams:
                    # Abort early: no point finishing a fleet the path
                    # cannot carry (paper: fleet aborted, rate decreased).
                    record.outcome = FleetOutcome.ABORTED_LOSS
                    return record
            yield self._idle_after_stream(action.spec.duration)
        record.outcome = classify_fleet(
            record.classifications, record.measurements, cfg
        )
        return record

    # ------------------------------------------------------------------
    # Main algorithm
    # ------------------------------------------------------------------
    def run(self) -> Generator[Action, StreamMeasurement, PathloadReport]:
        """The full measurement: yields actions, returns the report."""
        cfg = self.config
        fleets: list[FleetRecord] = []
        streams_sent = 0
        t_start: Optional[float] = None
        t_end = 0.0

        # --- initialization: dispersion-based first rate ---------------
        if cfg.initial_rate_bps is not None:
            first_rate = cfg.initial_rate_bps
        else:
            probe = self._spec_for(0.75 * cfg.max_rate_bps)
            measurement = yield probe
            streams_sent += 1
            t_start = measurement.t_start
            t_end = measurement.t_end
            if measurement.n_received >= 2:
                first_rate = measurement.dispersion_rate_bps()
            else:
                first_rate = cfg.max_rate_bps / 2.0
            yield self._idle_after_stream(probe.spec.duration)

        adjuster = RateAdjuster(
            rmax_bps=cfg.max_rate_bps,
            omega_bps=cfg.resolution_bps,
            chi_bps=cfg.grey_resolution_bps,
        )
        rate = min(max(first_rate, cfg.min_rate_bps), 0.95 * cfg.max_rate_bps)
        termination = Termination.MAX_FLEETS

        for _fleet_index in range(cfg.max_fleets):
            if adjuster.converged():
                termination = (
                    Termination.GREY_RESOLUTION
                    if adjuster.gmin is not None
                    else Termination.RESOLUTION
                )
                break
            if adjuster.rmax <= cfg.min_rate_bps:
                termination = Termination.SATURATED
                break
            if adjuster.rmin >= 0.95 * cfg.max_rate_bps:
                # Everything the tool can generate is below the avail-bw:
                # the path is faster than the maximum probing rate
                # (MTU-sized packets at the minimum period, Section IV).
                termination = Termination.MAX_RATE
                break
            record = yield from self._run_fleet(rate)
            fleets.append(record)
            streams_sent += len(record.measurements)
            if t_start is None:
                t_start = record.t_start
            t_end = record.t_end
            tracer = self.tracer
            before = adjuster.state() if tracer is not None else None
            adjuster.record(rate, record.outcome)
            rate = min(
                max(adjuster.next_rate(), cfg.min_rate_bps), 0.95 * cfg.max_rate_bps
            )
            if tracer is not None:
                tracer.fleet_decision(
                    index=_fleet_index,
                    record=record,
                    before=before,
                    after=adjuster.state(),
                    next_rate_bps=rate,
                )
        else:
            # Fleet budget exhausted; the last fleet may still have achieved
            # convergence, so classify the termination accordingly.
            if adjuster.converged():
                termination = (
                    Termination.GREY_RESOLUTION
                    if adjuster.gmin is not None
                    else Termination.RESOLUTION
                )
            else:
                termination = Termination.MAX_FLEETS

        low, high = adjuster.report_range()
        return PathloadReport(
            low_bps=low,
            high_bps=high,
            grey_low_bps=adjuster.gmin,
            grey_high_bps=adjuster.gmax,
            termination=termination,
            fleets=fleets,
            n_streams_sent=streams_sent,
            t_start=t_start if t_start is not None else 0.0,
            t_end=t_end,
        )
