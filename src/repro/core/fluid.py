"""Analytic fluid-cross-traffic model of a path (paper Section III-A and
Appendix).

With stationary *fluid* cross traffic, the evolution of a periodic stream
through a chain of FIFO links has a closed form:

* At a link with capacity ``C`` and avail-bw ``A``, a stream entering at
  rate ``R_in > A`` keeps the link backlogged, each packet queues behind
  a linearly growing backlog, and the stream exits at (Eq. 16/19)::

      R_out = R_in * C / (C + R_in - A)

  with per-packet queueing-delay growth ``delta = L8 * (R_in - A) /
  (R_in * C)`` seconds per packet (``L8`` = packet size in bits).

* If ``R_in <= A``, the stream is transparent: ``R_out = R_in`` and no
  queueing-delay growth occurs.

Applying this recursively across the path yields **Proposition 1** (OWDs
strictly increase iff ``R > A``) and **Proposition 2** (the exit rate
depends on the capacity and avail-bw of every link, so train dispersion
cannot in general recover ``A``).

:class:`FluidPath` implements the recursion exactly, and
:func:`run_controller_fluid` drives a full
:class:`~repro.core.pathload.PathloadController` against it with optional
Gaussian OWD noise — a complete pathload run in microseconds, used heavily
by the test suite and the property-based invariant checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from .pathload import PathloadController, PathloadReport
from .probing import Idle, PacketRecord, SendStream, StreamMeasurement, StreamSpec

__all__ = ["FluidLink", "FluidPath", "run_controller_fluid"]


@dataclass(frozen=True)
class FluidLink:
    """One hop of the fluid model: capacity and average avail-bw."""

    capacity_bps: float
    avail_bw_bps: float

    def __post_init__(self) -> None:
        if self.capacity_bps <= 0:
            raise ValueError(f"capacity must be positive, got {self.capacity_bps}")
        if not 0 <= self.avail_bw_bps <= self.capacity_bps:
            raise ValueError(
                f"avail-bw must be in [0, capacity], got "
                f"{self.avail_bw_bps} vs {self.capacity_bps}"
            )

    @property
    def utilization(self) -> float:
        """Cross-traffic utilization ``u = 1 - A/C``."""
        return 1.0 - self.avail_bw_bps / self.capacity_bps


class FluidPath:
    """A chain of :class:`FluidLink` hops with stationary fluid cross
    traffic."""

    def __init__(self, links: Sequence[FluidLink], prop_delay: float = 0.0):
        if not links:
            raise ValueError("a fluid path needs at least one link")
        if prop_delay < 0:
            raise ValueError(f"prop delay must be >= 0, got {prop_delay}")
        self.links = tuple(links)
        self.prop_delay = float(prop_delay)

    # ------------------------------------------------------------------
    # Path metrics
    # ------------------------------------------------------------------
    @property
    def avail_bw_bps(self) -> float:
        """End-to-end avail-bw: the tight link's (Eq. 3/4)."""
        return min(link.avail_bw_bps for link in self.links)

    @property
    def capacity_bps(self) -> float:
        """End-to-end capacity: the narrow link's rate (Eq. 1)."""
        return min(link.capacity_bps for link in self.links)

    @property
    def tight_link_index(self) -> int:
        """Index of the (first) tight link."""
        avail = [link.avail_bw_bps for link in self.links]
        return avail.index(min(avail))

    # ------------------------------------------------------------------
    # Stream evolution (the Appendix recursion)
    # ------------------------------------------------------------------
    def entry_rates(self, rate_bps: float) -> list[float]:
        """Entry rate of the stream at each link (first entry = ``rate_bps``)."""
        if rate_bps <= 0:
            raise ValueError(f"rate must be positive, got {rate_bps}")
        rates = [float(rate_bps)]
        for link in self.links[:-1]:
            rates.append(self._exit_rate_of_link(rates[-1], link))
        return rates

    def exit_rate(self, rate_bps: float) -> float:
        """Stream rate at the receiver (Proposition 2)."""
        rate = float(rate_bps)
        for link in self.links:
            rate = self._exit_rate_of_link(rate, link)
        return rate

    @staticmethod
    def _exit_rate_of_link(rate_in: float, link: FluidLink) -> float:
        if rate_in <= link.avail_bw_bps:
            return rate_in
        return (
            rate_in
            * link.capacity_bps
            / (link.capacity_bps + rate_in - link.avail_bw_bps)
        )

    def owd_slope_per_packet(self, spec: StreamSpec) -> float:
        """Per-packet OWD growth (seconds/packet) for a stream of ``spec``.

        The sum over links of ``L8 * (R_in - A_i) / (R_in * C_i)`` for links
        where the entering rate exceeds the link's avail-bw; zero iff
        ``R <= A`` (Proposition 1).
        """
        slope = 0.0
        bits = spec.packet_size * 8.0
        for rate_in, link in zip(self.entry_rates(spec.rate_bps), self.links):
            if rate_in > link.avail_bw_bps:
                slope += bits * (rate_in - link.avail_bw_bps) / (rate_in * link.capacity_bps)
        return slope

    def stream_owds(self, spec: StreamSpec) -> np.ndarray:
        """Exact one-way delays of each packet of a periodic stream.

        ``OWD(k) = sum_i L8/C_i  +  k * slope  +  prop_delay`` — fixed
        store-and-forward serialization, linearly growing queueing, and
        propagation.
        """
        base = sum(spec.packet_size * 8.0 / link.capacity_bps for link in self.links)
        base += self.prop_delay
        slope = self.owd_slope_per_packet(spec)
        return base + slope * np.arange(spec.n_packets, dtype=np.float64)

    # ------------------------------------------------------------------
    # Synthetic measurements
    # ------------------------------------------------------------------
    def measure_stream(
        self,
        spec: StreamSpec,
        t_start: float = 0.0,
        noise_rng: Optional[np.random.Generator] = None,
        noise_std: float = 0.0,
        clock_offset: float = 0.0,
    ) -> StreamMeasurement:
        """Produce the :class:`StreamMeasurement` the receiver would record.

        Optional zero-mean Gaussian noise on each OWD emulates the
        packet-scale granularity of real (non-fluid) cross traffic;
        ``clock_offset`` shifts all receiver stamps, verifying offset
        invariance.
        """
        owds = self.stream_owds(spec)
        if noise_rng is not None and noise_std > 0:
            owds = owds + noise_rng.normal(0.0, noise_std, size=len(owds))
        send_times = t_start + spec.period * np.arange(spec.n_packets)
        records = [
            PacketRecord(
                seq=k,
                sender_stamp=float(send_times[k]),
                recv_stamp=float(send_times[k] + owds[k] + clock_offset),
            )
            for k in range(spec.n_packets)
        ]
        return StreamMeasurement(
            spec=spec,
            records=records,
            n_sent=spec.n_packets,
            t_start=t_start,
            t_end=float(send_times[-1] + owds[-1]),
        )


def run_controller_fluid(
    controller: PathloadController,
    path: FluidPath,
    noise_rng: Optional[np.random.Generator] = None,
    noise_std: float = 0.0,
    clock_offset: float = 0.0,
) -> PathloadReport:
    """Drive a pathload controller to completion against a fluid path.

    A synchronous driver: no event loop, virtual time advances by stream
    durations and idle intervals.  Ideal for unit tests and property-based
    checks of the full estimation pipeline.
    """
    gen = controller.run()
    clock = 0.0
    try:
        action = next(gen)
        while True:
            if isinstance(action, SendStream):
                measurement = path.measure_stream(
                    action.spec,
                    t_start=clock,
                    noise_rng=noise_rng,
                    noise_std=noise_std,
                    clock_offset=clock_offset,
                )
                clock = measurement.t_end + controller.rtt / 2.0
                measurement.t_end = clock
                action = gen.send(measurement)
            elif isinstance(action, Idle):
                clock += action.duration
                action = gen.send(None)
            else:  # pragma: no cover - controller contract guard
                raise TypeError(f"unexpected controller action {action!r}")
    except StopIteration as stop:
        return stop.value
