"""Serialization of pathload reports.

A measurement tool's output outlives the process that produced it: the
paper's own Fig. 10/11-14 analyses post-process hundreds of stored runs.
These helpers round-trip a :class:`~repro.core.pathload.PathloadReport`
through plain JSON-compatible dicts — fleet verdicts and per-stream
statistics included, raw packet records omitted (they are bulky and
re-derivable only from a live run).
"""

from __future__ import annotations

import json
from typing import Any

from .fleet import FleetOutcome, FleetRecord
from .pathload import PathloadReport
from .trend import StreamClassification, StreamType

__all__ = ["report_to_dict", "report_from_dict", "dump_report", "load_report"]

_SCHEMA_VERSION = 1


def report_to_dict(report: PathloadReport) -> dict:
    """A JSON-compatible representation of a report."""
    return {
        "schema_version": _SCHEMA_VERSION,
        "low_bps": report.low_bps,
        "high_bps": report.high_bps,
        "grey_low_bps": report.grey_low_bps,
        "grey_high_bps": report.grey_high_bps,
        "termination": report.termination,
        "n_streams_sent": report.n_streams_sent,
        "t_start": report.t_start,
        "t_end": report.t_end,
        "fleets": [
            {
                "rate_bps": fleet.rate_bps,
                "outcome": fleet.outcome.value,
                "t_start": fleet.t_start,
                "t_end": fleet.t_end,
                "streams": [
                    {
                        "type": c.stream_type.value,
                        "pct": _nan_to_none(c.pct),
                        "pdt": _nan_to_none(c.pdt),
                        "n_groups": c.n_groups,
                    }
                    for c in fleet.classifications
                ],
            }
            for fleet in report.fleets
        ],
    }


def _nan_to_none(value: float) -> Any:
    return None if value != value else value  # NaN-safe for JSON


def _none_to_nan(value: Any) -> float:
    return float("nan") if value is None else float(value)


def report_from_dict(data: dict) -> PathloadReport:
    """Rebuild a report (without raw measurements) from its dict form."""
    version = data.get("schema_version")
    if version != _SCHEMA_VERSION:
        raise ValueError(f"unsupported report schema version: {version!r}")
    fleets = []
    for fd in data["fleets"]:
        fleets.append(
            FleetRecord(
                rate_bps=fd["rate_bps"],
                outcome=FleetOutcome(fd["outcome"]),
                classifications=[
                    StreamClassification(
                        stream_type=StreamType(sd["type"]),
                        pct=_none_to_nan(sd["pct"]),
                        pdt=_none_to_nan(sd["pdt"]),
                        n_groups=sd["n_groups"],
                    )
                    for sd in fd["streams"]
                ],
                measurements=[],
                t_start=fd["t_start"],
                t_end=fd["t_end"],
            )
        )
    return PathloadReport(
        low_bps=data["low_bps"],
        high_bps=data["high_bps"],
        grey_low_bps=data["grey_low_bps"],
        grey_high_bps=data["grey_high_bps"],
        termination=data["termination"],
        fleets=fleets,
        n_streams_sent=data["n_streams_sent"],
        t_start=data["t_start"],
        t_end=data["t_end"],
    )


def dump_report(report: PathloadReport, path: str) -> None:
    """Write a report to a JSON file."""
    with open(path, "w") as fh:
        json.dump(report_to_dict(report), fh, indent=2)


def load_report(path: str) -> PathloadReport:
    """Read a report previously written by :func:`dump_report`."""
    with open(path) as fh:
        return report_from_dict(json.load(fh))
