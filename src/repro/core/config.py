"""Pathload configuration.

All of the tool's knobs in one frozen dataclass, with the defaults of the
released pathload / the paper's Section IV:

===========================  =======================================
stream length ``K``          100 packets
fleet length ``N``           12 streams
PCT threshold                0.55
PDT threshold                0.40
fleet fraction ``f``         0.7  (reported as the experiments' value)
avail-bw resolution ω        1 Mb/s
grey resolution χ            1.5 Mb/s
min period ``T_min``         100 µs
min packet size              200 B
MTU                          1500 B
stream abort loss            10 %
moderate loss                3 %
===========================  =======================================
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

__all__ = ["PathloadConfig", "PAPER_EXPERIMENT_CONFIG"]


@dataclass(frozen=True)
class PathloadConfig:
    """Every tunable of the pathload measurement algorithm."""

    # --- stream shape -------------------------------------------------
    #: packets per stream (paper: K = 100)
    n_packets: int = 100
    #: minimum inter-packet period the hosts can achieve (T >= T_min)
    min_period: float = 100e-6
    #: minimum probe packet size (keeps layer-2 header effects negligible)
    min_packet_size: int = 200
    #: maximum probe packet size (path MTU; avoids fragmentation)
    mtu: int = 1500

    # --- fleet shape ----------------------------------------------------
    #: streams per fleet (paper: N = 12)
    n_streams: int = 12
    #: fraction of usable streams that must agree to call a fleet
    #: increasing/non-increasing (f in Section IV; grey otherwise)
    fleet_fraction: float = 0.7
    #: the inter-stream idle interval is max(RTT, idle_factor * V); 9 keeps
    #: the tool's average rate below 10% of the stream rate
    idle_factor: float = 9.0

    # --- trend detection ------------------------------------------------
    #: which per-stream classification rule to apply:
    #: "tool"  — the released pathload's two-sided three-way rule (default;
    #:           see :func:`repro.core.trend.classify_owds_two_sided`);
    #: "paper" — the ToN text's simplified one-sided rule ("type I if either
    #:           metric exceeds its threshold").
    classification_rule: str = "tool"
    #: one-sided thresholds (the "paper" rule; also the Fig. 9 sweep knob)
    pct_threshold: float = 0.55
    pdt_threshold: float = 0.4
    #: two-sided thresholds (the "tool" rule)
    pct_incr_threshold: float = 0.66
    pct_nonincr_threshold: float = 0.54
    pdt_incr_threshold: float = 0.55
    pdt_nonincr_threshold: float = 0.45
    use_pct: bool = True
    use_pdt: bool = True

    # --- send-rate deviation handling -----------------------------------
    #: a sender gap is "deviant" when it differs from the nominal period by
    #: more than this fraction (context switch / scheduling glitch at the
    #: sender, detected by the receiver from the sender timestamps)
    gap_deviation_tolerance: float = 0.30
    #: discard the stream when more than this fraction of its sender gaps
    #: are deviant
    max_deviant_gap_fraction: float = 0.20

    # --- loss handling ----------------------------------------------------
    #: a stream with more loss than this is discarded (paper: 10%)
    stream_loss_abort: float = 0.10
    #: per-stream loss rate considered "moderate" (paper: 3%)
    moderate_loss: float = 0.03
    #: abort the fleet when more than this many streams see moderate loss
    max_lossy_streams: int = 3
    #: minimum usable streams for a fleet verdict; fewer aborts the fleet
    min_usable_streams: int = 4

    # --- convergence ------------------------------------------------------
    #: avail-bw estimation resolution ω in b/s
    resolution_bps: float = 1e6
    #: grey-region resolution χ in b/s
    grey_resolution_bps: float = 1.5e6
    #: hard cap on fleets per measurement (binary search safety net)
    max_fleets: int = 50
    #: give up narrowing below this rate; report [0, R] instead (a saturated
    #: path, as in the paper's Section VII intervals B and D)
    min_rate_bps: float = 100e3
    #: optional explicit first probing rate; default: the dispersion (ADR)
    #: of an initial max-rate stream, pathload's initialization heuristic
    initial_rate_bps: Optional[float] = None

    def __post_init__(self) -> None:
        if self.n_packets < 6:
            raise ValueError(f"n_packets must be >= 6, got {self.n_packets}")
        if self.n_streams < 1:
            raise ValueError(f"n_streams must be >= 1, got {self.n_streams}")
        if not 0.5 <= self.fleet_fraction <= 1.0:
            raise ValueError(
                f"fleet_fraction must be in [0.5, 1], got {self.fleet_fraction}"
            )
        if self.min_period <= 0:
            raise ValueError(f"min_period must be positive, got {self.min_period}")
        if not 0 < self.min_packet_size <= self.mtu:
            raise ValueError(
                f"need 0 < min_packet_size <= mtu, got {self.min_packet_size}/{self.mtu}"
            )
        if not (self.use_pct or self.use_pdt):
            raise ValueError("at least one of PCT/PDT must be enabled")
        if self.classification_rule not in ("tool", "paper"):
            raise ValueError(
                f"classification_rule must be 'tool' or 'paper', got "
                f"{self.classification_rule!r}"
            )
        if self.resolution_bps <= 0:
            raise ValueError(f"resolution must be positive, got {self.resolution_bps}")
        if self.grey_resolution_bps <= 0:
            raise ValueError(
                f"grey resolution must be positive, got {self.grey_resolution_bps}"
            )
        if not 0 < self.gap_deviation_tolerance:
            raise ValueError(
                f"gap tolerance must be positive, got {self.gap_deviation_tolerance}"
            )
        if not 0 < self.max_deviant_gap_fraction <= 1:
            raise ValueError(
                "max deviant gap fraction must be in (0,1], got "
                f"{self.max_deviant_gap_fraction}"
            )
        if not 0 <= self.moderate_loss <= self.stream_loss_abort <= 1:
            raise ValueError(
                "need 0 <= moderate_loss <= stream_loss_abort <= 1, got "
                f"{self.moderate_loss}/{self.stream_loss_abort}"
            )

    @property
    def max_rate_bps(self) -> float:
        """Highest measurable rate: MTU-sized packets at the minimum period."""
        return self.mtu * 8.0 / self.min_period

    def with_(self, **changes) -> "PathloadConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)


#: The configuration the paper reports for the Fig. 10 Internet experiments:
#: f = 0.7, PCT threshold 0.6, PDT threshold 0.5.
PAPER_EXPERIMENT_CONFIG = PathloadConfig(
    fleet_fraction=0.7,
    pct_threshold=0.6,
    pdt_threshold=0.5,
)
