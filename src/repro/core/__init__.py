"""SLoPS / pathload: the paper's primary contribution.

* :mod:`~repro.core.probing` — periodic stream specs, measurements, and the
  sans-IO action protocol.
* :mod:`~repro.core.trend` — PCT/PDT increasing-trend statistics on group
  medians.
* :mod:`~repro.core.fleet` — fleet classification with the grey region.
* :mod:`~repro.core.rate_adjust` — grey-region-aware binary search.
* :mod:`~repro.core.pathload` — the full measurement controller.
* :mod:`~repro.core.fluid` — the analytic fluid model of the Appendix.
"""

from .config import PAPER_EXPERIMENT_CONFIG, PathloadConfig
from .fleet import FleetOutcome, FleetRecord, classify_fleet, classify_stream
from .fluid import FluidLink, FluidPath, run_controller_fluid
from .pathload import PathloadController, PathloadReport, Termination
from .probing import (
    Idle,
    PacketRecord,
    SendStream,
    StreamMeasurement,
    StreamSpec,
    stream_spec_for_rate,
)
from .rate_adjust import AdjusterState, RateAdjuster
from .report_io import dump_report, load_report, report_from_dict, report_to_dict
from .trend import (
    StreamClassification,
    StreamType,
    classify_owds,
    classify_owds_two_sided,
    median_groups,
    pct_metric,
    pdt_metric,
)

__all__ = [
    "AdjusterState",
    "FleetOutcome",
    "FleetRecord",
    "FluidLink",
    "FluidPath",
    "Idle",
    "PAPER_EXPERIMENT_CONFIG",
    "PacketRecord",
    "PathloadConfig",
    "PathloadController",
    "PathloadReport",
    "RateAdjuster",
    "SendStream",
    "StreamClassification",
    "StreamMeasurement",
    "StreamSpec",
    "StreamType",
    "Termination",
    "classify_fleet",
    "classify_owds",
    "classify_owds_two_sided",
    "classify_stream",
    "dump_report",
    "load_report",
    "median_groups",
    "pct_metric",
    "pdt_metric",
    "report_from_dict",
    "report_to_dict",
    "run_controller_fluid",
    "stream_spec_for_rate",
]
