"""Probing primitives shared by the SLoPS core and the transports.

The SLoPS/pathload logic in :mod:`repro.core` is **sans-IO**: it never
touches sockets or the simulator.  It is written as a generator that yields
*actions* — :class:`SendStream` ("transmit this periodic stream and give me
the measurement") and :class:`Idle` ("wait this long") — and receives
:class:`StreamMeasurement` objects back.  A driver (simulation-backed in
:mod:`repro.transport.probe`, synthetic in the tests) executes the actions.

This mirrors the real tool's architecture: pathload's estimation logic is
independent of how the UDP stream is produced; only the timestamps matter.
"""

from __future__ import annotations

import math
import operator
from dataclasses import dataclass

import numpy as np

__all__ = [
    "StreamSpec",
    "PacketRecord",
    "StreamMeasurement",
    "SendStream",
    "Idle",
    "stream_spec_for_rate",
]


@dataclass(frozen=True)
class StreamSpec:
    """A periodic probing stream: ``n_packets`` packets of ``packet_size``
    bytes sent every ``period`` seconds (rate = size*8/period)."""

    rate_bps: float
    packet_size: int
    n_packets: int

    def __post_init__(self) -> None:
        if self.rate_bps <= 0:
            raise ValueError(f"stream rate must be positive, got {self.rate_bps}")
        if self.packet_size <= 0:
            raise ValueError(f"packet size must be positive, got {self.packet_size}")
        if self.n_packets < 2:
            raise ValueError(f"a stream needs >= 2 packets, got {self.n_packets}")

    @property
    def period(self) -> float:
        """Inter-packet send spacing ``T = L*8 / R`` in seconds."""
        return self.packet_size * 8.0 / self.rate_bps

    @property
    def duration(self) -> float:
        """Stream duration ``V = (K-1) * T`` (first to last transmission)."""
        return (self.n_packets - 1) * self.period


def stream_spec_for_rate(
    rate_bps: float,
    n_packets: int = 100,
    min_period: float = 100e-6,
    min_packet_size: int = 200,
    mtu: int = 1500,
) -> StreamSpec:
    """Choose packet size and period for a target rate (paper Section IV).

    The packet interspacing is normally the minimum period the hosts can
    achieve (``min_period``), giving ``L = R * T / 8``.  ``L`` is then
    clamped to ``[min_packet_size, mtu]``:

    * ``L < min_packet_size`` (low rates) ⇒ use ``L = min_packet_size`` and
      stretch the period, to keep layer-2 header effects negligible;
    * ``L > mtu`` (high rates) ⇒ use ``L = mtu`` and shrink the period; the
      maximum measurable rate is therefore ``mtu * 8 / min_period``.
    """
    if rate_bps <= 0:
        raise ValueError(f"rate must be positive, got {rate_bps}")
    if rate_bps > mtu * 8.0 / min_period:
        raise ValueError(
            f"rate {rate_bps:.0f} b/s exceeds the maximum measurable rate "
            f"{mtu * 8.0 / min_period:.0f} b/s (mtu={mtu}, min_period={min_period})"
        )
    size = rate_bps * min_period / 8.0
    # Round up so the implied period L*8/R never dips below min_period.
    size = int(min(max(math.ceil(size), min_packet_size), mtu))
    return StreamSpec(rate_bps=rate_bps, packet_size=size, n_packets=n_packets)


@dataclass(frozen=True, slots=True)
class PacketRecord:
    """Receiver-side record of one probe packet.

    ``sender_stamp`` and ``recv_stamp`` are *host clock* readings; their
    difference is the relative OWD (true OWD plus an unknown constant clock
    offset, which cancels in all SLoPS statistics).
    """

    seq: int
    sender_stamp: float
    recv_stamp: float

    @property
    def relative_owd(self) -> float:
        """Relative one-way delay (true OWD + constant clock offset)."""
        return self.recv_stamp - self.sender_stamp


@dataclass
class StreamMeasurement:
    """Everything the receiver learned from one periodic stream."""

    spec: StreamSpec
    records: list[PacketRecord]
    n_sent: int
    #: true send time of the first packet (driver bookkeeping; experiments
    #: use it to align measurements with monitor windows)
    t_start: float = 0.0
    #: true completion time at the sender (when the result came back)
    t_end: float = 0.0

    def __post_init__(self) -> None:
        self.records = sorted(self.records, key=operator.attrgetter("seq"))

    @property
    def n_received(self) -> int:
        """Packets that made it to the receiver."""
        return len(self.records)

    @property
    def loss_rate(self) -> float:
        """Fraction of stream packets lost in the path."""
        if self.n_sent == 0:
            return 0.0
        return 1.0 - self.n_received / self.n_sent

    def relative_owds(self) -> np.ndarray:
        """Relative OWDs of received packets, in sequence order."""
        return np.array([r.relative_owd for r in self.records], dtype=np.float64)

    def arrival_times(self) -> np.ndarray:
        """Receiver clock stamps, in sequence order."""
        return np.array([r.recv_stamp for r in self.records], dtype=np.float64)

    def sender_gaps(self) -> np.ndarray:
        """Actual sender interspacing, from consecutive received packets.

        The real receiver computes this from sender timestamps to detect
        context switches and other send-rate deviations; gaps spanning a
        lost packet are normalized by the sequence distance.
        """
        if len(self.records) < 2:
            return np.empty(0, dtype=np.float64)
        stamps = np.array([r.sender_stamp for r in self.records])
        seqs = np.array([r.seq for r in self.records], dtype=np.float64)
        return np.diff(stamps) / np.diff(seqs)

    def dispersion_rate_bps(self) -> float:
        """Receiver-side rate of the stream (packet-train dispersion).

        ``(n-1) * L * 8 / (t_last - t_first)`` over received packets — the
        quantity cprobe-style tools average (the ADR, Section II).
        """
        if len(self.records) < 2:
            raise ValueError("need at least two received packets for dispersion")
        span = self.records[-1].recv_stamp - self.records[0].recv_stamp
        if span <= 0:
            raise ValueError("non-positive arrival span; cannot compute dispersion")
        return (len(self.records) - 1) * self.spec.packet_size * 8.0 / span


@dataclass(frozen=True)
class SendStream:
    """Controller action: transmit ``spec`` and return its measurement."""

    spec: StreamSpec


@dataclass(frozen=True)
class Idle:
    """Controller action: stay silent for ``duration`` seconds."""

    duration: float

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError(f"idle duration must be >= 0, got {self.duration}")
