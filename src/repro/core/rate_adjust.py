"""Grey-region-aware binary search over probing rates (paper Section IV).

The basic iteration is Eq. (7): keep lower/upper avail-bw bounds
``R_min``/``R_max`` and probe halfway between them.  Pathload extends this
with **grey-region bounds** ``G_min``/``G_max``: when a fleet's verdict is
grey (the avail-bw varied above and below the fleet rate), the probed rate
is absorbed into the grey interval instead of moving the outer bounds, and
subsequent probes bisect the *unresolved gaps* ``(G_max, R_max)`` and
``(R_min, G_min)``.

Termination (paper Section IV): either

* no grey region was found and ``R_max - R_min <= omega`` (the user's
  avail-bw resolution), or
* both unresolved gaps are small: ``R_max - G_max <= chi`` and
  ``G_min - R_min <= chi`` (the grey-region resolution).

The reported range is ``[R_min, R_max]``, which per the paper is either at
most ``omega`` wide or overestimates the grey region's width by at most
``2 * chi``.

Note on probe ordering: the paper alternates sides based on which bound the
last grey fleet updated; this implementation always bisects the *wider*
unresolved gap.  Both orderings visit the same gaps and terminate under the
same condition; bisecting the wider gap first is deterministic and
minimizes worst-case fleet count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .fleet import FleetOutcome

__all__ = ["RateAdjuster", "AdjusterState"]


@dataclass(frozen=True)
class AdjusterState:
    """Snapshot of the search bounds after a fleet."""

    rmin_bps: float
    rmax_bps: float
    gmin_bps: Optional[float]
    gmax_bps: Optional[float]


class RateAdjuster:
    """The iterative rate-selection state machine.

    Parameters
    ----------
    rmax_bps:
        Initial upper bound — "a sufficiently high value", typically the
        tool's maximum measurable rate or a dispersion-based estimate.
    omega_bps / chi_bps:
        Avail-bw resolution ω and grey-region resolution χ.
    """

    def __init__(
        self,
        rmax_bps: float,
        omega_bps: float,
        chi_bps: float,
        rmin_bps: float = 0.0,
    ):
        if rmax_bps <= rmin_bps:
            raise ValueError(
                f"need rmax > rmin, got rmax={rmax_bps}, rmin={rmin_bps}"
            )
        if omega_bps <= 0 or chi_bps <= 0:
            raise ValueError("resolutions must be positive")
        self.rmin = float(rmin_bps)
        self.rmax = float(rmax_bps)
        self.gmin: Optional[float] = None
        self.gmax: Optional[float] = None
        self.omega = float(omega_bps)
        self.chi = float(chi_bps)
        self.history: list[tuple[float, FleetOutcome]] = []
        self._initial_rmax = float(rmax_bps)
        self._initial_rmin = float(rmin_bps)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def record(self, rate_bps: float, outcome: FleetOutcome) -> None:
        """Fold one fleet verdict into the bounds.

        ``ABORTED_LOSS`` is treated like ``ABOVE``: the path could not even
        carry the fleet without losses, so the next fleet must probe lower
        (paper: "the entire fleet is aborted and the rate of the next fleet
        is decreased").
        """
        self.history.append((rate_bps, outcome))
        if outcome in (FleetOutcome.ABOVE, FleetOutcome.ABORTED_LOSS):
            self.rmax = min(self.rmax, rate_bps)
            if self.rmin > self.rmax:
                # Contradiction: a rate we once saw below the avail-bw is now
                # above it — the avail-bw dropped.  Trust the newest verdict
                # and forget the stale lower bound.
                self.rmin = self._initial_rmin
        elif outcome is FleetOutcome.BELOW:
            self.rmin = max(self.rmin, rate_bps)
            if self.rmin > self.rmax:
                # The avail-bw rose past the stale upper bound; reopen it.
                self.rmax = self._initial_rmax
        elif outcome is FleetOutcome.GREY:
            if self.gmin is None:
                self.gmin = self.gmax = rate_bps
            elif rate_bps > self.gmax:  # type: ignore[operator]
                self.gmax = rate_bps
            elif rate_bps < self.gmin:
                self.gmin = rate_bps
        else:  # pragma: no cover - exhaustive enum guard
            raise ValueError(f"unknown fleet outcome {outcome!r}")
        self._restore_invariants()

    def _restore_invariants(self) -> None:
        """Keep ``rmin <= gmin <= gmax <= rmax`` after any update.

        A grey verdict at a rate outside the current outer bounds (possible
        when the avail-bw drifts between fleets) clamps the grey interval
        rather than widening the outer bounds.
        """
        if self.gmin is None:
            return
        self.gmin = max(self.gmin, self.rmin)
        self.gmax = min(self.gmax, self.rmax)  # type: ignore[arg-type]
        if self.gmin > self.gmax:  # grey interval contradicted; drop it
            self.gmin = self.gmax = None

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------
    def converged(self) -> bool:
        """True when the termination condition of Section IV holds."""
        if self.gmin is None:
            return self.rmax - self.rmin <= self.omega
        return (
            self.rmax - self.gmax <= self.chi  # type: ignore[operator]
            and self.gmin - self.rmin <= self.chi
        )

    def next_rate(self) -> float:
        """The rate the next fleet should probe.

        Without a grey region: bisect ``[rmin, rmax]`` (Eq. 7).  With one:
        bisect the wider of the two unresolved gaps around it.
        """
        if self.gmin is None:
            return (self.rmin + self.rmax) / 2.0
        upper_gap = self.rmax - self.gmax  # type: ignore[operator]
        lower_gap = self.gmin - self.rmin
        if upper_gap <= self.chi and lower_gap <= self.chi:
            # converged; callers should have checked, but return something sane
            return (self.rmin + self.rmax) / 2.0
        if upper_gap >= lower_gap and upper_gap > self.chi:
            return (self.gmax + self.rmax) / 2.0  # type: ignore[operator]
        return (self.gmin + self.rmin) / 2.0

    def state(self) -> AdjusterState:
        """Immutable snapshot of the current bounds."""
        return AdjusterState(
            rmin_bps=self.rmin,
            rmax_bps=self.rmax,
            gmin_bps=self.gmin,
            gmax_bps=self.gmax,
        )

    def report_range(self) -> tuple[float, float]:
        """The final avail-bw range ``[R_min, R_max]``."""
        return (self.rmin, self.rmax)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        grey = (
            f" grey=[{self.gmin / 1e6:.2f},{self.gmax / 1e6:.2f}]"
            if self.gmin is not None
            else ""
        )
        return (
            f"<RateAdjuster [{self.rmin / 1e6:.2f},{self.rmax / 1e6:.2f}] Mb/s{grey}>"
        )
