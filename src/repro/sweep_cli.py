"""``repro-sweep``: regenerate paper figures with the parallel executor.

A thin front end over :mod:`repro.parallel`: each figure module already
expresses its runs as sweep tasks, so this command only picks figure ids,
a worker count, and cache policy::

    repro-sweep fig05 --jobs 4          # fan fig05's runs over 4 processes
    repro-sweep all                     # every figure, serial, cached
    repro-sweep fig11 fig12 --no-cache  # force fresh simulations
    repro-sweep --clear-cache           # drop .repro_cache/

Results are row-identical to ``repro-pathload figure`` (the serial path);
see docs/performance.md for the determinism and caching contract.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Optional, Sequence

__all__ = ["main"]


def _default_jobs() -> int:
    return os.cpu_count() or 1


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sweep",
        description=(
            "Regenerate paper figures by fanning their independent "
            "(operating point, seed) runs across worker processes, with a "
            "deterministic on-disk result cache."
        ),
    )
    parser.add_argument(
        "ids",
        nargs="*",
        metavar="FIGURE",
        help="figure ids (e.g. fig05 fig11), or 'all' for every figure",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=_default_jobs(),
        help="worker processes (default: all cores; 1 = serial reference)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the result cache (neither read nor write it)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="cache location (default: $REPRO_CACHE_DIR or .repro_cache/)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available figure ids"
    )
    parser.add_argument(
        "--clear-cache",
        action="store_true",
        help="delete the cache tree and exit",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        help=(
            "write merged sweep telemetry — task lifecycle, cache hit/miss, "
            "wall times, plus every task's own captured trace under a "
            "task<i>/ track prefix — as a trace (.jsonl, .prom, or "
            "Perfetto JSON)"
        ),
    )
    parser.add_argument(
        "--trace-light",
        action="store_true",
        help=(
            "with --trace/--health: capture each task under a light tracer "
            "(aggregate counters, decisions, and flow/fleet spans only; "
            "keeps every event-elision fast path alive in the workers)"
        ),
    )
    parser.add_argument(
        "--health",
        action="store_true",
        help=(
            "print a run-health audit from the merged sweep metrics; "
            "implies a light tracer when --trace is not given"
        ),
    )
    parser.add_argument(
        "--profile",
        metavar="PATH",
        help=(
            "sample this process's call stack during the sweep and write a "
            "profile (.json for speedscope, anything else for collapsed "
            "flamegraph stacks); REPRO_PROFILE=PATH does the same"
        ),
    )
    parser.add_argument(
        "--no-fast",
        action="store_true",
        help=(
            "run pathload streams packet by packet instead of the analytic "
            "stream-transit fast path (sets REPRO_NO_FAST for the workers; "
            "bit-identical results, cache entries are shared either way)"
        ),
    )
    parser.add_argument(
        "--no-vector",
        action="store_true",
        help=(
            "disable the NumPy planning kernels inside the fast path "
            "(sets REPRO_NO_VECTOR for the workers; bit-identical "
            "results, cache entries are shared either way)"
        ),
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point."""
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.cache_dir:
        # the figure modules resolve the cache root through the environment
        from .parallel import CACHE_DIR_ENV

        os.environ[CACHE_DIR_ENV] = args.cache_dir

    if args.no_fast:
        # Worker processes inherit the environment; the flag never enters
        # cache keys because the two data paths are bit-identical.
        from .netsim.fastpath import NO_FAST_ENV

        os.environ[NO_FAST_ENV] = "1"

    if args.no_vector:
        from .netsim.fastpath import NO_VECTOR_ENV

        os.environ[NO_VECTOR_ENV] = "1"

    if args.clear_cache:
        from .parallel import clear_cache, default_cache_dir

        removed = clear_cache()
        root = default_cache_dir()
        print(f"cache {root}: {'removed' if removed else 'already empty'}")
        return 0

    from .experiments import REGISTRY

    if args.list or not args.ids:
        for key in REGISTRY:
            print(key)
        return 0

    ids = list(REGISTRY) if args.ids == ["all"] else args.ids
    unknown = [i for i in ids if i not in REGISTRY]
    if unknown:
        print(
            f"unknown figure(s): {', '.join(unknown)}; "
            f"available: {', '.join(REGISTRY)}",
            file=sys.stderr,
        )
        return 2
    if args.jobs < 1:
        print(f"--jobs must be >= 1, got {args.jobs}", file=sys.stderr)
        return 2

    tracer = None
    previous = None
    if args.trace or args.health:
        from .obs import Tracer
        from .parallel import set_default_tracer

        # --health alone audits without dissolving any fast path.
        light = args.trace_light or (args.health and not args.trace)
        tracer = Tracer(light=light)
        previous = set_default_tracer(tracer)
    profiler = None
    from .obs.profiler import env_profile_path

    profile_path = args.profile or env_profile_path()
    if profile_path:
        from .obs import Profiler

        profiler = Profiler().start()
    try:
        for key in ids:
            run_fn = REGISTRY[key]
            # Wall-clock here times the *host* executing simulations — the
            # sweep's own cost, never a simulated quantity.
            t0 = time.perf_counter()  # simlint: disable=SIM001 -- host-side sweep timing, outside the simulation
            result = run_fn(jobs=args.jobs, cache=not args.no_cache)
            elapsed = time.perf_counter() - t0  # simlint: disable=SIM001 -- host-side sweep timing, outside the simulation
            result.print_table()
            print(
                f"[{key}] jobs={args.jobs} "
                f"cache={'off' if args.no_cache else 'on'} "
                f"wall={elapsed:.1f}s",
                file=sys.stderr,
            )
    finally:
        if profiler is not None:
            profiler.stop()
            profiler.write(profile_path)
            print(
                f"profile written to {profile_path} "
                f"({len(profiler.samples)} samples)",
                file=sys.stderr,
            )
        if tracer is not None:
            from .parallel import set_default_tracer

            set_default_tracer(previous)
    if tracer is not None and args.trace:
        tracer.write(args.trace)
        print(f"trace written to {args.trace} ({len(tracer.events)} events)",
              file=sys.stderr)
    if args.health and tracer is not None:
        from .obs import health_from_tracer

        print(health_from_tracer(tracer).render_text())
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
