"""Command-line interface.

Two subcommands:

``repro-pathload measure``
    Run one pathload measurement over a synthetic path (capacity,
    utilization, hops are flags) and print the report — the simulated
    equivalent of running the original tool against a host pair.

``repro-pathload figure <id>``
    Regenerate one of the paper's figures (``fig05``, ``fig11``,
    ``fig15-16``, ...; see ``--list``) and print its series.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-pathload",
        description=(
            "Reproduction of Jain & Dovrolis (SIGCOMM 2002): SLoPS/pathload "
            "available-bandwidth measurement over a built-in network simulator."
        ),
    )
    sub = parser.add_subparsers(dest="command")

    measure = sub.add_parser(
        "measure", help="measure avail-bw on a synthetic path"
    )
    measure.add_argument(
        "--capacity-mbps", type=float, default=10.0, help="tight link capacity"
    )
    measure.add_argument(
        "--utilization", type=float, default=0.6, help="tight link utilization [0,1)"
    )
    measure.add_argument(
        "--hops", type=int, default=1, help="path length (1 = single hop)"
    )
    measure.add_argument("--seed", type=int, default=1, help="RNG seed")
    measure.add_argument(
        "--traffic",
        choices=("pareto", "poisson", "cbr"),
        default="pareto",
        help="cross-traffic model",
    )
    measure.add_argument(
        "--output",
        metavar="FILE",
        help="also write the full report (fleets, verdicts) as JSON",
    )
    measure.add_argument(
        "--paper-idle",
        action="store_true",
        help=(
            "use the tool's full interstream idle (9 stream durations, the "
            "non-intrusiveness setting) instead of the faster 1x idle"
        ),
    )
    measure.add_argument(
        "--buffer-kb",
        type=float,
        default=None,
        metavar="KB",
        help=(
            "tight-link buffer in kilobytes (default: unbounded; finite "
            "buffers make probe drops visible in --trace output)"
        ),
    )
    measure.add_argument(
        "--trace",
        metavar="PATH",
        help=(
            "write a deterministic sim-time trace of the run (.jsonl for "
            "the repro-trace format, .prom for a metrics snapshot, "
            "anything else for Perfetto JSON)"
        ),
    )
    measure.add_argument(
        "--trace-light",
        action="store_true",
        help=(
            "with --trace/--health: use a light tracer that records only "
            "aggregate counters, fleet decisions, and flow/fleet spans — "
            "keeps every event-elision fast path alive (full tracers "
            "dissolve TCP flow transit onto the per-packet path)"
        ),
    )
    measure.add_argument(
        "--health",
        action="store_true",
        help=(
            "print a run-health audit (packet-path fractions, fast-path "
            "fallback reasons, per-link drops) after the measurement; "
            "implies a light tracer when --trace is not given"
        ),
    )
    measure.add_argument(
        "--profile",
        metavar="PATH",
        help=(
            "sample the host-side call stack during the run and write a "
            "profile (.json for speedscope, anything else for collapsed "
            "flamegraph stacks); REPRO_PROFILE=PATH does the same"
        ),
    )
    measure.add_argument(
        "--no-fast",
        action="store_true",
        help=(
            "disable the analytic stream-transit fast path and send probe "
            "streams packet by packet (results are bit-identical; this "
            "only trades speed for an event-per-packet run)"
        ),
    )
    measure.add_argument(
        "--no-vector",
        action="store_true",
        help=(
            "disable the NumPy planning kernels inside the fast path "
            "(sets REPRO_NO_VECTOR; results are bit-identical, the "
            "analytic planner just walks its scalar loops)"
        ),
    )

    figure = sub.add_parser("figure", help="regenerate a paper figure")
    figure.add_argument(
        "id", nargs="?", help="figure id (e.g. fig05), or 'all' for every figure"
    )
    figure.add_argument(
        "--list", action="store_true", help="list available figure ids"
    )
    figure.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the figure's sweep (default: serial)",
    )
    figure.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the on-disk result cache",
    )
    figure.add_argument(
        "--trace",
        metavar="PATH",
        help=(
            "write merged sweep telemetry (task lifecycle, cache hits, and "
            "every task's own trace under a task<i>/ track prefix) as a "
            "trace"
        ),
    )
    figure.add_argument(
        "--trace-light",
        action="store_true",
        help=(
            "with --trace/--health: capture each task under a light tracer "
            "(aggregate counters only; keeps all fast paths alive)"
        ),
    )
    figure.add_argument(
        "--health",
        action="store_true",
        help=(
            "print a run-health audit from the merged sweep metrics; "
            "implies a light tracer when --trace is not given"
        ),
    )
    figure.add_argument(
        "--profile",
        metavar="PATH",
        help=(
            "sample the host-side call stack and write a profile (.json "
            "for speedscope, else collapsed stacks); REPRO_PROFILE=PATH "
            "does the same"
        ),
    )
    figure.add_argument(
        "--no-fast",
        action="store_true",
        help=(
            "run the figure's pathload measurements packet by packet "
            "(sets REPRO_NO_FAST for the sweep workers; bit-identical, "
            "slower — cache entries are shared either way)"
        ),
    )
    figure.add_argument(
        "--no-vector",
        action="store_true",
        help=(
            "disable the NumPy planning kernels (sets REPRO_NO_VECTOR "
            "for the sweep workers; bit-identical, cache entries are "
            "shared either way)"
        ),
    )
    return parser


def _cmd_measure(args: argparse.Namespace) -> int:
    from .core.config import PathloadConfig
    from .netsim.topologies import Fig4Config
    from .runner import measure_avail_bw_sim, measure_fig4_path

    capacity = args.capacity_mbps * 1e6
    truth = capacity * (1 - args.utilization)
    config = PathloadConfig(idle_factor=9.0 if args.paper_idle else 1.0)
    tracer = None
    if args.trace or args.health:
        from .obs import Tracer

        # --health alone audits without perturbing the run: light capture
        # keeps every event-elision fast path eligible.
        light = args.trace_light or (args.health and not args.trace)
        tracer = Tracer(light=light)
    profiler, profile_path = _make_profiler(args)
    buffer_bytes = int(args.buffer_kb * 1000) if args.buffer_kb else None
    fast = False if args.no_fast else None
    if args.no_vector:
        from .netsim.fastpath import NO_VECTOR_ENV

        os.environ[NO_VECTOR_ENV] = "1"
    try:
        if args.hops <= 1:
            report = measure_avail_bw_sim(
                capacity_bps=capacity,
                utilization=args.utilization,
                seed=args.seed,
                traffic_model=args.traffic,
                config=config,
                buffer_bytes=buffer_bytes,
                tracer=tracer,
                fast=fast,
            )
        else:
            cfg = Fig4Config(
                hops=args.hops,
                tight_capacity_bps=capacity,
                tight_utilization=args.utilization,
                traffic_model=args.traffic,
                buffer_bytes=buffer_bytes,
            )
            report, _setup = measure_fig4_path(
                cfg, seed=args.seed, config=config, tracer=tracer, fast=fast
            )
    finally:
        _finish_profiler(profiler, profile_path)
    print(
        f"avail-bw range: [{report.low_bps / 1e6:.2f}, "
        f"{report.high_bps / 1e6:.2f}] Mb/s (true average {truth / 1e6:.2f})"
    )
    print(
        f"termination={report.termination} fleets={len(report.fleets)} "
        f"streams={report.n_streams_sent} latency={report.duration:.1f}s"
    )
    if args.output:
        from .core.report_io import dump_report

        dump_report(report, args.output)
        print(f"report written to {args.output}")
    if tracer is not None and args.trace:
        tracer.write(args.trace)
        print(
            f"trace written to {args.trace} "
            f"({len(tracer.events)} events, {len(tracer.decisions)} fleet decisions)"
        )
    if args.health:
        from .obs import health_from_tracer

        print(health_from_tracer(tracer).render_text())
    return 0


def _make_profiler(args: argparse.Namespace):
    """(started Profiler or None, output path) from --profile/REPRO_PROFILE."""
    from .obs.profiler import env_profile_path

    profile_path = args.profile or env_profile_path()
    if not profile_path:
        return None, None
    from .obs import Profiler

    return Profiler().start(), profile_path


def _finish_profiler(profiler, profile_path: Optional[str]) -> None:
    if profiler is None:
        return
    profiler.stop()
    profiler.write(profile_path)
    print(
        f"profile written to {profile_path} ({len(profiler.samples)} samples)"
    )


def _cmd_figure(args: argparse.Namespace) -> int:
    from .experiments import REGISTRY

    if args.list or not args.id:
        for key in REGISTRY:
            print(key)
        return 0
    if args.no_fast:
        # Sweep workers are separate processes; the environment variable is
        # the channel that reaches every ProbeChannel they construct.
        # Results (and cache keys) are identical either way.
        from .netsim.fastpath import NO_FAST_ENV

        os.environ[NO_FAST_ENV] = "1"
    if args.no_vector:
        from .netsim.fastpath import NO_VECTOR_ENV

        os.environ[NO_VECTOR_ENV] = "1"
    tracer = None
    previous = None
    if args.trace or args.health:
        from .obs import Tracer
        from .parallel import set_default_tracer

        # The figure modules call run_sweep internally; the process-wide
        # default tracer collects their telemetry without signature churn.
        light = args.trace_light or (args.health and not args.trace)
        tracer = Tracer(light=light)
        previous = set_default_tracer(tracer)
    profiler, profile_path = _make_profiler(args)
    try:
        if args.id == "all":
            for key, run_fn in REGISTRY.items():
                print(f"--- running {key} ---")
                run_fn(jobs=args.jobs, cache=not args.no_cache).print_table()
        else:
            run_fn = REGISTRY.get(args.id)
            if run_fn is None:
                print(f"unknown figure {args.id!r}; available: {', '.join(REGISTRY)}",
                      file=sys.stderr)
                return 2
            run_fn(jobs=args.jobs, cache=not args.no_cache).print_table()
    finally:
        _finish_profiler(profiler, profile_path)
        if tracer is not None:
            from .parallel import set_default_tracer

            set_default_tracer(previous)
    if tracer is not None and args.trace:
        tracer.write(args.trace)
        print(f"trace written to {args.trace} ({len(tracer.events)} events)")
    if args.health and tracer is not None:
        from .obs import health_from_tracer

        print(health_from_tracer(tracer).render_text())
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command == "measure":
        return _cmd_measure(args)
    if args.command == "figure":
        return _cmd_figure(args)
    parser.print_help()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
