"""Opt-in sampling profiler with sim-time correlation.

A :class:`Profiler` runs a daemon thread that periodically snapshots the
target thread's Python stack via ``sys._current_frames()`` — the standard
low-overhead wall-clock sampling technique (the simulation thread itself
is never instrumented, so the nil-profiler cost is exactly zero).  Each
sample additionally records the *simulated* clock of the most recently
constructed :class:`~repro.netsim.engine.Simulator` (registered through
the ambient-profiler hook), so a flamegraph can be cross-referenced with
trace events: "those 40 ms of wall time were spent between sim seconds
12 and 13, inside the per-packet link path".

This module is the *only* place in the repository that is allowed to read
the wall clock outside ``wall``-labeled sweep telemetry — it observes the
host, never the simulation, and nothing it records feeds back into any
simulated quantity (the determinism contract of docs/observability.md is
untouched; every ``time`` call below carries an explicit SIM001 pragma).

Exports (suffix-dispatched by :meth:`Profiler.write`):

* **collapsed stacks** (``.txt`` / anything unrecognized): one
  ``frame;frame;frame count`` line per distinct stack, the input format
  of every flamegraph renderer since Brendan Gregg's original scripts;
* **speedscope** (``.json``): the ``"sampled"`` profile flavor of
  https://www.speedscope.app — load the file in the web UI.

Enable from the CLIs with ``--profile PATH`` (``repro-pathload``,
``repro-sweep``) or the ``REPRO_PROFILE`` environment variable; the
benchmark harness also attaches one to every ``REPRO_PERF_GATE`` gate
test and ships the profile as an artifact when the gate fails.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from typing import Optional

__all__ = ["Profiler", "ProfileSample", "env_profile_path"]

#: Environment variable naming a profile output path (CLI fallback).
PROFILE_ENV = "REPRO_PROFILE"

#: Default sampling interval: 5 ms ≈ 200 Hz, coarse enough that the
#: sampler thread stays invisible next to a running simulation.
DEFAULT_INTERVAL_S = 0.005


class ProfileSample:
    """One stack snapshot: wall time, correlated sim time, frames."""

    __slots__ = ("wall_s", "sim_now", "stack")

    def __init__(self, wall_s: float, sim_now: Optional[float], stack: tuple):
        self.wall_s = wall_s  #: seconds since Profiler.start()
        self.sim_now = sim_now  #: simulated seconds, or None before any sim
        self.stack = stack  #: root-first tuple of "func (file:line)" frames


def _frame_label(frame) -> str:
    code = frame.f_code
    filename = os.path.basename(code.co_filename)
    return f"{code.co_name} ({filename}:{code.co_firstlineno})"


class Profiler:
    """Wall-clock stack sampler for the thread that starts it.

    Use as a context manager (or call :meth:`start` / :meth:`stop`)::

        with Profiler() as prof:
            run_figure(...)
        prof.write("run.speedscope.json")

    ``samples`` is empty until :meth:`start` runs — a disabled profiler
    records nothing and costs nothing.
    """

    def __init__(self, interval_s: float = DEFAULT_INTERVAL_S):
        if interval_s <= 0:
            raise ValueError(f"interval must be positive, got {interval_s}")
        self.interval_s = float(interval_s)
        self.samples: list[ProfileSample] = []
        self._target_ident: Optional[int] = None
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._t0 = 0.0
        # Most recently constructed simulator (ambient hook); read by the
        # sampler thread for sim-time correlation.  A plain attribute read
        # of a float is atomic under the GIL — no lock needed.
        self._sim = None
        self._prev_ambient = None

    # -- ambient hook ---------------------------------------------------
    def _watch(self, sim) -> None:
        """Called by ``Simulator.__init__`` while this profiler is ambient."""
        self._sim = sim

    # -- lifecycle ------------------------------------------------------
    def start(self) -> "Profiler":
        """Begin sampling the *calling* thread; returns ``self``."""
        if self._thread is not None:
            raise RuntimeError("profiler already started")
        from ..netsim.engine import set_ambient_profiler

        self._prev_ambient = set_ambient_profiler(self)
        self._target_ident = threading.get_ident()
        self._stop.clear()
        self._t0 = time.perf_counter()  # simlint: disable=SIM001 -- host-side profiler timestamps, outside the simulation
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop sampling (idempotent)."""
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join()
        self._thread = None
        from ..netsim.engine import set_ambient_profiler

        set_ambient_profiler(self._prev_ambient)
        self._prev_ambient = None

    def __enter__(self) -> "Profiler":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- sampler thread -------------------------------------------------
    def _run(self) -> None:
        target = self._target_ident
        interval = self.interval_s
        samples = self.samples
        stop = self._stop
        while not stop.wait(interval):
            frame = sys._current_frames().get(target)
            if frame is None:  # pragma: no cover - target thread exited
                break
            stack = []
            while frame is not None:
                stack.append(_frame_label(frame))
                frame = frame.f_back
            stack.reverse()
            sim = self._sim
            sim_now = sim._now if sim is not None else None
            wall = time.perf_counter() - self._t0  # simlint: disable=SIM001 -- host-side profiler timestamps, outside the simulation
            samples.append(ProfileSample(wall, sim_now, tuple(stack)))

    # -- aggregation + export -------------------------------------------
    def collapsed(self) -> str:
        """Aggregated collapsed-stack text (flamegraph.pl input)."""
        counts: dict[tuple, int] = {}
        for sample in self.samples:
            counts[sample.stack] = counts.get(sample.stack, 0) + 1
        lines = [
            ";".join(stack) + f" {n}"
            for stack, n in sorted(counts.items())
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def speedscope(self, name: str = "repro-profile") -> dict:
        """The https://www.speedscope.app ``sampled`` JSON document.

        Sim-time correlation rides along: each sample's simulated clock is
        exported as ``simTimes`` (same indexing as ``samples``), a
        documented extension field viewers simply ignore.
        """
        frame_index: dict[str, int] = {}
        frames: list[dict] = []
        sample_stacks: list[list[int]] = []
        weights: list[float] = []
        sim_times: list[Optional[float]] = []
        for sample in self.samples:
            indexed = []
            for label in sample.stack:
                idx = frame_index.get(label)
                if idx is None:
                    idx = frame_index[label] = len(frames)
                    frames.append({"name": label})
                indexed.append(idx)
            sample_stacks.append(indexed)
            weights.append(self.interval_s)
            sim_times.append(sample.sim_now)
        end = self.samples[-1].wall_s if self.samples else 0.0
        return {
            "$schema": "https://www.speedscope.app/file-format-schema.json",
            "shared": {"frames": frames},
            "profiles": [
                {
                    "type": "sampled",
                    "name": name,
                    "unit": "seconds",
                    "startValue": 0.0,
                    "endValue": end,
                    "samples": sample_stacks,
                    "weights": weights,
                    "simTimes": sim_times,
                }
            ],
            "name": name,
            "exporter": "repro.obs.profiler",
        }

    def write(self, path: str) -> None:
        """Suffix-dispatched export: ``.json`` → speedscope, anything else
        → collapsed-stack text."""
        if path.endswith(".json"):
            with open(path, "w") as fh:
                json.dump(self.speedscope(), fh)
        else:
            with open(path, "w") as fh:
                fh.write(self.collapsed())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "running" if self._thread is not None else "stopped"
        return f"<Profiler {len(self.samples)} samples ({state})>"


def env_profile_path() -> Optional[str]:
    """Profile output path from ``REPRO_PROFILE``, or ``None``."""
    return os.environ.get(PROFILE_ENV) or None
