"""Trace exporters: JSONL, Chrome trace-event JSON (Perfetto), digests.

Three on-disk formats (docs/observability.md describes each in detail):

JSONL
    One JSON object per line: a ``header`` line, one ``event`` line per
    :class:`~repro.obs.tracer.TraceEvent`, and an optional trailing
    ``metrics`` line holding a registry snapshot.  This is the lossless
    format — :func:`read_jsonl` round-trips it — and what ``repro-trace``
    consumes.

Perfetto (Chrome trace-event JSON)
    The ``traceEvents`` array format that https://ui.perfetto.dev loads
    directly.  Simulated seconds map to trace microseconds (a 1 µs tick is
    well below any OWD resolution the paper cares about); each trace
    *track* (link name, flow id, "pathload", ...) becomes one named thread
    so streams, fleets, drops, and cwnd changes line up on a shared
    sim-time axis.

Prometheus text
    Produced by :meth:`~repro.obs.metrics.MetricsRegistry.to_prometheus`
    (not here); a point-in-time snapshot, not a scrape endpoint.

The event digest canonicalizes events (sorted args, ``wall``- and
``host``-prefixed keys dropped) so identical seeded runs hash identically
across machines, Python versions, and sweep executor layouts — the basis
of ``repro-trace diff`` and the merged-sweep determinism contract.
"""

from __future__ import annotations

import hashlib
import json
import math
from typing import Iterable, Optional, Sequence

from .metrics import MetricsRegistry
from .tracer import TraceEvent

__all__ = [
    "write_jsonl",
    "read_jsonl",
    "read_jsonl_full",
    "to_perfetto",
    "write_perfetto",
    "events_digest",
    "summarize",
]

#: Simulated seconds -> Perfetto trace microseconds.
_US_PER_S = 1e6

JSONL_FORMAT = "repro-trace"
JSONL_VERSION = 1


def _json_safe(value):
    """Replace non-finite floats (NaN PCT/PDT of unusable streams) with
    None so the output is strict JSON that any viewer accepts."""
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, dict):
        return {k: _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return value


# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------
def write_jsonl(
    events: Sequence[TraceEvent],
    path: str,
    metrics: Optional[MetricsRegistry] = None,
    decisions: Optional[Sequence] = None,
) -> None:
    """Write ``events`` (and optionally fleet decision records and a
    metrics snapshot) as JSONL."""
    with open(path, "w") as fh:
        header = {
            "type": "header",
            "format": JSONL_FORMAT,
            "version": JSONL_VERSION,
            "n_events": len(events),
        }
        fh.write(json.dumps(header) + "\n")
        for event in events:
            record = {"type": "event"}
            record.update(_json_safe(event.to_dict()))
            fh.write(json.dumps(record) + "\n")
        if decisions:
            for decision in decisions:
                record = {"type": "decision"}
                record.update(_json_safe(decision.to_dict()))
                fh.write(json.dumps(record) + "\n")
        if metrics is not None:
            fh.write(
                json.dumps({"type": "metrics", "snapshot": metrics.snapshot()})
                + "\n"
            )


def read_jsonl(path: str) -> tuple[list[TraceEvent], Optional[dict]]:
    """Load a JSONL trace: ``(events, metrics snapshot or None)``."""
    events, _decisions, snapshot = read_jsonl_full(path)
    return events, snapshot


def read_jsonl_full(
    path: str,
) -> tuple[list[TraceEvent], list, Optional[dict]]:
    """Load a JSONL trace completely:
    ``(events, fleet decisions, metrics snapshot or None)``."""
    from .tracer import FleetDecision

    events: list[TraceEvent] = []
    decisions: list[FleetDecision] = []
    snapshot: Optional[dict] = None
    with open(path) as fh:
        first = fh.readline()
        if not first:
            raise ValueError(f"{path}: empty trace file")
        header = json.loads(first)
        if header.get("format") != JSONL_FORMAT:
            raise ValueError(
                f"{path}: not a {JSONL_FORMAT} file (header {header!r})"
            )
        for line in fh:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            kind = record.get("type")
            if kind == "event":
                events.append(TraceEvent.from_dict(record))
            elif kind == "decision":
                decisions.append(FleetDecision.from_dict(record))
            elif kind == "metrics":
                snapshot = record.get("snapshot")
    return events, decisions, snapshot


# ----------------------------------------------------------------------
# Perfetto / Chrome trace-event JSON
# ----------------------------------------------------------------------
def to_perfetto(events: Iterable[TraceEvent], process_name: str = "repro-sim") -> dict:
    """Convert events to the Chrome trace-event JSON object format.

    One process; one "thread" per track, numbered in first-seen order with
    a ``thread_name`` metadata record each — Perfetto renders them as
    labeled rows sharing the sim-time axis.
    """
    pid = 1
    tids: dict[str, int] = {}
    trace_events: list[dict] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": pid,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    body: list[dict] = []
    for event in events:
        tid = tids.get(event.track)
        if tid is None:
            tid = tids[event.track] = len(tids) + 1
            trace_events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": event.track},
                }
            )
        record = {
            "name": event.name,
            "cat": event.cat,
            "pid": pid,
            "tid": tid,
            "ts": event.ts * _US_PER_S,
            "args": _json_safe(event.args),
        }
        if event.dur is None:
            record["ph"] = "i"
            record["s"] = "t"  # thread-scoped instant
        else:
            record["ph"] = "X"
            record["dur"] = event.dur * _US_PER_S
        body.append(record)
    # Chrome's JSON loader wants events roughly time-ordered; spans are
    # appended at completion time, so sort (stable on ties) by start.
    body.sort(key=lambda r: r["ts"])
    return {"traceEvents": trace_events + body, "displayTimeUnit": "ms"}


def write_perfetto(
    events: Iterable[TraceEvent], path: str, process_name: str = "repro-sim"
) -> None:
    """Write Chrome trace-event JSON loadable at ui.perfetto.dev."""
    with open(path, "w") as fh:
        json.dump(to_perfetto(events, process_name=process_name), fh)


# ----------------------------------------------------------------------
# Digest + summary
# ----------------------------------------------------------------------
def _canonical(event: TraceEvent) -> str:
    """Canonical line for digesting: sorted args, host-dependent keys
    (``wall*`` timings, ``host*`` executor facts) dropped."""
    args = {
        k: _json_safe(v)
        for k, v in event.args.items()
        if not k.startswith(("wall", "host"))
    }
    return json.dumps(
        {
            "ts": event.ts,
            "name": event.name,
            "cat": event.cat,
            "track": event.track,
            "dur": event.dur,
            "args": args,
        },
        sort_keys=True,
    )


def events_digest(events: Iterable[TraceEvent]) -> str:
    """Hex digest of the canonicalized event stream.

    Two traces of the same seeded run digest identically on any machine
    and under any executor layout: ``wall``-prefixed args (host-side
    sweep timings) and ``host``-prefixed args (cache-hit/worker-count
    facts) are excluded, and everything else in a trace is
    simulated-time-deterministic.
    """
    hasher = hashlib.blake2b(digest_size=16)
    for event in events:
        hasher.update(_canonical(event).encode())
        hasher.update(b"\n")
    return hasher.hexdigest()


def summarize(events: Sequence[TraceEvent]) -> dict:
    """Aggregate view of a trace: counts per category/track, time span."""
    by_cat: dict[str, int] = {}
    by_track: dict[str, int] = {}
    t_min = math.inf
    t_max = -math.inf
    for event in events:
        by_cat[event.cat] = by_cat.get(event.cat, 0) + 1
        by_track[event.track] = by_track.get(event.track, 0) + 1
        t_min = min(t_min, event.ts)
        t_max = max(t_max, event.ts + (event.dur or 0.0))
    return {
        "n_events": len(events),
        "by_cat": dict(sorted(by_cat.items())),
        "by_track": dict(sorted(by_track.items())),
        "t_start": None if math.isinf(t_min) else t_min,
        "t_end": None if math.isinf(t_max) else t_max,
        "digest": events_digest(events),
    }
