"""``repro-trace``: inspect and convert trace files.

Four subcommands over the JSONL traces written by ``--trace PATH``::

    repro-trace summarize run.jsonl            # counts, tracks, digest
    repro-trace summarize run.jsonl --json     # machine-readable + health
    repro-trace health run.jsonl               # run-health audit report
    repro-trace perfetto run.jsonl -o run.json # convert for ui.perfetto.dev
    repro-trace diff a.jsonl b.jsonl           # compare by event digest

``diff`` exits 0 when the two traces have identical event digests
(wall-clock and host-executor args excluded — see docs/observability.md),
1 when they diverge (printing the first differing event), 2 on usage
errors.  ``health`` needs the trace's trailing metrics line (written by
default from both CLIs) and renders the same audit as ``--health``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from .exporters import (
    _canonical,
    events_digest,
    read_jsonl,
    read_jsonl_full,
    summarize,
    write_perfetto,
)
from .health import health_from_snapshot

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description=(
            "Inspect, convert, and diff the deterministic sim-time traces "
            "written by repro-pathload/repro-sweep --trace."
        ),
    )
    sub = parser.add_subparsers(dest="command")

    s = sub.add_parser("summarize", help="event counts, tracks, and digest")
    s.add_argument("trace", help="JSONL trace file")
    s.add_argument(
        "--json",
        action="store_true",
        help="emit a machine-readable JSON document (includes the health block)",
    )

    h = sub.add_parser("health", help="run-health audit from the metrics line")
    h.add_argument("trace", help="JSONL trace file")
    h.add_argument(
        "--json", action="store_true", help="emit the health block as JSON"
    )

    p = sub.add_parser("perfetto", help="convert a JSONL trace for Perfetto")
    p.add_argument("trace", help="JSONL trace file")
    p.add_argument(
        "-o", "--output", help="output path (default: <trace>.perfetto.json)"
    )

    d = sub.add_parser("diff", help="compare two traces by event digest")
    d.add_argument("a", help="first JSONL trace")
    d.add_argument("b", help="second JSONL trace")
    return parser


def _cmd_summarize(args: argparse.Namespace) -> int:
    events, decisions, snapshot = read_jsonl_full(args.trace)
    info = summarize(events)
    if args.json:
        doc = dict(info)
        doc["trace"] = args.trace
        doc["n_decisions"] = len(decisions)
        doc["health"] = health_from_snapshot(snapshot).to_dict()
        print(json.dumps(doc, indent=2, sort_keys=True))
        return 0
    print(f"{args.trace}: {info['n_events']} events", end="")
    if info["t_start"] is not None:
        print(f" over sim [{info['t_start']:.6f}, {info['t_end']:.6f}]s", end="")
    print()
    for cat, count in info["by_cat"].items():
        print(f"  cat {cat:12s} {count}")
    tracks = sorted(info["by_track"].items(), key=lambda kv: (-kv[1], kv[0]))
    for track, count in tracks[:20]:
        print(f"  track {track:12s} {count}")
    if len(tracks) > 20:
        print(f"  ... and {len(tracks) - 20} more tracks")
    if decisions:
        print(f"  decisions: {len(decisions)} fleet records")
    if snapshot:
        print(f"  metrics: {len(snapshot)} families")
    print(f"  digest {info['digest']}")
    return 0


def _cmd_health(args: argparse.Namespace) -> int:
    _events, _decisions, snapshot = read_jsonl_full(args.trace)
    health = health_from_snapshot(snapshot)
    if args.json:
        print(json.dumps(health.to_dict(), indent=2, sort_keys=True))
    else:
        print(health.render_text())
    return 0


def _cmd_perfetto(args: argparse.Namespace) -> int:
    events, _snapshot = read_jsonl(args.trace)
    output = args.output or (args.trace + ".perfetto.json")
    write_perfetto(events, output)
    print(f"{len(events)} events -> {output} (open at https://ui.perfetto.dev)")
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    events_a, _ = read_jsonl(args.a)
    events_b, _ = read_jsonl(args.b)
    digest_a = events_digest(events_a)
    digest_b = events_digest(events_b)
    if digest_a == digest_b:
        print(f"identical: {len(events_a)} events, digest {digest_a}")
        return 0
    print(f"traces differ: {args.a} ({len(events_a)} events, {digest_a})")
    print(f"           vs  {args.b} ({len(events_b)} events, {digest_b})")
    for i, (ea, eb) in enumerate(zip(events_a, events_b)):
        if _canonical(ea) != _canonical(eb):
            print(f"first divergence at event {i}:")
            print(f"  a: {_canonical(ea)}")
            print(f"  b: {_canonical(eb)}")
            break
    else:
        longer, n = (args.a, len(events_a)) if len(events_a) > len(events_b) \
            else (args.b, len(events_b))
        common = min(len(events_a), len(events_b))
        print(f"common prefix identical; {longer} has {n - common} extra event(s)")
    return 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "summarize":
            return _cmd_summarize(args)
        if args.command == "health":
            return _cmd_health(args)
        if args.command == "perfetto":
            return _cmd_perfetto(args)
        if args.command == "diff":
            return _cmd_diff(args)
    except (OSError, ValueError) as exc:
        print(f"repro-trace: {exc}", file=sys.stderr)
        return 2
    parser.print_help()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
