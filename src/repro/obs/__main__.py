"""``python -m repro.obs`` runs the ``repro-trace`` CLI."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
