"""Deterministic sim-time tracing for the simulation substrate.

A :class:`Tracer` collects:

* **trace events** — sim-time-stamped spans and instants (probe streams,
  fleet decisions, link drops, TCP cwnd changes, sweep task lifecycle);
* **metrics** — a :class:`~repro.obs.metrics.MetricsRegistry` of counters /
  gauges / histograms (events executed, heap high-water, per-link byte
  counters, queue-occupancy high-water, cache hits, task wall times);
* **fleet decision records** — one structured :class:`FleetDecision` per
  pathload fleet: rate, PCT/PDT values, verdict, and the rate-search
  bracket / grey region before and after the verdict was folded in.

Determinism contract
--------------------
Tracing is an *observer*: it never schedules events, draws random numbers,
or mutates simulation state, so ``Simulator.digest()`` and every experiment
report are bit-identical with a tracer attached or absent
(``tests/test_obs.py`` asserts both).  All event timestamps are simulated
time; the only wall-clock quantities are host-side sweep timings, which
are confined to ``wall``-prefixed argument keys and excluded from
:meth:`Tracer.event_digest` (so traces of the same seeded run diff clean
across machines).

Nil-tracer fast path
--------------------
Instrumented components cache the tracer in a slot at construction; when
no tracer is attached the entire disabled cost is **one attribute
None-check** per instrumentation point (benchmarked by the
``REPRO_PERF_GATE`` guard in ``benchmarks/test_perf_substrate.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from .metrics import MetricsRegistry
from ..netsim import kernels as netsim_kernels

__all__ = ["TraceEvent", "FleetDecision", "Tracer"]


@dataclass(frozen=True)
class TraceEvent:
    """One trace record: an instant (``dur is None``) or a complete span.

    ``ts`` and ``dur`` are simulated seconds except on the ``sweep`` track,
    where ``ts`` is the task's submission index (the sweep executor has no
    simulated clock; see docs/observability.md).
    """

    ts: float
    name: str
    cat: str
    track: str = "sim"
    dur: Optional[float] = None
    args: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """Plain-dict form used by the JSONL exporter."""
        out: dict = {"ts": self.ts, "name": self.name, "cat": self.cat,
                     "track": self.track}
        if self.dur is not None:
            out["dur"] = self.dur
        if self.args:
            out["args"] = self.args
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "TraceEvent":
        """Inverse of :meth:`to_dict`."""
        return cls(
            ts=data["ts"],
            name=data["name"],
            cat=data["cat"],
            track=data.get("track", "sim"),
            dur=data.get("dur"),
            args=data.get("args", {}),
        )


@dataclass(frozen=True)
class FleetDecision:
    """Structured record of one pathload fleet verdict (Section IV/V).

    Captures everything needed to audit a bracket move: the probed rate,
    the per-stream PCT/PDT metrics behind the verdict, and the
    ``[R_min, R_max]`` / grey-region bounds before and after
    :meth:`~repro.core.rate_adjust.RateAdjuster.record` folded the verdict
    in.  Bracket tuples are ``(rmin, rmax, gmin, gmax)`` with ``None`` for
    an absent grey region.
    """

    index: int
    rate_bps: float
    outcome: str
    stream_types: str  # e.g. "IINNA" — one letter per stream, in order
    pct: tuple[float, ...]
    pdt: tuple[float, ...]
    n_increasing: int
    n_nonincreasing: int
    bracket_before: tuple[float, float, Optional[float], Optional[float]]
    bracket_after: tuple[float, float, Optional[float], Optional[float]]
    next_rate_bps: float
    t_start: float
    t_end: float

    def to_dict(self) -> dict:
        """Plain-dict form used by the result envelope and JSONL exporter."""
        return {
            "index": self.index,
            "rate_bps": self.rate_bps,
            "outcome": self.outcome,
            "stream_types": self.stream_types,
            "pct": list(self.pct),
            "pdt": list(self.pdt),
            "n_increasing": self.n_increasing,
            "n_nonincreasing": self.n_nonincreasing,
            "bracket_before": list(self.bracket_before),
            "bracket_after": list(self.bracket_after),
            "next_rate_bps": self.next_rate_bps,
            "t_start": self.t_start,
            "t_end": self.t_end,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FleetDecision":
        """Inverse of :meth:`to_dict` (lists restored to tuples)."""
        return cls(
            index=data["index"],
            rate_bps=data["rate_bps"],
            outcome=data["outcome"],
            stream_types=data["stream_types"],
            pct=tuple(data["pct"]),
            pdt=tuple(data["pdt"]),
            n_increasing=data["n_increasing"],
            n_nonincreasing=data["n_nonincreasing"],
            bracket_before=tuple(data["bracket_before"]),
            bracket_after=tuple(data["bracket_after"]),
            next_rate_bps=data["next_rate_bps"],
            t_start=data["t_start"],
            t_end=data["t_end"],
        )


def _bracket(state) -> tuple[float, float, Optional[float], Optional[float]]:
    """(rmin, rmax, gmin, gmax) from an AdjusterState."""
    return (state.rmin_bps, state.rmax_bps, state.gmin_bps, state.gmax_bps)


class Tracer:
    """Collects trace events, metrics, and pathload decision records.

    Attach to a simulator *before* building the topology so every
    component caches the tracer at construction::

        tracer = Tracer()
        sim = Simulator()
        tracer.attach(sim)
        setup = build_fig4_path(sim, cfg, rng)
        tracer.register_network(setup.network)

    (``register_network`` also retrofits links built before ``attach``.)
    Export with :meth:`write_jsonl` / :meth:`write_perfetto` /
    :meth:`write_prometheus`, or suffix-dispatched :meth:`write`.
    """

    def __init__(
        self, metrics: Optional[MetricsRegistry] = None, light: bool = False
    ):
        #: Light mode buffers only aggregate counters, spans, and decision
        #: records — never per-packet events — so the event-elided fast
        #: paths (stream transit *and* flow transit) stay engaged.  Full
        #: tracers (the default) get per-packet visibility at the cost of
        #: dissolving flow transit (docs/observability.md has the matrix).
        self.light = bool(light)
        self.events: list[TraceEvent] = []
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.decisions: list[FleetDecision] = []
        #: links registered for metric folding, in registration order
        self._links: list = []
        self._link_names: set[str] = set()
        self._sims: list = []
        # Engine/link counters updated inline on hot paths; folded into the
        # registry by :meth:`collect_metrics` (plain attributes beat a
        # registry lookup per event).
        self._engine_events = 0
        self._heap_high_water = 0
        self._queue_high_water: dict[str, int] = {}
        # Kernel-selection counters are process-wide; baseline them at
        # construction so this tracer reports activity *it observed* —
        # essential in (possibly reused, possibly forked) sweep workers.
        self._kernel_base = netsim_kernels.counts()
        # Child-tracer telemetry folded in by :meth:`merge_child`.
        self._kernel_merged: tuple[dict, dict] = ({}, {})
        self._sched_merged: dict[str, int] = {}
        self._merged_tasks = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, sim) -> "Tracer":
        """Install this tracer on ``sim``; components built afterwards
        cache it at construction.  Returns ``self`` for chaining."""
        sim.tracer = self
        if sim not in self._sims:
            self._sims.append(sim)
        return self

    def register_link(self, link) -> None:
        """Track ``link`` for per-link metrics; retrofits the link's cached
        tracer slot if the link was built before :meth:`attach`.  Light
        tracers leave the slot ``None``: per-packet drop/enqueue callbacks
        stay off and the link's whole-stream fast-forward stays eligible —
        the link still feeds the cumulative per-link metrics via
        :meth:`collect_metrics`."""
        if not self.light:
            link._tracer = self
        if link.name not in self._link_names:
            self._link_names.add(link.name)
            self._links.append(link)

    def register_network(self, network) -> None:
        """Register every link of a :class:`~repro.netsim.path.PathNetwork`."""
        for link in network.forward_links:
            self.register_link(link)
        for link in network.reverse_links:
            self.register_link(link)

    # ------------------------------------------------------------------
    # Event emission
    # ------------------------------------------------------------------
    def instant(
        self,
        ts: float,
        cat: str,
        name: str,
        track: str = "sim",
        args: Optional[dict] = None,
    ) -> None:
        """Record an instantaneous event at simulated time ``ts``."""
        self.events.append(
            TraceEvent(ts=ts, name=name, cat=cat, track=track,
                       args=args if args is not None else {})
        )

    def span(
        self,
        t_start: float,
        t_end: float,
        cat: str,
        name: str,
        track: str = "sim",
        args: Optional[dict] = None,
    ) -> None:
        """Record a completed span ``[t_start, t_end]``."""
        self.events.append(
            TraceEvent(ts=t_start, name=name, cat=cat, track=track,
                       dur=max(0.0, t_end - t_start),
                       args=args if args is not None else {})
        )

    # ------------------------------------------------------------------
    # Instrumentation callbacks (called by components when tracing is on)
    # ------------------------------------------------------------------
    def on_link_drop(self, link, pkt, now: float) -> None:
        """A foreground packet hit the drop-tail buffer (or qdisc) of ``link``."""
        if self.light:  # per-packet events are exactly what light mode trades away
            return
        self.instant(
            now,
            "link",
            "drop",
            track=link.name,
            args={
                "size": pkt.size,
                "flow": pkt.flow_id,
                "kind": pkt.kind,
                "backlog": link._backlog_bytes,
            },
        )

    def on_link_enqueue(self, name: str, backlog_bytes: int) -> None:
        """Track queue-occupancy high-water after a foreground acceptance."""
        hw = self._queue_high_water
        if backlog_bytes > hw.get(name, 0):
            hw[name] = backlog_bytes

    def fleet_decision(self, *, index, record, before, after, next_rate_bps):
        """Record one fleet verdict (called by the pathload controller).

        ``record`` is a :class:`~repro.core.fleet.FleetRecord`; ``before``
        and ``after`` are :class:`~repro.core.rate_adjust.AdjusterState`
        snapshots around ``RateAdjuster.record``.
        """
        summary = record.decision_summary()
        decision = FleetDecision(
            index=index,
            rate_bps=summary["rate_bps"],
            outcome=summary["outcome"],
            stream_types=summary["streams"],
            pct=tuple(summary["pct"]),
            pdt=tuple(summary["pdt"]),
            n_increasing=summary["n_increasing"],
            n_nonincreasing=summary["n_nonincreasing"],
            bracket_before=_bracket(before),
            bracket_after=_bracket(after),
            next_rate_bps=next_rate_bps,
            t_start=record.t_start,
            t_end=record.t_end,
        )
        self.decisions.append(decision)
        args = dict(summary)
        args["bracket_before"] = list(decision.bracket_before)
        args["bracket_after"] = list(decision.bracket_after)
        args["next_rate_bps"] = next_rate_bps
        self.span(
            record.t_start,
            record.t_end,
            "fleet",
            f"fleet[{index}] {decision.outcome}",
            track="pathload",
            args=args,
        )
        return decision

    # ------------------------------------------------------------------
    # Metrics folding + export
    # ------------------------------------------------------------------
    def collect_metrics(self) -> MetricsRegistry:
        """Fold engine/link instrumentation into the registry and return it.

        Idempotent in the sense that gauges are set (not accumulated) and
        the per-link counters are set from the links' cumulative stats.
        """
        from ..netsim.flowtransit import FLOW_FALLBACK_REASONS
        from ..netsim.streamtransit import STREAM_FALLBACK_REASONS

        m = self.metrics
        m.gauge(
            "repro_engine_events_executed",
            help="scheduler callbacks executed across attached simulators",
        ).set(self._engine_events)
        m.gauge(
            "repro_engine_heap_high_water",
            help="largest event-heap size observed",
        ).high_water(self._heap_high_water)
        sched: dict[str, int] = dict(self._sched_merged)
        for sim in self._sims:
            kind = getattr(sim, "scheduler", "heap")
            sched[kind] = sched.get(kind, 0) + 1
        for kind in sorted(sched):
            m.gauge(
                "repro_engine_simulators",
                labels={"scheduler": kind},
                help="simulators observed, by scheduler kind",
            ).set(sched[kind])
        netsim_kernels.publish(
            m, base=self._kernel_base, merged=self._kernel_merged
        )
        # Declared-but-zero fast-path series: dashboards and the health
        # report see every known reason before its first increment.
        m.counter(
            "repro_fastpath_streams_total",
            help="probe streams carried by the analytic stream-transit "
            "fast path",
        )
        for reason in STREAM_FALLBACK_REASONS:
            m.counter(
                "repro_fastpath_fallback_total",
                labels={"reason": reason},
                help="probe streams that took the per-packet path, by reason",
            )
        m.counter(
            "repro_fastpath_flows_total",
            help="TCP flows carried by the flow-transit fast path",
        )
        for reason in FLOW_FALLBACK_REASONS:
            m.counter(
                "repro_fastpath_flow_fallback_total",
                labels={"reason": reason},
                help="TCP flows that took the per-packet path, by reason",
            )
        for path in ("elided", "per-packet"):
            m.counter(
                "repro_probe_packets_total",
                labels={"path": path},
                help="probe packets by transit path at send time",
            )
        for link in self._links:
            stats = link.stats  # folds pending bulk arrivals first
            labels = {"link": link.name}
            for field_name in (
                "bytes_forwarded",
                "packets_forwarded",
                "bytes_dropped",
                "packets_dropped",
            ):
                gauge = m.gauge(
                    f"repro_link_{field_name}",
                    labels=labels,
                    help=f"cumulative {field_name.replace('_', ' ')} on the link",
                )
                gauge.set(getattr(stats, field_name))
        for name in sorted(self._queue_high_water):
            m.gauge(
                "repro_link_queue_high_water_bytes",
                labels={"link": name},
                help="largest backlog observed at a foreground enqueue",
            ).high_water(self._queue_high_water[name])
        return m

    # ------------------------------------------------------------------
    # Cross-process envelope codec (repro.parallel)
    # ------------------------------------------------------------------
    def dump_state(self) -> dict:
        """Serialize this tracer for the sweep result envelope.

        Plain data only (JSON/pickle-safe): events, decisions, and a
        lossless metrics dump.  A sweep worker calls this after its task
        and the parent folds it back with :meth:`merge_child`; the same
        payload is stored in the ``.repro_cache`` entry so cache hits
        replay telemetry bit-identically.
        """
        return {
            "version": 1,
            "light": self.light,
            "events": [e.to_dict() for e in self.events],
            "decisions": [d.to_dict() for d in self.decisions],
            "metrics": self.collect_metrics().dump(),
        }

    def merge_child(self, state: Optional[dict], index: int) -> None:
        """Fold a child tracer's :meth:`dump_state` into this tracer.

        Events keep their sim timestamps but move to task-namespaced
        tracks (``task<index>/<track>``, with ``index`` the submission
        index), so the merged stream — and hence :meth:`event_digest` —
        is identical however tasks were distributed over workers or
        replayed from cache.  Counters and histograms add; gauges fold by
        max; per-link series are namespaced like tracks; engine and
        kernel counters fold into this tracer's own accumulators so
        totals stay layout-independent.
        """
        if not state:
            return
        prefix = f"task{index}/"
        append = self.events.append
        for data in state.get("events", ()):
            ev = TraceEvent.from_dict(data)
            append(
                TraceEvent(
                    ts=ev.ts,
                    name=ev.name,
                    cat=ev.cat,
                    track=prefix + ev.track,
                    dur=ev.dur,
                    args=ev.args,
                )
            )
        for data in state.get("decisions", ()):
            self.decisions.append(FleetDecision.from_dict(data))
        merged_calls, merged_fallbacks = self._kernel_merged
        passthrough: list[dict] = []
        for entry in state.get("metrics", ()):
            name = entry["name"]
            labels = dict(entry.get("labels", ()))
            if name == "repro_kernel_calls_total":
                k = labels.get("kernel", "")
                merged_calls[k] = merged_calls.get(k, 0) + entry["value"]
            elif name == "repro_kernel_fallback_total":
                r = labels.get("reason", "")
                if r in netsim_kernels.ONE_SHOT_REASONS:
                    merged_fallbacks[r] = max(
                        merged_fallbacks.get(r, 0), entry["value"]
                    )
                else:
                    merged_fallbacks[r] = (
                        merged_fallbacks.get(r, 0) + entry["value"]
                    )
            elif name == "repro_engine_events_executed":
                self._engine_events += entry["value"]
            elif name == "repro_engine_heap_high_water":
                if entry["value"] > self._heap_high_water:
                    self._heap_high_water = entry["value"]
            elif name == "repro_engine_simulators":
                kind = labels.get("scheduler", "heap")
                self._sched_merged[kind] = (
                    self._sched_merged.get(kind, 0) + entry["value"]
                )
            else:
                if "link" in labels:
                    entry = dict(entry)
                    entry["labels"] = [
                        [k, prefix + v if k == "link" else v]
                        for k, v in entry["labels"]
                    ]
                passthrough.append(entry)
        self.metrics.merge(passthrough)
        self._merged_tasks += 1

    def event_digest(self) -> str:
        """Digest of the event stream (wall/host-prefixed args excluded)."""
        from .exporters import events_digest

        return events_digest(self.events)

    def write_jsonl(self, path: str) -> None:
        """Write the trace (events + decisions + metrics snapshot) as JSONL."""
        from .exporters import write_jsonl

        write_jsonl(
            self.events,
            path,
            metrics=self.collect_metrics(),
            decisions=self.decisions,
        )

    def write_perfetto(self, path: str) -> None:
        """Write a Chrome trace-event JSON file loadable in Perfetto."""
        from .exporters import write_perfetto

        write_perfetto(self.events, path)

    def write_prometheus(self, path: str) -> None:
        """Write the metrics snapshot in Prometheus text format."""
        registry = self.collect_metrics()
        with open(path, "w") as fh:
            fh.write(registry.to_prometheus())

    def write(self, path: str) -> None:
        """Suffix-dispatched export: ``.jsonl`` → JSONL, ``.prom``/``.txt``
        → Prometheus text, anything else → Perfetto JSON."""
        if path.endswith(".jsonl"):
            self.write_jsonl(path)
        elif path.endswith((".prom", ".txt")):
            self.write_prometheus(path)
        else:
            self.write_perfetto(path)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Tracer {len(self.events)} events, {len(self.decisions)} "
            f"decisions, {len(self.metrics)} metrics>"
        )
