"""Counters, gauges, and histograms with a Prometheus-style text export.

A :class:`MetricsRegistry` is a deterministic, in-process metric store: the
simulation's instrumentation points (engine, links, sweep executor) get or
create named metrics and update them with plain numbers.  There is no
background collection thread and no wall clock anywhere in this module —
every value is either a simulated quantity or an explicitly wall-labeled
host-side measurement fed in by the caller (see docs/observability.md for
the determinism contract).

Export is a point-in-time snapshot in the Prometheus text exposition
format (``# HELP`` / ``# TYPE`` plus samples), ordered by metric name and
label set so two identical runs serialize byte-identically.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Sequence, Union

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

LabelPairs = tuple[tuple[str, str], ...]

#: Default histogram buckets (upper bounds, seconds-flavored but unitless).
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0,
)


def _label_pairs(labels: Optional[Mapping[str, str]]) -> LabelPairs:
    """Canonical (sorted) label tuple used as part of a metric's identity."""
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_labels(pairs: LabelPairs) -> str:
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in pairs)
    return "{" + inner + "}"


def _render_value(value: Union[int, float]) -> str:
    """Prometheus sample value: integers stay integral, floats use repr."""
    if isinstance(value, int):
        return str(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


class Counter:
    """Monotonically increasing count (events, bytes, cache hits)."""

    kind = "counter"
    __slots__ = ("name", "labels", "help", "value")

    def __init__(self, name: str, labels: LabelPairs = (), help: str = ""):
        self.name = name
        self.labels = labels
        self.help = help
        self.value: Union[int, float] = 0

    def inc(self, amount: Union[int, float] = 1) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (got {amount})")
        self.value += amount

    def samples(self) -> Iterable[tuple[str, LabelPairs, Union[int, float]]]:
        yield self.name, self.labels, self.value


class Gauge:
    """A value that can go up and down, with a high-water convenience."""

    kind = "gauge"
    __slots__ = ("name", "labels", "help", "value")

    def __init__(self, name: str, labels: LabelPairs = (), help: str = ""):
        self.name = name
        self.labels = labels
        self.help = help
        self.value: Union[int, float] = 0

    def set(self, value: Union[int, float]) -> None:
        """Set the gauge to ``value``."""
        self.value = value

    def high_water(self, value: Union[int, float]) -> None:
        """Raise the gauge to ``value`` if it exceeds the current value."""
        if value > self.value:
            self.value = value

    def samples(self) -> Iterable[tuple[str, LabelPairs, Union[int, float]]]:
        yield self.name, self.labels, self.value


class Histogram:
    """Cumulative-bucket histogram (Prometheus ``le`` semantics)."""

    kind = "histogram"
    __slots__ = ("name", "labels", "help", "buckets", "counts", "total", "count")

    def __init__(
        self,
        name: str,
        labels: LabelPairs = (),
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ):
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.name = name
        self.labels = labels
        self.help = help
        self.buckets = bounds
        self.counts = [0] * len(bounds)  # per-bound counts, cumulated on export
        self.total = 0.0
        self.count = 0

    def observe(self, value: Union[int, float]) -> None:
        """Record one observation."""
        value = float(value)
        self.total += value
        self.count += 1
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                break

    def samples(self) -> Iterable[tuple[str, LabelPairs, Union[int, float]]]:
        running = 0
        for bound, n in zip(self.buckets, self.counts):
            running += n
            le = ("le", repr(bound))
            yield f"{self.name}_bucket", self.labels + (le,), running
        yield f"{self.name}_bucket", self.labels + (("le", "+Inf"),), self.count
        yield f"{self.name}_sum", self.labels, self.total
        yield f"{self.name}_count", self.labels, self.count


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Get-or-create store of metrics keyed by ``(name, labels)``.

    Two calls with the same name and label set return the same metric
    object; a name reused with a different metric *kind* is an error (it
    would serialize as a malformed exposition).
    """

    __slots__ = ("_metrics", "_kinds", "_help")

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, LabelPairs], Metric] = {}
        self._kinds: dict[str, str] = {}
        # Family-level help: the first non-empty help wins regardless of
        # which labeled series registered it.
        self._help: dict[str, str] = {}

    def _get(self, cls, name: str, labels, help: str, **kwargs) -> Metric:
        pairs = _label_pairs(labels)
        key = (name, pairs)
        if help and not self._help.get(name):
            self._help[name] = help
        metric = self._metrics.get(key)
        if metric is not None:
            if not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} already registered as {metric.kind}"
                )
            return metric
        known = self._kinds.get(name)
        if known is not None and known != cls.kind:
            raise TypeError(f"metric {name!r} already registered as {known}")
        metric = cls(name, labels=pairs, help=help, **kwargs)
        self._metrics[key] = metric
        self._kinds[name] = cls.kind
        return metric

    def counter(
        self, name: str, labels: Optional[Mapping[str, str]] = None, help: str = ""
    ) -> Counter:
        """Get or create a :class:`Counter`."""
        return self._get(Counter, name, labels, help)

    def gauge(
        self, name: str, labels: Optional[Mapping[str, str]] = None, help: str = ""
    ) -> Gauge:
        """Get or create a :class:`Gauge`."""
        return self._get(Gauge, name, labels, help)

    def histogram(
        self,
        name: str,
        labels: Optional[Mapping[str, str]] = None,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        """Get or create a :class:`Histogram`."""
        return self._get(Histogram, name, labels, help, buckets=buckets)

    def __iter__(self):
        """Metrics in deterministic (name, labels) order."""
        for key in sorted(self._metrics):
            yield self._metrics[key]

    def __len__(self) -> int:
        return len(self._metrics)

    def dump(self) -> list[dict]:
        """Lossless plain-data form of every metric, for cross-process merge.

        Unlike :meth:`snapshot` (which expands histograms into cumulative
        exposition samples), this preserves raw per-bound counts so a
        parent process can :meth:`merge` worker registries exactly.
        Deterministic order: sorted by ``(name, labels)``.
        """
        out: list[dict] = []
        for metric in self:
            entry: dict = {
                "kind": metric.kind,
                "name": metric.name,
                "labels": [list(pair) for pair in metric.labels],
                "help": self._help.get(metric.name, ""),
            }
            if isinstance(metric, Histogram):
                entry["buckets"] = list(metric.buckets)
                entry["counts"] = list(metric.counts)
                entry["total"] = metric.total
                entry["count"] = metric.count
            else:
                entry["value"] = metric.value
            out.append(entry)
        return out

    def merge(self, dumped: Iterable[dict]) -> None:
        """Fold a :meth:`dump` from another registry into this one.

        Counters and histograms **add** (their values are per-process
        totals); gauges fold by **max** — every gauge here is either a
        high-water mark or an idempotent published snapshot, and max is
        the only fold of those that stays associative and order-free, which
        keeps merged sweeps deterministic across worker layouts.
        """
        for entry in dumped:
            labels = {k: v for k, v in entry.get("labels", ())}
            help_text = entry.get("help", "")
            kind = entry["kind"]
            if kind == "counter":
                self.counter(entry["name"], labels=labels, help=help_text).inc(
                    entry["value"]
                )
            elif kind == "gauge":
                self.gauge(entry["name"], labels=labels, help=help_text).high_water(
                    entry["value"]
                )
            elif kind == "histogram":
                hist = self.histogram(
                    entry["name"],
                    labels=labels,
                    help=help_text,
                    buckets=entry["buckets"],
                )
                if hist.buckets != tuple(entry["buckets"]):
                    raise ValueError(
                        f"histogram {entry['name']!r} bucket mismatch on merge"
                    )
                for i, n in enumerate(entry["counts"]):
                    hist.counts[i] += n
                hist.total += entry["total"]
                hist.count += entry["count"]
            else:
                raise ValueError(f"unknown metric kind {kind!r}")

    def snapshot(self) -> dict:
        """Plain-data snapshot (JSON-serializable), deterministic order."""
        out: dict = {}
        for metric in self:
            entry = out.setdefault(
                metric.name,
                {
                    "kind": metric.kind,
                    "help": self._help.get(metric.name, ""),
                    "samples": [],
                },
            )
            for name, pairs, value in metric.samples():
                entry["samples"].append(
                    {"name": name, "labels": dict(pairs), "value": value}
                )
        return out

    def to_prometheus(self) -> str:
        """Prometheus text exposition snapshot of every metric."""
        lines: list[str] = []
        seen_header: set[str] = set()
        for metric in self:
            if metric.name not in seen_header:
                seen_header.add(metric.name)
                help_text = self._help.get(metric.name, "")
                if help_text:
                    lines.append(f"# HELP {metric.name} {help_text}")
                lines.append(f"# TYPE {metric.name} {metric.kind}")
            for name, pairs, value in metric.samples():
                lines.append(f"{name}{_render_labels(pairs)} {_render_value(value)}")
        return "\n".join(lines) + "\n"
