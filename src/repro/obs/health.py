"""Run-health audit: a structured report derived from merged metrics.

A :class:`RunHealth` answers the operational questions a campaign owner
asks after (or during) a sweep, from nothing but a metrics snapshot —
live from a :class:`~repro.obs.tracer.Tracer` or re-read from the
trailing ``metrics`` line of a JSONL trace:

* how much of the run was event-elided vs simulated per-packet (probe
  packets by path, streams and TCP flows by fast-path outcome)?
* *why* did anything fall back — fast-path refusals and revocations,
  vectorized-kernel declines — and on which links did packets die?
* what did the engine do (events executed, heap high-water, scheduler
  kinds) and how did the sweep cache behave?

The report ends with **hints**: actionable sentences produced only when
a known pathology is visible (e.g. a full tracer dissolving flow
transit → "use --trace-light").  Everything here is derived data; the
module never touches a simulator and never prints — rendering belongs
to the CLI front ends (rule SIM007).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = ["RunHealth", "health_from_snapshot", "health_from_tracer"]

#: A per-packet link drop share above this is worth a hint: the paper's
#: operating points lose far less except when deliberately overloaded.
DROP_FRACTION_HINT = 0.05


def _labeled(snapshot: dict, family: str, label: str) -> dict[str, float]:
    """``{label value: sample value}`` for one labeled metric family."""
    fam = snapshot.get(family)
    if not fam:
        return {}
    out: dict[str, float] = {}
    for sample in fam["samples"]:
        if sample["name"] != family:
            continue  # histogram _bucket/_sum/_count expansions
        value = sample["labels"].get(label)
        if value is not None:
            out[value] = out.get(value, 0) + sample["value"]
    return out


def _scalar(snapshot: dict, family: str) -> float:
    """Sum of a family's unlabeled (or all) plain samples."""
    fam = snapshot.get(family)
    if not fam:
        return 0
    return sum(s["value"] for s in fam["samples"] if s["name"] == family)


@dataclass
class RunHealth:
    """Structured health report; see :func:`health_from_snapshot`."""

    #: probe packets by transit path at send time
    probe_packets_elided: int = 0
    probe_packets_per_packet: int = 0
    #: probe streams: fast-path successes and per-reason fallbacks
    streams_fast: int = 0
    stream_fallbacks: dict = field(default_factory=dict)
    #: TCP flows: flow-transit successes and per-reason fallbacks
    flows_planned: int = 0
    flow_fallbacks: dict = field(default_factory=dict)
    #: vectorized kernels: per-kernel selections and per-reason declines
    kernel_calls: dict = field(default_factory=dict)
    kernel_declines: dict = field(default_factory=dict)
    #: engine totals
    engine_events: int = 0
    heap_high_water: int = 0
    simulators: dict = field(default_factory=dict)
    #: per-link table: name -> {bytes/packets forwarded/dropped,
    #: drop_fraction, queue_high_water_bytes}
    links: dict = field(default_factory=dict)
    #: sweep executor counters
    cache_hits: int = 0
    cache_misses: int = 0
    task_failures: int = 0
    #: actionable findings, one sentence each
    hints: list = field(default_factory=list)

    @property
    def probe_packets_total(self) -> int:
        return self.probe_packets_elided + self.probe_packets_per_packet

    @property
    def elided_fraction(self) -> Optional[float]:
        """Fraction of probe packets that never became engine events, or
        ``None`` when no probe packets were observed."""
        total = self.probe_packets_total
        if total == 0:
            return None
        return self.probe_packets_elided / total

    def to_dict(self) -> dict:
        """JSON-ready form (the ``health`` block of ``summarize --json``)."""
        return {
            "probe_packets": {
                "elided": self.probe_packets_elided,
                "per_packet": self.probe_packets_per_packet,
                "elided_fraction": self.elided_fraction,
            },
            "streams": {
                "fast": self.streams_fast,
                "fallbacks": dict(sorted(self.stream_fallbacks.items())),
            },
            "flows": {
                "planned": self.flows_planned,
                "fallbacks": dict(sorted(self.flow_fallbacks.items())),
            },
            "kernels": {
                "calls": dict(sorted(self.kernel_calls.items())),
                "declines": dict(sorted(self.kernel_declines.items())),
            },
            "engine": {
                "events_executed": self.engine_events,
                "heap_high_water": self.heap_high_water,
                "simulators": dict(sorted(self.simulators.items())),
            },
            "links": {name: self.links[name] for name in sorted(self.links)},
            "sweep": {
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                "task_failures": self.task_failures,
            },
            "hints": list(self.hints),
        }

    def render_text(self) -> str:
        """Human-readable report (what ``repro-trace health`` shows)."""
        lines: list[str] = []
        total = self.probe_packets_total
        if total:
            frac = self.elided_fraction or 0.0
            lines.append(
                f"probe packets   {total} "
                f"({self.probe_packets_elided} elided / "
                f"{self.probe_packets_per_packet} per-packet, "
                f"{100.0 * frac:.1f}% elided)"
            )
        else:
            lines.append("probe packets   none observed")

        def _outcomes(label: str, fast: int, fallbacks: dict) -> None:
            parts = [f"{label}  {fast} fast-path"]
            nonzero = {r: n for r, n in sorted(fallbacks.items()) if n}
            if nonzero:
                detail = ", ".join(f"{r}={n}" for r, n in nonzero.items())
                parts.append(f"fallbacks: {detail}")
            lines.append(" | ".join(parts))

        _outcomes("probe streams ", self.streams_fast, self.stream_fallbacks)
        _outcomes("tcp flows     ", self.flows_planned, self.flow_fallbacks)
        calls = {k: n for k, n in sorted(self.kernel_calls.items()) if n}
        declines = {r: n for r, n in sorted(self.kernel_declines.items()) if n}
        lines.append(
            "kernels         "
            + (", ".join(f"{k}={n}" for k, n in calls.items()) or "unused")
            + (
                " | declines: " + ", ".join(f"{r}={n}" for r, n in declines.items())
                if declines
                else ""
            )
        )
        sims = ", ".join(
            f"{kind}={n}" for kind, n in sorted(self.simulators.items()) if n
        )
        lines.append(
            f"engine          {self.engine_events} events, heap high-water "
            f"{self.heap_high_water}" + (f", simulators: {sims}" if sims else "")
        )
        for name in sorted(self.links):
            row = self.links[name]
            lines.append(
                f"link {name}: {row['packets_forwarded']} pkts fwd, "
                f"{row['packets_dropped']} dropped "
                f"({100.0 * row['drop_fraction']:.2f}%), queue high-water "
                f"{row['queue_high_water_bytes']} B"
            )
        if self.cache_hits or self.cache_misses or self.task_failures:
            lines.append(
                f"sweep           {self.cache_hits} cache hits, "
                f"{self.cache_misses} misses, {self.task_failures} failures"
            )
        if self.hints:
            lines.append("hints:")
            for hint in self.hints:
                lines.append(f"  - {hint}")
        else:
            lines.append("hints:          none — run looks healthy")
        return "\n".join(lines)


def health_from_snapshot(snapshot: Optional[dict]) -> RunHealth:
    """Derive a :class:`RunHealth` from a metrics snapshot dict.

    Accepts the exact structure :meth:`MetricsRegistry.snapshot` produces
    (also the trailing ``metrics`` line of a JSONL trace).  ``None`` or an
    empty snapshot yields an empty (but renderable) report.
    """
    health = RunHealth()
    if not snapshot:
        health.hints.append(
            "no metrics snapshot available; re-export the trace with a "
            "current Tracer to get a health block"
        )
        return health
    paths = _labeled(snapshot, "repro_probe_packets_total", "path")
    health.probe_packets_elided = int(paths.get("elided", 0))
    health.probe_packets_per_packet = int(paths.get("per-packet", 0))
    health.streams_fast = int(_scalar(snapshot, "repro_fastpath_streams_total"))
    health.stream_fallbacks = {
        r: int(n)
        for r, n in _labeled(
            snapshot, "repro_fastpath_fallback_total", "reason"
        ).items()
    }
    health.flows_planned = int(_scalar(snapshot, "repro_fastpath_flows_total"))
    health.flow_fallbacks = {
        r: int(n)
        for r, n in _labeled(
            snapshot, "repro_fastpath_flow_fallback_total", "reason"
        ).items()
    }
    health.kernel_calls = {
        k: int(n)
        for k, n in _labeled(snapshot, "repro_kernel_calls_total", "kernel").items()
    }
    health.kernel_declines = {
        r: int(n)
        for r, n in _labeled(
            snapshot, "repro_kernel_fallback_total", "reason"
        ).items()
    }
    health.engine_events = int(_scalar(snapshot, "repro_engine_events_executed"))
    health.heap_high_water = int(_scalar(snapshot, "repro_engine_heap_high_water"))
    health.simulators = {
        k: int(n)
        for k, n in _labeled(snapshot, "repro_engine_simulators", "scheduler").items()
    }
    fwd_b = _labeled(snapshot, "repro_link_bytes_forwarded", "link")
    fwd_p = _labeled(snapshot, "repro_link_packets_forwarded", "link")
    drop_b = _labeled(snapshot, "repro_link_bytes_dropped", "link")
    drop_p = _labeled(snapshot, "repro_link_packets_dropped", "link")
    queue_hw = _labeled(snapshot, "repro_link_queue_high_water_bytes", "link")
    for name in sorted(set(fwd_b) | set(drop_b) | set(queue_hw)):
        forwarded = int(fwd_p.get(name, 0))
        dropped = int(drop_p.get(name, 0))
        offered = forwarded + dropped
        health.links[name] = {
            "bytes_forwarded": int(fwd_b.get(name, 0)),
            "packets_forwarded": forwarded,
            "bytes_dropped": int(drop_b.get(name, 0)),
            "packets_dropped": dropped,
            "drop_fraction": (dropped / offered) if offered else 0.0,
            "queue_high_water_bytes": int(queue_hw.get(name, 0)),
        }
    health.cache_hits = int(_scalar(snapshot, "repro_sweep_cache_hits_total"))
    health.cache_misses = int(_scalar(snapshot, "repro_sweep_cache_misses_total"))
    health.task_failures = int(
        _scalar(snapshot, "repro_sweep_task_failures_total")
    )
    _derive_hints(health)
    return health


def _derive_hints(health: RunHealth) -> None:
    """Append one sentence per visible pathology (order: worst first)."""
    hints = health.hints
    if health.task_failures:
        hints.append(
            f"{health.task_failures} sweep task(s) raised; re-run with "
            "sweep_values() or check SweepOutcome.error for the traceback"
        )
    tracer_flows = health.flow_fallbacks.get("tracer", 0)
    if tracer_flows:
        hints.append(
            f"a full tracer dissolved the TCP flow-transit fast path for "
            f"{tracer_flows} flow(s); use --trace-light (Tracer(light=True)) "
            "to keep elision while collecting aggregate telemetry"
        )
    tracer_streams = health.stream_fallbacks.get("tracer", 0)
    if tracer_streams:
        hints.append(
            f"{tracer_streams} probe stream(s) were rewound to per-packet by "
            "a tracer-forced dissolve; --trace-light avoids the rewind"
        )
    frac = health.elided_fraction
    if frac is not None and frac < 0.5 and health.probe_packets_total >= 1000:
        dominant = max(
            (r for r in health.stream_fallbacks),
            key=lambda r: health.stream_fallbacks[r],
            default=None,
        )
        detail = (
            f" (dominant fallback reason: {dominant})" if dominant else ""
        )
        hints.append(
            f"only {100.0 * frac:.0f}% of probe packets were event-elided"
            + detail
            + "; see docs/performance.md for eligibility rules"
        )
    disabled = health.kernel_declines.get("disabled", 0)
    if disabled and not any(health.kernel_calls.values()):
        hints.append(
            "vectorized kernels are disabled (REPRO_NO_VECTOR/--no-vector); "
            "scalar loops are exact but slower"
        )
    for reason in ("self-check", "numpy-missing", "verify-failed"):
        if health.kernel_declines.get(reason, 0):
            hints.append(
                f"kernel decline reason {reason!r} observed — vector kernels "
                "degraded to scalar loops for this process"
            )
    for name, row in sorted(health.links.items()):
        if row["drop_fraction"] > DROP_FRACTION_HINT:
            hints.append(
                f"link {name!r} dropped {100.0 * row['drop_fraction']:.1f}% of "
                "offered packets; verdicts at this operating point are "
                "loss-driven, not delay-trend-driven"
            )


def health_from_tracer(tracer) -> RunHealth:
    """Health report for a live tracer (folds metrics first)."""
    return health_from_snapshot(tracer.collect_metrics().snapshot())
