"""Deterministic observability for the simulation substrate.

``repro.obs`` answers "what did the simulation *do*?" without perturbing
what it does: a :class:`Tracer` of sim-time spans/instants and structured
pathload :class:`FleetDecision` records, a :class:`MetricsRegistry` of
counters/gauges/histograms, and exporters to JSONL, Perfetto (Chrome
trace-event JSON), and Prometheus text.  With no tracer attached every
instrumentation point costs one attribute None-check; with one attached,
``Simulator.digest()`` and all experiment reports remain bit-identical.

v2 adds the cross-process pipeline (child-tracer envelopes merged with
per-task track namespacing, so sweep digests are identical across
``--jobs`` counts and cache states), :class:`RunHealth` audits built from
merged metrics, and an opt-in sampling :class:`Profiler` with sim-time
correlation.

See docs/observability.md for the event taxonomy and determinism contract.
"""

from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .tracer import FleetDecision, TraceEvent, Tracer
from .health import RunHealth, health_from_snapshot, health_from_tracer
from .profiler import Profiler
from .exporters import (
    events_digest,
    read_jsonl,
    read_jsonl_full,
    summarize,
    to_perfetto,
    write_jsonl,
    write_perfetto,
)

__all__ = [
    "Tracer",
    "TraceEvent",
    "FleetDecision",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "RunHealth",
    "health_from_snapshot",
    "health_from_tracer",
    "Profiler",
    "write_jsonl",
    "read_jsonl",
    "read_jsonl_full",
    "to_perfetto",
    "write_perfetto",
    "events_digest",
    "summarize",
]
