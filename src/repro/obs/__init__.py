"""Deterministic observability for the simulation substrate.

``repro.obs`` answers "what did the simulation *do*?" without perturbing
what it does: a :class:`Tracer` of sim-time spans/instants and structured
pathload :class:`FleetDecision` records, a :class:`MetricsRegistry` of
counters/gauges/histograms, and exporters to JSONL, Perfetto (Chrome
trace-event JSON), and Prometheus text.  With no tracer attached every
instrumentation point costs one attribute None-check; with one attached,
``Simulator.digest()`` and all experiment reports remain bit-identical.

See docs/observability.md for the event taxonomy and determinism contract.
"""

from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .tracer import FleetDecision, TraceEvent, Tracer
from .exporters import (
    events_digest,
    read_jsonl,
    summarize,
    to_perfetto,
    write_jsonl,
    write_perfetto,
)

__all__ = [
    "Tracer",
    "TraceEvent",
    "FleetDecision",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "write_jsonl",
    "read_jsonl",
    "to_perfetto",
    "write_perfetto",
    "events_digest",
    "summarize",
]
