"""Baseline ratchet: adopt project-wide linting without a flag day.

A baseline file (``.simlint-baseline.json`` at the repo root by default)
records the findings that existed when the gate was turned on.  Applying
it splits a run's findings into *new* (fail the build) and *baselined*
(tolerated, but reported so they can be burned down), and reports *stale*
baseline entries whose finding no longer occurs — the ratchet only ever
tightens.

Findings are matched on ``(path suffix, rule id, message)`` with
multiplicity: line numbers are deliberately not part of the key, so
unrelated edits that shift a baselined finding up or down a few lines do
not break the build, while a *second* occurrence of the same finding
does.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional, Sequence

from .report import Finding

__all__ = [
    "DEFAULT_BASELINE_NAME",
    "BaselineResult",
    "load_baseline",
    "write_baseline",
    "apply_baseline",
]

DEFAULT_BASELINE_NAME = ".simlint-baseline.json"

_FORMAT_VERSION = 1


def _key(path: str, rule_id: str, message: str) -> tuple[str, str, str]:
    # Keep the last two path components so the baseline is stable across
    # checkouts rooted at different prefixes and across absolute vs
    # relative invocation (the message disambiguates the rare collision).
    suffix = "/".join(Path(path).as_posix().split("/")[-2:])
    return (suffix, rule_id, message)


def _finding_key(finding: Finding) -> tuple[str, str, str]:
    return _key(finding.path, finding.rule_id, finding.message)


@dataclass
class BaselineResult:
    """Outcome of matching one run's findings against a baseline."""

    new: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    #: baseline entries with no matching finding left: candidates for removal
    stale: list[dict] = field(default_factory=list)


def load_baseline(path: Path) -> dict[tuple[str, str, str], int]:
    """Entry key -> tolerated count. Missing file means an empty baseline."""
    if not path.is_file():
        return {}
    payload = json.loads(path.read_text())
    counts: dict[tuple[str, str, str], int] = {}
    for entry in payload.get("findings", []):
        key = (entry["path"], entry["rule_id"], entry["message"])
        counts[key] = counts.get(key, 0) + int(entry.get("count", 1))
    return counts


def write_baseline(path: Path, findings: Sequence[Finding]) -> int:
    """Serialize ``findings`` as the new baseline; returns the entry count."""
    counts: dict[tuple[str, str, str], int] = {}
    for finding in findings:
        key = _finding_key(finding)
        counts[key] = counts.get(key, 0) + 1
    entries = [
        {"path": k[0], "rule_id": k[1], "message": k[2], "count": n}
        for k, n in sorted(counts.items())
    ]
    payload = {
        "version": _FORMAT_VERSION,
        "comment": (
            "repro-lint baseline: pre-existing findings tolerated by "
            "--strict. Regenerate with repro-lint --write-baseline; "
            "remove entries as they are fixed (the ratchet only tightens)."
        ),
        "findings": entries,
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n")
    return len(entries)


def apply_baseline(
    findings: Iterable[Finding],
    baseline: dict[tuple[str, str, str], int],
) -> BaselineResult:
    """Split findings into new vs baselined and report stale entries."""
    remaining = dict(baseline)
    result = BaselineResult()
    for finding in findings:
        key = _finding_key(finding)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            result.baselined.append(finding)
        else:
            result.new.append(finding)
    for key, count in sorted(remaining.items()):
        if count > 0:
            result.stale.append(
                {"path": key[0], "rule_id": key[1], "message": key[2], "count": count}
            )
    return result


def find_baseline(paths: Sequence[Path], explicit: Optional[Path]) -> Optional[Path]:
    """Locate the baseline file: explicit flag wins, else search upward
    from the first linted path for ``.simlint-baseline.json``."""
    if explicit is not None:
        return explicit
    for start in paths:
        node = start.resolve()
        if node.is_file():
            node = node.parent
        for candidate in [node, *node.parents]:
            hit = candidate / DEFAULT_BASELINE_NAME
            if hit.is_file():
                return hit
    return None
