"""Per-rule AST visitors.

Each rule is a class with a ``check(context) -> Iterator[Finding]`` method,
registered in :data:`CHECKERS` keyed by rule id.  They share a
:class:`ModuleContext` holding the parsed tree, an import-alias map (so
``from time import perf_counter as pc`` is still caught), and an index of
function definitions (for the generator-yield rule).

The checks are deliberately syntactic: no type inference, no execution.
That keeps them fast and predictable — the cost is that they rely on the
project's naming conventions (``*_bps``/``*_mbps`` suffixes, ``rng``
parameters), which is exactly what a project-local linter is for.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Iterator, Optional

from .report import Finding

__all__ = ["ModuleContext", "CHECKERS", "run_checkers"]


# ----------------------------------------------------------------------
# Shared context
# ----------------------------------------------------------------------

_TRACKED_MODULES = {"time", "datetime", "random", "numpy", "numpy.random"}


@dataclass
class _FunctionInfo:
    """One function definition and whether its own body yields."""

    name: str
    lineno: int
    has_yield: bool


@dataclass
class ModuleContext:
    """Everything the per-rule visitors need about one source file."""

    path: str
    tree: ast.Module
    imports: dict[str, str] = field(default_factory=dict)
    functions: dict[str, list[_FunctionInfo]] = field(default_factory=dict)

    @classmethod
    def build(cls, path: str, tree: ast.Module) -> "ModuleContext":
        ctx = cls(path=path, tree=tree)
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    top = alias.name.split(".")[0]
                    if top in _TRACKED_MODULES or alias.name in _TRACKED_MODULES:
                        if alias.asname:
                            ctx.imports[alias.asname] = alias.name
                        else:
                            # ``import numpy.random`` binds the *top* module.
                            ctx.imports[top] = top
            elif isinstance(node, ast.ImportFrom):
                if node.module in _TRACKED_MODULES and node.level == 0:
                    for alias in node.names:
                        bound = alias.asname or alias.name
                        ctx.imports[bound] = f"{node.module}.{alias.name}"
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = _FunctionInfo(
                    name=node.name,
                    lineno=node.lineno,
                    has_yield=_body_yields(node),
                )
                ctx.functions.setdefault(node.name, []).append(info)
        return ctx

    def resolve(self, node: ast.expr) -> Optional[str]:
        """Dotted name of a Name/Attribute chain, with import aliases expanded.

        Returns ``None`` when the chain does not root in a tracked import —
        so an unrelated attribute like ``self.random.draw()`` never matches.
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.imports.get(node.id)
        if root is None:
            return None
        parts.append(root)
        return ".".join(reversed(parts))


def _body_yields(func: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    """True if the function's *own* body contains yield / yield from.

    Nested function definitions and lambdas are not descended into: their
    yields do not make the outer function a generator.
    """

    def scan(nodes) -> bool:
        for node in nodes:
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                return True
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            if scan(ast.iter_child_nodes(node)):
                return True
        return False

    return scan(ast.iter_child_nodes(func))


def _terminal_name(node: ast.expr) -> Optional[str]:
    """The last identifier of a Name/Attribute chain, else ``None``."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


# ----------------------------------------------------------------------
# SIM001 — wall-clock calls
# ----------------------------------------------------------------------

_WALL_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}


class WallClockChecker:
    rule_id = "SIM001"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = ctx.resolve(node.func)
            if target in _WALL_CLOCK_CALLS:
                yield Finding(
                    rule_id=self.rule_id,
                    path=ctx.path,
                    line=node.lineno,
                    col=node.col_offset,
                    message=(
                        f"wall-clock call {target}() — simulator code must use "
                        "virtual time (sim.now); only transport/realtime.py may "
                        "read the wall clock"
                    ),
                )


# ----------------------------------------------------------------------
# SIM002 — unseeded randomness
# ----------------------------------------------------------------------

_NP_GLOBAL_DRAWS = {
    "seed", "random", "rand", "randn", "randint", "random_sample",
    "random_integers", "choice", "shuffle", "permutation", "bytes",
    "normal", "uniform", "exponential", "pareto", "poisson", "binomial",
    "standard_normal", "standard_exponential", "lognormal", "gamma",
    "beta", "weibull", "zipf", "geometric",
}

_STDLIB_RANDOM_FNS = {
    "seed", "random", "randint", "randrange", "choice", "choices",
    "shuffle", "sample", "uniform", "gauss", "normalvariate",
    "expovariate", "paretovariate", "betavariate", "vonmisesvariate",
    "triangular", "lognormvariate", "weibullvariate", "getrandbits",
    "randbytes",
}


class UnseededRandomChecker:
    rule_id = "SIM002"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = ctx.resolve(node.func)
            if target is None:
                continue
            message = None
            if target in ("numpy.random.default_rng", "numpy.random.RandomState"):
                if not node.args and not node.keywords:
                    message = (
                        f"{target}() without a seed is entropy-seeded — derive "
                        "generators from a master seed (see "
                        "experiments.base.spawn_seeds) and pass them as "
                        "np.random.Generator parameters"
                    )
            elif target.startswith("numpy.random."):
                fn = target.rsplit(".", 1)[1]
                if fn in _NP_GLOBAL_DRAWS:
                    message = (
                        f"module-level {target}() uses numpy's hidden global "
                        "RNG — draw from an explicitly seeded Generator "
                        "parameter instead"
                    )
            elif target.startswith("random."):
                fn = target.rsplit(".", 1)[1]
                if fn in _STDLIB_RANDOM_FNS:
                    message = (
                        f"stdlib {target}() uses the hidden global RNG — use "
                        "an explicitly seeded np.random.Generator parameter "
                        "instead"
                    )
            if message is not None:
                yield Finding(
                    rule_id=self.rule_id,
                    path=ctx.path,
                    line=node.lineno,
                    col=node.col_offset,
                    message=message,
                )


# ----------------------------------------------------------------------
# SIM003 — ==/!= on virtual-time expressions
# ----------------------------------------------------------------------

_TIME_NAME_RE = re.compile(r"^(now|time|t0|deadline)$|_at$")


class VirtualTimeEqualityChecker:
    rule_id = "SIM003"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            values = [node.left, *node.comparators]
            for i, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                for side in (values[i], values[i + 1]):
                    name = _terminal_name(side)
                    if name is not None and _TIME_NAME_RE.search(name):
                        op_text = "==" if isinstance(op, ast.Eq) else "!="
                        yield Finding(
                            rule_id=self.rule_id,
                            path=ctx.path,
                            line=node.lineno,
                            col=node.col_offset,
                            message=(
                                f"exact {op_text} comparison on virtual-time "
                                f"expression {name!r} — float timestamps "
                                "accumulate representation error; use an "
                                "ordering comparison or a tolerance"
                            ),
                        )
                        break  # one finding per operator is enough


# ----------------------------------------------------------------------
# SIM004 — unit-suffix hygiene
# ----------------------------------------------------------------------


def _unit_of(name: Optional[str]) -> Optional[str]:
    if name is None:
        return None
    lowered = name.lower()
    if lowered == "mbps" or lowered.endswith("_mbps"):
        return "mbps"
    if lowered == "bps" or lowered.endswith("_bps"):
        return "bps"
    return None


def _literal_value(node: ast.expr) -> Optional[float]:
    """Numeric value of a literal, unwrapping a leading unary minus."""
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = _literal_value(node.operand)
        return -inner if inner is not None else None
    if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)):
        if isinstance(node.value, bool):
            return None
        return float(node.value)
    return None


class UnitSuffixChecker:
    rule_id = "SIM004"

    #: A literal this large passed to a ``*_mbps`` parameter is almost
    #: certainly a bits-per-second value (100 Gb/s = 1e5 Mb/s is the most
    #: extreme plausible link rate in this repo).
    MBPS_LITERAL_CEILING = 1e5
    #: A positive literal this small passed to a ``*_bps`` parameter is
    #: almost certainly a megabits value (1 kb/s is below any rate the
    #: reproduction uses; 0 is allowed as an "off" sentinel).
    BPS_LITERAL_FLOOR = 1e3

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(ctx, node)
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                yield from self._check_assign(ctx, node)

    def _check_call(self, ctx: ModuleContext, node: ast.Call) -> Iterator[Finding]:
        for kw in node.keywords:
            param_unit = _unit_of(kw.arg)
            if param_unit is None:
                continue
            value_unit = _unit_of(_terminal_name(kw.value))
            if value_unit is not None and value_unit != param_unit:
                yield Finding(
                    rule_id=self.rule_id,
                    path=ctx.path,
                    line=kw.value.lineno,
                    col=kw.value.col_offset,
                    message=(
                        f"unit mismatch: {value_unit} value "
                        f"{_terminal_name(kw.value)!r} passed to "
                        f"{param_unit} parameter {kw.arg!r} — convert "
                        "explicitly (factor 1e6)"
                    ),
                )
                continue
            literal = _literal_value(kw.value)
            if literal is None:
                continue
            if param_unit == "mbps" and abs(literal) >= self.MBPS_LITERAL_CEILING:
                yield Finding(
                    rule_id=self.rule_id,
                    path=ctx.path,
                    line=kw.value.lineno,
                    col=kw.value.col_offset,
                    message=(
                        f"magic bandwidth literal {literal:g} passed to "
                        f"{param_unit} parameter {kw.arg!r} looks like a "
                        "bits/s value — did you mean to divide by 1e6?"
                    ),
                )
            elif param_unit == "bps" and 0 < abs(literal) < self.BPS_LITERAL_FLOOR:
                yield Finding(
                    rule_id=self.rule_id,
                    path=ctx.path,
                    line=kw.value.lineno,
                    col=kw.value.col_offset,
                    message=(
                        f"magic bandwidth literal {literal:g} passed to "
                        f"{param_unit} parameter {kw.arg!r} looks like a "
                        "Mb/s value — did you mean to multiply by 1e6?"
                    ),
                )

    def _check_assign(
        self, ctx: ModuleContext, node: ast.Assign | ast.AnnAssign
    ) -> Iterator[Finding]:
        # Only direct name-to-name bindings are checked: arithmetic on the
        # right-hand side is assumed to be the unit conversion itself.
        value = node.value
        if value is None:
            return
        value_unit = _unit_of(_terminal_name(value))
        if value_unit is None:
            return
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            target_unit = _unit_of(_terminal_name(target))
            if target_unit is not None and target_unit != value_unit:
                yield Finding(
                    rule_id=self.rule_id,
                    path=ctx.path,
                    line=node.lineno,
                    col=node.col_offset,
                    message=(
                        f"unit mismatch: {value_unit} value bound to "
                        f"{target_unit} name {_terminal_name(target)!r} — "
                        "convert explicitly (factor 1e6)"
                    ),
                )


# ----------------------------------------------------------------------
# SIM005 — mutable default arguments
# ----------------------------------------------------------------------

_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
_MUTABLE_CALLS = {"list", "dict", "set", "bytearray", "defaultdict", "deque", "Counter"}


class MutableDefaultChecker:
    rule_id = "SIM005"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    name = getattr(node, "name", "<lambda>")
                    yield Finding(
                        rule_id=self.rule_id,
                        path=ctx.path,
                        line=default.lineno,
                        col=default.col_offset,
                        message=(
                            f"mutable default argument in {name!r} is shared "
                            "across calls — use None and create the value in "
                            "the body"
                        ),
                    )

    @staticmethod
    def _is_mutable(node: ast.expr) -> bool:
        if isinstance(node, _MUTABLE_LITERALS):
            return True
        if isinstance(node, ast.Call):
            name = _terminal_name(node.func)
            return name in _MUTABLE_CALLS
        return False


# ----------------------------------------------------------------------
# SIM006 — process generators that never yield
# ----------------------------------------------------------------------


class NeverYieldingProcessChecker:
    rule_id = "SIM006"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            gen_arg = self._process_generator_arg(node)
            if gen_arg is None or not isinstance(gen_arg, ast.Call):
                continue
            callee = _terminal_name(gen_arg.func)
            if callee is None:
                continue
            infos = ctx.functions.get(callee)
            if not infos:
                continue
            if not any(info.has_yield for info in infos):
                yield Finding(
                    rule_id=self.rule_id,
                    path=ctx.path,
                    line=node.lineno,
                    col=node.col_offset,
                    message=(
                        f"{callee!r} is passed to process() but never yields — "
                        "a process body must be a generator (yield a delay, an "
                        "Event, or a Process)"
                    ),
                )

    @staticmethod
    def _process_generator_arg(node: ast.Call) -> Optional[ast.expr]:
        """The generator argument of ``<x>.process(gen)`` / ``Process(sim, gen)``."""
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "process"
            and node.args
        ):
            return node.args[0]
        if (
            isinstance(node.func, ast.Name)
            and node.func.id == "Process"
            and len(node.args) >= 2
        ):
            return node.args[1]
        return None


# ----------------------------------------------------------------------
# SIM007: bare print() in library code
# ----------------------------------------------------------------------


class BarePrintChecker:
    """Library modules must not print: diagnostics belong in ``repro.obs``
    (tracer events, metrics) or ``logging``, where they stay structured and
    deterministic.  CLI front ends and example scripts — whose *job* is
    printing — are allowlisted (:data:`~repro.lint.registry.DEFAULT_ALLOWLIST`).
    """

    rule_id = "SIM007"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                yield Finding(
                    rule_id=self.rule_id,
                    path=ctx.path,
                    line=node.lineno,
                    col=node.col_offset,
                    message=(
                        "bare print() in library code — emit a repro.obs "
                        "trace event/metric or use logging (CLI modules are "
                        "allowlisted)"
                    ),
                )


# ----------------------------------------------------------------------
# Registry of checkers
# ----------------------------------------------------------------------

CHECKERS = {
    checker.rule_id: checker
    for checker in (
        WallClockChecker(),
        UnseededRandomChecker(),
        VirtualTimeEqualityChecker(),
        UnitSuffixChecker(),
        MutableDefaultChecker(),
        NeverYieldingProcessChecker(),
        BarePrintChecker(),
    )
}


def run_checkers(ctx: ModuleContext, rule_ids: list[str]) -> list[Finding]:
    """Run the selected rules over one module; findings in source order."""
    findings: list[Finding] = []
    for rule_id in rule_ids:
        checker = CHECKERS.get(rule_id)
        if checker is not None:
            findings.extend(checker.check(ctx))
    findings.sort(key=lambda f: (f.line, f.col, f.rule_id))
    return findings
