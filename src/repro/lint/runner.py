"""File discovery and the lint driver: parse → check → suppress.

Two passes share every parse:

1. the **per-file pass** (:class:`~repro.lint.rules.ModuleContext`,
   SIM001–SIM007) sees one module at a time, exactly as before;
2. the **project pass** (:class:`~repro.lint.dataflow.ProjectContext`,
   SIM008–SIM011) is built once from the per-file pass's trees and runs
   the cross-module checkers.

Pragma suppression and the allowlist apply identically to both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping, Optional, Sequence

from .dataflow import ProjectContext
from .pragmas import allowlisted, extract_markers, extract_pragmas
from .projectrules import PROJECT_RULE_IDS, run_project_checkers
from .registry import DEFAULT_ALLOWLIST, Rule, get_rules
from .report import Finding
from .rules import ModuleContext, run_checkers

import ast

__all__ = ["LintResult", "lint_source", "lint_paths", "iter_python_files"]

#: Directories never descended into: build artifacts, caches, VCS
#: metadata, the sweep result cache from PR 3, and the linter's own
#: known-bad test fixtures.
_SKIP_DIRS = {
    "__pycache__", ".git", ".pytest_cache", "build", "dist", ".eggs",
    ".repro_cache", "lint_fixtures",
}

#: Directory-name suffixes skipped wherever they appear (setuptools drops
#: ``<name>.egg-info`` next to the package it builds).
_SKIP_DIR_SUFFIXES = (".egg-info",)


def _skip_part(part: str) -> bool:
    return part in _SKIP_DIRS or part.endswith(_SKIP_DIR_SUFFIXES)


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    parse_errors: list[str] = field(default_factory=list)
    #: SIM010 loop classification (``LoopReport`` objects) — the
    #: machine-readable vectorization work list; populated whenever
    #: SIM010 is among the active rules.
    loop_reports: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when the tree is clean (no findings, everything parsed)."""
        return not self.findings and not self.parse_errors

    def vectorization_payload(self) -> dict:
        """JSON-ready ``vectorization.json`` content."""
        return {
            "generated_by": "repro-lint SIM010",
            "version": 1,
            "loops": [r.to_dict() for r in self.loop_reports],
        }


def _split_rules(rules: Sequence[Rule]) -> tuple[list[Rule], list[Rule]]:
    per_file = [r for r in rules if r.id not in PROJECT_RULE_IDS]
    project = [r for r in rules if r.id in PROJECT_RULE_IDS]
    return per_file, project


def _module_findings(
    path: str,
    tree: ast.Module,
    rules: Sequence[Rule],
    allowlist: Mapping[str, Sequence[str]],
) -> list[Finding]:
    active = [
        rule.id for rule in rules if not allowlisted(path, rule.id, allowlist)
    ]
    if not active:
        return []
    ctx = ModuleContext.build(path, tree)
    return run_checkers(ctx, active)


def lint_source(
    source: str,
    path: str,
    rules: Optional[Sequence[Rule]] = None,
    allowlist: Optional[Mapping[str, Sequence[str]]] = None,
) -> list[Finding]:
    """Lint one source string; returns surviving (non-suppressed) findings.

    Project rules run against a single-module project, so cross-module
    cross-checks degrade gracefully (a guard in another file is simply
    not checked here).  Raises ``SyntaxError`` if the source does not
    parse — callers decide whether that is fatal (the CLI reports it as
    its own failure).
    """
    if rules is None:
        rules = get_rules()
    if allowlist is None:
        allowlist = DEFAULT_ALLOWLIST
    tree = ast.parse(source, filename=path)
    per_file, project_rules = _split_rules(rules)
    findings = _module_findings(path, tree, per_file, allowlist)
    active_project = [
        rule.id
        for rule in project_rules
        if not allowlisted(path, rule.id, allowlist)
    ]
    if active_project:
        project = ProjectContext.build([(path, tree, extract_markers(source))])
        findings.extend(run_project_checkers(project, active_project))
    if not findings:
        return []
    pragmas = extract_pragmas(source, tree)
    findings = [f for f in findings if not pragmas.suppresses(f.line, f.rule_id)]
    findings.sort(key=lambda f: (f.line, f.col, f.rule_id))
    return findings


def iter_python_files(
    paths: Iterable[str | Path], missing: Optional[list[str]] = None
) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files.

    Entries that exist but are neither a ``.py`` file nor a directory are
    ignored; entries that do not exist at all are appended to ``missing``
    (a typo'd path must not silently lint zero files and pass CI).
    """
    out: set[Path] = set()
    for entry in paths:
        p = Path(entry)
        if p.is_file() and p.suffix == ".py":
            out.add(p)
        elif p.is_dir():
            for sub in p.rglob("*.py"):
                if not any(_skip_part(part) for part in sub.parts):
                    out.add(sub)
        elif not p.exists() and missing is not None:
            missing.append(str(p))
    return sorted(out)


def lint_paths(
    paths: Iterable[str | Path],
    rules: Optional[Sequence[Rule]] = None,
    allowlist: Optional[Mapping[str, Sequence[str]]] = None,
) -> LintResult:
    """Lint every ``.py`` file under ``paths``: both passes, one parse."""
    if rules is None:
        rules = get_rules()
    if allowlist is None:
        allowlist = DEFAULT_ALLOWLIST
    per_file, project_rules = _split_rules(rules)

    result = LintResult()
    missing: list[str] = []
    files = iter_python_files(paths, missing=missing)
    result.parse_errors.extend(f"{m}: path does not exist" for m in missing)

    parsed: list[tuple[str, str, ast.Module]] = []  # (path, source, tree)
    for path in files:
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            result.parse_errors.append(f"{path}: unreadable: {exc}")
            continue
        result.files_checked += 1
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            result.parse_errors.append(
                f"{path}:{exc.lineno or 0}: syntax error: {exc.msg}"
            )
            continue
        parsed.append((str(path), source, tree))
        result.findings.extend(
            _module_findings(str(path), tree, per_file, allowlist)
        )

    if project_rules and parsed:
        project = ProjectContext.build(
            (path, tree, extract_markers(source)) for path, source, tree in parsed
        )
        project_ids = [rule.id for rule in project_rules]
        result.findings.extend(
            f
            for f in run_project_checkers(project, project_ids)
            if not allowlisted(f.path, f.rule_id, allowlist)
        )
        if any(rule.id == "SIM010" for rule in project_rules):
            result.loop_reports = project.loop_reports()

    # pragma suppression, per file, shared by both passes
    if result.findings:
        sources = {path: (source, tree) for path, source, tree in parsed}
        pragma_cache: dict[str, object] = {}
        kept: list[Finding] = []
        for finding in result.findings:
            index = pragma_cache.get(finding.path)
            if index is None:
                entry = sources.get(finding.path)
                if entry is None:
                    kept.append(finding)
                    continue
                index = extract_pragmas(entry[0], entry[1])
                pragma_cache[finding.path] = index
            if not index.suppresses(finding.line, finding.rule_id):
                kept.append(finding)
        result.findings = kept

    result.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return result
