"""File discovery and the lint driver: parse → check → suppress."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping, Optional, Sequence

from .pragmas import allowlisted, extract_pragmas
from .registry import DEFAULT_ALLOWLIST, Rule, get_rules
from .report import Finding
from .rules import ModuleContext, run_checkers

import ast

__all__ = ["LintResult", "lint_source", "lint_paths", "iter_python_files"]

#: Directories never descended into (build artifacts, caches, VCS metadata).
_SKIP_DIRS = {
    "__pycache__", ".git", ".pytest_cache", "build", "dist", ".eggs",
}


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    parse_errors: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when the tree is clean (no findings, everything parsed)."""
        return not self.findings and not self.parse_errors


def lint_source(
    source: str,
    path: str,
    rules: Optional[Sequence[Rule]] = None,
    allowlist: Optional[Mapping[str, Sequence[str]]] = None,
) -> list[Finding]:
    """Lint one source string; returns surviving (non-suppressed) findings.

    Raises ``SyntaxError`` if the source does not parse — callers decide
    whether that is fatal (the CLI reports it as its own failure).
    """
    if rules is None:
        rules = get_rules()
    if allowlist is None:
        allowlist = DEFAULT_ALLOWLIST
    active = [
        rule.id for rule in rules if not allowlisted(path, rule.id, allowlist)
    ]
    if not active:
        return []
    tree = ast.parse(source, filename=path)
    ctx = ModuleContext.build(path, tree)
    findings = run_checkers(ctx, active)
    if not findings:
        return []
    pragmas = extract_pragmas(source)
    return [f for f in findings if not pragmas.suppresses(f.line, f.rule_id)]


def iter_python_files(
    paths: Iterable[str | Path], missing: Optional[list[str]] = None
) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files.

    Entries that exist but are neither a ``.py`` file nor a directory are
    ignored; entries that do not exist at all are appended to ``missing``
    (a typo'd path must not silently lint zero files and pass CI).
    """
    out: set[Path] = set()
    for entry in paths:
        p = Path(entry)
        if p.is_file() and p.suffix == ".py":
            out.add(p)
        elif p.is_dir():
            for sub in p.rglob("*.py"):
                if not any(part in _SKIP_DIRS for part in sub.parts):
                    out.add(sub)
        elif not p.exists() and missing is not None:
            missing.append(str(p))
    return sorted(out)


def lint_paths(
    paths: Iterable[str | Path],
    rules: Optional[Sequence[Rule]] = None,
    allowlist: Optional[Mapping[str, Sequence[str]]] = None,
) -> LintResult:
    """Lint every ``.py`` file under ``paths``."""
    result = LintResult()
    missing: list[str] = []
    files = iter_python_files(paths, missing=missing)
    result.parse_errors.extend(f"{m}: path does not exist" for m in missing)
    for path in files:
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            result.parse_errors.append(f"{path}: unreadable: {exc}")
            continue
        result.files_checked += 1
        try:
            result.findings.extend(
                lint_source(source, str(path), rules=rules, allowlist=allowlist)
            )
        except SyntaxError as exc:
            result.parse_errors.append(
                f"{path}:{exc.lineno or 0}: syntax error: {exc.msg}"
            )
    result.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return result
