"""Rule registry: ids, metadata, and the default allowlist.

Every rule is a named, documented, individually suppressible check.  The
registry is the single source of truth consumed by the CLI (``--list-rules``,
``--select``/``--disable``), the reporters, and the self-tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

__all__ = ["Rule", "ALL_RULES", "RULES_BY_ID", "get_rules", "DEFAULT_ALLOWLIST"]


@dataclass(frozen=True)
class Rule:
    """One named simulator invariant enforced by the linter."""

    id: str
    name: str
    summary: str
    rationale: str = ""


ALL_RULES: tuple[Rule, ...] = (
    Rule(
        id="SIM001",
        name="wall-clock-call",
        summary=(
            "wall-clock call (time.time/monotonic/perf_counter, datetime.now) "
            "outside the realtime allowlist"
        ),
        rationale=(
            "All simulator timing is virtual; consulting the wall clock mixes "
            "interpreter jitter into OWDs that SLoPS reads at ~10 us "
            "resolution.  Only transport/realtime.py (real UDP sockets) may "
            "legitimately read the wall clock."
        ),
    ),
    Rule(
        id="SIM002",
        name="unseeded-randomness",
        summary=(
            "unseeded randomness (module-level np.random.*, bare random.*, or "
            "np.random.default_rng() without a seed)"
        ),
        rationale=(
            "Experiments must be replayable bit-for-bit from a master seed; "
            "RNGs flow in as numpy Generator parameters derived via "
            "SeedSequence.spawn (see experiments.base.spawn_seeds)."
        ),
    ),
    Rule(
        id="SIM003",
        name="virtual-time-equality",
        summary="==/!= comparison on a virtual-time expression",
        rationale=(
            "Virtual timestamps are floats accumulated through arithmetic; "
            "exact equality is representation-dependent and breaks under "
            "refactors that change evaluation order.  Compare with <=/>= or a "
            "tolerance."
        ),
    ),
    Rule(
        id="SIM004",
        name="unit-suffix-hygiene",
        summary=(
            "bandwidth unit mismatch (*_bps value fed to a *_mbps parameter "
            "or vice versa; suspicious magic bandwidth literal)"
        ),
        rationale=(
            "A bits-vs-megabits mix-up is a silent factor-1e6 error in rate "
            "logic — exactly the class of bug that corrupts PCT/PDT verdicts "
            "without crashing."
        ),
    ),
    Rule(
        id="SIM005",
        name="mutable-default-argument",
        summary="mutable default argument (list/dict/set literal or call)",
        rationale=(
            "Mutable defaults are shared across calls, so state leaks between "
            "nominally independent simulation runs."
        ),
    ),
    Rule(
        id="SIM006",
        name="never-yielding-process",
        summary="generator passed to sim.process() never yields",
        rationale=(
            "A process body with no yield runs to completion inside a single "
            "simulator step (actually: fails to be a generator at all), which "
            "silently serializes what should be concurrent activity."
        ),
    ),
    Rule(
        id="SIM007",
        name="bare-print-in-library",
        summary="bare print() in library code (CLI modules allowlisted)",
        rationale=(
            "print() output is unstructured, interleaves badly under the "
            "process-parallel sweep executor, and bypasses the repro.obs "
            "observability layer; diagnostics belong in trace events, "
            "metrics, or logging.  Only the CLI front ends and example "
            "scripts legitimately write to stdout."
        ),
    ),
    Rule(
        id="SIM008",
        name="rng-in-unordered-iteration",
        summary=(
            "RNG draw inside iteration over a set/dict (unordered iteration "
            "consumes the generator stream in hash-seed-dependent order)"
        ),
        rationale=(
            "Python set iteration order depends on the interpreter hash "
            "seed, so a loop like ``for flow in active_flows: "
            "rng.exponential(...)`` draws the same values in a different "
            "order in every process.  That silently breaks the "
            "``jobs=1 == jobs=N`` bit-equality contract of repro.parallel: "
            "each worker would replay the sweep with a differently-ordered "
            "stream even though the seed entropy is identical.  Iterate a "
            "``sorted()`` view (or a list with deterministic insertion "
            "order) wherever a draw happens per element.  Detected "
            "project-wide: the iterable is chased through assignments with "
            "the reaching-definitions walk, and draws inside called "
            "functions are found through the import-resolved call graph."
        ),
    ),
    Rule(
        id="SIM009",
        name="impure-fast-path-hook",
        summary=(
            "impure callable installed as a deliver/drop_hook/qdisc hook, "
            "or a stale fast-path decommission guard"
        ),
        rationale=(
            "The bulk cross-traffic path and the analytic stream planner "
            "are only bit-identical to per-packet simulation when link "
            "hooks are pure observers: a hook that reschedules, mutates "
            "link/simulator state, or draws RNG changes the trajectory, so "
            "installing one must decommission the fast paths (the Link "
            "property setters revoke in-flight plans and fall back).  This "
            "rule checks both sides of that contract project-wide: every "
            "hook installation site is resolved to its function body and "
            "checked for purity, and the decommission guards themselves "
            "(Link setters, plan_stream eligibility, CrossAggregator."
            "register) are cross-checked so they cannot silently go stale."
        ),
    ),
    Rule(
        id="SIM010",
        name="vectorizability-classifier",
        summary=(
            "sequential FP loop classification (VECTOR-SAFE/UNSAFE work "
            "list for the vectorized-kernels roadmap item); findings fire "
            "when a '# simlint: vector-safe' annotated loop stops "
            "classifying safe"
        ),
        rationale=(
            "Vectorizing a loop-carried float recursion is only "
            "bit-identical when the accumulation order is preserved: "
            "prefix sums, running maxima, and the Lindley max-then-add "
            "recursion (``start = max(free_at, t); free_at = start + tx``) "
            "map exactly onto np.add.accumulate / np.maximum.accumulate, "
            "which round left-to-right like the scalar chain.  Drop-tail "
            "admission branches that read the accumulator back, FIFO purge "
            "state, RNG draws, and opaque calls do not.  The classifier "
            "proves which loops are which, records the reason per loop in "
            "vectorization.json, and pins the result: a loop annotated "
            "``# simlint: vector-safe`` that regresses to VECTOR-UNSAFE "
            "fails the lint gate before the vectorization PR ever runs."
        ),
    ),
    Rule(
        id="SIM011",
        name="sweep-shared-state",
        summary=(
            "sweep task fn depends on cross-process shared state (module "
            "mutables, nested/lambda fns, environment reads) invisible to "
            "the cache key"
        ),
        rationale=(
            "run_sweep executes task fns in worker processes and caches "
            "results under a key folded from the code version, experiment, "
            "fn qualname, seed entropy, and kwargs.  Anything else the fn "
            "reads — module-level mutables, os.environ — silently bypasses "
            "the key, so cached results go stale without invalidation; "
            "anything it writes stays in the worker and never propagates "
            "back.  Lambdas and nested defs additionally break pickling by "
            "reference.  Checked at every SweepTask construction site by "
            "resolving the fn through the project call graph into its "
            "defining module."
        ),
    ),
)

RULES_BY_ID: dict[str, Rule] = {rule.id: rule for rule in ALL_RULES}

#: Paths where a rule is expected and allowed, matched as posix-path
#: suffixes; an entry ending in ``/`` allowlists a whole directory.
#: ``transport/realtime.py`` is the *only* legitimate wall-clock user: it
#: drives the sans-IO pathload controller over real UDP sockets, so wall
#: time is the quantity being measured there, not a contaminant.  The
#: SIM007 entries are the CLI front ends (printing is their job) and the
#: example scripts.
DEFAULT_ALLOWLIST: dict[str, tuple[str, ...]] = {
    "SIM001": ("repro/transport/realtime.py",),
    "SIM007": (
        "repro/cli.py",
        "repro/sweep_cli.py",
        "repro/lint/cli.py",
        "repro/obs/cli.py",
        "examples/",
        "benchmarks/",  # one-shot studies print their tables for eyeballing
    ),
}


def get_rules(
    select: Optional[Iterable[str]] = None,
    disable: Optional[Iterable[str]] = None,
) -> list[Rule]:
    """Resolve the active rule set from ``--select``/``--disable`` ids.

    Unknown ids raise ``ValueError`` so typos fail loudly.
    """

    def check(ids: Iterable[str]) -> set[str]:
        wanted = {rule_id.strip().upper() for rule_id in ids if rule_id.strip()}
        unknown = wanted - RULES_BY_ID.keys()
        if unknown:
            raise ValueError(f"unknown rule id(s): {sorted(unknown)}")
        return wanted

    active = check(select) if select else set(RULES_BY_ID)
    if disable:
        active -= check(disable)
    return [rule for rule in ALL_RULES if rule.id in active]
