"""Project-level dataflow analysis: the core under rules SIM008-SIM011.

The per-file visitors in :mod:`repro.lint.rules` deliberately see one
module at a time.  The fast-path invariants added since PR 3 cannot be
checked that way: whether a hook passed to ``Link.deliver`` is pure,
whether a sweep worker function closes over module state, or whether an
RNG draw sits under unordered iteration all require *project* knowledge —
who defines what, who imports what, and which value a name holds at a
given statement.  This module provides exactly three mechanisms, each as
small as the rules allow:

* **Module symbol tables** (:class:`ModuleTable`): per-module dotted
  names for imports, functions (including class methods, keyed by
  qualname), module-level mutable bindings, and mutation sites.
* **An import-resolved cross-module view** (:class:`ProjectContext`):
  dotted-path resolution of any ``Name``/``Attribute`` chain through
  ``import`` / ``from .. import`` aliases to the defining
  :class:`FunctionInfo` in another module, giving rules a call graph
  without whole-program type inference.
* **An intra-procedural reaching-definitions walk**
  (:class:`ReachingDefs`): a flow-sensitive forward pass over one scope
  that answers "which value expressions can ``name`` hold at this
  loop?" — how SIM008 sees through ``xs = set(...)`` and SIM010 sees
  through ``append = out.append`` bound-method aliases.

Everything here is still syntactic and runs in one pass per file: no
execution, no fixpoint iteration, no type inference.  The analysis is
*sound for the shapes this repository uses* (the naming conventions the
per-file rules already rely on), which is what a project-local linter is
for.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional, Sequence

__all__ = [
    "FunctionInfo",
    "ModuleTable",
    "ProjectContext",
    "ReachingDefs",
    "attr_chain",
    "terminal_name",
    "GENERATOR_DRAW_METHODS",
    "MUTATOR_METHODS",
    "RNG_NAME_RE",
    "is_rng_draw",
    "walk_scope",
]


# ----------------------------------------------------------------------
# Shared vocabulary
# ----------------------------------------------------------------------

#: ``numpy.random.Generator`` draw methods (plus ``SeedSequence.spawn``):
#: calling any of these consumes RNG state, so *where* the call happens in
#: iteration order is part of the determinism contract.
GENERATOR_DRAW_METHODS = frozenset({
    "random", "integers", "choice", "shuffle", "permutation", "permuted",
    "bytes", "uniform", "normal", "standard_normal", "exponential",
    "standard_exponential", "pareto", "poisson", "binomial", "lognormal",
    "gamma", "beta", "weibull", "zipf", "geometric", "triangular",
    "spawn",
})

#: Receiver names conventionally bound to an RNG in this repository.
RNG_NAME_RE = re.compile(r"(^|_)rng$|^random_state$|^seedseq$|(^|_)gen$")

#: Method calls that mutate their receiver in place.
MUTATOR_METHODS = frozenset({
    "append", "appendleft", "extend", "extendleft", "insert", "add",
    "update", "setdefault", "pop", "popleft", "popitem", "remove",
    "discard", "clear", "reverse", "sort", "__setitem__",
})

_MUTABLE_LITERALS = (
    ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp,
)
_MUTABLE_CALLS = frozenset({
    "list", "dict", "set", "bytearray", "defaultdict", "deque", "Counter",
    "OrderedDict",
})


def attr_chain(node: ast.expr) -> Optional[str]:
    """Purely syntactic dotted name of a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def terminal_name(node: ast.expr) -> Optional[str]:
    """The last identifier of a Name/Attribute chain, else None."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def is_rng_draw(node: ast.Call) -> bool:
    """True for ``<rng-named receiver>.<Generator draw method>(...)``."""
    func = node.func
    if not isinstance(func, ast.Attribute):
        return False
    if func.attr not in GENERATOR_DRAW_METHODS:
        return False
    receiver = func.value
    # Direct receiver (``rng.normal``) or one attribute hop
    # (``self.rng.normal``, ``source._rng.pareto``).
    name = terminal_name(receiver)
    return name is not None and RNG_NAME_RE.search(name) is not None


def walk_scope(node: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` restricted to one scope: nested function/class bodies
    (and lambdas) are not descended into — they are their own scopes."""
    stack: list[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        yield child
        if isinstance(
            child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
        ):
            continue
        stack.extend(ast.iter_child_nodes(child))


def _is_mutable_value(node: ast.expr) -> bool:
    if isinstance(node, _MUTABLE_LITERALS):
        return True
    if isinstance(node, ast.Call):
        name = terminal_name(node.func)
        return name in _MUTABLE_CALLS
    return False


# ----------------------------------------------------------------------
# Module symbol tables
# ----------------------------------------------------------------------


@dataclass
class FunctionInfo:
    """One function definition, addressable across the project."""

    module: str  # dotted module name ("" when underivable)
    qualname: str  # e.g. ``plan_stream`` or ``Link.sync``
    node: ast.FunctionDef | ast.AsyncFunctionDef
    path: str
    lineno: int
    is_method: bool = False

    @property
    def dotted(self) -> str:
        """``module.qualname`` — the project-wide address."""
        return f"{self.module}.{self.qualname}" if self.module else self.qualname


class ModuleTable:
    """Symbol table for one parsed module."""

    __slots__ = (
        "path",
        "name",
        "tree",
        "imports",
        "functions",
        "scopes",
        "module_mutables",
        "mutated_globals",
        "class_bases",
    )

    def __init__(self, path: str, name: str, tree: ast.Module):
        self.path = path
        self.name = name
        self.tree = tree
        #: local binding -> dotted target ("numpy" -> "numpy",
        #: "SweepTask" -> "repro.parallel.SweepTask", ...)
        self.imports: dict[str, str] = {}
        #: qualname -> FunctionInfo for module- and class-level defs (the
        #: resolvable ones; nested defs live only in ``scopes``).
        self.functions: dict[str, FunctionInfo] = {}
        #: every executable scope: ("", tree) plus (qualname, def-node)
        #: for *all* function defs, nested ones included.
        self.scopes: list[tuple[str, ast.AST]] = [("", tree)]
        #: module-level names bound to a mutable value -> first lineno
        self.module_mutables: dict[str, int] = {}
        #: names whose object is mutated anywhere in the module
        #: (``x[k] = v``, ``x.append(...)``, ``global x`` + assign)
        self.mutated_globals: set[str] = set()
        #: class qualname -> base-name chain (syntactic)
        self.class_bases: dict[str, list[str]] = {}
        self._build()

    def _package(self) -> list[str]:
        parts = self.name.split(".") if self.name else []
        if self.path.endswith("__init__.py"):
            return parts
        return parts[:-1]

    def _build(self) -> None:
        self._scan_body(self.tree.body, qual=[], in_class=False)
        self._scan_module_level()
        self._scan_mutations()

    def _scan_body(self, body: Sequence[ast.stmt], qual: list[str], in_class: bool) -> None:
        for node in body:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self.imports[alias.asname] = alias.name
                    else:
                        top = alias.name.split(".")[0]
                        self.imports[top] = top
            elif isinstance(node, ast.ImportFrom):
                base = self._import_base(node)
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    self.imports[bound] = (
                        f"{base}.{alias.name}" if base else alias.name
                    )
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = ".".join(qual + [node.name])
                self.functions[qualname] = FunctionInfo(
                    module=self.name,
                    qualname=qualname,
                    node=node,
                    path=self.path,
                    lineno=node.lineno,
                    is_method=in_class,
                )
                self._collect_scopes(node, qualname)
            elif isinstance(node, ast.ClassDef):
                qualname = ".".join(qual + [node.name])
                self.class_bases[qualname] = [
                    b for b in (attr_chain(base) for base in node.bases) if b
                ]
                self._scan_body(node.body, qual + [node.name], in_class=True)

    def _collect_scopes(self, func: ast.AST, qualname: str) -> None:
        self.scopes.append((qualname, func))
        for child in walk_scope(func):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._collect_scopes(child, f"{qualname}.<locals>.{child.name}")

    def _import_base(self, node: ast.ImportFrom) -> str:
        if node.level == 0:
            return node.module or ""
        package = self._package()
        # level 1 = current package, each extra level pops one component.
        base_parts = package[: len(package) - (node.level - 1)]
        if node.module:
            base_parts = base_parts + node.module.split(".")
        return ".".join(base_parts)

    def _scan_module_level(self) -> None:
        for node in self.tree.body:
            targets: list[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            if value is None or not _is_mutable_value(value):
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    self.module_mutables.setdefault(target.id, node.lineno)

    def _scan_mutations(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    # x[k] = v / x.attr = v mutate the object bound to x.
                    if isinstance(target, (ast.Subscript, ast.Attribute)):
                        root = target.value
                        while isinstance(root, (ast.Subscript, ast.Attribute)):
                            root = root.value
                        if isinstance(root, ast.Name):
                            self.mutated_globals.add(root.id)
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in MUTATOR_METHODS
                    and isinstance(func.value, ast.Name)
                ):
                    self.mutated_globals.add(func.value.id)
            elif isinstance(node, ast.Global):
                self.mutated_globals.update(node.names)


# ----------------------------------------------------------------------
# Project context and cross-module resolution
# ----------------------------------------------------------------------


def module_name_for_path(path: str) -> str:
    """Dotted module name derived from a file path.

    Files under a ``src`` component are importable packages
    (``src/repro/netsim/link.py`` -> ``repro.netsim.link``); anything else
    (tests, benchmarks, examples, fixtures) gets its path-derived name,
    which keeps tables unique without pretending it is importable.
    """
    norm = path.replace("\\", "/")
    parts = [p for p in norm.split("/") if p not in ("", ".")]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if "src" in parts:
        parts = parts[len(parts) - parts[::-1].index("src"):]
    else:
        # keep at most the last three components for stability
        parts = parts[-3:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


class ProjectContext:
    """All parsed modules of one lint run, with cross-module resolution.

    Built once per :func:`repro.lint.runner.lint_paths` invocation from
    the very trees the per-file pass already parsed — the project pass
    never re-reads or re-parses a file.
    """

    def __init__(self) -> None:
        self.modules: dict[str, ModuleTable] = {}
        self.by_path: dict[str, ModuleTable] = {}
        #: path -> line numbers carrying a ``# simlint: vector-safe`` marker
        self.markers: dict[str, frozenset[int]] = {}
        self._reaching: dict[tuple[str, int], ReachingDefs] = {}
        self._rng_cache: dict[tuple[str, str], bool] = {}
        self._loop_reports: Optional[list] = None

    @classmethod
    def build(cls, files: Iterable[tuple]) -> "ProjectContext":
        """``files`` yields ``(path, tree)`` or ``(path, tree, marker_lines)``
        for every lintable module; trees are the per-file pass's parses —
        the project pass never re-reads or re-parses a file."""
        project = cls()
        for entry in files:
            path, tree = entry[0], entry[1]
            table = ModuleTable(path, module_name_for_path(path), tree)
            project.modules.setdefault(table.name, table)
            project.by_path[path] = table
            if len(entry) > 2 and entry[2]:
                project.markers[path] = frozenset(entry[2])
        return project

    def loop_reports(self) -> list:
        """Cached SIM010 loop classification over the whole project."""
        if self._loop_reports is None:
            from .projectrules import classify_loops

            self._loop_reports = classify_loops(self)
        return self._loop_reports

    # -- name resolution ------------------------------------------------
    def resolve(self, table: ModuleTable, node: ast.expr) -> Optional[str]:
        """Project-wide dotted name of an expression, through imports.

        ``SweepTask`` imported via ``from ..parallel import SweepTask``
        resolves to ``repro.parallel.SweepTask``; a local module-level
        def resolves to ``<module>.<name>``; unresolvable chains return
        ``None``.
        """
        chain = attr_chain(node)
        if chain is None:
            return None
        head, _, rest = chain.partition(".")
        target = table.imports.get(head)
        if target is not None:
            return f"{target}.{rest}" if rest else target
        if head in table.functions and not rest:
            return f"{table.name}.{head}" if table.name else head
        if head in table.class_bases:
            return f"{table.name}.{chain}" if table.name else chain
        return None

    def find_function(self, dotted: Optional[str]) -> Optional[FunctionInfo]:
        """The :class:`FunctionInfo` a dotted path names, if in-project."""
        if not dotted:
            return None
        parts = dotted.split(".")
        # Try progressively shorter module prefixes: ``a.b.c.d`` may be
        # function ``d`` in module ``a.b.c`` or method ``c.d`` in ``a.b``.
        for cut in range(len(parts) - 1, 0, -1):
            module = ".".join(parts[:cut])
            table = self.modules.get(module)
            if table is None:
                continue
            qualname = ".".join(parts[cut:])
            info = table.functions.get(qualname)
            if info is not None:
                return info
        return None

    def resolve_function(
        self, table: ModuleTable, node: ast.expr
    ) -> Optional[FunctionInfo]:
        """Resolve an expression to the in-project function it names."""
        return self.find_function(self.resolve(table, node))

    # -- call graph ------------------------------------------------------
    def callees(self, info: FunctionInfo) -> list[FunctionInfo]:
        """In-project functions called (by name) from ``info``'s body."""
        table = self.modules.get(info.module)
        if table is None:
            return []
        out: list[FunctionInfo] = []
        seen: set[str] = set()
        for node in walk_scope(info.node):
            if not isinstance(node, ast.Call):
                continue
            callee = self.resolve_function(table, node.func)
            if callee is not None and callee.dotted not in seen:
                seen.add(callee.dotted)
                out.append(callee)
        return out

    def call_graph(self) -> dict[str, set[str]]:
        """Full dotted-name call graph over every module table."""
        graph: dict[str, set[str]] = {}
        for table in self.modules.values():
            for info in table.functions.values():
                graph[info.dotted] = {c.dotted for c in self.callees(info)}
        return graph

    # -- derived facts ---------------------------------------------------
    def draws_rng(self, info: FunctionInfo, depth: int = 2) -> bool:
        """True when ``info`` (or a callee, to ``depth``) draws from an RNG."""
        key = (info.dotted, info.path)
        cached = self._rng_cache.get(key)
        if cached is not None:
            return cached
        self._rng_cache[key] = False  # cycle guard
        result = False
        for node in walk_scope(info.node):
            if isinstance(node, ast.Call) and is_rng_draw(node):
                result = True
                break
        if not result and depth > 0:
            result = any(
                self.draws_rng(callee, depth - 1) for callee in self.callees(info)
            )
        self._rng_cache[key] = result
        return result

    def reaching(self, table: ModuleTable, scope: ast.AST) -> "ReachingDefs":
        """Memoized reaching-definitions walk for one scope."""
        key = (table.path, id(scope))
        walk = self._reaching.get(key)
        if walk is None:
            walk = ReachingDefs(scope)
            self._reaching[key] = walk
        return walk


# ----------------------------------------------------------------------
# Intra-procedural reaching definitions
# ----------------------------------------------------------------------

#: Sentinel candidate meaning "value statically unknown".
UNKNOWN = None


class ReachingDefs:
    """Flow-sensitive forward walk over one scope's statements.

    Records, for every ``for``/``while`` statement, the environment at
    loop entry: a map from name to the tuple of value expressions that
    may reach it (``UNKNOWN`` marks an unanalyzable candidate, e.g. a
    parameter, an augmented assignment, or a loop target).  Branches are
    walked with copied environments and merged by candidate union, so
    the result over-approximates — a rule sees every value a name *may*
    hold, never fewer.
    """

    def __init__(self, scope: ast.AST):
        self.at_loop: dict[int, dict[str, tuple]] = {}
        env: dict[str, tuple] = {}
        args = getattr(scope, "args", None)
        if args is not None:
            for a in (
                list(args.posonlyargs)
                + list(args.args)
                + list(args.kwonlyargs)
                + ([args.vararg] if args.vararg else [])
                + ([args.kwarg] if args.kwarg else [])
            ):
                env[a.arg] = (UNKNOWN,)
        body = scope.body if isinstance(scope.body, list) else [scope.body]
        self._walk(body, env)

    # -- environment plumbing -------------------------------------------
    @staticmethod
    def _merge(a: dict[str, tuple], b: dict[str, tuple]) -> dict[str, tuple]:
        out = dict(a)
        for name, cands in b.items():
            prior = out.get(name, ())
            merged = list(prior)
            for c in cands:
                if not any(c is p for p in merged):
                    merged.append(c)
            out[name] = tuple(merged)
        return out

    def _bind_target(self, target: ast.expr, value, env: dict[str, tuple]) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = (value,)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind_target(elt, UNKNOWN, env)
        elif isinstance(target, ast.Starred):
            self._bind_target(target.value, UNKNOWN, env)
        # attribute/subscript stores do not (re)bind a local name

    def _walk(self, body: Sequence[ast.stmt], env: dict[str, tuple]) -> dict[str, tuple]:
        for node in body:
            if isinstance(node, (ast.For, ast.AsyncFor)):
                self.at_loop[id(node)] = dict(env)
                self._bind_target(node.target, UNKNOWN, env)
                loop_env = self._walk(node.body, dict(env))
                env = self._merge(env, loop_env)
                env = self._walk(node.orelse, env)
            elif isinstance(node, ast.While):
                self.at_loop[id(node)] = dict(env)
                loop_env = self._walk(node.body, dict(env))
                env = self._merge(env, loop_env)
                env = self._walk(node.orelse, env)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    self._bind_target(target, node.value, env)
            elif isinstance(node, ast.AnnAssign):
                if node.value is not None:
                    self._bind_target(node.target, node.value, env)
            elif isinstance(node, ast.AugAssign):
                self._bind_target(node.target, UNKNOWN, env)
            elif isinstance(node, ast.If):
                then_env = self._walk(node.body, dict(env))
                else_env = self._walk(node.orelse, dict(env))
                env = self._merge(then_env, else_env)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if item.optional_vars is not None:
                        self._bind_target(item.optional_vars, UNKNOWN, env)
                env = self._walk(node.body, env)
            elif isinstance(node, ast.Try):
                env = self._walk(node.body, env)
                for handler in node.handlers:
                    env = self._merge(env, self._walk(handler.body, dict(env)))
                env = self._walk(node.orelse, env)
                env = self._walk(node.finalbody, env)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                env[node.name] = (UNKNOWN,)
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                for alias in node.names:
                    env[(alias.asname or alias.name).split(".")[0]] = (UNKNOWN,)
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        env.pop(target.id, None)
            # expression statements, returns, etc. bind nothing
        return env

    def env_at(self, loop: ast.stmt) -> dict[str, tuple]:
        """Environment at entry of a ``for``/``while`` recorded earlier."""
        return self.at_loop.get(id(loop), {})

    def candidates(self, loop: ast.stmt, name: str) -> tuple:
        """Value candidates for ``name`` at ``loop`` entry (may be empty)."""
        return self.env_at(loop).get(name, ())
