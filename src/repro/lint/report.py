"""Findings and the text / JSON reporters."""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Iterable

__all__ = ["Finding", "render_text", "render_json"]


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule_id: str
    path: str
    line: int
    col: int
    message: str

    def location(self) -> str:
        """``path:line:col`` (col 1-based, editor convention)."""
        return f"{self.path}:{self.line}:{self.col + 1}"


def render_text(findings: Iterable[Finding], files_checked: int = 0) -> str:
    """Compiler-style one-line-per-finding report with a summary footer."""
    findings = list(findings)
    lines = [f"{f.location()}: {f.rule_id} {f.message}" for f in findings]
    noun = "finding" if len(findings) == 1 else "findings"
    lines.append(
        f"simlint: {len(findings)} {noun} in {files_checked} file(s) checked"
    )
    return "\n".join(lines)


def render_json(findings: Iterable[Finding], files_checked: int = 0) -> str:
    """Machine-readable report (stable key order, one top-level object)."""
    findings = list(findings)
    payload = {
        "files_checked": files_checked,
        "finding_count": len(findings),
        "findings": [asdict(f) for f in findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
