"""Findings and the text / JSON / SARIF reporters."""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Iterable, Optional

__all__ = ["Finding", "render_text", "render_json", "render_sarif"]


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule_id: str
    path: str
    line: int
    col: int
    message: str

    def location(self) -> str:
        """``path:line:col`` (col 1-based, editor convention)."""
        return f"{self.path}:{self.line}:{self.col + 1}"


def render_text(findings: Iterable[Finding], files_checked: int = 0) -> str:
    """Compiler-style one-line-per-finding report with a summary footer."""
    findings = list(findings)
    lines = [f"{f.location()}: {f.rule_id} {f.message}" for f in findings]
    noun = "finding" if len(findings) == 1 else "findings"
    lines.append(
        f"simlint: {len(findings)} {noun} in {files_checked} file(s) checked"
    )
    return "\n".join(lines)


def render_json(findings: Iterable[Finding], files_checked: int = 0) -> str:
    """Machine-readable report (stable key order, one top-level object)."""
    findings = list(findings)
    payload = {
        "files_checked": files_checked,
        "finding_count": len(findings),
        "findings": [asdict(f) for f in findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _sarif_uri(path: str, root: Optional[Path]) -> str:
    """Repo-relative posix URI when ``root`` contains ``path``."""
    p = Path(path)
    if root is not None:
        try:
            p = p.resolve().relative_to(root.resolve())
        except ValueError:
            pass
    return p.as_posix()


def render_sarif(
    findings: Iterable[Finding],
    rules: Iterable = (),
    root: Optional[Path] = None,
    tool_version: str = "0",
) -> str:
    """SARIF 2.1.0 log for GitHub code scanning upload.

    ``rules`` is the active :class:`~repro.lint.registry.Rule` sequence —
    each becomes a ``reportingDescriptor`` so the code-scanning UI can
    show the rationale next to the alert.
    """
    descriptors = [
        {
            "id": rule.id,
            "name": rule.name,
            "shortDescription": {"text": rule.summary},
            "fullDescription": {"text": rule.rationale},
            "defaultConfiguration": {"level": "error"},
        }
        for rule in rules
    ]
    results = [
        {
            "ruleId": f.rule_id,
            "level": "error",
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": _sarif_uri(f.path, root),
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {
                            "startLine": max(1, f.line),
                            "startColumn": f.col + 1,
                        },
                    }
                }
            ],
        }
        for f in findings
    ]
    log = {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
            "Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": "https://example.invalid/repro-lint",
                        "version": tool_version,
                        "rules": descriptors,
                    }
                },
                "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
                "results": results,
            }
        ],
    }
    return json.dumps(log, indent=2)
