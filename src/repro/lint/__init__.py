"""``repro.lint`` — determinism & unit-correctness static analysis.

The whole reproduction rests on one substitution (see DESIGN.md): pathload's
OWD trends are only faithful because :mod:`repro.netsim` runs on a *virtual*
clock with seeded RNGs.  A stray ``time.time()`` call, an unseeded
``np.random`` draw, or a bits-vs-megabits mix-up does not crash — it silently
corrupts delay trends.  This package machine-checks those invariants so that
future refactors and performance work cannot regress correctness undetected.

Rules (each suppressible with ``# simlint: disable=SIM00x``):

========  ===============================================================
SIM001    no wall-clock calls outside the explicit allowlist
SIM002    no unseeded randomness — RNGs must flow in as ``Generator`` args
SIM003    no ``==``/``!=`` comparisons on virtual-time expressions
SIM004    unit-suffix hygiene (``*_bps`` vs ``*_mbps``; magic literals)
SIM005    no mutable default arguments
SIM006    sim ``Process`` generator functions must actually ``yield``
========  ===============================================================

Run as ``python -m repro.lint src benchmarks examples`` or via the
``repro-lint`` console script.  See ``docs/linting.md`` for the full rule
catalogue, pragma syntax, and allowlist rationale.
"""

from __future__ import annotations

from .registry import ALL_RULES, Rule, get_rules
from .report import Finding, render_json, render_text
from .runner import LintResult, lint_paths, lint_source

__all__ = [
    "ALL_RULES",
    "Rule",
    "get_rules",
    "Finding",
    "render_json",
    "render_text",
    "LintResult",
    "lint_paths",
    "lint_source",
]
