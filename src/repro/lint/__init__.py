"""``repro.lint`` — determinism & unit-correctness static analysis.

The whole reproduction rests on one substitution (see DESIGN.md): pathload's
OWD trends are only faithful because :mod:`repro.netsim` runs on a *virtual*
clock with seeded RNGs.  A stray ``time.time()`` call, an unseeded
``np.random`` draw, or a bits-vs-megabits mix-up does not crash — it silently
corrupts delay trends.  This package machine-checks those invariants so that
future refactors and performance work cannot regress correctness undetected.

Per-file rules (one module at a time, ``ModuleContext``):

========  ===============================================================
SIM001    no wall-clock calls outside the explicit allowlist
SIM002    no unseeded randomness — RNGs must flow in as ``Generator`` args
SIM003    no ``==``/``!=`` comparisons on virtual-time expressions
SIM004    unit-suffix hygiene (``*_bps`` vs ``*_mbps``; magic literals)
SIM005    no mutable default arguments
SIM006    sim ``Process`` generator functions must actually ``yield``
SIM007    no bare ``print()`` in library code
========  ===============================================================

Project-level dataflow rules (cross-module, ``ProjectContext`` — module
symbol tables, an import-resolved call graph, and a reaching-definitions
walk; see :mod:`repro.lint.dataflow`):

========  ===============================================================
SIM008    no RNG draws inside unordered (set/dict) iteration
SIM009    fast-path hooks must be pure; decommission guards must not go
          stale
SIM010    sequential FP loops classified VECTOR-SAFE/UNSAFE (the
          ``vectorization.json`` work list); annotated loops are pinned
SIM011    sweep task fns must not depend on cross-process shared state
========  ===============================================================

All rules are suppressible with ``# simlint: disable=SIM0xx`` and
gate-able behind the ``.simlint-baseline.json`` ratchet (``--strict``).
Run as ``python -m repro.lint src benchmarks examples`` or via the
``repro-lint`` console script; ``repro-lint --explain SIM010`` prints a
rule's full rationale.  See ``docs/linting.md`` for the catalogue,
pragma syntax, baseline/SARIF workflow, and allowlist rationale.
"""

from __future__ import annotations

from .baseline import apply_baseline, load_baseline, write_baseline
from .dataflow import ProjectContext
from .registry import ALL_RULES, Rule, get_rules
from .report import Finding, render_json, render_sarif, render_text
from .runner import LintResult, lint_paths, lint_source

__all__ = [
    "ALL_RULES",
    "Rule",
    "get_rules",
    "Finding",
    "render_json",
    "render_sarif",
    "render_text",
    "LintResult",
    "lint_paths",
    "lint_source",
    "ProjectContext",
    "apply_baseline",
    "load_baseline",
    "write_baseline",
]
