"""Command-line interface: ``python -m repro.lint`` / ``repro-lint``.

Exit status: 0 clean, 1 findings, 2 usage or parse errors — so CI can
distinguish "the tree violates an invariant" from "the linter could not run".

In ``--strict`` mode the exit status is computed against the baseline
ratchet (``.simlint-baseline.json``): baselined findings are tolerated
and reported, new ones fail.
"""

from __future__ import annotations

import argparse
import sys
import textwrap
from pathlib import Path
from typing import Optional, Sequence

from .baseline import (
    DEFAULT_BASELINE_NAME,
    apply_baseline,
    find_baseline,
    load_baseline,
    write_baseline,
)
from .registry import ALL_RULES, RULES_BY_ID, get_rules
from .report import render_json, render_sarif, render_text
from .runner import lint_paths

__all__ = ["main", "build_parser"]


def _tool_version() -> str:
    try:
        from importlib.metadata import version

        return version("repro")
    except Exception:
        return "0"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Determinism & unit-correctness static analysis for the "
            "repro simulator (per-file rules SIM001-SIM007, project-level "
            "dataflow rules SIM008-SIM011; see docs/linting.md)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "benchmarks", "examples"],
        help="files or directories to lint (default: src benchmarks examples)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--disable",
        metavar="IDS",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--no-allowlist",
        action="store_true",
        help="ignore the built-in file allowlist (report everything)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--explain",
        metavar="SIMxxx",
        help="print one rule's full rationale and exit",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help=(
            "gate against the baseline ratchet: findings recorded in "
            f"{DEFAULT_BASELINE_NAME} are tolerated, anything new fails"
        ),
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        type=Path,
        help=(
            "baseline file for --strict / --write-baseline (default: "
            f"nearest {DEFAULT_BASELINE_NAME} above the linted paths)"
        ),
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="record the current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--sarif-file",
        metavar="FILE",
        type=Path,
        help="additionally write a SARIF 2.1.0 log to FILE",
    )
    parser.add_argument(
        "--vectorization-report",
        metavar="FILE",
        type=Path,
        help="write the SIM010 loop classification (vectorization.json) to FILE",
    )
    return parser


def _explain(rule_id: str) -> int:
    rule = RULES_BY_ID.get(rule_id.strip().upper())
    if rule is None:
        print(
            f"error: unknown rule id {rule_id!r} "
            f"(known: {', '.join(sorted(RULES_BY_ID))})",
            file=sys.stderr,
        )
        return 2
    print(f"{rule.id} ({rule.name})")
    print(f"  {rule.summary}")
    if rule.rationale:
        print()
        print(textwrap.fill(rule.rationale, width=78, initial_indent="  ",
                            subsequent_indent="  "))
    print()
    print(f"  Suppress with: # simlint: disable={rule.id} -- <justification>")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.explain:
        return _explain(args.explain)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.id}  {rule.name}")
            print(f"    {rule.summary}")
        return 0

    try:
        rules = get_rules(
            select=args.select.split(",") if args.select else None,
            disable=args.disable.split(",") if args.disable else None,
        )
    except ValueError as exc:
        parser.error(str(exc))  # exits 2

    allowlist = {} if args.no_allowlist else None
    result = lint_paths(args.paths, rules=rules, allowlist=allowlist)

    lint_root = Path.cwd()
    if args.sarif_file is not None:
        args.sarif_file.parent.mkdir(parents=True, exist_ok=True)
        args.sarif_file.write_text(
            render_sarif(
                result.findings, rules, root=lint_root, tool_version=_tool_version()
            )
            + "\n"
        )
    if args.vectorization_report is not None:
        import json as _json

        args.vectorization_report.parent.mkdir(parents=True, exist_ok=True)
        args.vectorization_report.write_text(
            _json.dumps(result.vectorization_payload(), indent=2) + "\n"
        )

    if args.write_baseline:
        target = args.baseline or Path(DEFAULT_BASELINE_NAME)
        entries = write_baseline(target, result.findings)
        print(
            f"simlint: wrote baseline with {entries} entr"
            f"{'y' if entries == 1 else 'ies'} "
            f"({len(result.findings)} finding(s)) to {target}"
        )
        for error in result.parse_errors:
            print(f"error: {error}", file=sys.stderr)
        return 2 if result.parse_errors else 0

    display = result.findings
    gate = result.findings
    baselined_count = 0
    stale = []
    if args.strict:
        baseline_path = find_baseline(
            [Path(p) for p in args.paths], args.baseline
        )
        baseline = load_baseline(baseline_path) if baseline_path else {}
        split = apply_baseline(result.findings, baseline)
        gate = split.new
        display = split.new
        baselined_count = len(split.baselined)
        stale = split.stale

    if args.format == "json":
        print(render_json(display, result.files_checked))
    elif args.format == "sarif":
        print(
            render_sarif(
                display, rules, root=lint_root, tool_version=_tool_version()
            )
        )
    else:
        print(render_text(display, result.files_checked))
        if args.strict and baselined_count:
            print(f"simlint: {baselined_count} baselined finding(s) tolerated")
    for entry in stale:
        print(
            "warning: stale baseline entry (fix landed - remove it): "
            f"{entry['path']}: {entry['rule_id']} {entry['message']!r}",
            file=sys.stderr,
        )
    for error in result.parse_errors:
        print(f"error: {error}", file=sys.stderr)

    if result.parse_errors:
        return 2
    return 0 if not gate else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
