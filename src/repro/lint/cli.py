"""Command-line interface: ``python -m repro.lint`` / ``repro-lint``.

Exit status: 0 clean, 1 findings, 2 usage or parse errors — so CI can
distinguish "the tree violates an invariant" from "the linter could not run".
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .registry import ALL_RULES, get_rules
from .report import render_json, render_text
from .runner import lint_paths

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Determinism & unit-correctness static analysis for the "
            "repro simulator (rules SIM001-SIM006; see docs/linting.md)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "benchmarks", "examples"],
        help="files or directories to lint (default: src benchmarks examples)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--disable",
        metavar="IDS",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--no-allowlist",
        action="store_true",
        help="ignore the built-in file allowlist (report everything)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.id}  {rule.name}")
            print(f"    {rule.summary}")
        return 0

    try:
        rules = get_rules(
            select=args.select.split(",") if args.select else None,
            disable=args.disable.split(",") if args.disable else None,
        )
    except ValueError as exc:
        parser.error(str(exc))  # exits 2

    allowlist = {} if args.no_allowlist else None
    result = lint_paths(args.paths, rules=rules, allowlist=allowlist)

    if args.format == "json":
        print(render_json(result.findings, result.files_checked))
    else:
        print(render_text(result.findings, result.files_checked))
    for error in result.parse_errors:
        print(f"error: {error}", file=sys.stderr)

    if result.parse_errors:
        return 2
    return 0 if not result.findings else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
