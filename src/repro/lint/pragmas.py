"""Suppression pragmas and allowlist matching.

Two suppression mechanisms, by design both *visible in the diff*:

* an inline pragma on the offending line::

      t0 = time.perf_counter()  # simlint: disable=SIM001 -- measuring wall cost

  ``disable=`` takes a comma-separated rule list; a bare
  ``# simlint: disable`` suppresses every rule on that line.  Everything
  after ``--`` is a free-form justification (encouraged, not parsed).

* the allowlist (:data:`repro.lint.registry.DEFAULT_ALLOWLIST`): whole files
  where a rule is structurally expected, matched as posix-path suffixes.

Pragmas are extracted with :mod:`tokenize` so strings containing
``# simlint:`` text are never misread as suppressions.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from pathlib import PurePosixPath
from typing import Mapping, Optional, Sequence

__all__ = [
    "PragmaIndex",
    "extract_pragmas",
    "extract_markers",
    "allowlisted",
]

_PRAGMA_RE = re.compile(
    r"#\s*simlint\s*:\s*disable(?:\s*=\s*(?P<rules>[A-Za-z0-9_,\s]+?))?\s*(?:--|$)"
)

#: Loop annotation consumed by SIM010: the author asserts this loop must
#: classify VECTOR-SAFE, and the linter holds them to it.
_MARKER_RE = re.compile(r"#\s*simlint\s*:\s*vector-safe\b")

#: Sentinel meaning "all rules suppressed on this line".
ALL_RULES_SENTINEL = "*"


class PragmaIndex:
    """Per-line suppression lookup for one source file."""

    def __init__(self, by_line: Mapping[int, frozenset[str]]):
        self._by_line = dict(by_line)

    def suppresses(self, line: int, rule_id: str) -> bool:
        """True if ``rule_id`` is pragma-disabled on ``line`` (1-based)."""
        rules = self._by_line.get(line)
        if rules is None:
            return False
        return ALL_RULES_SENTINEL in rules or rule_id in rules

    def __len__(self) -> int:  # pragma: no cover - debugging aid
        return len(self._by_line)


def _statement_spans(tree: ast.Module) -> list[tuple[int, int]]:
    """``(first_line, last_line)`` for every multi-line statement header.

    For simple statements (a wrapped call, a multi-line assignment) the
    span is the whole statement.  For compound statements (a decorated
    def, a ``with``/``for`` header) it is the header only — decorators
    and signature down to the line before the body — so a pragma on the
    first line never blankets the entire body.
    """
    spans: list[tuple[int, int]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt):
            continue
        body = getattr(node, "body", None)
        if isinstance(body, list) and body and isinstance(body[0], ast.stmt):
            first = node.lineno
            decorators = getattr(node, "decorator_list", None) or []
            for deco in decorators:
                first = min(first, deco.lineno)
            last = max(first, body[0].lineno - 1)
        else:
            first = node.lineno
            last = getattr(node, "end_lineno", node.lineno) or node.lineno
        if last > first:
            spans.append((first, last))
    return spans


def extract_pragmas(source: str, tree: Optional[ast.Module] = None) -> PragmaIndex:
    """Scan ``source`` for ``# simlint: disable[=...]`` comments.

    With ``tree`` given, a pragma sitting on the *first* line of a
    multi-line statement (the decorator line of a decorated def, the
    opening line of a wrapped call) is expanded over that statement's
    span, so findings reported at inner lines are still suppressed.

    Tolerates files :mod:`tokenize` cannot process (the caller will already
    have failed to parse them for the AST pass anyway).
    """
    by_line: dict[int, frozenset[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _PRAGMA_RE.search(tok.string)
            if not match:
                continue
            spec = match.group("rules")
            if spec is None:
                rules = frozenset({ALL_RULES_SENTINEL})
            else:
                rules = frozenset(
                    rule.strip().upper() for rule in spec.split(",") if rule.strip()
                )
            if rules:
                by_line[tok.start[0]] = by_line.get(tok.start[0], frozenset()) | rules
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass
    if tree is not None and by_line:
        for first, last in _statement_spans(tree):
            rules = by_line.get(first)
            if rules is None:
                continue
            for line in range(first + 1, last + 1):
                by_line[line] = by_line.get(line, frozenset()) | rules
    return PragmaIndex(by_line)


def extract_markers(source: str) -> frozenset[int]:
    """Loop lines governed by a ``# simlint: vector-safe`` annotation.

    An inline marker governs its own line; a marker on a comment-only
    line governs the next line (the loop header below it).
    """
    lines: set[int] = set()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type == tokenize.COMMENT and _MARKER_RE.search(tok.string):
                own_line = tok.line.strip().startswith("#")
                lines.add(tok.start[0] + 1 if own_line else tok.start[0])
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass
    return frozenset(lines)


def allowlisted(
    path: str, rule_id: str, allowlist: Mapping[str, Sequence[str]]
) -> bool:
    """True if ``path`` matches an allowlist entry for ``rule_id``.

    Entries are posix-path suffixes; an entry ending in ``/`` matches any
    file under a directory of that (relative) name, so ``examples/``
    allowlists the whole examples tree wherever the repo is checked out.
    """
    suffixes = allowlist.get(rule_id)
    if not suffixes:
        return False
    posix = PurePosixPath(str(path).replace("\\", "/")).as_posix()
    anchored = "/" + posix
    for suffix in suffixes:
        if suffix.endswith("/"):
            if ("/" + suffix) in anchored or posix.startswith(suffix):
                return True
        elif posix.endswith(suffix):
            return True
    return False
