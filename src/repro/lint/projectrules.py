"""Project-level rules SIM008-SIM011, built on :mod:`repro.lint.dataflow`.

These rules need more than one file's AST: SIM008 chases a loop iterable
back to its defining expression, SIM009 resolves hook callables across
modules and cross-checks the fast-path decommission guards, SIM010
classifies whole loop bodies, and SIM011 follows sweep worker functions
from the :class:`~repro.parallel.SweepTask` construction site into their
defining module.  Each checker implements ``check(project) ->
Iterator[Finding]`` against a :class:`~repro.lint.dataflow.ProjectContext`
and is registered in :data:`PROJECT_CHECKERS`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, Optional

from .dataflow import (
    GENERATOR_DRAW_METHODS,
    MUTATOR_METHODS,
    FunctionInfo,
    ModuleTable,
    ProjectContext,
    attr_chain,
    is_rng_draw,
    terminal_name,
    walk_scope,
)
from .report import Finding

__all__ = [
    "PROJECT_CHECKERS",
    "PROJECT_RULE_IDS",
    "run_project_checkers",
    "classify_loops",
    "LoopReport",
]


# ----------------------------------------------------------------------
# SIM008 — RNG consumption inside unordered iteration
# ----------------------------------------------------------------------

_ORDERING_WRAPPERS = frozenset({"sorted", "list", "tuple", "min", "max", "sum"})
_SET_CALLS = frozenset({"set", "frozenset"})
_SET_METHODS = frozenset({
    "union", "intersection", "difference", "symmetric_difference", "copy",
})
_DICT_VIEW_METHODS = frozenset({"keys", "values", "items"})


def _unordered_reason(expr: ast.expr, env: dict) -> Optional[str]:
    """Why iterating ``expr`` has no stable order, or None if it does."""
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return "a set literal/comprehension"
    if isinstance(expr, (ast.Dict, ast.DictComp)):
        return "a dict literal (order depends on insertion/deletion history)"
    if isinstance(expr, ast.Call):
        func = expr.func
        if isinstance(func, ast.Name):
            if func.id in _SET_CALLS:
                return f"{func.id}(...)"
            if func.id in _ORDERING_WRAPPERS:
                return None  # explicit ordering — the sanctioned fix
        if isinstance(func, ast.Attribute):
            if func.attr in _SET_METHODS and _unordered_reason(func.value, env):
                return f"a set .{func.attr}() result"
            if func.attr in _DICT_VIEW_METHODS:
                return f"a dict .{func.attr}() view"
    if isinstance(expr, ast.Name):
        for cand in env.get(expr.id, ()):
            if cand is None:
                continue
            reason = _unordered_reason(cand, {})
            if reason is not None:
                return f"{expr.id!r} = {reason}"
    return None


def _rng_draw_in(
    nodes, project: ProjectContext, table: ModuleTable
) -> Optional[tuple[int, str]]:
    """(line, what) of the first RNG consumption found under ``nodes``."""
    for root in nodes:
        for node in ast.walk(root):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            if not isinstance(node, ast.Call):
                continue
            if is_rng_draw(node):
                chain = attr_chain(node.func) or "rng draw"
                return node.lineno, f"{chain}()"
            callee = project.resolve_function(table, node.func)
            if callee is not None and project.draws_rng(callee):
                return node.lineno, f"{callee.dotted}() (draws transitively)"
    return None


class RngUnorderedIterationChecker:
    """SIM008: an RNG draw whose iteration count/order comes from a set or
    dict walks the generator stream in container order.  Set order depends
    on the interpreter hash seed, so two processes given the same seed
    entropy draw *different* streams — which silently breaks the
    ``jobs=1 == jobs=N`` bit-equality contract of :mod:`repro.parallel`.
    """

    rule_id = "SIM008"

    def check(self, project: ProjectContext) -> Iterator[Finding]:
        for table in project.modules.values():
            for qualname, scope in table.scopes:
                yield from self._check_scope(project, table, scope)

    def _check_scope(self, project, table, scope) -> Iterator[Finding]:
        reaching = project.reaching(table, scope)
        for node in walk_scope(scope):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                env = reaching.env_at(node)
                reason = _unordered_reason(node.iter, env)
                if reason is None:
                    continue
                hit = _rng_draw_in(node.body, project, table)
                if hit is None:
                    continue
                line, what = hit
                yield self._finding(table, node, reason, line, what)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                # comprehension sources are literal enough: no env chasing
                reason = _unordered_reason(node.generators[0].iter, {})
                if reason is None:
                    continue
                hit = _rng_draw_in([node], project, table)
                if hit is None:
                    continue
                line, what = hit
                yield self._finding(table, node, reason, line, what)

    def _finding(self, table, node, reason, line, what) -> Finding:
        return Finding(
            rule_id=self.rule_id,
            path=table.path,
            line=node.lineno,
            col=node.col_offset,
            message=(
                f"RNG consumption ({what} at line {line}) inside iteration "
                f"over {reason} — unordered iteration order is "
                "hash-seed-dependent, so the generator stream is consumed in "
                "unstable order and the jobs=1 == jobs=N bit-equality "
                "contract of repro.parallel breaks; iterate a sorted() view"
            ),
        )


# ----------------------------------------------------------------------
# SIM009 — hook purity for fast-path eligibility
# ----------------------------------------------------------------------

_HOOK_ATTRS = frozenset({"deliver", "drop_hook", "qdisc"})
_PRIVATE_HOOK_ATTRS = frozenset({"_deliver", "_drop_hook", "_qdisc"})
_LINK_MODULE = "repro.netsim.link"
_STREAMTRANSIT_MODULE = "repro.netsim.streamtransit"
_BULKARRIVALS_MODULE = "repro.netsim.bulkarrivals"

#: Simulator / link state movers: a hook calling any of these reschedules
#: or re-enters the data path from inside the data path.
_STATE_MOVER_METHODS = frozenset({
    "schedule", "schedule_at", "process", "send", "inject_at",
    "send_forward", "send_reverse", "claim_per_packet", "release_per_packet",
    "interrupt", "decommission", "_decommission", "sync", "revoke",
})


@dataclass
class _Impurity:
    line: int
    why: str


def _hook_impurity(
    body_nodes, project: ProjectContext, table: ModuleTable
) -> Optional[_Impurity]:
    """First impure operation in a hook body, or None when pure.

    Pure observers (reading state, appending to a results list) are
    allowed; mutating link/simulator state, rescheduling, or drawing RNG
    from inside a hook is flagged.
    """
    for root in body_nodes:
        for node in ast.walk(root):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if isinstance(node, ast.Call):
                if is_rng_draw(node):
                    return _Impurity(node.lineno, "draws from an RNG")
                func = node.func
                if isinstance(func, ast.Attribute) and func.attr in _STATE_MOVER_METHODS:
                    return _Impurity(
                        node.lineno, f"calls state-mover .{func.attr}()"
                    )
                callee = project.resolve_function(table, func)
                if callee is not None and project.draws_rng(callee):
                    return _Impurity(
                        node.lineno, f"calls {callee.dotted}() which draws RNG"
                    )
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Attribute):
                        chain = attr_chain(target) or target.attr
                        return _Impurity(
                            node.lineno, f"assigns attribute {chain!r}"
                        )
            elif isinstance(node, (ast.Global, ast.Nonlocal)):
                return _Impurity(node.lineno, "rebinds enclosing-scope state")
    return None


class HookPurityChecker:
    """SIM009: callables installed as ``deliver``/``drop_hook``/``qdisc``
    must be pure observers, and the decommission guards that make impure
    configurations fall back to the per-packet path must stay in place.
    """

    rule_id = "SIM009"

    def check(self, project: ProjectContext) -> Iterator[Finding]:
        for table in project.modules.values():
            yield from self._check_installs(project, table)
        yield from self._check_guards(project)

    # -- hook installation sites ----------------------------------------
    def _check_installs(self, project, table) -> Iterator[Finding]:
        for node in ast.walk(table.tree):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if not isinstance(target, ast.Attribute):
                        continue
                    if target.attr in _PRIVATE_HOOK_ATTRS:
                        if table.name != _LINK_MODULE:
                            yield Finding(
                                rule_id=self.rule_id,
                                path=table.path,
                                line=node.lineno,
                                col=node.col_offset,
                                message=(
                                    f"direct install of private hook "
                                    f"{target.attr!r} bypasses the Link "
                                    "property setter, so the bulk/stream "
                                    "fast paths are never decommissioned — "
                                    "assign the public "
                                    f"{target.attr.lstrip('_')!r} property"
                                ),
                            )
                    elif target.attr in _HOOK_ATTRS:
                        yield from self._check_value(
                            project, table, node.value, target.attr, node
                        )
            elif isinstance(node, ast.Call):
                for kw in node.keywords:
                    if kw.arg in _HOOK_ATTRS:
                        yield from self._check_value(
                            project, table, kw.value, kw.arg, kw.value
                        )

    def _check_value(self, project, table, value, hook, at) -> Iterator[Finding]:
        name: str
        if isinstance(value, ast.Lambda):
            impurity = _hook_impurity([value.body], project, table)
            name = "<lambda>"
        else:
            info = project.resolve_function(table, value)
            if info is None:
                return
            impurity = _hook_impurity(
                info.node.body, project, project.modules.get(info.module, table)
            )
            name = info.qualname
        if impurity is None:
            return
        yield Finding(
            rule_id=self.rule_id,
            path=table.path,
            line=at.lineno,
            col=at.col_offset,
            message=(
                f"impure hook {name!r} installed as {hook!r} "
                f"({impurity.why} at line {impurity.line}) — hooks must be "
                "pure observers: impure hooks forfeit the event-elided fast "
                "paths, and an RNG draw inside one corrupts stream order "
                "under mid-flight revocation replay"
            ),
        )

    # -- decommission-guard staleness cross-check ------------------------
    def _check_guards(self, project) -> Iterator[Finding]:
        link = project.modules.get(_LINK_MODULE)
        if link is not None:
            for hook in sorted(_HOOK_ATTRS):
                info = link.functions.get(f"Link.{hook}")
                setter = self._find_setter(link, hook)
                if setter is None:
                    continue  # property removed entirely: nothing to guard
                body_calls = {
                    n.func.attr if isinstance(n.func, ast.Attribute) else None
                    for n in ast.walk(setter.node)
                    if isinstance(n, ast.Call)
                }
                missing = [
                    want
                    for want in ("_decommission", "revoke")
                    if want not in body_calls
                ]
                if missing:
                    yield Finding(
                        rule_id=self.rule_id,
                        path=link.path,
                        line=setter.lineno,
                        col=0,
                        message=(
                            f"Link.{hook} setter no longer calls "
                            f"{' / '.join(missing)} — installing a hook must "
                            "decommission the bulk path and revoke any "
                            "in-flight stream plan, or the fast-path "
                            "eligibility tables go silently stale"
                        ),
                    )
        stream = project.modules.get(_STREAMTRANSIT_MODULE)
        if stream is not None:
            plan = stream.functions.get("plan_stream")
            if plan is not None:
                attrs = {
                    n.attr for n in ast.walk(plan.node) if isinstance(n, ast.Attribute)
                }
                missing = sorted(_PRIVATE_HOOK_ATTRS - attrs)
                if missing:
                    yield Finding(
                        rule_id=self.rule_id,
                        path=stream.path,
                        line=plan.lineno,
                        col=0,
                        message=(
                            "plan_stream() eligibility check no longer "
                            f"consults {', '.join(missing)} — a hooked link "
                            "would be planned analytically and the hook "
                            "callbacks silently skipped"
                        ),
                    )
        bulk = project.modules.get(_BULKARRIVALS_MODULE)
        if bulk is not None:
            register = bulk.functions.get("CrossAggregator.register")
            if register is not None:
                calls = {
                    n.func.attr
                    for n in ast.walk(register.node)
                    if isinstance(n, ast.Call) and isinstance(n.func, ast.Attribute)
                }
                if "revoke" not in calls:
                    yield Finding(
                        rule_id=self.rule_id,
                        path=bulk.path,
                        line=register.lineno,
                        col=0,
                        message=(
                            "CrossAggregator.register() no longer revokes an "
                            "installed stream plan — a source registered "
                            "mid-stream would invalidate the planned transit "
                            "without falling back to per-packet"
                        ),
                    )

    @staticmethod
    def _find_setter(table: ModuleTable, hook: str) -> Optional[FunctionInfo]:
        for qualname, info in table.functions.items():
            if not qualname.endswith(f".{hook}") and qualname != hook:
                continue
            for deco in info.node.decorator_list:
                if isinstance(deco, ast.Attribute) and deco.attr == "setter":
                    return info
        return None


# ----------------------------------------------------------------------
# SIM010 — vectorizability classifier for sequential FP loops
# ----------------------------------------------------------------------

_PURE_BUILTINS = frozenset({
    "len", "min", "max", "abs", "float", "int", "bool", "range", "round",
    "enumerate", "zip", "isinstance", "sum", "sorted", "reversed", "repr",
    "bisect_left", "bisect_right", "bisect", "divmod",
})

_ARITH_OPS = (ast.Add, ast.Sub, ast.Mult, ast.Div, ast.FloorDiv, ast.Mod, ast.Pow)


@dataclass
class LoopReport:
    """Classification of one sequential loop for the vectorization work list."""

    module: str
    function: str
    path: str
    line: int
    end_line: int
    kind: str  # "for" | "while"
    label: str  # "VECTOR-SAFE" | "VECTOR-UNSAFE"
    reasons: list[str] = field(default_factory=list)
    accumulators: dict[str, str] = field(default_factory=dict)
    annotated: bool = False
    #: The enclosing scope dispatches to ``netsim.kernels`` (or the loop
    #: lives inside that module): a sanctioned vectorized twin exists, so
    #: the loop is the fallback half of a kernel pair, not an open
    #: vectorization opportunity.
    kernelized: bool = False

    def to_dict(self) -> dict:
        return {
            "module": self.module,
            "function": self.function,
            "path": self.path,
            "line": self.line,
            "end_line": self.end_line,
            "kind": self.kind,
            "label": self.label,
            "reasons": list(self.reasons),
            "accumulators": dict(self.accumulators),
            "annotated": self.annotated,
            "kernelized": self.kernelized,
        }


class _LoopScan:
    """One textual-order pass over a loop body collecting dataflow facts."""

    def __init__(self, loop: ast.stmt, env: dict):
        self.loop = loop
        self.env = env
        self.first_read: set[str] = set()
        self.written: set[str] = set()
        #: name -> [(rhs expr | None for aug, guarded, aug_op)]
        self.writes: dict[str, list[tuple[Optional[ast.expr], bool, Optional[ast.AST]]]] = {}
        #: name -> assigned RHS exprs (for shape chasing)
        self.body_defs: dict[str, list[ast.expr]] = {}
        #: reads of a name outside its own update statement
        self.reads_elsewhere: set[str] = set()
        self.containers_written: set[str] = set()
        self.containers_read: set[str] = set()
        self.predicates: list[ast.expr] = []
        self.break_guards: list[list[ast.expr]] = []
        self.opaque_calls: list[ast.Call] = []
        self.rng_calls: list[ast.Call] = []
        self.loop_targets: set[str] = set()
        if isinstance(loop, ast.For):
            self._collect_targets(loop.target)
            self._read_expr(loop.iter, exclude=set())
        else:
            self.predicates.append(loop.test)
            self._read_expr(loop.test, exclude=set())
        self._scan(loop.body, guards=[])

    # -- helpers ---------------------------------------------------------
    def _collect_targets(self, target: ast.expr) -> None:
        for node in ast.walk(target):
            if isinstance(node, ast.Name):
                self.loop_targets.add(node.id)
                self.written.add(node.id)

    def _alias_container(self, name: str) -> Optional[str]:
        """Container behind a bound-method alias (``a = xs.append``)."""
        cands = [c for c in self.env.get(name, ()) if c is not None]
        cands += self.body_defs.get(name, [])
        out: Optional[str] = None
        for cand in cands:
            if (
                isinstance(cand, ast.Attribute)
                and cand.attr in MUTATOR_METHODS
                and isinstance(cand.value, ast.Name)
            ):
                out = cand.value.id
            else:
                return None
        return out

    def _read_expr(self, expr: Optional[ast.expr], exclude: set[str]) -> None:
        if expr is None:
            return
        for node in ast.walk(expr):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                if node.id not in self.written:
                    self.first_read.add(node.id)
                if node.id not in exclude:
                    self.reads_elsewhere.add(node.id)
                if node.id in self.containers_written:
                    self.containers_read.add(node.id)

    def _note_call(self, node: ast.Call) -> None:
        if is_rng_draw(node):
            self.rng_calls.append(node)
            return
        func = node.func
        if isinstance(func, ast.Attribute):
            if func.attr in MUTATOR_METHODS and isinstance(func.value, ast.Name):
                self.containers_written.add(func.value.id)
                return
            self.opaque_calls.append(node)
            return
        if isinstance(func, ast.Name):
            if func.id in _PURE_BUILTINS:
                return
            container = self._alias_container(func.id)
            if container is not None:
                self.containers_written.add(container)
                return
            self.opaque_calls.append(node)
            return
        self.opaque_calls.append(node)

    # -- the scan --------------------------------------------------------
    def _scan(self, stmts, guards: list[ast.expr]) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                value = stmt.value
                targets = (
                    stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
                )
                names = [t.id for t in targets if isinstance(t, ast.Name)]
                self._scan_calls(value)
                self._read_expr(value, exclude=set(names))
                for target in targets:
                    if isinstance(target, ast.Name):
                        if value is not None:
                            self.writes.setdefault(target.id, []).append(
                                (value, bool(guards), None)
                            )
                            self.body_defs.setdefault(target.id, []).append(value)
                        self.written.add(target.id)
                    elif isinstance(target, (ast.Tuple, ast.List)):
                        for node in ast.walk(target):
                            if isinstance(node, ast.Name):
                                self.written.add(node.id)
                                self.writes.setdefault(node.id, []).append(
                                    (None, bool(guards), None)
                                )
                    elif isinstance(target, (ast.Subscript, ast.Attribute)):
                        root = target
                        while isinstance(root, (ast.Subscript, ast.Attribute)):
                            root = root.value
                        if isinstance(root, ast.Name):
                            self.containers_written.add(root.id)
                        self._read_expr(target, exclude=set())
            elif isinstance(stmt, ast.AugAssign):
                self._scan_calls(stmt.value)
                if isinstance(stmt.target, ast.Name):
                    name = stmt.target.id
                    if name not in self.written:
                        self.first_read.add(name)
                    self._read_expr(stmt.value, exclude={name})
                    self.written.add(name)
                    self.writes.setdefault(name, []).append(
                        (stmt.value, bool(guards), stmt.op)
                    )
                else:
                    self._read_expr(stmt.value, exclude=set())
                    self._read_expr(stmt.target, exclude=set())
                    root = stmt.target
                    while isinstance(root, (ast.Subscript, ast.Attribute)):
                        root = root.value
                    if isinstance(root, ast.Name):
                        self.containers_written.add(root.id)
            elif isinstance(stmt, ast.If):
                self.predicates.append(stmt.test)
                self._scan_calls(stmt.test)
                self._read_expr(stmt.test, exclude=set())
                self._scan(stmt.body, guards + [stmt.test])
                self._scan(stmt.orelse, guards + [stmt.test])
            elif isinstance(stmt, (ast.While,)):
                self.predicates.append(stmt.test)
                self._scan_calls(stmt.test)
                self._read_expr(stmt.test, exclude=set())
                self._scan(stmt.body, guards)
                self._scan(stmt.orelse, guards)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._scan_calls(stmt.iter)
                self._read_expr(stmt.iter, exclude=set())
                self._collect_targets(stmt.target)
                self._scan(stmt.body, guards)
                self._scan(stmt.orelse, guards)
            elif isinstance(stmt, ast.Expr):
                self._scan_calls(stmt.value)
                self._read_expr_skip_mutators(stmt.value)
            elif isinstance(stmt, ast.Break):
                self.break_guards.append(list(guards))
            elif isinstance(stmt, ast.Continue):
                pass
            elif isinstance(stmt, (ast.Return, ast.Raise)):
                if getattr(stmt, "value", None) is not None:
                    self._scan_calls(stmt.value)
                    self._read_expr(stmt.value, exclude=set())
                if getattr(stmt, "exc", None) is not None:
                    self._scan_calls(stmt.exc)
                    self._read_expr(stmt.exc, exclude=set())
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                self.written.add(stmt.name)
            else:
                for node in ast.walk(stmt):
                    if isinstance(node, ast.Call):
                        self._note_call(node)
                    elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                        self._read_expr(node, exclude=set())

    def _scan_calls(self, expr: Optional[ast.expr]) -> None:
        if expr is None:
            return
        for node in ast.walk(expr):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            if isinstance(node, ast.Call):
                self._note_call(node)

    def _read_expr_skip_mutators(self, expr: ast.expr) -> None:
        """Reads of an expression statement, ignoring mutator receivers
        (``xs.append(v)`` reads ``v`` but does not *read* ``xs``)."""
        skip: set[int] = set()
        for node in ast.walk(expr):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in MUTATOR_METHODS
                and isinstance(node.func.value, ast.Name)
            ):
                skip.add(id(node.func.value))
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                if self._alias_container(node.func.id) is not None:
                    skip.add(id(node.func))
        for node in ast.walk(expr):
            if (
                isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
                and id(node) not in skip
            ):
                if node.id not in self.written:
                    self.first_read.add(node.id)
                self.reads_elsewhere.add(node.id)
                if node.id in self.containers_written:
                    self.containers_read.add(node.id)


# shape codes for accumulator updates
_V, _A, _MA, _AV, _MAV, _OTHER = "V", "A", "MA", "A+V", "MA+V", "?"


def _shape(expr: ast.expr, acc: str, defs: dict, visiting: set[str]) -> str:
    """Shape of ``expr`` relative to accumulator ``acc``.

    ``V``: no dependence on acc; ``A``: exactly acc's previous value;
    ``MA``: max(acc, value); ``A+V`` / ``MA+V``: that plus/minus a value —
    the prefix-sum and Lindley shapes; ``?``: anything else.
    """
    if isinstance(expr, ast.Name):
        if expr.id == acc:
            return _A
        if expr.id in visiting:
            return _OTHER
        rhs_list = defs.get(expr.id)
        if rhs_list:
            shapes = {
                _shape(rhs, acc, defs, visiting | {expr.id}) for rhs in rhs_list
            }
            return shapes.pop() if len(shapes) == 1 else _OTHER
        return _V
    if isinstance(expr, ast.Constant):
        return _V
    if isinstance(expr, ast.BinOp) and isinstance(expr.op, _ARITH_OPS):
        left = _shape(expr.left, acc, defs, visiting)
        right = _shape(expr.right, acc, defs, visiting)
        if left == _V and right == _V:
            return _V
        if isinstance(expr.op, (ast.Add, ast.Sub)):
            pair = {left, right}
            if pair == {_A, _V} or pair == {_A}:
                return _AV
            if pair == {_MA, _V} or pair == {_MA}:
                return _MAV
        return _OTHER
    if isinstance(expr, ast.IfExp):
        body = _shape(expr.body, acc, defs, visiting)
        orelse = _shape(expr.orelse, acc, defs, visiting)
        test_ok = (
            isinstance(expr.test, ast.Compare)
            and len(expr.test.ops) == 1
            and isinstance(expr.test.ops[0], (ast.Gt, ast.GtE, ast.Lt, ast.LtE))
        )
        if test_ok and {body, orelse} == {_A, _V}:
            return _MA  # ``acc if acc > t else t`` — the running-max select
        if body == orelse == _V:
            return _V
        return _OTHER
    if isinstance(expr, ast.Call):
        func = expr.func
        if isinstance(func, ast.Name) and func.id in ("max", "min") and len(expr.args) == 2:
            shapes = {_shape(a, acc, defs, visiting) for a in expr.args}
            if shapes == {_A, _V}:
                return _MA
            if shapes == {_V}:
                return _V
        if isinstance(func, ast.Name) and func.id in _PURE_BUILTINS:
            inner = {_shape(a, acc, defs, visiting) for a in expr.args}
            if inner <= {_V}:
                return _V
        return _OTHER
    if isinstance(expr, (ast.Subscript, ast.Attribute)):
        for node in ast.walk(expr):
            if isinstance(node, ast.Name) and (node.id == acc or node.id in visiting):
                return _OTHER
        return _V
    if isinstance(expr, (ast.Tuple, ast.List)):
        shapes = {_shape(e, acc, defs, visiting) for e in expr.elts}
        return _V if shapes <= {_V} else _OTHER
    if isinstance(expr, ast.UnaryOp):
        return _shape(expr.operand, acc, defs, visiting)
    if isinstance(expr, ast.Compare):
        for node in ast.walk(expr):
            if isinstance(node, ast.Name) and node.id == acc:
                return _OTHER
        return _V
    return _OTHER


def _is_int_step(value: Optional[ast.expr]) -> bool:
    return (
        isinstance(value, ast.Constant)
        and isinstance(value.value, int)
        and not isinstance(value.value, bool)
    )


def _names_in(expr: ast.expr) -> set[str]:
    return {
        n.id
        for n in ast.walk(expr)
        if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Load)
    }


def _classify_loop(
    loop: ast.stmt, env: dict, table: ModuleTable, qualname: str
) -> Optional[LoopReport]:
    """Classify one outermost loop; None when it is not an FP-recursion loop."""
    scan = _LoopScan(loop, env)
    carried = scan.first_read & scan.written

    # counters: every write is ``n (+|-)= <int literal>``
    counters: set[str] = set()
    for name in carried:
        writes = scan.writes.get(name, [])
        if writes and all(
            op is not None and isinstance(op, (ast.Add, ast.Sub)) and _is_int_step(rhs)
            for rhs, _g, op in writes
        ):
            counters.add(name)

    container_names = set(scan.containers_written)
    fp_accs = carried - counters - container_names

    reasons: list[str] = []
    accumulators: dict[str, str] = {}
    unsafe = False

    # containers mutated AND read couple iterations through the structure
    hot_containers = sorted(scan.containers_read & scan.containers_written)
    if hot_containers:
        unsafe = True
        reasons.append(
            "loop-carried container mutation: "
            + ", ".join(repr(c) for c in hot_containers)
            + " is mutated and read in the same walk (FIFO purge state "
            "couples iterations)"
        )

    conditional_accs: set[str] = set()
    any_arith = False
    for name in sorted(fp_accs):
        writes = scan.writes.get(name, [])
        if not writes:
            fp_accs.discard(name)
            continue
        shapes: set[str] = set()
        guarded = False
        for rhs, was_guarded, op in writes:
            guarded = guarded or was_guarded
            if op is not None:  # AugAssign
                if isinstance(op, (ast.Add, ast.Sub)) and rhs is not None:
                    operand = _shape(rhs, name, scan.body_defs, set())
                    shapes.add(_AV if operand == _V else _OTHER)
                else:
                    shapes.add(_OTHER)
            elif rhs is None:
                shapes.add(_OTHER)
            else:
                shapes.add(_shape(rhs, name, scan.body_defs, set()))
        if guarded:
            conditional_accs.add(name)
        bad = shapes - {_AV, _MAV, _MA, _A}
        if bad:
            unsafe = True
            accumulators[name] = "unrecognized recursion"
            reasons.append(
                f"accumulator {name!r} update is not an accumulate/max "
                "shape (data-dependent recursion)"
            )
            continue
        any_arith = True
        if _MAV in shapes or _MA in shapes:
            label = "max+add (Lindley)" if _MAV in shapes else "running max"
        else:
            label = "prefix sum"
        if guarded:
            if name in scan.reads_elsewhere:
                unsafe = True
                accumulators[name] = f"conditionally-updated {label} (read back)"
                reasons.append(
                    f"accumulator {name!r} is updated under a data-dependent "
                    "branch and read back in the loop — the admission "
                    "decision feeds the recursion"
                )
                continue
            label = f"masked {label}"
        accumulators[name] = label

    if not fp_accs or not any_arith and not unsafe:
        return None  # counters/bookkeeping only: not an FP-recursion loop

    # predicates may read stable inputs, but not conditionally-updated
    # accumulators (that is the drop-tail feedback shape)
    for pred in scan.predicates:
        feedback = sorted(_names_in(pred) & conditional_accs)
        if feedback:
            unsafe = True
            reasons.append(
                "branch predicate reads conditionally-updated state "
                + ", ".join(repr(n) for n in feedback)
                + " (admission feedback)"
            )

    for guards in scan.break_guards:
        guard_names = set().union(*(_names_in(g) for g in guards)) if guards else set()
        acc_dep = sorted(guard_names & (fp_accs | conditional_accs))
        if acc_dep:
            unsafe = True
            reasons.append(
                "early exit depends on the recursion value "
                + ", ".join(repr(n) for n in acc_dep)
            )

    if scan.rng_calls:
        unsafe = True
        reasons.append(
            f"RNG draw at line {scan.rng_calls[0].lineno}: draw order is "
            "part of the determinism contract"
        )
    if scan.opaque_calls:
        unsafe = True
        calls = []
        for call in scan.opaque_calls[:3]:
            calls.append(attr_chain(call.func) or "<call>")
        reasons.append(
            "opaque call(s) may carry cross-iteration state: "
            + ", ".join(sorted(set(calls)))
        )

    if not unsafe:
        gathers = sorted(scan.containers_written - scan.containers_read)
        parts = [
            f"{name}: {what}" for name, what in sorted(accumulators.items())
        ]
        reason = (
            "loop-carried state is only ["
            + "; ".join(parts)
            + "] — np.maximum.accumulate / np.add.accumulate round "
            "left-to-right exactly like the scalar chain"
        )
        if gathers:
            reason += (
                "; remaining effects are write-only gathers ("
                + ", ".join(gathers)
                + ")"
            )
        reasons = [reason]

    return LoopReport(
        module=table.name,
        function=qualname or "<module>",
        path=table.path,
        line=loop.lineno,
        end_line=getattr(loop, "end_lineno", loop.lineno) or loop.lineno,
        kind="for" if isinstance(loop, (ast.For, ast.AsyncFor)) else "while",
        label="VECTOR-UNSAFE" if unsafe else "VECTOR-SAFE",
        reasons=reasons,
        accumulators=accumulators,
    )


def _loops_in(scope: ast.AST) -> Iterator[ast.stmt]:
    """Every loop in the scope, outer and nested alike.

    A nested loop is classified twice — as part of its parent's body and
    standalone — because the vectorization work list needs both answers:
    the outer per-hop walk of ``plan_stream`` is UNSAFE while its inner
    per-packet Lindley recursion is exactly the loop worth vectorizing.
    """
    for node in walk_scope(scope):
        if isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
            yield node


def classify_loops(project: ProjectContext) -> list[LoopReport]:
    """Run the SIM010 classifier over every scope of every module."""
    reports: list[LoopReport] = []
    for table in sorted(project.modules.values(), key=lambda t: t.path):
        markers = project.markers.get(table.path, frozenset())
        in_kernels = table.name.endswith("netsim.kernels")
        for qualname, scope in table.scopes:
            kernelized = in_kernels or _dispatches_to_kernels(scope)
            reaching = project.reaching(table, scope)
            for loop in _loops_in(scope):
                report = _classify_loop(
                    loop, reaching.env_at(loop), table, qualname
                )
                if report is None:
                    if loop.lineno in markers:
                        # annotated loop must at least classify
                        report = LoopReport(
                            module=table.name,
                            function=qualname or "<module>",
                            path=table.path,
                            line=loop.lineno,
                            end_line=getattr(loop, "end_lineno", loop.lineno)
                            or loop.lineno,
                            kind="for"
                            if isinstance(loop, (ast.For, ast.AsyncFor))
                            else "while",
                            label="VECTOR-UNSAFE",
                            reasons=[
                                "annotated vector-safe but no FP recursion "
                                "shape was recognized"
                            ],
                        )
                    else:
                        continue
                report.annotated = loop.lineno in markers
                report.kernelized = kernelized
                reports.append(report)
    reports.sort(key=lambda r: (r.path, r.line))
    return reports


def _dispatches_to_kernels(scope: ast.AST) -> bool:
    """True if the scope calls into ``netsim.kernels``.

    A scalar loop next to a ``kernels.<fn>(...)`` call is the fallback
    half of a bit-identity kernel pair — sanctioned, not an open work
    item.  Only same-scope dispatch counts: the pairing contract is that
    the kernel and its scalar twin sit side by side behind one gate.
    """
    for node in walk_scope(scope):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            chain = attr_chain(node.func)
            if chain is not None and chain.startswith("kernels."):
                return True
    return False


class VectorizabilityChecker:
    """SIM010: loops annotated ``# simlint: vector-safe`` must keep
    classifying VECTOR-SAFE.  The classification itself (every analyzed
    loop, safe or not) is exported as the ``vectorization.json`` work
    list for the vectorized-kernels roadmap item.
    """

    rule_id = "SIM010"

    def check(self, project: ProjectContext) -> Iterator[Finding]:
        for report in project.loop_reports():
            if report.annotated and report.label != "VECTOR-SAFE":
                yield Finding(
                    rule_id=self.rule_id,
                    path=report.path,
                    line=report.line,
                    col=0,
                    message=(
                        f"loop in {report.function}() is annotated "
                        "vector-safe but classifies VECTOR-UNSAFE: "
                        + "; ".join(report.reasons)
                    ),
                )


# ----------------------------------------------------------------------
# SIM011 — cross-process shared-state hazards in sweep task functions
# ----------------------------------------------------------------------

_SWEEP_TASK = "repro.parallel.SweepTask"


class SweepSharedStateChecker:
    """SIM011: a sweep worker crosses a process boundary, so everything
    that shapes its result must travel through the task (seed entropy and
    kwargs — which the on-disk cache key folds in).  Module-level mutable
    state and environment reads do not: mutations stay in the worker and
    reads silently bypass the cache key.
    """

    rule_id = "SIM011"

    def check(self, project: ProjectContext) -> Iterator[Finding]:
        for table in project.modules.values():
            for node in ast.walk(table.tree):
                if not isinstance(node, ast.Call):
                    continue
                resolved = project.resolve(table, node.func)
                if resolved != _SWEEP_TASK:
                    continue
                fn_expr = self._fn_argument(node)
                if fn_expr is None:
                    continue
                yield from self._check_fn(project, table, node, fn_expr)

    @staticmethod
    def _fn_argument(node: ast.Call) -> Optional[ast.expr]:
        for kw in node.keywords:
            if kw.arg == "fn":
                return kw.value
        return node.args[0] if node.args else None

    def _check_fn(self, project, table, site, fn_expr) -> Iterator[Finding]:
        if isinstance(fn_expr, ast.Lambda):
            yield self._finding(
                table,
                site,
                "task fn is a lambda — process pools pickle worker "
                "functions by reference, so it must be a module-level def",
            )
            return
        info = project.resolve_function(table, fn_expr)
        if info is None:
            name = terminal_name(fn_expr)
            if name is not None and any(
                qual.endswith(f"<locals>.{name}") for qual, _ in table.scopes
            ):
                yield self._finding(
                    table,
                    site,
                    f"task fn {name!r} is a nested function — process pools "
                    "pickle worker functions by reference, so it must be a "
                    "module-level def",
                )
            return
        fn_table = project.modules.get(info.module, table)
        yield from self._check_body(project, table, fn_table, site, info)

    def _check_body(self, project, site_table, fn_table, site, info) -> Iterator[Finding]:
        mutables = fn_table.module_mutables
        reported: set[str] = set()
        for node in walk_scope(info.node):
            # writes to module-level mutables from inside the worker
            if isinstance(node, ast.Global):
                for name in node.names:
                    if name not in reported:
                        reported.add(name)
                        yield self._finding(
                            site_table,
                            site,
                            f"task fn {info.qualname!r} rebinds module global "
                            f"{name!r}: each worker process mutates its own "
                            "copy, so the result never propagates back",
                        )
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in MUTATOR_METHODS
                    and isinstance(func.value, ast.Name)
                    and func.value.id in mutables
                    and func.value.id not in reported
                ):
                    reported.add(func.value.id)
                    yield self._finding(
                        site_table,
                        site,
                        f"task fn {info.qualname!r} mutates module-level "
                        f"{func.value.id!r}: cross-process mutation does not "
                        "propagate, and the shared state is invisible to the "
                        "sweep cache key",
                    )
                chain = attr_chain(func)
                if chain in ("os.getenv",) or (
                    chain is not None and chain.startswith("os.environ")
                ):
                    if "environ" not in reported:
                        reported.add("environ")
                        yield self._finding(
                            site_table,
                            site,
                            f"task fn {info.qualname!r} reads the process "
                            "environment: environment values never reach the "
                            "sweep cache key, so cached results silently "
                            "encode whatever was exported when they ran — "
                            "pass the value through kwargs instead",
                        )
            elif isinstance(node, ast.Subscript) and isinstance(
                node.ctx, (ast.Store, ast.Del)
            ):
                root = node.value
                if (
                    isinstance(root, ast.Name)
                    and root.id in mutables
                    and root.id not in reported
                ):
                    reported.add(root.id)
                    yield self._finding(
                        site_table,
                        site,
                        f"task fn {info.qualname!r} writes into module-level "
                        f"{root.id!r}: cross-process mutation does not "
                        "propagate back to the submitting process",
                    )
            elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                name = node.id
                if (
                    name in mutables
                    and name in fn_table.mutated_globals
                    and name not in reported
                ):
                    reported.add(name)
                    yield self._finding(
                        site_table,
                        site,
                        f"task fn {info.qualname!r} reads module-level "
                        f"mutable {name!r} (mutated elsewhere in "
                        f"{fn_table.name or fn_table.path}): its value does "
                        "not reach the sweep cache key, so cached results "
                        "can go stale against it",
                    )

    def _finding(self, table, site, message: str) -> Finding:
        return Finding(
            rule_id=self.rule_id,
            path=table.path,
            line=site.lineno,
            col=site.col_offset,
            message=message,
        )


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

PROJECT_CHECKERS = {
    checker.rule_id: checker
    for checker in (
        RngUnorderedIterationChecker(),
        HookPurityChecker(),
        VectorizabilityChecker(),
        SweepSharedStateChecker(),
    )
}

PROJECT_RULE_IDS = frozenset(PROJECT_CHECKERS)


def run_project_checkers(
    project: ProjectContext, rule_ids
) -> list[Finding]:
    """Run the selected project rules; findings in (path, line) order."""
    findings: list[Finding] = []
    for rule_id in rule_ids:
        checker = PROJECT_CHECKERS.get(rule_id)
        if checker is not None:
            findings.extend(checker.check(project))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return findings
