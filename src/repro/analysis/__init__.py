"""Statistics and validation for the paper's evaluation figures."""

from .stats import (
    PAPER_PERCENTILES,
    RangeSummary,
    cdf_points,
    percentile_grid,
    relative_variation,
    summarize_ranges,
    weighted_range_average,
)
from .timescales import (
    aggregate_series,
    avail_bw_process,
    estimate_hurst,
    variance_time_curve,
)
from .validation import RangeValidation, validate_many, validate_range

__all__ = [
    "PAPER_PERCENTILES",
    "RangeSummary",
    "RangeValidation",
    "aggregate_series",
    "avail_bw_process",
    "cdf_points",
    "percentile_grid",
    "relative_variation",
    "summarize_ranges",
    "validate_many",
    "validate_range",
    "estimate_hurst",
    "variance_time_curve",
    "weighted_range_average",
]
