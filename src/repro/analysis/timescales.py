"""Avail-bw process analysis across averaging timescales.

The paper's introduction frames the difficulty of avail-bw measurement
around the process ``A(t, t+tau)``: its variance decreases as the
averaging timescale ``tau`` grows, and *slowly* (sub-linearly in ``1/tau``)
when the traffic is self-similar (Leland et al.).  Section VI-C then
exploits exactly this: longer streams average over wider ``tau`` and see
less variability.

This module makes the claim measurable inside the repo:

* :func:`avail_bw_process` samples ``A(t, t+tau)`` at a base timescale
  from a link's byte counters;
* :func:`aggregate_series` re-averages the base series at multiples of the
  base timescale (the classic aggregated-variance method);
* :func:`variance_time_curve` returns ``(tau, var)`` pairs, and
  :func:`estimate_hurst` fits the aggregated-variance slope
  ``var(tau) ~ tau^(2H-2)`` — H ≈ 0.5 for Poisson-like traffic, H → 1 for
  strongly self-similar traffic.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..netsim.engine import Simulator
from ..netsim.link import Link

__all__ = [
    "avail_bw_process",
    "aggregate_series",
    "variance_time_curve",
    "estimate_hurst",
]


def avail_bw_process(
    sim: Simulator,
    link: Link,
    duration: float,
    base_tau: float = 0.05,
    start: float = 0.0,
) -> np.ndarray:
    """Sample ``A(t, t+tau)`` over ``duration`` at timescale ``base_tau``.

    Advances the simulation as a side effect (like the monitors, it reads
    the link's cumulative byte counter at window boundaries).  Returns the
    avail-bw per window, in b/s.
    """
    if base_tau <= 0:
        raise ValueError(f"base_tau must be positive, got {base_tau}")
    if duration < 2 * base_tau:
        raise ValueError("duration must cover at least two windows")
    samples = []
    sim.run(until=start)
    prev = link.stats.bytes_forwarded
    t = start
    while t + base_tau <= start + duration + 1e-12:
        t += base_tau
        sim.run(until=t)
        total = link.stats.bytes_forwarded
        utilization = (total - prev) * 8.0 / base_tau / link.capacity_bps
        samples.append(link.capacity_bps * (1.0 - utilization))
        prev = total
    return np.array(samples, dtype=np.float64)


def aggregate_series(series: Sequence[float], factor: int) -> np.ndarray:
    """Average consecutive blocks of ``factor`` samples (trailing remainder
    dropped)."""
    series = np.asarray(series, dtype=np.float64)
    if factor < 1:
        raise ValueError(f"factor must be >= 1, got {factor}")
    n = (len(series) // factor) * factor
    if n == 0:
        raise ValueError("series shorter than one aggregation block")
    return series[:n].reshape(-1, factor).mean(axis=1)


def variance_time_curve(
    series: Sequence[float],
    base_tau: float,
    factors: Optional[Sequence[int]] = None,
) -> list[tuple[float, float]]:
    """``(tau, variance)`` of the aggregated avail-bw process.

    ``factors`` defaults to powers of two that leave at least 8 blocks.
    """
    series = np.asarray(series, dtype=np.float64)
    if factors is None:
        factors = []
        f = 1
        while len(series) // f >= 8:
            factors.append(f)
            f *= 2
    curve = []
    for factor in factors:
        agg = aggregate_series(series, factor)
        curve.append((base_tau * factor, float(np.var(agg))))
    return curve


def estimate_hurst(curve: Sequence[tuple[float, float]]) -> float:
    """Hurst estimate from the aggregated-variance slope.

    Fits ``log var = (2H - 2) log tau + c``; H = 0.5 means independent
    increments, H > 0.5 long-range dependence.  Requires >= 3 points with
    positive variance.
    """
    points = [(tau, var) for tau, var in curve if var > 0]
    if len(points) < 3:
        raise ValueError("need at least 3 positive-variance points")
    taus = np.log([tau for tau, _v in points])
    variances = np.log([var for _t, var in points])
    slope = float(np.polyfit(taus, variances, 1)[0])
    hurst = 1.0 + slope / 2.0
    return float(np.clip(hurst, 0.0, 1.0))
