"""Validation helpers: compare pathload output against ground truth.

In simulation the long-run average avail-bw is a configured quantity, so
accuracy can be scored exactly: does the reported range include it
(the paper's headline claim for Figs. 5-6), and how far is the range
center from it (the paper: within ~10 % for single-tight-link paths)?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

__all__ = ["RangeValidation", "validate_range", "validate_many"]


@dataclass(frozen=True)
class RangeValidation:
    """Accuracy scorecard of one reported range against a known truth."""

    low_bps: float
    high_bps: float
    truth_bps: float

    @property
    def contains_truth(self) -> bool:
        """True when the range brackets the true average avail-bw."""
        return self.low_bps <= self.truth_bps <= self.high_bps

    @property
    def center_bps(self) -> float:
        """Center of the reported range."""
        return (self.low_bps + self.high_bps) / 2.0

    @property
    def center_error(self) -> float:
        """Signed relative error of the range center vs. truth."""
        if self.truth_bps == 0:
            raise ValueError("truth avail-bw is zero; relative error undefined")
        return (self.center_bps - self.truth_bps) / self.truth_bps

    @property
    def underestimates(self) -> bool:
        """True when the whole range sits below the truth (the Fig. 7
        multiple-tight-links failure mode)."""
        return self.high_bps < self.truth_bps

    @property
    def overestimates(self) -> bool:
        """True when the whole range sits above the truth."""
        return self.low_bps > self.truth_bps


def validate_range(low_bps: float, high_bps: float, truth_bps: float) -> RangeValidation:
    """Score one (low, high) range against the true average avail-bw."""
    if high_bps < low_bps:
        raise ValueError(f"invalid range [{low_bps}, {high_bps}]")
    return RangeValidation(low_bps=low_bps, high_bps=high_bps, truth_bps=truth_bps)


def validate_many(
    ranges: Sequence[tuple[float, float]], truth_bps: float
) -> list[RangeValidation]:
    """Score many runs at once."""
    return [validate_range(lo, hi, truth_bps) for lo, hi in ranges]
