"""Statistics helpers used across the dynamics experiments (Section VI).

The paper characterizes avail-bw variability via the **relative variation
metric** (Eq. 12)::

    rho = (R_hi - R_lo) / ((R_hi + R_lo) / 2)

computed per pathload run, then plotted as the {5, 15, ..., 95} percentile
CDF over ~110 runs per operating condition (Figs. 11-14).  This module
provides rho, the percentile-grid CDF, and the weighted averaging rule
(Eq. 11) used to compare consecutive pathload runs against a 5-minute MRTG
window (Fig. 10).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "relative_variation",
    "percentile_grid",
    "cdf_points",
    "weighted_range_average",
    "summarize_ranges",
    "RangeSummary",
]

#: The percentile grid the paper plots: {5, 15, ..., 95}.
PAPER_PERCENTILES: tuple[int, ...] = tuple(range(5, 100, 10))


def relative_variation(low_bps: float, high_bps: float) -> float:
    """The paper's rho (Eq. 12): range width over range center.

    Zero-width ranges give 0; a degenerate [0, 0] range also gives 0.
    """
    if high_bps < low_bps:
        raise ValueError(f"need high >= low, got [{low_bps}, {high_bps}]")
    center = (high_bps + low_bps) / 2.0
    if center == 0:
        return 0.0
    return (high_bps - low_bps) / center


def percentile_grid(
    values: Sequence[float], percentiles: Sequence[int] = PAPER_PERCENTILES
) -> list[tuple[int, float]]:
    """[(percentile, value), ...] over the paper's {5,...,95} grid."""
    if len(values) == 0:
        raise ValueError("no values to summarize")
    arr = np.asarray(values, dtype=np.float64)
    return [(int(p), float(np.percentile(arr, p))) for p in percentiles]


def cdf_points(values: Sequence[float]) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF as (sorted values, cumulative probabilities)."""
    if len(values) == 0:
        raise ValueError("no values for a CDF")
    xs = np.sort(np.asarray(values, dtype=np.float64))
    ps = np.arange(1, len(xs) + 1) / len(xs)
    return xs, ps


def weighted_range_average(
    runs: Iterable[tuple[float, float, float]]
) -> tuple[float, float]:
    """The paper's Eq. (11): duration-weighted average of pathload ranges.

    ``runs`` yields ``(duration, low_bps, high_bps)`` for the consecutive
    pathload runs inside one comparison window; the result is the weighted
    average of range centers together with the weighted average width,
    returned as a (low, high) pair for comparison against an MRTG reading.
    """
    runs = list(runs)
    if not runs:
        raise ValueError("no runs to average")
    total = sum(d for d, _lo, _hi in runs)
    if total <= 0:
        raise ValueError("total duration must be positive")
    low = sum(d * lo for d, lo, _hi in runs) / total
    high = sum(d * hi for d, _lo, hi in runs) / total
    return low, high


@dataclass(frozen=True)
class RangeSummary:
    """Aggregate of many pathload ranges for one experimental condition."""

    mean_low_bps: float
    mean_high_bps: float
    cv_low: float
    cv_high: float
    n_runs: int

    @property
    def mean_center_bps(self) -> float:
        """Center of the averaged range."""
        return (self.mean_low_bps + self.mean_high_bps) / 2.0


def summarize_ranges(ranges: Sequence[tuple[float, float]]) -> RangeSummary:
    """Average lower/upper bounds over repeated runs (the Fig. 5-7 readout).

    The paper averages the 50 lower bounds and the 50 upper bounds
    separately and reports the coefficient of variation of each (typically
    0.10-0.30 in their simulations).
    """
    if not ranges:
        raise ValueError("no ranges to summarize")
    lows = np.array([lo for lo, _hi in ranges], dtype=np.float64)
    highs = np.array([hi for _lo, hi in ranges], dtype=np.float64)
    mean_low = float(lows.mean())
    mean_high = float(highs.mean())
    cv_low = float(lows.std() / mean_low) if mean_low > 0 else 0.0
    cv_high = float(highs.std() / mean_high) if mean_high > 0 else 0.0
    return RangeSummary(
        mean_low_bps=mean_low,
        mean_high_bps=mean_high,
        cv_low=cv_low,
        cv_high=cv_high,
        n_runs=len(ranges),
    )
