"""Ready-made topologies for the paper's experiments.

The centerpiece is :func:`build_fig4_path` — the simulation topology of the
paper's Fig. 4: an ``H``-hop path whose middle hop is the *tight link*
(capacity ``Ct``, utilization ``ut``), with all other ("nontight") links
sharing a common capacity ``Cx`` and utilization ``ux``.  The relative
avail-bw of tight and nontight links is controlled by the **path tightness
factor** (Eq. 10)::

    beta = A_t / A_x,   A_t = Ct * (1 - ut),   A_x = Cx * (1 - ux)

so given ``beta`` and ``ux`` the builder derives ``Cx = A_t / (beta * (1 - ux))``.
``beta → 1`` makes every link a tight link, the regime where the paper shows
pathload underestimates (Fig. 7).

:func:`build_two_link_path` supports the Fig. 10 scenario where the tight
link differs from the narrow link, and :func:`build_single_hop_path` is the
minimal workbench used across unit tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from .crosstraffic import PAPER_PACKET_MIX, CrossTrafficSource, PacketMix, attach_cross_traffic
from .engine import Simulator
from .link import Link
from .path import LinkSpec, PathNetwork, build_path

__all__ = [
    "Fig4Config",
    "PathSetup",
    "build_fig4_path",
    "build_single_hop_path",
    "build_two_link_path",
]


@dataclass(frozen=True)
class Fig4Config:
    """Parameters of the Fig. 4 topology.

    Defaults are the paper's: ``H = 5`` hops, ``Ct = 10`` Mb/s, ``beta =
    0.3``, ``ux = 20 %``, 50-ms end-to-end propagation delay, ten Pareto
    (``alpha = 1.9``) sources per link with the 40/550/1500-byte mix.
    """

    hops: int = 5
    tight_capacity_bps: float = 10e6
    tight_utilization: float = 0.6
    tightness_factor: float = 0.3
    nontight_utilization: float = 0.2
    total_prop_delay: float = 0.05
    buffer_bytes: Optional[int] = None
    traffic_model: str = "pareto"  # "pareto" | "poisson" | "cbr"
    pareto_alpha: float = 1.9
    sources_per_link: int = 10
    packet_mix: tuple[tuple[int, float], ...] = PAPER_PACKET_MIX

    def __post_init__(self) -> None:
        if self.hops < 1:
            raise ValueError(f"need at least 1 hop, got {self.hops}")
        if not 0.0 <= self.tight_utilization < 1.0:
            raise ValueError(f"tight utilization must be in [0,1), got {self.tight_utilization}")
        if not 0.0 <= self.nontight_utilization < 1.0:
            raise ValueError(
                f"nontight utilization must be in [0,1), got {self.nontight_utilization}"
            )
        if not 0.0 < self.tightness_factor <= 1.0:
            raise ValueError(
                f"tightness factor must be in (0,1], got {self.tightness_factor}"
            )

    @property
    def tight_avail_bw_bps(self) -> float:
        """Average avail-bw of the tight link, ``A_t = Ct (1 - ut)``."""
        return self.tight_capacity_bps * (1.0 - self.tight_utilization)

    @property
    def nontight_avail_bw_bps(self) -> float:
        """Average avail-bw of each nontight link, ``A_x = A_t / beta``."""
        return self.tight_avail_bw_bps / self.tightness_factor

    @property
    def nontight_capacity_bps(self) -> float:
        """Capacity of each nontight link, ``Cx = A_x / (1 - ux)``."""
        return self.nontight_avail_bw_bps / (1.0 - self.nontight_utilization)

    @property
    def avail_bw_bps(self) -> float:
        """End-to-end average avail-bw (Eq. 3): the minimum over links."""
        return min(self.tight_avail_bw_bps, self.nontight_avail_bw_bps)


@dataclass
class PathSetup:
    """A fully wired experiment path: network, traffic, and ground truth."""

    sim: Simulator
    network: PathNetwork
    tight_link: Link
    sources: list[CrossTrafficSource] = field(default_factory=list)
    #: configured long-run average end-to-end avail-bw (the ground truth the
    #: paper's figures compare against)
    avail_bw_bps: float = 0.0
    #: end-to-end capacity (narrow link rate)
    capacity_bps: float = 0.0

    @property
    def utilization_of_tight(self) -> float:
        """Configured utilization of the tight link."""
        return 1.0 - self.avail_bw_bps / self.tight_link.capacity_bps


def build_fig4_path(
    sim: Simulator,
    cfg: Fig4Config,
    rng: np.random.Generator,
    traffic_start: float = 0.0,
    bulk: Optional[bool] = None,
) -> PathSetup:
    """Instantiate the Fig. 4 topology with live cross traffic.

    The tight link sits at hop ``H // 2``; total propagation delay is split
    evenly across hops; every link gets its own aggregate of
    ``sources_per_link`` independent sources offering ``C_i * u_i``.
    ``bulk`` selects the cross-traffic data path per source (default:
    event-elided when eligible; ``False`` forces per-packet — results are
    bit-identical either way, see :mod:`repro.netsim.bulkarrivals`).
    """
    tight_index = cfg.hops // 2
    per_hop_prop = cfg.total_prop_delay / cfg.hops
    specs = []
    for i in range(cfg.hops):
        if i == tight_index:
            specs.append(
                LinkSpec(
                    cfg.tight_capacity_bps,
                    prop_delay=per_hop_prop,
                    buffer_bytes=cfg.buffer_bytes,
                    name=f"tight[{i}]",
                )
            )
        else:
            specs.append(
                LinkSpec(
                    cfg.nontight_capacity_bps,
                    prop_delay=per_hop_prop,
                    buffer_bytes=cfg.buffer_bytes,
                    name=f"nontight[{i}]",
                )
            )
    network = build_path(sim, specs)
    mix = PacketMix(cfg.packet_mix)
    sources: list[CrossTrafficSource] = []
    for i, link in enumerate(network.forward_links):
        utilization = (
            cfg.tight_utilization if i == tight_index else cfg.nontight_utilization
        )
        rate = link.capacity_bps * utilization
        if rate > 0:
            sources.extend(
                attach_cross_traffic(
                    sim,
                    network,
                    link,
                    rate,
                    rng,
                    n_sources=cfg.sources_per_link,
                    model=cfg.traffic_model,
                    alpha=cfg.pareto_alpha,
                    mix=mix,
                    start=traffic_start,
                    bulk=bulk,
                )
            )
    return PathSetup(
        sim=sim,
        network=network,
        tight_link=network.forward_links[tight_index],
        sources=sources,
        avail_bw_bps=cfg.avail_bw_bps,
        capacity_bps=network.capacity_bps,
    )


def build_single_hop_path(
    sim: Simulator,
    capacity_bps: float,
    utilization: float,
    rng: np.random.Generator,
    prop_delay: float = 0.01,
    buffer_bytes: Optional[int] = None,
    traffic_model: str = "pareto",
    n_sources: int = 10,
    mix: Optional[PacketMix] = None,
    traffic_start: float = 0.0,
    modulation: Optional[tuple[float, float]] = None,
    bulk: Optional[bool] = None,
) -> PathSetup:
    """A one-link path: the minimal tight-link-only workbench.

    ``modulation`` optionally adds slow non-stationary load variation
    (see :class:`repro.netsim.crosstraffic.CrossTrafficSource`); ``bulk``
    selects the cross-traffic data path (modulated sources always run
    per-packet).
    """
    network = build_path(
        sim,
        [LinkSpec(capacity_bps, prop_delay=prop_delay, buffer_bytes=buffer_bytes, name="tight")],
    )
    link = network.forward_links[0]
    sources: list[CrossTrafficSource] = []
    rate = capacity_bps * utilization
    if rate > 0:
        sources = attach_cross_traffic(
            sim,
            network,
            link,
            rate,
            rng,
            n_sources=n_sources,
            model=traffic_model,
            mix=mix if mix is not None else PacketMix(),
            start=traffic_start,
            modulation=modulation,
            bulk=bulk,
        )
    return PathSetup(
        sim=sim,
        network=network,
        tight_link=link,
        sources=sources,
        avail_bw_bps=capacity_bps * (1.0 - utilization),
        capacity_bps=capacity_bps,
    )


def build_two_link_path(
    sim: Simulator,
    narrow_capacity_bps: float,
    narrow_utilization: float,
    tight_capacity_bps: float,
    tight_utilization: float,
    rng: np.random.Generator,
    total_prop_delay: float = 0.05,
    buffer_bytes: Optional[int] = None,
    traffic_model: str = "pareto",
    n_sources: int = 10,
    traffic_start: float = 0.0,
    bulk: Optional[bool] = None,
) -> PathSetup:
    """A path where the **narrow** link and the **tight** link differ.

    This is the Fig. 10 scenario: the tight link was a 155-Mb/s OC-3 while
    the narrow link was a 100-Mb/s Fast Ethernet.  Pass utilizations such
    that ``C_tight * (1 - u_tight) < C_narrow * (1 - u_narrow)``.
    """
    tight_avail = tight_capacity_bps * (1.0 - tight_utilization)
    narrow_avail = narrow_capacity_bps * (1.0 - narrow_utilization)
    if tight_avail >= narrow_avail:
        raise ValueError(
            "configuration does not make the intended link tight: "
            f"tight avail {tight_avail:.0f} >= narrow avail {narrow_avail:.0f}"
        )
    network = build_path(
        sim,
        [
            LinkSpec(
                tight_capacity_bps,
                prop_delay=total_prop_delay / 2,
                buffer_bytes=buffer_bytes,
                name="tight",
            ),
            LinkSpec(
                narrow_capacity_bps,
                prop_delay=total_prop_delay / 2,
                buffer_bytes=buffer_bytes,
                name="narrow",
            ),
        ],
    )
    sources: list[CrossTrafficSource] = []
    for link, utilization in zip(
        network.forward_links, (tight_utilization, narrow_utilization)
    ):
        rate = link.capacity_bps * utilization
        if rate > 0:
            sources.extend(
                attach_cross_traffic(
                    sim,
                    network,
                    link,
                    rate,
                    rng,
                    n_sources=n_sources,
                    model=traffic_model,
                    start=traffic_start,
                    bulk=bulk,
                )
            )
    return PathSetup(
        sim=sim,
        network=network,
        tight_link=network.forward_links[0],
        sources=sources,
        avail_bw_bps=tight_avail,
        capacity_bps=narrow_capacity_bps,
    )
