"""General graph topologies: extract measurement paths from a network graph.

The paper's model is a single fixed path, but real measurement campaigns
start from a *topology*: a mesh of routers and links, with each
sender/receiver pair routed along (say) the shortest path.  This module
bridges the two: describe a network as a ``networkx`` graph whose edges
carry link attributes, and :func:`build_graph_path` instantiates the
routed path between two nodes as a ready-to-probe
:class:`~repro.netsim.path.PathNetwork` — cross traffic included.

Edge attributes (per direction of use):

``capacity_bps`` (required)
    Link rate in bits per second.
``prop_delay`` (default 0)
    Propagation delay in seconds.
``utilization`` (default 0)
    Cross-traffic load as a fraction of capacity.
``buffer_bytes`` (default None = infinite)
    Drop-tail buffer size.

Routing minimizes propagation delay by default (a latency-routed IGP);
pass ``weight="hops"`` for minimum hop count.
"""

from __future__ import annotations

from typing import Hashable

import numpy as np

from .crosstraffic import attach_cross_traffic
from .engine import Simulator
from .path import LinkSpec, build_path
from .topologies import PathSetup

__all__ = ["build_graph_path", "route_nodes"]


def route_nodes(
    graph, source: Hashable, target: Hashable, weight: str = "prop_delay"
) -> list[Hashable]:
    """Shortest-path node sequence from ``source`` to ``target``.

    ``weight="prop_delay"`` routes on latency; ``weight="hops"`` on hop
    count.  Raises ``ValueError`` when no route exists.
    """
    import networkx as nx

    if source not in graph or target not in graph:
        raise ValueError(f"unknown endpoint(s): {source!r} -> {target!r}")
    try:
        if weight == "hops":
            return nx.shortest_path(graph, source, target)
        return nx.shortest_path(
            graph, source, target,
            weight=lambda u, v, data: data.get(weight, 0.0),
        )
    except nx.NetworkXNoPath as exc:
        raise ValueError(f"no route from {source!r} to {target!r}") from exc


def build_graph_path(
    sim: Simulator,
    graph,
    source: Hashable,
    target: Hashable,
    rng: np.random.Generator,
    weight: str = "prop_delay",
    sources_per_link: int = 10,
    traffic_model: str = "pareto",
    traffic_start: float = 0.0,
) -> PathSetup:
    """Instantiate the routed ``source -> target`` path with cross traffic.

    Returns a :class:`PathSetup` whose ground-truth ``avail_bw_bps`` is the
    minimum of ``capacity * (1 - utilization)`` along the route — Eq. (3)
    evaluated over the routed links.
    """
    nodes = route_nodes(graph, source, target, weight=weight)
    if len(nodes) < 2:
        raise ValueError("source and target must differ")
    specs: list[LinkSpec] = []
    utilizations: list[float] = []
    for u, v in zip(nodes, nodes[1:]):
        data = graph[u][v]
        if "capacity_bps" not in data:
            raise ValueError(f"edge {u!r}-{v!r} lacks a capacity_bps attribute")
        utilization = float(data.get("utilization", 0.0))
        if not 0.0 <= utilization < 1.0:
            raise ValueError(
                f"edge {u!r}-{v!r} utilization must be in [0,1), got {utilization}"
            )
        specs.append(
            LinkSpec(
                capacity_bps=float(data["capacity_bps"]),
                prop_delay=float(data.get("prop_delay", 0.0)),
                buffer_bytes=data.get("buffer_bytes"),
                name=f"{u}->{v}",
            )
        )
        utilizations.append(utilization)
    network = build_path(sim, specs)
    sources = []
    for link, utilization in zip(network.forward_links, utilizations):
        rate = link.capacity_bps * utilization
        if rate > 0:
            sources.extend(
                attach_cross_traffic(
                    sim, network, link, rate, rng,
                    n_sources=sources_per_link,
                    model=traffic_model,
                    start=traffic_start,
                )
            )
    avails = [
        spec.capacity_bps * (1.0 - u) for spec, u in zip(specs, utilizations)
    ]
    tight_index = int(np.argmin(avails))
    return PathSetup(
        sim=sim,
        network=network,
        tight_link=network.forward_links[tight_index],
        sources=sources,
        avail_bw_bps=min(avails),
        capacity_bps=network.capacity_bps,
    )
