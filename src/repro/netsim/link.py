"""Store-and-forward link model.

Each :class:`Link` is a FIFO transmission queue with:

* a fixed capacity ``C`` in bits per second — or an optional
  piecewise-constant capacity schedule (:meth:`Link.set_capacity_segments`)
  for time-varying channels,
* a propagation delay,
* an optional finite drop-tail buffer (in bytes).

The paper's path model (Section III-A) is exactly this: a sequence of
store-and-forward FIFO links, each with capacity ``C_i``, adequately buffered
in the verification simulations, finitely buffered in the TCP experiments of
Section VII.

Implementation
--------------
A *foreground* packet (probe, TCP, ping, per-packet cross traffic) costs
**one scheduled event**: the delivery callback at ``transmission_complete +
propagation_delay``.  Queueing is tracked analytically with a "transmitter
free at" clock (``_free_at``) plus a lazy deque of in-flight transmissions
used for byte-accurate backlog accounting (needed for drop-tail decisions
and queue-size monitoring).

Bulk-eligible cross traffic costs **no per-packet events at all**: sources
deposit batched absolute-arrival arrays with the link's
:class:`~repro.netsim.bulkarrivals.CrossAggregator`, and :meth:`Link.sync`
folds every arrival with timestamp ≤ now into ``_free_at``, the backlog
ledger, and :class:`LinkStats` — in arrival order, as a tight loop over
plain floats/ints — before any foreground ``send()``, any
``backlog_bytes()``/``queueing_delay()`` read, and any ``stats`` access.
Foreground packets therefore observe exactly the queue state the
per-packet path would have produced.  Installing a ``qdisc``, a
``drop_hook``, or a new ``deliver`` callback on a link that carries bulk
traffic automatically reverts its sources to the per-packet path (the
future sample path is unchanged; see ``docs/performance.md``).
"""

from __future__ import annotations

from bisect import bisect_right
from collections import deque
from typing import Callable, Optional

from . import kernels
from .engine import Simulator
from .packet import Packet

__all__ = ["Link", "LinkStats"]


class LinkStats:
    """Cumulative per-link counters, read by monitors.

    ``bytes_forwarded`` counts bytes *accepted for transmission* (the
    quantity an SNMP interface counter — and therefore MRTG — reports).
    """

    __slots__ = ("bytes_forwarded", "packets_forwarded", "bytes_dropped", "packets_dropped")

    def __init__(self) -> None:
        self.bytes_forwarded = 0
        self.packets_forwarded = 0
        self.bytes_dropped = 0
        self.packets_dropped = 0

    def snapshot(self) -> dict:
        """Plain-dict copy of the counters."""
        return {
            "bytes_forwarded": self.bytes_forwarded,
            "packets_forwarded": self.packets_forwarded,
            "bytes_dropped": self.bytes_dropped,
            "packets_dropped": self.packets_dropped,
        }


class Link:
    """One store-and-forward hop.

    Parameters
    ----------
    sim:
        The simulation kernel.
    capacity_bps:
        Transmission rate in bits per second (the paper's ``C_i``).
    prop_delay:
        Propagation delay in seconds appended after transmission completes.
    buffer_bytes:
        Drop-tail buffer size in bytes, or ``None`` for an infinite buffer
        (the paper's "adequately buffered to avoid losses" setting).
    name:
        Human-readable label used in monitors and error messages.
    deliver:
        Callback invoked as ``deliver(packet)`` when a packet exits the link
        (i.e., after transmission + propagation).  Wired by the owning
        network; may also be set after construction.
    qdisc:
        Optional active queue management policy (e.g.
        :class:`~repro.netsim.qdisc.REDQueue`) consulted *before* the
        drop-tail check; any object with a
        ``should_drop(backlog_bytes, pkt_size, now, capacity_bps)`` method.
    """

    __slots__ = (
        "sim",
        "capacity_bps",
        "prop_delay",
        "buffer_bytes",
        "name",
        "_deliver",
        "_stats",
        "_drop_hook",
        "_qdisc",
        "_agg",
        "_agenda",
        "_cap_sched",
        "_free_at",
        "_in_flight",
        "_backlog_bytes",
        "_tracer",
    )

    def __init__(
        self,
        sim: Simulator,
        capacity_bps: float,
        prop_delay: float = 0.0,
        buffer_bytes: Optional[int] = None,
        name: str = "link",
        deliver: Optional[Callable[[Packet], None]] = None,
        qdisc=None,
    ):
        if capacity_bps <= 0:
            raise ValueError(f"link capacity must be positive, got {capacity_bps}")
        if prop_delay < 0:
            raise ValueError(f"propagation delay must be >= 0, got {prop_delay}")
        if buffer_bytes is not None and buffer_bytes <= 0:
            raise ValueError(f"buffer size must be positive or None, got {buffer_bytes}")
        self.sim = sim
        self.capacity_bps = float(capacity_bps)
        self.prop_delay = float(prop_delay)
        self.buffer_bytes = buffer_bytes
        self.name = name
        self._deliver = deliver
        self._stats = LinkStats()
        self._drop_hook: Optional[Callable[[Packet], None]] = None
        self._qdisc = qdisc
        self._agg = None  # CrossAggregator once bulk sources attach
        self._agenda = None  # HopAgenda while a planned probe stream transits
        self._cap_sched = None  # (boundaries, rates) piecewise-constant schedule
        self._free_at = 0.0  # when the transmitter becomes idle
        self._in_flight: deque = deque()  # (tx_done_time, size_bytes)
        self._backlog_bytes = 0
        # Cached so the nil-tracer cost in send() is one slot None-check;
        # Tracer.register_link retrofits links built before attach and
        # leaves the slot None for light tracers (per-packet callbacks off,
        # elision stays eligible — see docs/observability.md).
        self._tracer = None
        tracer = sim.tracer
        if tracer is not None:
            tracer.register_link(self)

    # ------------------------------------------------------------------
    # Wired callbacks and policies (rebinding reverts bulk traffic)
    # ------------------------------------------------------------------
    @property
    def deliver(self) -> Optional[Callable[[Packet], None]]:
        """Delivery callback; installing one decommissions the bulk path
        (elided cross packets never reach ``deliver``)."""
        return self._deliver

    @deliver.setter
    def deliver(self, fn: Optional[Callable[[Packet], None]]) -> None:
        if self._agenda is not None:
            self._agenda.plan.revoke("link-decommission")
        if self._agg is not None:
            self._decommission()
        self._deliver = fn

    @property
    def drop_hook(self) -> Optional[Callable[[Packet], None]]:
        """Optional hook called with each dropped packet (used by taps and
        loss-sensitive experiments); installing one decommissions the bulk
        path so every subsequent drop materializes a packet."""
        return self._drop_hook

    @drop_hook.setter
    def drop_hook(self, fn: Optional[Callable[[Packet], None]]) -> None:
        if self._agenda is not None:
            self._agenda.plan.revoke("link-decommission")
        if self._agg is not None:
            self._decommission()
        self._drop_hook = fn

    @property
    def qdisc(self):
        """Active queue management policy; installing one decommissions the
        bulk path (AQM decisions must see every packet)."""
        return self._qdisc

    @qdisc.setter
    def qdisc(self, policy) -> None:
        if self._agenda is not None:
            self._agenda.plan.revoke("link-decommission")
        if self._agg is not None:
            self._decommission()
        self._qdisc = policy

    # ------------------------------------------------------------------
    # Piecewise-constant capacity schedule (plannable time variation)
    # ------------------------------------------------------------------
    def capacity_at(self, t: float) -> float:
        """Transmission rate in force at instant ``t``.

        Without a schedule this is ``capacity_bps``.  With one, the rate
        switches at each boundary; an instant exactly on a boundary takes
        the new rate.  Every data path — per-packet ``send()``, the bulk
        folds, and the stream planner — serializes each packet at the
        rate in force when its transmission *starts*, so they agree bit
        for bit.
        """
        sched = self._cap_sched
        if sched is None:
            return self.capacity_bps
        bounds, caps = sched
        return caps[bisect_right(bounds, t)]

    def set_capacity_segments(self, segments) -> None:
        """Install a piecewise-constant capacity schedule.

        ``segments`` is an iterable of ``(time, capacity_bps)`` pairs
        with strictly increasing times, all in the future: from each
        time on, the link transmits at the paired rate until the next
        boundary (the last rate holds forever).  Each packet is
        serialized at the rate in force when its transmission *starts*
        (:meth:`capacity_at`); a transmission already under way when a
        boundary passes completes at its admission rate — the
        store-and-forward idealization of a rate change.

        Installing a schedule is a planning chokepoint like rebinding
        ``deliver``: a planned probe stream in transit is revoked and
        replayed per-packet (which also dissolves an attached flow
        domain), because their plans assumed the old rate function.
        Bulk cross traffic stays bulk — the folds look rates up per
        segment.  Reinstalling replaces the previous schedule; the rate
        currently in force becomes the rate before the first boundary.
        ``capacity_bps`` keeps the construction-time base rate (used by
        monitors' utilization normalization and AQM policies).
        """
        now = self.sim.now
        pairs = [(float(t), float(c)) for t, c in segments]
        if not pairs:
            raise ValueError("capacity schedule needs at least one segment")
        for t, c in pairs:
            if c <= 0:
                raise ValueError(f"segment capacity must be positive, got {c}")
            if t <= now:
                raise ValueError(
                    f"segment boundaries must be in the future, got {t} at t={now}"
                )
        bounds = [t for t, _ in pairs]
        if any(b >= a for b, a in zip(bounds, bounds[1:])):
            raise ValueError("segment boundaries must be strictly increasing")
        if self._agenda is not None:
            self._agenda.plan.revoke("link-decommission")
        # Fold everything due under the schedule in force until now; the
        # per-packet path would have admitted those arrivals before this
        # call ran, under the same (old) rate function.
        if self._agg is not None:
            self.sync(now)
        base = self.capacity_at(now)
        self._cap_sched = (bounds, [base] + [c for _, c in pairs])

    @property
    def stats(self) -> LinkStats:
        """Cumulative counters, with pending bulk arrivals folded in first."""
        if self._agg is not None or self._agenda is not None:
            self.sync()
        return self._stats

    # ------------------------------------------------------------------
    # Bulk cross-traffic admission (the event-elided data path)
    # ------------------------------------------------------------------
    def sync(self, now: Optional[float] = None) -> None:
        """Fold pending bulk cross-traffic arrivals into the queue state.

        Replays, in arrival order, every merged arrival with timestamp ≤
        ``now`` (default: current simulated time) through exactly the
        accounting ``send()`` performs — transmitter clock, in-flight
        deque, backlog, drop-tail decision, stats — without creating
        packets or scheduler events.  Idempotent and cheap when nothing is
        pending; called automatically at every foreground sync point.

        While a planned probe stream transits this hop (``_agenda`` is
        set), folding goes through :meth:`_sync_fg`, which interleaves the
        agenda's precomputed admissions with the cross arrivals.
        """
        agenda = self._agenda
        if agenda is not None:
            t_now = self.sim.now if now is None else now
            agg = self._agg
            if (
                t_now >= agenda.t_end
                and agenda.idx == 0
                and (agg is None or agg.idx == agenda.ci_start)
                and self._tracer is None
            ):
                # Whole-stream fast-forward: no fold touched this hop while
                # the stream was in transit (mid-stream folds advance a
                # cursor; foreign sends revoke), so the planner's captured
                # end state at ``t_end`` — identical floats, identical
                # counter sums — applies wholesale.  Traced runs take the
                # replay below so per-admission callbacks still fire.
                self._free_at = agenda.end_free_at
                self._backlog_bytes = agenda.end_backlog
                in_flight = self._in_flight
                in_flight.clear()
                in_flight.extend(agenda.end_in_flight)
                stats = self._stats
                stats.bytes_forwarded += agenda.d_fwd_bytes
                stats.packets_forwarded += agenda.d_fwd_pkts
                stats.bytes_dropped += agenda.d_drop_bytes
                stats.packets_dropped += agenda.d_drop_pkts
                agenda.idx = agenda.count()
                self._agenda = None
                if agg is None:
                    self._purge(t_now)
                    return
                # Fall through: cross arrivals in (t_end, now] still fold
                # against the *t_end* queue state — their own per-arrival
                # purges age it forward, exactly as the per-packet path.
                agg.idx = agenda.ci_end
            else:
                self._sync_fg(t_now)
                return
        else:
            agg = self._agg
            if agg is None:
                return
            t_now = self.sim.now if now is None else now
        idx = agg.idx
        times = agg.times
        n = len(times)
        if idx >= n or times[idx] > t_now:
            return
        sizes = agg.sizes
        cap = self.capacity_bps
        cap_sched = self._cap_sched
        free_at = self._free_at
        backlog = self._backlog_bytes
        in_flight = self._in_flight
        stats = self._stats
        fwd_bytes = stats.bytes_forwarded
        fwd_pkts = stats.packets_forwarded
        buffer_bytes = self.buffer_bytes
        if buffer_bytes is None:
            # Infinite buffer: nothing can drop, so the per-arrival purge is
            # deferred (purging is monotone), and — because completion times
            # are monotone on a FIFO link — an arrival whose transmission
            # finishes by ``t_now`` would be purged by the trailing pass
            # anyway, so it never enters the in-flight deque at all.
            folded = None
            hi = bisect_right(times, t_now, idx, n)
            if hi - idx >= kernels.MIN_BATCH and kernels.enabled():
                if cap_sched is None:
                    folded = kernels.fold_slice(
                        free_at, times, sizes, idx, hi, cap, t_now,
                        agg.arrays(idx, hi),
                    )
                else:
                    folded = kernels.fold_slice_segmented(
                        free_at, times, sizes, idx, hi,
                        cap_sched[0], cap_sched[1], t_now,
                        agg.arrays(idx, hi),
                    )
            if folded is not None:
                free_at, kept, kept_bytes, kept_fold = folded
                fwd_bytes += kept_fold
                fwd_pkts += hi - idx
                in_flight.extend(kept)
                backlog += kept_bytes
                idx = hi
            elif cap_sched is None:
                while idx < n:  # simlint: vector-safe
                    t = times[idx]
                    if t > t_now:
                        break
                    size = sizes[idx]
                    start = free_at if free_at > t else t
                    free_at = start + size * 8.0 / cap
                    fwd_bytes += size
                    fwd_pkts += 1
                    if free_at > t_now:
                        in_flight.append((free_at, size))
                        backlog += size
                    idx += 1
            else:
                bounds, caps = cap_sched
                while idx < n:  # simlint: vector-safe
                    t = times[idx]
                    if t > t_now:
                        break
                    size = sizes[idx]
                    start = free_at if free_at > t else t
                    free_at = start + size * 8.0 / caps[bisect_right(bounds, start)]
                    fwd_bytes += size
                    fwd_pkts += 1
                    if free_at > t_now:
                        in_flight.append((free_at, size))
                        backlog += size
                    idx += 1
        else:
            # Drop-tail decisions replay deterministically in merge order:
            # the backlog each arrival tests is the one the per-packet path
            # would have computed at that instant.
            if cap_sched is not None:
                bounds, caps = cap_sched
            drop_bytes = stats.bytes_dropped
            drop_pkts = stats.packets_dropped
            while idx < n:
                t = times[idx]
                if t > t_now:
                    break
                size = sizes[idx]
                while in_flight and in_flight[0][0] <= t:
                    backlog -= in_flight.popleft()[1]
                if backlog + size > buffer_bytes:
                    drop_bytes += size
                    drop_pkts += 1
                else:
                    start = free_at if free_at > t else t
                    if cap_sched is not None:
                        cap = caps[bisect_right(bounds, start)]
                    free_at = start + size * 8.0 / cap
                    in_flight.append((free_at, size))
                    backlog += size
                    fwd_bytes += size
                    fwd_pkts += 1
                idx += 1
            stats.bytes_dropped = drop_bytes
            stats.packets_dropped = drop_pkts
        while in_flight and in_flight[0][0] <= t_now:
            backlog -= in_flight.popleft()[1]
        agg.idx = idx
        self._free_at = free_at
        self._backlog_bytes = backlog
        stats.bytes_forwarded = fwd_bytes
        stats.packets_forwarded = fwd_pkts
        agg.compact()

    def _sync_fg(self, t_now: float) -> None:
        """Fold cross arrivals *and* planned probe admissions up to ``t_now``.

        Same contract as :meth:`sync`, extended with the installed
        :class:`~repro.netsim.streamtransit.HopAgenda`: entries are
        interleaved in arrival order (exact-time ties go to cross traffic,
        because ``send()`` folds cross arrivals ≤ now before admitting the
        foreground packet) and agenda accepts reuse the planned completion
        times, so the queue state after any fold is bit-identical to the
        per-packet path's at the same instant.  Unlike the cross-only fold
        this one purges per arrival and appends unconditionally — the
        backlog each agenda entry observes is then exactly the value the
        per-packet ``send()`` would have traced/tested; the trailing purge
        makes the end state identical either way.
        """
        agenda = self._agenda
        agg = self._agg
        if agg is not None:
            c_times = agg.times
            c_sizes = agg.sizes
            ci = agg.idx
            cn = len(c_times)
        else:
            c_times = c_sizes = ()
            ci = 0
            cn = 0
        a_pairs = agenda.pairs
        ai = agenda.idx
        an = len(a_pairs)
        a_sizes = agenda.sizes  # per-entry sizes (flow agendas); None = fixed
        # Flow agendas (a_sizes is not None) store bare arrival times in
        # ``pairs``; stream agendas store (time, schedule_index) tuples.
        tupled = a_sizes is None
        if ai < an:
            a_t0 = a_pairs[ai][0] if tupled else a_pairs[ai]
        else:
            a_t0 = t_now
        cross_due = ci < cn and c_times[ci] <= t_now
        if not cross_due and (ai >= an or a_t0 > t_now):
            return
        a_accepts = agenda.accepts
        a_dones = agenda.dones
        a_size = agenda.size
        cap = self.capacity_bps
        cap_sched = self._cap_sched
        free_at = self._free_at
        backlog = self._backlog_bytes
        in_flight = self._in_flight
        stats = self._stats
        fwd_bytes = stats.bytes_forwarded
        fwd_pkts = stats.packets_forwarded
        drop_bytes = stats.bytes_dropped
        drop_pkts = stats.packets_dropped
        buffer_bytes = self.buffer_bytes
        tracer = self._tracer
        inf = float("inf")
        while True:
            c_t = c_times[ci] if ci < cn else inf
            if ai < an:
                a_t = a_pairs[ai][0] if tupled else a_pairs[ai]
            else:
                a_t = inf
            if c_t <= a_t:
                t = c_t
                if t > t_now:
                    break
                size = c_sizes[ci]
                while in_flight and in_flight[0][0] <= t:
                    backlog -= in_flight.popleft()[1]
                if buffer_bytes is not None and backlog + size > buffer_bytes:
                    drop_bytes += size
                    drop_pkts += 1
                else:
                    start = free_at if free_at > t else t
                    if cap_sched is not None:
                        cap = cap_sched[1][bisect_right(cap_sched[0], start)]
                    free_at = start + size * 8.0 / cap
                    in_flight.append((free_at, size))
                    backlog += size
                    fwd_bytes += size
                    fwd_pkts += 1
                ci += 1
            else:
                t = a_t
                if t > t_now:
                    break
                while in_flight and in_flight[0][0] <= t:
                    backlog -= in_flight.popleft()[1]
                size = a_size if a_sizes is None else a_sizes[ai]
                if a_accepts is None or a_accepts[ai]:
                    done = a_dones[ai]
                    free_at = done
                    in_flight.append((done, size))
                    backlog += size
                    fwd_bytes += size
                    fwd_pkts += 1
                    if tracer is not None:
                        tracer.on_link_enqueue(self.name, backlog)
                else:
                    drop_bytes += size
                    drop_pkts += 1
                    if tracer is not None:
                        self._backlog_bytes = backlog
                        tracer.on_link_drop(self, agenda.proto, t)
                ai += 1
        while in_flight and in_flight[0][0] <= t_now:
            backlog -= in_flight.popleft()[1]
        self._free_at = free_at
        self._backlog_bytes = backlog
        stats.bytes_forwarded = fwd_bytes
        stats.packets_forwarded = fwd_pkts
        stats.bytes_dropped = drop_bytes
        stats.packets_dropped = drop_pkts
        if agg is not None:
            agg.idx = ci
            agg.compact()
        agenda.idx = ai
        if ai >= an and not agenda.persistent:
            # Persistent agendas (the flow-transit planner's) grow as the
            # virtual walk advances; they are detached explicitly by their
            # owner, never by fold exhaustion.
            self._agenda = None

    def _decommission(self) -> None:
        """Flush due bulk arrivals, then revert every source to per-packet."""
        if self._agenda is not None:  # pragma: no cover - setters revoke first
            self._agenda.plan.revoke("link-decommission")
        agg = self._agg
        if agg is None:
            return
        self.sync()
        self._agg = None
        agg.release()

    # ------------------------------------------------------------------
    # Queue accounting
    # ------------------------------------------------------------------
    def _purge(self, now: float) -> None:
        """Drop bookkeeping entries whose transmission has completed."""
        in_flight = self._in_flight
        while in_flight and in_flight[0][0] <= now:
            self._backlog_bytes -= in_flight.popleft()[1]

    def backlog_bytes(self, now: Optional[float] = None) -> int:
        """Bytes queued or in transmission at time ``now`` (default: current)."""
        if self._agg is not None or self._agenda is not None:
            self.sync()
        self._purge(self.sim.now if now is None else now)
        return self._backlog_bytes

    def queueing_delay(self, now: Optional[float] = None) -> float:
        """Time a zero-size arrival at ``now`` would wait before service."""
        if self._agg is not None or self._agenda is not None:
            self.sync()
        t = self.sim.now if now is None else now
        return max(0.0, self._free_at - t)

    def transmission_time(self, size_bytes: int) -> float:
        """Serialization delay of a packet of ``size_bytes`` on this link."""
        return size_bytes * 8.0 / self.capacity_bps

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def send(self, pkt: Packet) -> bool:
        """Accept ``pkt`` for transmission at the current simulated time.

        Returns ``True`` if the packet was enqueued, ``False`` if it was
        dropped by the drop-tail buffer.  On acceptance, the delivery
        callback fires at ``max(now, transmitter_free) + tx_time +
        prop_delay``.  Pending bulk cross-traffic arrivals (timestamp ≤
        now) are folded in first, so this packet queues behind them —
        the FIFO order the per-packet path produces.
        """
        sim = self.sim
        now = sim.now
        if self._agenda is not None:
            # Universal interference chokepoint: *any* foreground send on a
            # hop carrying a planned probe stream — TCP, ping, per-packet
            # cross, another stream — invalidates the plan's no-interference
            # assumption.  Revoking folds the plan's past, replays its
            # future per-packet, and clears this link's agenda; the sample
            # path from here on is what a never-planned run produces.
            self._agenda.plan.revoke("foreign-send")
        if self._agg is not None:
            self.sync(now)
        # Hot attributes bound once: this method runs once per foreground
        # packet, and slot loads dominated its profile.
        size = pkt.size
        in_flight = self._in_flight
        backlog = self._backlog_bytes
        while in_flight and in_flight[0][0] <= now:
            backlog -= in_flight.popleft()[1]
        buffer_bytes = self.buffer_bytes
        drop = buffer_bytes is not None and backlog + size > buffer_bytes
        if not drop:
            qdisc = self._qdisc
            if qdisc is not None:
                drop = qdisc.should_drop(backlog, size, now, self.capacity_bps)
        stats = self._stats
        if drop:
            self._backlog_bytes = backlog
            stats.bytes_dropped += size
            stats.packets_dropped += 1
            if self._tracer is not None:
                self._tracer.on_link_drop(self, pkt, now)
            drop_hook = self._drop_hook
            if drop_hook is not None:
                drop_hook(pkt)
            return False

        free_at = self._free_at
        start = free_at if free_at > now else now
        cap_sched = self._cap_sched
        if cap_sched is None:
            done = start + size * 8.0 / self.capacity_bps
        else:
            done = start + size * 8.0 / cap_sched[1][bisect_right(cap_sched[0], start)]
        self._free_at = done
        in_flight.append((done, size))
        backlog += size
        self._backlog_bytes = backlog
        stats.bytes_forwarded += size
        stats.packets_forwarded += 1
        if self._tracer is not None:
            self._tracer.on_link_enqueue(self.name, backlog)
        sim.schedule_at(done + self.prop_delay, self._exit, pkt)
        return True

    def _exit(self, pkt: Packet) -> None:
        if self._deliver is None:
            raise RuntimeError(f"link {self.name!r} has no delivery callback wired")
        self._deliver(pkt)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def utilization_of(self, bytes_forwarded: int, interval: float) -> float:
        """Average utilization implied by ``bytes_forwarded`` over ``interval``."""
        if interval <= 0:
            raise ValueError("interval must be positive")
        return (bytes_forwarded * 8.0 / interval) / self.capacity_bps

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cap_mbps = self.capacity_bps / 1e6
        return f"<Link {self.name} {cap_mbps:.2f}Mb/s prop={self.prop_delay * 1e3:.2f}ms>"
