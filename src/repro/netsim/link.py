"""Store-and-forward link model.

Each :class:`Link` is a FIFO transmission queue with:

* a fixed capacity ``C`` in bits per second,
* a propagation delay,
* an optional finite drop-tail buffer (in bytes).

The paper's path model (Section III-A) is exactly this: a sequence of
store-and-forward FIFO links, each with capacity ``C_i``, adequately buffered
in the verification simulations, finitely buffered in the TCP experiments of
Section VII.

Implementation
--------------
A link costs **one scheduled event per packet**: the delivery callback at
``transmission_complete + propagation_delay``.  Queueing is tracked
analytically with a "transmitter free at" clock (``_free_at``) plus a lazy
deque of in-flight transmissions used for byte-accurate backlog accounting
(needed for drop-tail decisions and queue-size monitoring).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from .engine import Simulator
from .packet import Packet

__all__ = ["Link", "LinkStats"]


class LinkStats:
    """Cumulative per-link counters, read by monitors.

    ``bytes_forwarded`` counts bytes *accepted for transmission* (the
    quantity an SNMP interface counter — and therefore MRTG — reports).
    """

    __slots__ = ("bytes_forwarded", "packets_forwarded", "bytes_dropped", "packets_dropped")

    def __init__(self) -> None:
        self.bytes_forwarded = 0
        self.packets_forwarded = 0
        self.bytes_dropped = 0
        self.packets_dropped = 0

    def snapshot(self) -> dict:
        """Plain-dict copy of the counters."""
        return {
            "bytes_forwarded": self.bytes_forwarded,
            "packets_forwarded": self.packets_forwarded,
            "bytes_dropped": self.bytes_dropped,
            "packets_dropped": self.packets_dropped,
        }


class Link:
    """One store-and-forward hop.

    Parameters
    ----------
    sim:
        The simulation kernel.
    capacity_bps:
        Transmission rate in bits per second (the paper's ``C_i``).
    prop_delay:
        Propagation delay in seconds appended after transmission completes.
    buffer_bytes:
        Drop-tail buffer size in bytes, or ``None`` for an infinite buffer
        (the paper's "adequately buffered to avoid losses" setting).
    name:
        Human-readable label used in monitors and error messages.
    deliver:
        Callback invoked as ``deliver(packet)`` when a packet exits the link
        (i.e., after transmission + propagation).  Wired by the owning
        network; may also be set after construction.
    qdisc:
        Optional active queue management policy (e.g.
        :class:`~repro.netsim.qdisc.REDQueue`) consulted *before* the
        drop-tail check; any object with a
        ``should_drop(backlog_bytes, pkt_size, now, capacity_bps)`` method.
    """

    __slots__ = (
        "sim",
        "capacity_bps",
        "prop_delay",
        "buffer_bytes",
        "name",
        "deliver",
        "stats",
        "drop_hook",
        "qdisc",
        "_free_at",
        "_in_flight",
        "_backlog_bytes",
    )

    def __init__(
        self,
        sim: Simulator,
        capacity_bps: float,
        prop_delay: float = 0.0,
        buffer_bytes: Optional[int] = None,
        name: str = "link",
        deliver: Optional[Callable[[Packet], None]] = None,
        qdisc=None,
    ):
        if capacity_bps <= 0:
            raise ValueError(f"link capacity must be positive, got {capacity_bps}")
        if prop_delay < 0:
            raise ValueError(f"propagation delay must be >= 0, got {prop_delay}")
        if buffer_bytes is not None and buffer_bytes <= 0:
            raise ValueError(f"buffer size must be positive or None, got {buffer_bytes}")
        self.sim = sim
        self.capacity_bps = float(capacity_bps)
        self.prop_delay = float(prop_delay)
        self.buffer_bytes = buffer_bytes
        self.name = name
        self.deliver = deliver
        self.stats = LinkStats()
        #: optional hook called with each dropped packet (used by tests and
        #: loss-sensitive experiments)
        self.drop_hook: Optional[Callable[[Packet], None]] = None
        self.qdisc = qdisc
        self._free_at = 0.0  # when the transmitter becomes idle
        self._in_flight: deque = deque()  # (tx_done_time, size_bytes)
        self._backlog_bytes = 0

    # ------------------------------------------------------------------
    # Queue accounting
    # ------------------------------------------------------------------
    def _purge(self, now: float) -> None:
        """Drop bookkeeping entries whose transmission has completed."""
        in_flight = self._in_flight
        while in_flight and in_flight[0][0] <= now:
            self._backlog_bytes -= in_flight.popleft()[1]

    def backlog_bytes(self, now: Optional[float] = None) -> int:
        """Bytes queued or in transmission at time ``now`` (default: current)."""
        self._purge(self.sim.now if now is None else now)
        return self._backlog_bytes

    def queueing_delay(self, now: Optional[float] = None) -> float:
        """Time a zero-size arrival at ``now`` would wait before service."""
        t = self.sim.now if now is None else now
        return max(0.0, self._free_at - t)

    def transmission_time(self, size_bytes: int) -> float:
        """Serialization delay of a packet of ``size_bytes`` on this link."""
        return size_bytes * 8.0 / self.capacity_bps

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def send(self, pkt: Packet) -> bool:
        """Accept ``pkt`` for transmission at the current simulated time.

        Returns ``True`` if the packet was enqueued, ``False`` if it was
        dropped by the drop-tail buffer.  On acceptance, the delivery
        callback fires at ``max(now, transmitter_free) + tx_time +
        prop_delay``.
        """
        now = self.sim.now
        self._purge(now)
        drop = (
            self.buffer_bytes is not None
            and self._backlog_bytes + pkt.size > self.buffer_bytes
        )
        if not drop and self.qdisc is not None:
            drop = self.qdisc.should_drop(
                self._backlog_bytes, pkt.size, now, self.capacity_bps
            )
        if drop:
            self.stats.bytes_dropped += pkt.size
            self.stats.packets_dropped += 1
            if self.drop_hook is not None:
                self.drop_hook(pkt)
            return False

        start = self._free_at if self._free_at > now else now
        done = start + pkt.size * 8.0 / self.capacity_bps
        self._free_at = done
        self._in_flight.append((done, pkt.size))
        self._backlog_bytes += pkt.size
        self.stats.bytes_forwarded += pkt.size
        self.stats.packets_forwarded += 1
        self.sim.schedule_at(done + self.prop_delay, self._exit, pkt)
        return True

    def _exit(self, pkt: Packet) -> None:
        if self.deliver is None:
            raise RuntimeError(f"link {self.name!r} has no delivery callback wired")
        self.deliver(pkt)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def utilization_of(self, bytes_forwarded: int, interval: float) -> float:
        """Average utilization implied by ``bytes_forwarded`` over ``interval``."""
        if interval <= 0:
            raise ValueError("interval must be positive")
        return (bytes_forwarded * 8.0 / interval) / self.capacity_bps

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cap_mbps = self.capacity_bps / 1e6
        return f"<Link {self.name} {cap_mbps:.2f}Mb/s prop={self.prop_delay * 1e3:.2f}ms>"
