"""Discrete-event simulation engine.

This module is the foundation of the :mod:`repro.netsim` substrate.  It
provides a minimal but complete discrete-event kernel in the style of NS or
SimPy:

* :class:`Simulator` — a monotonic virtual clock and a priority queue of
  scheduled callbacks.
* :class:`Event` — a one-shot synchronization primitive that processes can
  wait on and that any code can trigger.
* :class:`Process` — a generator-based coroutine.  A process function
  ``yield``-s either a number (sleep for that many simulated seconds) or an
  :class:`Event` (resume when it triggers, receiving the event's value).

Design notes
------------
The *hot path* of the network simulator (per-packet link events) uses plain
scheduled callbacks (:meth:`Simulator.schedule`), which cost one heap
operation each.  The generator-based process model is reserved for control
logic — the pathload state machine, TCP connection management, experiment
schedules — where clarity matters more than per-event cost.

All timing in the simulator is *virtual*: the engine never consults the wall
clock.  This is the key substitution that makes a pure-Python reproduction of
a delay-trend-sensitive tool like pathload viable (see DESIGN.md): one-way
delay differences of tens of microseconds are exact numbers here, not
measurements subject to interpreter jitter.

``Simulator(sanitize=True)`` enables the runtime sanitizer: non-finite
delays are rejected with diagnostics naming the callback, same-timestamp
pop order is verified FIFO-stable (violations land in ``diagnostics``), and
an event-order digest is recorded so two equal-seed runs can be asserted
identical via :meth:`Simulator.digest`.  The static counterpart of these
checks is ``python -m repro.lint`` (docs/linting.md).
"""

from __future__ import annotations

import hashlib
import heapq
import os
import math
import struct
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Simulator",
    "Event",
    "Process",
    "ScheduledCall",
    "SimulationError",
    "set_ambient_tracer",
]

#: Process-global tracer adopted by every Simulator built while it is set.
#: This is how sweep workers capture telemetry from task functions that
#: construct their own simulators internally (repro.parallel sets it around
#: each task invocation).  ``None`` in the common case, so the only cost on
#: untraced construction is one module-global read.
_ambient_tracer = None


def set_ambient_tracer(tracer):
    """Install ``tracer`` as the ambient tracer for new simulators.

    Returns the previously installed tracer (or ``None``) so callers can
    restore it in a ``finally`` block.  Simulators created while an ambient
    tracer is set behave exactly as if ``tracer.attach(sim)`` had been
    called immediately after construction.
    """
    global _ambient_tracer
    previous = _ambient_tracer
    _ambient_tracer = tracer
    return previous


#: Like the ambient tracer: the sampling profiler (repro.obs.profiler)
#: registers here so its sampler thread can correlate wall-clock samples
#: with the *simulated* clock of whichever simulator was built last.
_ambient_profiler = None


def set_ambient_profiler(profiler):
    """Install ``profiler`` to be notified of new simulators; returns the
    previous one.  Construction-time only — nothing on the event hot path
    ever consults it."""
    global _ambient_profiler
    previous = _ambient_profiler
    _ambient_profiler = profiler
    return previous


class SimulationError(RuntimeError):
    """Raised for invalid uses of the simulation kernel.

    Examples include scheduling an event in the past, triggering an event
    twice, or running a simulator whose clock was corrupted by a callback.
    """


class ScheduledCall:
    """Handle for a scheduled callback, allowing cancellation.

    Instances are returned by :meth:`Simulator.schedule` and
    :meth:`Simulator.schedule_at`.  Cancellation is *lazy*: the heap entry
    stays in the queue and is discarded when popped.
    """

    __slots__ = ("time", "fn", "args", "cancelled")

    def __init__(self, time: float, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from running.  Idempotent."""
        self.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<ScheduledCall t={self.time:.6f} {self.fn!r} ({state})>"


class _CalendarQueue:
    """Calendar queue (Brown 1988): an array of time-bucketed event lists.

    Alternative to the binary heap behind ``Simulator(scheduler="calendar")``.
    Push hashes the timestamp into a bucket (O(1)); pop scans forward from
    the current bucket for the earliest event of the current "year".  With
    the bucket width tracking the mean inter-event gap, both operations are
    amortized O(1) versus the heap's O(log n).

    Determinism contract: pops deliver the exact global ``(time, seq)``
    minimum — the per-bucket scan takes the lexicographic min of the same
    tuples the heap orders by — so the executed event order (and therefore
    ``Simulator.digest()``) is identical to the heap scheduler's.

    Entries are the same ``(time, seq, call)`` tuples the heap stores;
    cancelled entries stay queued and are discarded by the caller on pop,
    exactly as with the heap.  Non-finite timestamps cannot be bucketed and
    go to a small overflow list that is only consulted when every bucket is
    empty (the heap tolerates them outside sanitize mode, so the calendar
    must too).
    """

    __slots__ = (
        "buckets",
        "nbuckets",
        "width",
        "size",
        "cur",
        "bucket_top",
        "last_prio",
        "overflow",
    )

    def __init__(self) -> None:
        self.nbuckets = 8
        self.width = 1.0
        self.buckets: list[list] = [[] for _ in range(self.nbuckets)]
        self.size = 0
        self.cur = 0
        self.bucket_top = self.width
        self.last_prio = 0.0
        self.overflow: list = []

    def __len__(self) -> int:
        return self.size + len(self.overflow)

    def __iter__(self):
        for b in self.buckets:
            yield from b
        yield from self.overflow

    def push(self, item) -> None:
        t = item[0]
        if t - t != 0.0:  # non-finite (inf or nan): cannot be bucketed
            self.overflow.append(item)
            return
        k = int(t / self.width)
        self.buckets[k % self.nbuckets].append(item)
        self.size += 1
        if t < self.last_prio:
            # The clock can sit behind the scan anchor (a bounded run
            # peeks/pushes back a future event, then new events land
            # before it): rewind the anchor so the year scan starts at
            # or before every queued timestamp.
            self.last_prio = t
            self.cur = k % self.nbuckets
            self.bucket_top = (k + 1) * self.width
        if self.size > 2 * self.nbuckets:
            self._resize(2 * self.nbuckets)

    def pop(self):
        if not self.size:
            ov = self.overflow
            best = min(ov)
            ov.remove(best)
            return best
        i = self.cur
        top = self.bucket_top
        width = self.width
        buckets = self.buckets
        n = self.nbuckets
        for _ in range(n):
            b = buckets[i]
            if b:
                # The bucket's (time, seq) minimum is the year's minimum
                # iff it falls under the year bound: any in-window entry
                # would compare smaller than an out-of-window one.
                best = min(b)
                if best[0] < top:
                    b.remove(best)
                    self.cur = i
                    self.bucket_top = top
                    self.last_prio = best[0]
                    self.size -= 1
                    if self.size < self.nbuckets // 2 and self.nbuckets > 8:
                        self._resize(self.nbuckets // 2)
                    return best
            i = i + 1 if i + 1 < n else 0
            top += width
        # Nothing within one full year of buckets: the queue is sparse
        # relative to the clock — find the global minimum directly and
        # re-anchor the calendar position there.
        best = None
        for b in buckets:
            for item in b:
                if best is None or item < best:
                    best = item
        buckets[int(best[0] / width) % n].remove(best)
        k = int(best[0] / width)
        self.cur = k % n
        self.bucket_top = (k + 1) * width
        self.last_prio = best[0]
        self.size -= 1
        return best

    def _resize(self, newn: int) -> None:
        items = [item for b in self.buckets for item in b]
        # Brown's width rule: sample the head of the queue, set the bucket
        # width to ~3x the mean non-zero inter-event gap so a year's scan
        # usually ends within a bucket or two.
        items.sort()
        head = items[:32]
        gaps = [b[0] - a[0] for a, b in zip(head, head[1:]) if b[0] > a[0]]
        if gaps:
            width = 3.0 * (sum(gaps) / len(gaps))
            if width > 0.0:
                self.width = width
        self.nbuckets = newn
        self.buckets = [[] for _ in range(newn)]
        width = self.width
        for item in items:
            self.buckets[int(item[0] / width) % newn].append(item)
        k = int(self.last_prio / width)
        self.cur = k % newn
        self.bucket_top = (k + 1) * width


class Event:
    """One-shot event that :class:`Process` objects can wait on.

    An event starts *pending*.  Calling :meth:`trigger` makes it *triggered*,
    records a value, and resumes every waiting process (and fires every
    registered callback) in registration order.  Triggering twice raises
    :class:`SimulationError`; use :meth:`trigger_if_pending` when racing
    multiple sources (e.g., a completion vs. a timeout).
    """

    __slots__ = ("sim", "_callbacks", "triggered", "value")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self._callbacks: list[Callable[[Any], None]] = []
        self.triggered = False
        self.value: Any = None

    def add_callback(self, fn: Callable[[Any], None]) -> None:
        """Run ``fn(value)`` when the event triggers.

        If the event has already triggered, ``fn`` is invoked immediately
        (synchronously) with the recorded value.
        """
        if self.triggered:
            fn(self.value)
        else:
            self._callbacks.append(fn)

    def trigger(self, value: Any = None) -> None:
        """Trigger the event, resuming all waiters with ``value``."""
        if self.triggered:
            raise SimulationError("event triggered twice")
        self.triggered = True
        self.value = value
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            fn(value)

    def trigger_if_pending(self, value: Any = None) -> bool:
        """Trigger unless already triggered.  Returns True if it fired."""
        if self.triggered:
            return False
        self.trigger(value)
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"triggered value={self.value!r}" if self.triggered else "pending"
        return f"<Event {state}>"


class Process:
    """A generator-based coroutine driven by the simulator.

    The wrapped generator may yield:

    * ``int`` or ``float`` — sleep for that many simulated seconds;
    * :class:`Event` — suspend until the event triggers; the event's value
      becomes the result of the ``yield`` expression;
    * :class:`Process` — suspend until the other process finishes; its return
      value becomes the result of the ``yield`` expression.

    When the generator returns, the process's :attr:`done_event` triggers
    with the return value, so processes compose: a parent can
    ``result = yield child``.

    An exception escaping the generator is re-raised out of
    :meth:`Simulator.run` — simulation bugs fail loudly rather than being
    swallowed (errors should never pass silently).
    """

    __slots__ = ("sim", "_gen", "done_event", "name", "_terminated")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = ""):
        self.sim = sim
        self._gen = gen
        self.done_event = Event(sim)
        self.name = name or getattr(gen, "__name__", "process")
        self._terminated = False
        # First step happens via the scheduler so that creating a process
        # inside another process's step cannot reenter the generator stack.
        sim.schedule(0.0, self._step, None)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self._terminated

    def interrupt(self, exc: Optional[BaseException] = None) -> None:
        """Throw ``exc`` (default :class:`GeneratorExit`) into the process.

        The process's :attr:`done_event` always triggers — a parent doing
        ``result = yield child`` resumes (with the interrupted child's
        return value if it caught the exception and returned, else
        ``None``) instead of deadlocking.  If the generator lets ``exc``
        propagate, it is re-raised to the caller after the done event has
        fired.
        """
        if self._terminated:
            return
        self._terminated = True
        value: Any = None
        try:
            if exc is None:
                self._gen.close()
            else:
                try:
                    self._gen.throw(exc)
                except StopIteration as stop:
                    value = stop.value
        finally:
            self.done_event.trigger_if_pending(value)

    def add_callback(self, fn: Callable[[Any], None]) -> None:
        """Alias so a Process can be waited on like an Event."""
        self.done_event.add_callback(fn)

    def _step(self, send_value: Any) -> None:
        if self._terminated:
            return
        try:
            target = self._gen.send(send_value)
        except StopIteration as stop:
            self._terminated = True
            self.done_event.trigger(stop.value)
            return
        if isinstance(target, (int, float)):
            self.sim.schedule(float(target), self._step, None)
        elif isinstance(target, (Event, Process)):
            target.add_callback(self._step)
        else:
            self._terminated = True
            raise SimulationError(
                f"process {self.name!r} yielded unsupported value {target!r}; "
                "yield a delay (seconds), an Event, or a Process"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self._terminated else "alive"
        return f"<Process {self.name} ({state})>"


class Simulator:
    """The discrete-event kernel: virtual clock plus run loop.

    Typical use::

        sim = Simulator()
        sim.schedule(1.0, print, "one second in")

        def controller():
            yield 0.5
            done = sim.event()
            sim.schedule(2.0, done.trigger, "payload")
            value = yield done
            return value

        proc = sim.process(controller())
        sim.run()
        assert proc.done_event.value == "payload"
    """

    __slots__ = (
        "_queue",
        "_seq",
        "_now",
        "_running",
        "_sanitize",
        "_hasher",
        "_events_digested",
        "_last_pop",
        "_until",
        "diagnostics",
        "tracer",
    )

    #: Scheduler backing this class's event queue; the calendar-queue
    #: subclass overrides it.
    scheduler = "heap"

    def __new__(cls, sanitize: bool = False, scheduler: Optional[str] = None):
        if cls is Simulator:
            if scheduler is None:
                scheduler = os.environ.get("REPRO_SCHEDULER") or "heap"
            if scheduler == "calendar":
                return object.__new__(_CalendarSimulator)
            if scheduler != "heap":
                raise ValueError(
                    f"unknown scheduler {scheduler!r}: expected 'heap' or "
                    "'calendar'"
                )
        return object.__new__(cls)

    def __init__(
        self, sanitize: bool = False, scheduler: Optional[str] = None
    ) -> None:
        self._queue: list[tuple[float, int, ScheduledCall]] = []
        self._seq = 0
        self._now = 0.0
        self._running = False
        # Sanitizer mode: extra invariant checks and an event-order digest.
        # Off by default — the checks sit on the per-event hot path.
        self._sanitize = sanitize
        #: Upper time bound of the active ``run(until=...)`` /
        #: ``run_until(..., limit=...)`` call, or ``None`` outside a bounded
        #: run.  Event-eliding domains (``netsim.flowtransit``) read this to
        #: cap how far they may advance virtual state past the last real
        #: event without overshooting the caller's stop time.
        self._until: Optional[float] = None
        self._hasher = hashlib.blake2b(digest_size=16) if sanitize else None
        self._events_digested = 0
        self._last_pop: tuple[float, int] = (-math.inf, -1)
        #: Sanitizer findings that are suspicious but not fatal (currently
        #: only heap-order violations).  Always an empty list when
        #: ``sanitize=False``.
        self.diagnostics: list[str] = []
        #: Optional :class:`repro.obs.Tracer`, installed by ``Tracer.attach``
        #: or adopted from the process-global ambient tracer (see
        #: :func:`set_ambient_tracer`).  Read-only observer: it folds
        #: per-event engine metrics but never schedules events, so the event
        #: order (and :meth:`digest`) is identical with or without it.
        self.tracer = _ambient_tracer
        if _ambient_tracer is not None:
            _ambient_tracer._sims.append(self)
        if _ambient_profiler is not None:
            _ambient_profiler._watch(self)

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time, in seconds."""
        return self._now

    @property
    def sanitizing(self) -> bool:
        """True when the simulator was created with ``sanitize=True``."""
        return self._sanitize

    def digest(self) -> str:
        """Hex digest of the executed event order (sanitize mode only).

        The digest folds in, for every executed callback, its timestamp,
        its insertion sequence number, and the callable's qualified name.
        Two runs of the same experiment with the same seeds must produce
        identical digests; a mismatch means hidden nondeterminism (wall
        clock, unseeded RNG, iteration-order dependence) crept in.
        """
        if self._hasher is None:
            raise SimulationError(
                "digest() requires Simulator(sanitize=True): the event-order "
                "digest is only recorded in sanitizer mode"
            )
        return self._hasher.hexdigest()

    @staticmethod
    def _describe(fn: Callable[..., Any]) -> str:
        """Stable, address-free name of a callback for diagnostics/digests."""
        name = getattr(fn, "__qualname__", None)
        if name is None:
            # functools.partial and other wrappers: fall back to the wrapped
            # callable, then to the type name (never repr — it embeds ids).
            inner = getattr(fn, "func", None)
            name = getattr(inner, "__qualname__", None) or type(fn).__qualname__
        return name

    def _observe_pop(self, time: float, seq: int, call: ScheduledCall) -> None:
        """Per-event bookkeeping: sanitizer checks/digest, tracer metrics.

        Called from the run loops only when sanitizing or tracing, so the
        plain path pays nothing beyond the combined-flag check.
        """
        if self._sanitize:
            last_time, last_seq = self._last_pop
            if time < last_time:
                self.diagnostics.append(
                    f"event order violation: popped t={time!r} after t={last_time!r} "
                    f"(callback {self._describe(call.fn)})"
                )
            # Exact equality is intended here: heap keys are compared as bit
            # patterns to detect *ties*, not arithmetic near-coincidence.
            elif time == last_time and seq <= last_seq:  # simlint: disable=SIM003 -- exact tie detection on heap keys
                self.diagnostics.append(
                    f"tie at t={time!r} popped out of FIFO order: seq {seq} after "
                    f"{last_seq} (callback {self._describe(call.fn)})"
                )
            self._last_pop = (time, seq)
            self._hasher.update(struct.pack("<dq", time, seq))
            self._hasher.update(self._describe(call.fn).encode())
            self._events_digested += 1
        tracer = self.tracer
        if tracer is not None:
            tracer._engine_events += 1
            qlen = len(self._queue)
            if qlen > tracer._heap_high_water:
                tracer._heap_high_water = qlen

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> ScheduledCall:
        """Run ``fn(*args)`` after ``delay`` simulated seconds.

        ``delay`` must be non-negative.  Ties are broken FIFO (stable order).
        Returns a :class:`ScheduledCall` handle that can be cancelled.

        This is the per-packet hot path (one call per link event), so the
        body is :meth:`schedule_at` inlined: no second past-time check — a
        non-negative delay cannot move time backwards.
        """
        if delay < 0:
            raise SimulationError(
                f"cannot schedule in the past: delay={delay!r} for callback "
                f"{self._describe(fn)} at t={self._now!r}"
            )
        if self._sanitize and not math.isfinite(delay):
            raise SimulationError(
                f"non-finite delay {delay!r} for callback {self._describe(fn)} "
                f"at t={self._now!r} — NaN/inf delays corrupt heap ordering "
                "silently"
            )
        call = ScheduledCall(self._now + delay, fn, args)
        self._seq = seq = self._seq + 1
        heapq.heappush(self._queue, (call.time, seq, call))
        return call

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> ScheduledCall:
        """Run ``fn(*args)`` at absolute simulated time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time!r} (now={self._now!r}): time is "
                f"in the past for callback {self._describe(fn)}"
            )
        if self._sanitize and not math.isfinite(time):
            raise SimulationError(
                f"non-finite schedule time {time!r} for callback "
                f"{self._describe(fn)} at t={self._now!r} — NaN/inf times "
                "corrupt heap ordering silently"
            )
        call = ScheduledCall(time, fn, args)
        self._seq += 1
        heapq.heappush(self._queue, (time, self._seq, call))
        return call

    # ------------------------------------------------------------------
    # Primitives
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """Create a fresh pending :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Event:
        """An event that triggers after ``delay`` seconds with ``value``."""
        ev = Event(self)
        self.schedule(delay, ev.trigger, value)
        return ev

    def process(self, gen: Generator, name: str = "") -> Process:
        """Start a new :class:`Process` from generator ``gen``."""
        return Process(self, gen, name=name)

    def any_of(self, events: Iterable[Event]) -> Event:
        """An event that triggers when the *first* of ``events`` triggers.

        The combined event's value is ``(index, value)`` of the first child
        to fire.  Later triggers of the other children are ignored.
        """
        combined = Event(self)
        for index, ev in enumerate(events):
            ev.add_callback(
                lambda value, index=index: combined.trigger_if_pending((index, value))
            )
        return combined

    def all_of(self, events: Iterable[Event]) -> Event:
        """An event that triggers when *all* ``events`` have triggered.

        The combined value is the list of child values, in input order.
        """
        events = list(events)
        combined = Event(self)
        if not events:
            combined.trigger([])
            return combined
        remaining = [len(events)]
        values: list[Any] = [None] * len(events)

        def on_child(index: int, value: Any) -> None:
            values[index] = value
            remaining[0] -= 1
            if remaining[0] == 0:
                combined.trigger(values)

        for index, ev in enumerate(events):
            ev.add_callback(lambda value, index=index: on_child(index, value))
        return combined

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> float:
        """Process events until the queue is empty or ``until`` is reached.

        If ``until`` is given, the clock is advanced to exactly ``until``
        when the run stops because of it (even if no event sits at that
        time), matching NS semantics.  Returns the final clock value.
        """
        if self._running:
            raise SimulationError("run() called reentrantly")
        self._running = True
        # Everything below runs once per simulated event; bind the loop
        # invariants (queue list, heappop, observe flag) to locals so each
        # iteration pays no attribute lookups.  ``observe`` merges the
        # sanitizer and tracer checks into the one flag test the plain path
        # pays; neither can change mid-run, and ``self._queue`` is mutated
        # in place, never rebound.
        queue = self._queue
        pop = heapq.heappop
        observe = self._sanitize or self.tracer is not None
        self._until = until
        try:
            if until is None:
                while queue:
                    time, seq, call = pop(queue)
                    if call.cancelled:
                        continue
                    if observe:
                        self._observe_pop(time, seq, call)
                    self._now = time
                    call.fn(*call.args)
            else:
                while queue:
                    time, seq, call = queue[0]
                    if time > until:
                        break
                    pop(queue)
                    if call.cancelled:
                        continue
                    if observe:
                        self._observe_pop(time, seq, call)
                    self._now = time
                    call.fn(*call.args)
                if self._now < until:
                    self._now = until
        finally:
            self._running = False
            self._until = None
        return self._now

    def run_until(self, event: Event, limit: Optional[float] = None) -> Any:
        """Run until ``event`` triggers; return its value.

        Raises :class:`SimulationError` if the queue drains (or ``limit`` is
        hit) before the event fires — a deadlock guard for tests.
        """
        if self._running:
            raise SimulationError("run_until() called reentrantly")
        self._running = True
        # Same per-event local bindings as :meth:`run`.
        queue = self._queue
        pop = heapq.heappop
        observe = self._sanitize or self.tracer is not None
        self._until = limit
        try:
            while not event.triggered:
                if not queue:
                    raise SimulationError(
                        "event queue drained before awaited event triggered"
                    )
                time, seq, call = pop(queue)
                if call.cancelled:
                    continue
                if limit is not None and time > limit:
                    raise SimulationError(
                        f"time limit {limit}s reached before awaited event triggered"
                    )
                if observe:
                    self._observe_pop(time, seq, call)
                self._now = time
                call.fn(*call.args)
        finally:
            self._running = False
            self._until = None
        return event.value

    def pending_count(self) -> int:
        """Number of not-yet-cancelled entries in the event queue."""
        return sum(1 for _t, _s, call in self._queue if not call.cancelled)

    def peek_time(self) -> Optional[float]:
        """Timestamp of the earliest pending event, or ``None`` if empty.

        Cancelled heads are discarded as a side effect (they would be
        discarded by the next pop anyway).  Event-eliding domains use this
        to cap how far virtual state may advance without overshooting a
        real event.
        """
        q = self._queue
        pop = heapq.heappop
        while q and q[0][2].cancelled:
            pop(q)
        return q[0][0] if q else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator t={self._now:.6f} queued={len(self._queue)}>"


class _CalendarSimulator(Simulator):
    """:class:`Simulator` backed by a :class:`_CalendarQueue`.

    Selected via ``Simulator(scheduler="calendar")`` (or the
    ``REPRO_SCHEDULER=calendar`` environment variable).  Executes the exact
    same event order as the heap scheduler — ``digest()`` is bit-identical —
    only the queue data structure differs.  See docs/performance.md for the
    measured head-to-head and why the heap remains the default.
    """

    __slots__ = ()

    scheduler = "calendar"

    def __init__(
        self, sanitize: bool = False, scheduler: Optional[str] = None
    ) -> None:
        super().__init__(sanitize)
        self._queue = _CalendarQueue()  # type: ignore[assignment]

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> ScheduledCall:
        if delay < 0:
            raise SimulationError(
                f"cannot schedule in the past: delay={delay!r} for callback "
                f"{self._describe(fn)} at t={self._now!r}"
            )
        if self._sanitize and not math.isfinite(delay):
            raise SimulationError(
                f"non-finite delay {delay!r} for callback {self._describe(fn)} "
                f"at t={self._now!r} — NaN/inf delays corrupt heap ordering "
                "silently"
            )
        call = ScheduledCall(self._now + delay, fn, args)
        self._seq = seq = self._seq + 1
        self._queue.push((call.time, seq, call))
        return call

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> ScheduledCall:
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time!r} (now={self._now!r}): time is "
                f"in the past for callback {self._describe(fn)}"
            )
        if self._sanitize and not math.isfinite(time):
            raise SimulationError(
                f"non-finite schedule time {time!r} for callback "
                f"{self._describe(fn)} at t={self._now!r} — NaN/inf times "
                "corrupt heap ordering silently"
            )
        call = ScheduledCall(time, fn, args)
        self._seq += 1
        self._queue.push((time, self._seq, call))
        return call

    def run(self, until: Optional[float] = None) -> float:
        if self._running:
            raise SimulationError("run() called reentrantly")
        self._running = True
        queue = self._queue
        pop = queue.pop
        observe = self._sanitize or self.tracer is not None
        self._until = until
        try:
            if until is None:
                while queue:
                    time, seq, call = pop()
                    if call.cancelled:
                        continue
                    if observe:
                        self._observe_pop(time, seq, call)
                    self._now = time
                    call.fn(*call.args)
            else:
                while queue:
                    time, seq, call = pop()
                    if time > until:
                        # Leave it queued, exactly like the heap's peek.
                        queue.push((time, seq, call))
                        break
                    if call.cancelled:
                        continue
                    if observe:
                        self._observe_pop(time, seq, call)
                    self._now = time
                    call.fn(*call.args)
                if self._now < until:
                    self._now = until
        finally:
            self._running = False
            self._until = None
        return self._now

    def run_until(self, event: Event, limit: Optional[float] = None) -> Any:
        if self._running:
            raise SimulationError("run_until() called reentrantly")
        self._running = True
        queue = self._queue
        pop = queue.pop
        observe = self._sanitize or self.tracer is not None
        self._until = limit
        try:
            while not event.triggered:
                if not queue:
                    raise SimulationError(
                        "event queue drained before awaited event triggered"
                    )
                time, seq, call = pop()
                if call.cancelled:
                    continue
                if limit is not None and time > limit:
                    raise SimulationError(
                        f"time limit {limit}s reached before awaited event triggered"
                    )
                if observe:
                    self._observe_pop(time, seq, call)
                self._now = time
                call.fn(*call.args)
        finally:
            self._running = False
            self._until = None
        return event.value

    def peek_time(self) -> Optional[float]:
        queue = self._queue
        while queue:
            time, seq, call = queue.pop()
            if call.cancelled:
                continue
            queue.push((time, seq, call))
            return time
        return None
