"""Packet objects flowing through the simulated network.

A :class:`Packet` is deliberately lightweight (``__slots__``-based) because
the simulator creates one per cross-traffic arrival and per probe packet —
hundreds of thousands per experiment.

Timestamp fields
----------------
``created_at``
    True simulated time at which the packet entered the network.
``sender_stamp``
    Timestamp written by the *sending host's clock* (which may have offset,
    skew, or context-switch noise relative to true time).  This is what a
    real pathload sender writes into the UDP payload, and what the receiver
    uses to compute relative one-way delays.
``delivered_at``
    True simulated time of final delivery, filled in by the network.
"""

from __future__ import annotations

import itertools
from typing import Any, Optional

__all__ = ["Packet", "PacketKind"]

_packet_ids = itertools.count()


class PacketKind:
    """Namespace of packet-kind constants (plain strings, cheap to compare)."""

    PROBE = "probe"
    CROSS = "cross"
    DATA = "data"  # TCP data segment
    ACK = "ack"  # TCP acknowledgment
    PING = "ping"
    PONG = "pong"
    CONTROL = "control"  # pathload control-channel message


class Packet:
    """A single packet.

    Parameters
    ----------
    size:
        Wire size in bytes (includes headers; the simulator does not model
        layer-2 framing separately — see the paper's ``L >= 200 B``
        constraint, whose purpose is precisely to make header effects
        negligible).
    flow_id:
        Opaque flow identifier; the network uses it only for per-flow
        accounting, delivery is explicit per packet.
    seq:
        Sequence number within the flow (stream position for probes, byte
        sequence for TCP).
    kind:
        One of :class:`PacketKind`.
    payload:
        Arbitrary protocol data (e.g., a TCP segment header object).
    """

    __slots__ = (
        "pid",
        "size",
        "flow_id",
        "seq",
        "kind",
        "payload",
        "created_at",
        "sender_stamp",
        "delivered_at",
        "hop",
        "route",
        "handler",
    )

    def __init__(
        self,
        size: int,
        flow_id: str = "",
        seq: int = 0,
        kind: str = PacketKind.CROSS,
        payload: Any = None,
        created_at: float = 0.0,
        sender_stamp: float = 0.0,
    ):
        if size <= 0:
            raise ValueError(f"packet size must be positive, got {size}")
        self.pid = next(_packet_ids)
        self.size = size
        self.flow_id = flow_id
        self.seq = seq
        self.kind = kind
        self.payload = payload
        self.created_at = created_at
        self.sender_stamp = sender_stamp
        self.delivered_at: Optional[float] = None
        # Routing state, managed by the network:
        self.hop = 0
        self.route: tuple = ()
        self.handler = None

    @property
    def bits(self) -> int:
        """Wire size in bits."""
        return self.size * 8

    def one_way_delay(self) -> float:
        """True one-way delay (requires the packet to have been delivered)."""
        if self.delivered_at is None:
            raise ValueError("packet has not been delivered")
        return self.delivered_at - self.created_at

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Packet #{self.pid} {self.kind} flow={self.flow_id!r} "
            f"seq={self.seq} {self.size}B>"
        )
