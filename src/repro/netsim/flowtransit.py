"""Event-elided TCP flows: the flow-transit domain.

PR 4 elided per-packet events for background cross traffic, PR 6 for the
foreground probe streams.  What remains on the hot path of the Section
VII experiments (fig15-18) is TCP itself: every segment of the BTC
transfer costs two link events and two endpoint callbacks, and — worse —
an *active* TCP flow held a per-packet claim that forced every probe
stream back to the per-packet path, so the intrusiveness study paid both
costs at once.

This module generalizes the stream-transit idea from one planned probe
stream to a *domain*: a per-network virtual event loop that simulates
every attached TCP flow (and any concurrent probe streams) with cheap
tuples on a private heap instead of engine events.  The core loop is the
same per-hop Lindley recursion ``start = max(arrival, free_at); done =
start + size*8/C`` merged against each hop's
:class:`~repro.netsim.bulkarrivals.CrossAggregator` arrays, with exact
drop-tail replay on finite buffers — but where the stream planner
computes a whole stream at send time, the domain interleaves *feedback*
traffic (data -> ack -> cwnd growth -> more data) by walking its virtual
heap in timestamp order.

Correctness rests on one invariant — the **cap-bounded walk**:

* Virtual events are processed only up to ``cap = min(next real engine
  event, the active ``run(until=...)`` bound, now + horizon)``.  No real
  callback can therefore observe — or interfere with — virtual state
  that lies in its own future; there is no speculation and no rollback.
* Each hop carries a *persistent* :class:`~repro.netsim.streamtransit.HopAgenda`
  recording every virtual admission (time, size, accept, done).  At any
  real sync point — a foreign ``Link.send`` (ping, per-packet cross), a
  monitor's ``stats`` read, a backlog query — :meth:`Link._sync_fg`
  interleaves those records with the cross arrays, so real link state,
  ``LinkStats`` and drop decisions are bit-identical to the per-packet
  path at every observation instant.
* Flow state (cwnd, RTT estimators, receiver buffers) is mutated
  directly on the real ``TCPSender``/``TCPReceiver`` objects while their
  ``sim``/``network`` attributes are shimmed; because of the cap
  invariant, any real read at a run boundary sees exactly the per-packet
  values.

Reno flows without delayed ACKs run through inlined transmit/ack kernels
(bit-identical mirrors of ``TCPSender._process_new_ack``/``_try_send``
and ``TCPReceiver.on_segment``); everything else — Vegas, delayed ACKs,
recovery episodes, RTO — executes the *real* transport code under the
shims, so there is exactly one implementation of the tricky parts.

Fallback mirrors PR 6's optimistic-plan/chokepoint-revocation contract:
ineligible configurations (tracer attached, qdisc/drop hook/rebound
deliver, impure clocks, ``fast=False``/``REPRO_NO_FAST``) never attach,
and a mid-flight ineligibility (link decommission, tracer attach)
*dissolves* the domain — every in-flight virtual packet materializes as
an ordinary engine event at its already-committed time, flows re-claim
the per-packet path, adopted streams rewind their unsent suffix — so the
sample path equals a never-planned run.  ``Simulator(sanitize=True)``
shadow-replays every round's admissions per hop and raises on any
divergence.
"""

from __future__ import annotations

import heapq
import warnings
from bisect import bisect_right
from collections import deque
from typing import TYPE_CHECKING, Optional

from ..core.probing import PacketRecord
from . import kernels
from .engine import SimulationError
from .fastpath import resolve_fast
from .packet import Packet, PacketKind
from .streamtransit import HopAgenda, StreamPlan, _impure, plan_stream

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..transport.probe import ProbeChannel, _StreamRun
    from ..transport.tcp import TCPSender

__all__ = ["FlowTransitDomain", "FLOW_FALLBACK_REASONS", "try_attach_flow"]

#: Every reason ``repro_fastpath_flow_fallback_total`` may carry, for
#: declared-but-zero metric export (docs/observability.md).
FLOW_FALLBACK_REASONS: tuple[str, ...] = (
    "disabled",
    "tracer",
    "link-config",
    "link-decommission",
    "capacity-schedule",
)

_INF = float("inf")

# One warning per process: a full tracer silently costing the flow-transit
# fast path is the single most surprising perf cliff in a traced run.
_warned_tracer = False


def _warn_tracer_fallback() -> None:
    global _warned_tracer
    if not _warned_tracer:
        _warned_tracer = True
        warnings.warn(
            "a full tracer forces TCP flows onto the per-packet path "
            "(reason 'tracer' in repro_fastpath_flow_fallback_total); use a "
            "light tracer (--trace-light / Tracer(light=True)) to keep the "
            "flow-transit fast path while collecting aggregate telemetry",
            RuntimeWarning,
            stacklevel=3,
        )

#: Maximum virtual lookahead per round when no real event bounds the walk.
#: A persistent (BTC) flow is self-sustaining — data begets acks begets
#: data — so an unbounded walk would never return; per-packet ``run()``
#: with such a flow never terminates either, and the horizon preserves
#: that equivalence round by round instead of hanging inside one round.
_HORIZON = 64.0

# Virtual event kinds (tuple tag at index 2; index 1 is a unique sequence
# so heap comparisons never reach the payload).
K_ADMIT = 0  # (t, q, K_ADMIT, links, hop, size, tail): arrival at links[hop]
K_DATA = 1  # (t, q, K_DATA, fs, seq, length): segment delivery at receiver
K_ACK = 2  # (t, q, K_ACK, fs, ack): cumulative-ACK delivery at sender
K_TIMER = 3  # (t, q, K_TIMER, vt): shimmed sim.schedule() callback
K_XMIT = 4  # (t, q, K_XMIT, links, size, tail): out-of-walk send at t
K_SSEND = 5  # (t, q, K_SSEND, ss, i): probe-stream send of schedule index i
K_SDELIV = 6  # (t, q, K_SDELIV, ss, i): probe packet i delivery at receiver

# transport.tcp imports this module, so its segment bookkeeping class is
# resolved lazily on first attach.
_SegmentInfo = None


class _VTimer:
    """Virtual-heap stand-in for a :class:`ScheduledCall` (lazy cancel)."""

    __slots__ = ("time", "fn", "args", "cancelled", "q", "pending")

    def __init__(self, time, fn, args):
        self.time = time
        self.fn = fn
        self.args = args
        self.cancelled = False
        # RTO timers the ack kernel creates stay off the heap (pending=True,
        # with their would-have-been heap tiebreak in ``q``) until either
        # the walk clock reaches them or the walk ends; almost all are
        # cancelled by the next ack before ever touching the heap.
        self.q = 0
        self.pending = False

    def cancel(self) -> None:
        self.cancelled = True


class _VSim:
    """``sim`` shim installed on attached endpoints.

    ``now`` reads the walk's virtual clock while a round is in progress
    and the real clock otherwise; ``schedule``/``schedule_at`` land on
    the domain's virtual heap as :class:`_VTimer` entries.
    """

    __slots__ = ("domain",)

    def __init__(self, domain):
        self.domain = domain

    @property
    def now(self):
        d = self.domain
        return d._vnow if d._walking else d.sim._now

    def schedule(self, delay, fn, *args):
        d = self.domain
        t = (d._vnow if d._walking else d.sim._now) + delay
        return d._vtimer(t, fn, args)

    def schedule_at(self, time, fn, *args):
        return self.domain._vtimer(time, fn, args)


class _FlowVNet:
    """``network`` shim installed on attached endpoints: sends become
    virtual hop admissions instead of real ``Link.send`` calls."""

    __slots__ = ("domain", "fs")

    def __init__(self, domain, fs):
        self.domain = domain
        self.fs = fs

    def send_forward(self, pkt, handler) -> bool:
        fs = self.fs
        self.domain._send(fs.fwdv, pkt.size, (K_DATA, fs, pkt.seq, pkt.payload))
        return True

    def send_reverse(self, pkt, handler) -> bool:
        fs = self.fs
        self.domain._send(fs.revv, pkt.size, (K_ACK, fs, pkt.seq))
        return True

    # Claim bookkeeping is a planner heuristic; attached flows hold no
    # claim, but delegate defensively in case transport code reaches it.
    def claim_per_packet(self) -> None:  # pragma: no cover - defensive
        self.domain.network.claim_per_packet()

    def release_per_packet(self) -> None:  # pragma: no cover - defensive
        self.domain.network.release_per_packet()


class _AgendaHook:
    """``plan`` stand-in on the domain's persistent hop agendas.

    ``Link.send``/``CrossAggregator.register`` call ``plan.revoke(...)``
    at the interference chokepoints.  For the domain, a foreign send or a
    source registration is *not* fatal — all recorded admissions lie at
    or before now (cap invariant), so folding them (``link.sync()``)
    re-establishes exactness and the walk continues next round.  Only a
    link decommission dissolves the domain.
    """

    __slots__ = ("domain", "link")

    def __init__(self, domain, link):
        self.domain = domain
        self.link = link

    def revoke(self, reason: str) -> None:
        if reason == "link-decommission":
            self.domain.dissolve(reason)
        else:  # "foreign-send" / "source-registered": fold and carry on
            self.link.sync()


class _VLink:
    """Per-link virtual queue state, refreshed from the real link at the
    start of every round (after a full ``sync()``)."""

    __slots__ = (
        "link",
        "agenda",
        "cap",
        "prop",
        "buffer_bytes",
        "agg",
        "free_at",
        "backlog",
        "infl",
        "vci",
        # cached agenda arrays (compaction dels in place, so these stay valid)
        "ap",
        "aac",
        "ad",
        "asz",
    )

    def __init__(self, link, agenda):
        self.link = link
        self.agenda = agenda
        self.infl = deque()
        self.ap = agenda.pairs
        self.aac = agenda.accepts
        self.ad = agenda.dones
        self.asz = agenda.sizes


class _FlowState:
    """Domain-side bookkeeping for one attached TCP flow."""

    __slots__ = (
        "sender",
        "receiver",
        "fwdv",
        "revv",
        "hdr",
        "ack_size",
        "flow_id",
        "tx_kernel",
        "rx_kernel",
        "vnet",
        "user_on_complete",
        "completing",
        "detached",
        "t0",
        "seg0",
        # kernel-cached config (config objects are not mutated mid-flow)
        "mss",
        "adv",
        "min_rto",
        "max_rto",
    )


class _StreamState:
    """Domain-side bookkeeping for one adopted probe stream."""

    __slots__ = (
        "channel",
        "run",
        "done",
        "plan",
        "sched",
        "n",
        "size",
        "fwdv",
        "sender_read",
        "receiver_read",
        "resume_i",
    )


class _DomainStreamPlan(StreamPlan):
    """Plan object handed to adopted streams.

    Deliveries are produced by the domain walk, so the plan itself holds
    no hop agendas; revocation (reachable only through defensive paths —
    the chokepoints talk to the domain's own hooks) dissolves the whole
    domain, which performs this plan's rewind along with everything else.
    """

    __slots__ = ("domain",)

    def __init__(self, channel, run, done_event, domain):
        super().__init__(channel, run, done_event)
        self.domain = domain

    def revoke(self, reason: str) -> None:  # pragma: no cover - safety net
        if self.revoked:
            return
        if self.domain.alive:
            self.domain.dissolve(reason)


class FlowTransitDomain:
    """The per-network virtual event loop carrying flows and streams."""

    __slots__ = (
        "sim",
        "network",
        "links",
        "alive",
        "flows",
        "streams",
        "vsim",
        "_vheap",
        "_vseq",
        "_vnow",
        "_limit",
        "_walking",
        "_vl",
        "_round_call",
        "_pmin",
    )

    def __init__(self, sim, network):
        self.sim = sim
        self.network = network
        self.alive = True
        self.flows: list[_FlowState] = []
        self.streams: list[_StreamState] = []
        self.vsim = _VSim(self)
        self._vheap: list = []
        self._vseq = 0
        self._vnow = sim._now
        self._limit = 0.0
        self._walking = False
        self._round_call = None
        self._pmin = _INF
        # One persistent agenda per distinct link (forward and reverse may
        # share hops in exotic topologies; dedupe preserves order).
        links = tuple(dict.fromkeys((*network.forward_links, *network.reverse_links)))
        self.links = links
        self._vl = {}
        for link in links:
            hook = _AgendaHook(self, link)
            proto = Packet(40, flow_id="flow-transit", kind=PacketKind.DATA)
            agenda = HopAgenda(
                link, [], [], [], [], 0, proto, hook, sizes=[], persistent=True
            )
            agenda.t_end = _INF
            agenda.ci_start = 0
            link._agenda = agenda
            self._vl[link] = _VLink(link, agenda)

    # ------------------------------------------------------------------
    # Virtual scheduling
    # ------------------------------------------------------------------
    def _vtimer(self, time, fn, args) -> _VTimer:
        vt = _VTimer(time, fn, args)
        self._vseq = q = self._vseq + 1
        heapq.heappush(self._vheap, (time, q, K_TIMER, vt))
        if not self._walking:
            self._kick(time)
        return vt

    def _send(self, vlinks, size, tail) -> None:
        if self._walking:
            self._hop_admit(vlinks, 0, self._vnow, size, tail)
        else:
            # Out-of-walk send (e.g. the initial burst from ``start()``):
            # defer admission into a round at the same instant, so it is
            # computed against freshly synced link state.
            t = self.sim._now
            self._vseq = q = self._vseq + 1
            heapq.heappush(self._vheap, (t, q, K_XMIT, vlinks, size, tail))
            self._kick(t)

    def _defer(self, fn, *args):
        """Schedule ``fn`` as a *real* event at the walk's current instant
        and lower the walk limit so it runs before any later virtual work."""
        t = self._vnow
        call = self.sim.schedule_at(t, fn, *args)
        if t < self._limit:
            self._limit = t
        return call

    def _kick(self, t: float) -> None:
        if not self.alive or self._walking:
            return
        rc = self._round_call
        if rc is not None and not rc.cancelled:
            if rc.time <= t:
                return
            rc.cancel()
        self._round_call = self.sim.schedule_at(t, self._round)

    # ------------------------------------------------------------------
    # The Lindley admission core
    # ------------------------------------------------------------------
    def _fold_cross(self, vl: _VLink, t: float) -> None:
        """Fold cross arrivals <= ``t`` into ``vl``'s virtual server state,
        winning exact ties, with the same per-arrival purge ``_sync_fg``
        performs.  Cross drops accrue stats only at the real fold."""
        agg = vl.agg
        if agg._horizon < t:
            agg.extend_until(t)
        c_times = agg.times
        c_sizes = agg.sizes
        ci = vl.vci
        cn = len(c_times)
        if ci >= cn or c_times[ci] > t:
            return
        free_at = vl.free_at
        backlog = vl.backlog
        infl = vl.infl
        cap = vl.cap
        buffer_bytes = vl.buffer_bytes
        if buffer_bytes is None:
            # Infinite buffer: the whole slice folds unconditionally, so
            # the vector Lindley kernel applies.  The scalar loop's final
            # state is "every entry completing after the last folded
            # arrival, plus the purge/backlog that implies" — exactly the
            # kernel's ``keep_after = tc_last`` contract.
            cut = bisect_right(c_times, t, ci, cn)
            if cut - ci >= kernels.MIN_BATCH and kernels.enabled():
                tc_last = c_times[cut - 1]
                folded = kernels.fold_slice(
                    free_at, c_times, c_sizes, ci, cut, cap, tc_last,
                    agg.arrays(ci, cut),
                )
                if folded is not None:
                    free_at, kept, kept_bytes, _fold_bytes = folded
                    while infl and infl[0][0] <= tc_last:
                        backlog -= infl.popleft()[1]
                    infl.extend(kept)
                    vl.vci = cut
                    vl.free_at = free_at
                    vl.backlog = backlog + kept_bytes
                    return
        while ci < cn:
            tc = c_times[ci]
            if tc > t:
                break
            sz = c_sizes[ci]
            while infl and infl[0][0] <= tc:
                backlog -= infl.popleft()[1]
            if buffer_bytes is not None and backlog + sz > buffer_bytes:
                pass  # cross drop: stats accrue at the real fold
            else:
                start = free_at if free_at > tc else tc
                free_at = start + sz * 8.0 / cap
                infl.append((free_at, sz))
                backlog += sz
            ci += 1
        vl.vci = ci
        vl.free_at = free_at
        vl.backlog = backlog

    def _admit(self, vl: _VLink, t: float, size: int) -> Optional[float]:
        """Admit ``size`` bytes at ``vl`` at time ``t``; return the
        transmission-complete time, or ``None`` on a drop-tail drop.

        Bit-identical mirror of the accounting ``Link._sync_fg`` performs
        when it later folds this recorded admission: cross arrivals <= t
        first (winning exact ties), per-arrival purges, then the
        foreground admission itself.
        """
        if vl.agg is not None:
            self._fold_cross(vl, t)
        free_at = vl.free_at
        backlog = vl.backlog
        infl = vl.infl
        cap = vl.cap
        buffer_bytes = vl.buffer_bytes
        while infl and infl[0][0] <= t:
            backlog -= infl.popleft()[1]
        vl.ap.append(t)  # flow agendas record bare arrival times
        vl.asz.append(size)
        if buffer_bytes is not None and backlog + size > buffer_bytes:
            vl.aac.append(False)
            vl.ad.append(0.0)
            vl.free_at = free_at
            vl.backlog = backlog
            return None
        start = free_at if free_at > t else t
        done = start + size * 8.0 / cap
        vl.aac.append(True)
        vl.ad.append(done)
        infl.append((done, size))
        vl.free_at = done
        vl.backlog = backlog + size
        return done

    def _hop_admit(self, vlinks, hop: int, t: float, size: int, tail) -> None:
        vl = vlinks[hop]
        done = self._admit(vl, t, size)
        if done is None:
            return  # dropped: the packet silently vanishes, as on a real path
        t_out = done + vl.prop
        self._vseq = q = self._vseq + 1
        hop += 1
        if hop < len(vlinks):
            heapq.heappush(self._vheap, (t_out, q, K_ADMIT, vlinks, hop, size, tail))
        else:
            heapq.heappush(self._vheap, (t_out, q) + tail)

    # ------------------------------------------------------------------
    # The round: snapshot, walk, reschedule
    # ------------------------------------------------------------------
    def _round(self) -> None:
        self._round_call = None
        if not self.alive:
            return
        sim = self.sim
        tracer = sim.tracer
        if tracer is not None and not tracer.light:
            # A full tracer wants per-event visibility; hand everything
            # back.  Light tracers only buffer aggregate counters, so the
            # domain keeps walking (docs/observability.md).
            _warn_tracer_fallback()
            self.dissolve("tracer")
            return
        vheap = self._vheap
        heappop = heapq.heappop
        if self.streams:
            live = [ss for ss in self.streams if not ss.run.done]
            if len(live) != len(self.streams):
                self.streams = live
        while vheap and vheap[0][2] == K_TIMER and vheap[0][3].cancelled:
            heappop(vheap)
        if not vheap:
            return
        now = sim._now
        head = sim.peek_time()
        cap = head if head is not None else _INF
        until = sim._until
        if until is not None and until < cap:
            cap = until
        h = now + _HORIZON
        if h < cap:
            cap = h
        t0 = vheap[0][0]
        if t0 > now and t0 >= cap:
            self._round_call = sim.schedule_at(t0, self._round)
            return
        sanitize = sim._sanitize
        snaps = [] if sanitize else None
        vls = self._vl
        for link in self.links:
            link.sync()
            vl = vls[link]
            ag = vl.agenda
            if ag.idx > 4096:
                del ag.pairs[: ag.idx]
                del ag.accepts[: ag.idx]
                del ag.dones[: ag.idx]
                del ag.sizes[: ag.idx]
                ag.idx = 0
            vl.cap = link.capacity_bps
            vl.prop = link.prop_delay
            vl.buffer_bytes = link.buffer_bytes
            vl.free_at = link._free_at
            vl.backlog = link._backlog_bytes
            infl = vl.infl
            infl.clear()
            infl.extend(link._in_flight)
            agg = link._agg
            vl.agg = agg
            vl.vci = agg.idx if agg is not None else 0
            if sanitize:
                snaps.append(
                    (vl, vl.free_at, vl.backlog, tuple(infl), vl.vci, len(ag.pairs))
                )
        self._walking = True
        self._vnow = now
        self._limit = cap
        ev_ack = self._ev_ack
        ev_data = self._ev_data
        try:
            while True:
                if vheap:
                    ev = vheap[0]
                    t = ev[0]
                else:
                    ev = None
                    t = _INF
                if self._pmin <= t:
                    if self._pmin == _INF:
                        break  # heap empty, no timers postponed
                    # A postponed RTO timer is due at or before the head
                    # event; surface it with its original tiebreak so the
                    # heap restores exact eager-push dispatch order.
                    self._flush_pending()
                    continue
                if ev is None or (t > now and t >= self._limit):
                    break
                heappop(vheap)
                k = ev[2]
                self._vnow = t
                if k == K_ACK:
                    ev_ack(t, ev[3], ev[4])
                elif k == K_DATA:
                    ev_data(t, ev[3], ev[4], ev[5])
                elif k == K_TIMER:
                    vt = ev[3]
                    if not vt.cancelled:
                        vt.fn(*vt.args)
                elif k == K_ADMIT:
                    self._hop_admit(ev[3], ev[4], t, ev[5], ev[6])
                elif k == K_XMIT:
                    self._hop_admit(ev[3], 0, t, ev[4], ev[5])
                elif k == K_SSEND:
                    self._ev_ssend(t, ev[3], ev[4])
                else:  # K_SDELIV
                    self._ev_sdeliv(t, ev[3], ev[4])
        finally:
            if self._pmin < _INF:
                self._flush_pending()
            self._walking = False
        if sanitize:
            self._verify_round(snaps)
        if not self.alive:
            return
        while vheap and vheap[0][2] == K_TIMER and vheap[0][3].cancelled:
            heappop(vheap)
        if vheap:
            self._round_call = sim.schedule_at(vheap[0][0], self._round)

    def _flush_pending(self) -> None:
        """Move live postponed RTO timers onto the virtual heap.

        Each carries the tiebreak ``q`` it was assigned at creation, so
        once pushed the heap pops it exactly where an eager push would
        have; cancelled ones (the overwhelmingly common case — the next
        ack kills them) are simply dropped without ever touching the heap.
        The ``_pmin`` watermark is stale-low: it may name a cancelled
        timer, in which case this flush is a no-op that resets it.
        """
        vheap = self._vheap
        for fs in self.flows:
            vt = fs.sender._rto_timer
            if type(vt) is _VTimer and vt.pending:
                vt.pending = False
                if not vt.cancelled:
                    heapq.heappush(vheap, (vt.time, vt.q, K_TIMER, vt))
        self._pmin = _INF

    # ------------------------------------------------------------------
    # TCP kernels (bit-identical inlines of the transport hot path)
    # ------------------------------------------------------------------
    def _ev_ack(self, t: float, fs: _FlowState, ack: int) -> None:
        snd = fs.sender
        if snd._stopped or snd._completed:
            return
        if not (fs.tx_kernel and not snd.in_recovery and ack > snd.snd_una):
            # Dup-acks, recovery episodes, Vegas, traced flows: run the
            # real transport code under the shims.
            pkt = Packet(fs.ack_size, flow_id=fs.flow_id, seq=ack, kind=PacketKind.ACK)
            snd.on_ack(pkt)
            return
        # Inline of _process_new_ack (non-recovery reno) + the on_ack tail.
        mss = fs.mss
        infl = snd._in_flight
        srtt = snd.srtt
        rttvar = snd.rttvar
        rto = snd.rto
        # _in_flight insertion order is ascending seq (new sends are
        # monotone, retransmits update in place, RTO clears the dict), so
        # the sorted() walk in _process_new_ack is a prefix pop here.
        while infl:
            for seq0 in infl:  # cheap "first key" (ascending-order dict)
                break
            if seq0 >= ack:
                break
            info = infl.pop(seq0)
            if not info.retransmitted:
                sample = t - info.send_time
                base = snd.base_rtt
                if base is None or sample < base:
                    snd.base_rtt = sample
                snd._last_rtt_sample = sample
                if srtt is None:
                    srtt = sample
                    rttvar = sample / 2.0
                else:
                    d = srtt - sample
                    rttvar = 0.75 * rttvar + 0.25 * (d if d >= 0.0 else -d)
                    srtt = 0.875 * srtt + 0.125 * sample
                rto = srtt + 4.0 * rttvar
                if rto < fs.min_rto:
                    rto = fs.min_rto
                elif rto > fs.max_rto:
                    rto = fs.max_rto
        snd.srtt = srtt
        snd.rttvar = rttvar
        snd.rto = rto
        snd.snd_una = ack
        snd.dupacks = 0
        cwnd = snd.cwnd
        if cwnd < snd.ssthresh:
            cwnd += float(mss)
        else:
            cwnd += float(mss) * mss / cwnd
        snd.cwnd = cwnd
        snd.cwnd_log.append((t, cwnd))
        # _restart_rto: flight measured before the refill below.
        vt = snd._rto_timer
        vheap = self._vheap
        heappush = heapq.heappush
        snd_nxt = snd.snd_nxt
        rto_timer = None
        if snd_nxt - ack > 0:
            tp = t + rto
            self._vseq = q = self._vseq + 1
            if vt is not None and type(vt) is _VTimer and vt.pending and not vt.cancelled:
                # Still postponed off-heap from the previous ack: restart
                # it in place.  Cancel-then-replace would allocate a fresh
                # tuple-of-slots per ack for a timer that almost never
                # fires; mutating time and tiebreak is indistinguishable
                # (the ``q`` consumed here is the same one an eager
                # replacement would have been created with).
                rto_timer = vt
                rto_timer.time = tp
                rto_timer.q = q
            else:
                if vt is not None:
                    vt.cancel()
                snd._rto_timer = rto_timer = _VTimer(tp, snd._on_rto, ())
                rto_timer.q = q
                rto_timer.pending = True
            if tp < self._pmin:
                self._pmin = tp
        elif vt is not None:
            vt.cancel()
            snd._rto_timer = None
        # Inline of _try_send/_transmit.
        adv = fs.adv
        window = cwnd if cwnd <= adv else adv
        total = snd.total_bytes
        high = snd.high_water
        hdr = fs.hdr
        fwdv = fs.fwdv
        single = len(fwdv) == 1
        vl0 = fwdv[0]
        sent = 0
        vseq = self._vseq
        if single:
            # Every segment of this burst admits at the same instant ``t``,
            # so the cross fold and the in-flight purge _admit would repeat
            # per segment collapse to one pass; appended departures all
            # finish strictly after ``t`` and can never re-trigger either.
            if vl0.agg is not None:
                self._fold_cross(vl0, t)
            l_infl = vl0.infl
            backlog = vl0.backlog
            while l_infl and l_infl[0][0] <= t:
                backlog -= l_infl.popleft()[1]
            free_at = vl0.free_at
            cap = vl0.cap
            buffer_bytes = vl0.buffer_bytes
            prop = vl0.prop
            ap = vl0.ap
            asz = vl0.asz
            aac = vl0.aac
            ad = vl0.ad
        while snd_nxt - ack + mss <= window:
            if total is not None:
                remaining = total - snd_nxt
                if remaining <= 0:
                    break
                length = mss if mss < remaining else remaining
            else:
                length = mss
            if snd_nxt < high:  # retransmission (go-back-N refill)
                info = infl.get(snd_nxt)
                if info is None:
                    info = _SegmentInfo(snd_nxt, length, t)
                    infl[snd_nxt] = info
                else:
                    info.send_time = t
                info.retransmitted = True
                snd.retransmits += 1
            else:  # fresh segment: cannot already be tracked
                infl[snd_nxt] = _SegmentInfo(snd_nxt, length, t)
            sent += 1
            if single:
                size = length + hdr
                ap.append(t)  # flow agendas record bare arrival times
                asz.append(size)
                if buffer_bytes is not None and backlog + size > buffer_bytes:
                    aac.append(False)
                    ad.append(0.0)
                else:
                    start = free_at if free_at > t else t
                    done = start + size * 8.0 / cap
                    aac.append(True)
                    ad.append(done)
                    l_infl.append((done, size))
                    backlog += size
                    free_at = done
                    vseq += 1
                    heappush(vheap, (done + prop, vseq, K_DATA, fs, snd_nxt, length))
            else:
                self._vseq = vseq
                self._hop_admit(fwdv, 0, t, length + hdr, (K_DATA, fs, snd_nxt, length))
                vseq = self._vseq
            if rto_timer is None:
                tp = t + rto
                snd._rto_timer = rto_timer = _VTimer(tp, snd._on_rto, ())
                vseq += 1
                rto_timer.q = vseq
                rto_timer.pending = True
                if tp < self._pmin:
                    self._pmin = tp
            snd_nxt += length
            if snd_nxt > high:
                high = snd_nxt
        if single:
            vl0.free_at = free_at
            vl0.backlog = backlog
        self._vseq = vseq
        if sent:
            snd.segments_sent += sent
        snd.snd_nxt = snd_nxt
        snd.high_water = high
        if total is not None and ack >= total and not snd._completed:
            snd._completed = True
            vt = snd._rto_timer
            if vt is not None:
                vt.cancel()
                snd._rto_timer = None
            if snd.on_complete is not None:
                snd.on_complete(snd)

    def _ev_data(self, t: float, fs: _FlowState, seq: int, length: int) -> None:
        rcv = fs.receiver
        if not fs.rx_kernel:
            pkt = Packet(
                length + fs.hdr,
                flow_id=fs.flow_id,
                seq=seq,
                kind=PacketKind.DATA,
                payload=length,
            )
            rcv.on_segment(pkt)
            return
        # Inline of TCPReceiver.on_segment + _emit_ack(force=True).
        rcv_nxt = rcv.rcv_nxt
        if seq + length <= rcv_nxt:
            pass  # pure duplicate: re-ACK below
        elif seq > rcv_nxt:
            oob = rcv._out_of_order
            prev = oob.get(seq, 0)
            if length > prev:
                oob[seq] = length
        else:
            rcv_nxt = seq + length
            oob = rcv._out_of_order
            if oob:
                while rcv_nxt in oob:
                    rcv_nxt += oob.pop(rcv_nxt)
            rcv.rcv_nxt = rcv_nxt
            rcv.delivered_log.append((t, rcv_nxt))
        rcv.acks_sent += 1
        revv = fs.revv
        if len(revv) == 1:
            # Inline of _admit for the common single-hop reverse path.
            vl0 = revv[0]
            if vl0.agg is not None:
                self._fold_cross(vl0, t)
            infl0 = vl0.infl
            backlog = vl0.backlog
            while infl0 and infl0[0][0] <= t:
                backlog -= infl0.popleft()[1]
            size = fs.ack_size
            vl0.ap.append(t)  # flow agendas record bare arrival times
            vl0.asz.append(size)
            buffer_bytes = vl0.buffer_bytes
            if buffer_bytes is not None and backlog + size > buffer_bytes:
                vl0.aac.append(False)
                vl0.ad.append(0.0)
                vl0.backlog = backlog
            else:
                free_at = vl0.free_at
                start = free_at if free_at > t else t
                done = start + size * 8.0 / vl0.cap
                vl0.aac.append(True)
                vl0.ad.append(done)
                infl0.append((done, size))
                vl0.backlog = backlog + size
                vl0.free_at = done
                self._vseq = q = self._vseq + 1
                heapq.heappush(
                    self._vheap, (done + vl0.prop, q, K_ACK, fs, rcv_nxt)
                )
        else:
            self._hop_admit(revv, 0, t, fs.ack_size, (K_ACK, fs, rcv_nxt))

    # ------------------------------------------------------------------
    # Adopted probe streams
    # ------------------------------------------------------------------
    def adopt_stream(self, channel, run, done_event):
        """Carry one probe stream inside the domain walk.

        Called from :func:`~repro.netsim.streamtransit.plan_stream` when a
        domain owns this network's hop agendas.  Returns the familiar
        ``(plan, reason)`` pair.
        """
        sim = self.sim
        tracer = sim.tracer
        if tracer is not None and not tracer.light:
            _warn_tracer_fallback()
            self.dissolve("tracer")
            return plan_stream(channel, run, done_event)
        if _impure(channel.sender_clock) or _impure(channel.receiver_clock):
            return None, "impure-clock"
        plan = _DomainStreamPlan(channel, run, done_event, self)
        ss = _StreamState()
        ss.channel = channel
        ss.run = run
        ss.done = done_event
        ss.plan = plan
        sched = run.schedule
        ss.sched = sched
        ss.n = run.spec.n_packets
        ss.size = run.spec.packet_size
        vls = self._vl
        ss.fwdv = tuple(vls[link] for link in self.network.forward_links)
        ss.sender_read = channel.sender_clock.read
        ss.receiver_read = channel.receiver_clock.read
        ss.resume_i = None
        self.streams.append(ss)
        run.plan = plan
        run.n_sent = ss.n
        channel.packets_sent += ss.n
        channel.bytes_sent += ss.n * ss.size
        if sched:
            self._vseq = q = self._vseq + 1
            heapq.heappush(self._vheap, (sched[0][0], q, K_SSEND, ss, 0))
            self._kick(sched[0][0])
        return plan, None

    def _ev_ssend(self, t: float, ss: _StreamState, i: int) -> None:
        if ss.run.done:
            return
        j = i + 1
        if j < ss.n:
            # Push the next send before admitting this packet, mirroring
            # the per-packet sender's reschedule-before-inject tie order.
            self._vseq = q = self._vseq + 1
            heapq.heappush(self._vheap, (ss.sched[j][0], q, K_SSEND, ss, j))
        self._hop_admit(ss.fwdv, 0, t, ss.size, (K_SDELIV, ss, i))

    def _ev_sdeliv(self, t: float, ss: _StreamState, i: int) -> None:
        run = ss.run
        if run.done:
            return  # straggler after deadline finalization: lost
        s, seq = ss.sched[i]
        plan = ss.plan
        plan.records.append(
            PacketRecord(
                seq=seq,
                sender_stamp=ss.sender_read(s),
                recv_stamp=ss.receiver_read(t),
            )
        )
        plan.rec_times.append(t)
        if seq == ss.n - 1:
            plan.complete_call = self._defer(
                ss.channel._fast_complete, run, ss.done
            )

    # ------------------------------------------------------------------
    # Flow lifecycle
    # ------------------------------------------------------------------
    def attach_flow(self, sender: "TCPSender") -> None:
        fs = _FlowState()
        receiver = sender.receiver
        cfg = sender.config
        network = self.network
        fs.sender = sender
        fs.receiver = receiver
        vls = self._vl
        fs.fwdv = tuple(vls[link] for link in network.forward_links)
        fs.revv = tuple(vls[link] for link in network.reverse_links)
        fs.hdr = cfg.header_bytes
        fs.mss = cfg.mss
        fs.adv = float(cfg.advertised_window_bytes)
        fs.min_rto = cfg.min_rto
        fs.max_rto = cfg.max_rto
        fs.ack_size = receiver.config.header_bytes
        fs.flow_id = sender.flow_id
        fs.tx_kernel = cfg.congestion_control == "reno" and sender._tracer is None
        fs.rx_kernel = not receiver.config.delayed_ack
        fs.vnet = _FlowVNet(self, fs)
        fs.user_on_complete = sender.on_complete
        fs.completing = False
        fs.detached = False
        fs.t0 = self.sim._now
        fs.seg0 = sender.segments_sent

        def _wrapped_complete(_snd, fs=fs, domain=self):
            fs.completing = True
            if domain._walking:
                domain._defer(domain._complete_flow, fs)
            else:  # pragma: no cover - completion always lands in a walk
                domain._complete_flow(fs)

        sender.on_complete = _wrapped_complete
        sender.sim = self.vsim
        receiver.sim = self.vsim
        sender.network = fs.vnet
        receiver.network = fs.vnet
        sender._ft = self
        sender._ft_fs = fs
        self.flows.append(fs)
        _note_flow_planned(network, self.sim)

    def on_flow_stop(self, sender: "TCPSender") -> None:
        """``TCPSender.stop()`` seam: hand the flow back to the real path."""
        fs = sender._ft_fs
        if fs is None or fs.detached or fs.completing:
            return
        self._detach(fs)

    def _complete_flow(self, fs: _FlowState) -> None:
        fs.completing = False
        if not fs.detached:
            self._detach(fs)
        if fs.user_on_complete is not None:
            fs.user_on_complete(fs.sender)

    def _detach(self, fs: _FlowState) -> None:
        if fs.detached:
            return
        fs.detached = True
        try:
            self.flows.remove(fs)
        except ValueError:  # pragma: no cover - dissolve already removed it
            pass
        self._drain_flow_events(fs)
        snd = fs.sender
        rcv = fs.receiver
        sim = self.sim
        snd.sim = sim
        rcv.sim = sim
        network = self.network
        snd.network = network
        rcv.network = network
        snd.on_complete = fs.user_on_complete
        snd._ft = None
        snd._ft_fs = None
        snd._rto_timer = self._to_real(snd._rto_timer)
        rcv._delack_timer = self._to_real(rcv._delack_timer)
        if sim.tracer is not None:
            sim.tracer.span(
                fs.t0,
                sim._now,
                "flow",
                "planned",
                track=fs.flow_id,
                args={"segments": snd.segments_sent - fs.seg0},
            )
        else:
            network._ft_spans.append(
                (fs.t0, sim._now, fs.flow_id, snd.segments_sent - fs.seg0)
            )

    def _to_real(self, vt):
        """Convert a live :class:`_VTimer` into a real scheduled call."""
        if vt is None or not isinstance(vt, _VTimer) or vt.cancelled:
            return vt
        vt.cancelled = True  # its heap entry is skipped from now on
        return self.sim.schedule_at(vt.time, vt.fn, *vt.args)

    def _drain_flow_events(self, fs: _FlowState) -> None:
        """Materialize this flow's pending virtual events as real ones."""
        kept: list = []
        owned: list = []
        for ev in self._vheap:
            k = ev[2]
            if k == K_DATA or k == K_ACK:
                (owned if ev[3] is fs else kept).append(ev)
            elif k == K_ADMIT:
                tail = ev[6]
                (owned if tail[0] != K_SDELIV and tail[1] is fs else kept).append(ev)
            elif k == K_XMIT:
                tail = ev[5]
                (owned if tail[0] != K_SDELIV and tail[1] is fs else kept).append(ev)
            else:
                kept.append(ev)
        if not owned:
            return
        owned.sort()
        for ev in owned:
            self._materialize(ev)
        # In place: _round's walk loop (and a mid-walk completion path
        # reaching here through _complete_flow) hold aliases to the list.
        vheap = self._vheap
        vheap[:] = kept
        heapq.heapify(vheap)

    def _pkt_from_tail(self, tail):
        k = tail[0]
        if k == K_DATA:
            _, fs, seq, length = tail
            pkt = Packet(
                length + fs.hdr,
                flow_id=fs.flow_id,
                seq=seq,
                kind=PacketKind.DATA,
                payload=length,
            )
            return pkt, fs.receiver.on_segment
        if k == K_ACK:
            _, fs, ack = tail
            pkt = Packet(
                fs.ack_size, flow_id=fs.flow_id, seq=ack, kind=PacketKind.ACK
            )
            return pkt, fs.sender.on_ack
        # K_SDELIV
        _, ss, i = tail
        s, seq = ss.sched[i]
        run = ss.run
        done = ss.done
        channel = ss.channel
        pkt = Packet(
            ss.size,
            flow_id=run.flow_id,
            seq=seq,
            kind=PacketKind.PROBE,
            created_at=s,
            sender_stamp=ss.sender_read(s),
        )
        handler = lambda p, run=run, done=done: channel._on_arrival(run, p, done)
        return pkt, handler

    def _materialize(self, ev) -> None:
        t = ev[0]
        k = ev[2]
        sim = self.sim
        if k == K_DATA or k == K_ACK or k == K_SDELIV:
            pkt, target = self._pkt_from_tail(ev[2:])
            if k == K_SDELIV:
                pkt.delivered_at = t
            sim.schedule_at(t, target, pkt)
        elif k == K_ADMIT:
            hop = ev[4]
            links = tuple(vl.link for vl in ev[3])
            pkt, target = self._pkt_from_tail(ev[6])
            pkt.route = links
            pkt.hop = hop
            pkt.handler = target
            sim.schedule_at(t, links[hop].send, pkt)
        elif k == K_XMIT:
            links = tuple(vl.link for vl in ev[3])
            pkt, target = self._pkt_from_tail(ev[5])
            pkt.route = links
            pkt.hop = 0
            pkt.handler = target
            sim.schedule_at(t, links[0].send, pkt)
        elif k == K_SSEND:
            ss, i = ev[3], ev[4]
            if ss.resume_i is None or i < ss.resume_i:
                ss.resume_i = i
        # K_TIMER: live timers are converted by _to_real at detach;
        # anything else on the heap is logically cancelled.

    # ------------------------------------------------------------------
    # Dissolution (mid-flight ineligibility)
    # ------------------------------------------------------------------
    def dissolve(self, reason: str) -> None:
        """Hand every flow and stream back to the per-packet machinery.

        All committed virtual state is at or before now (cap invariant),
        so in-flight virtual packets materialize as ordinary events at
        their already-exact times and the future replays per-packet: the
        sample path equals a never-planned run.
        """
        if not self.alive:
            return
        self.alive = False
        sim = self.sim
        network = self.network
        if getattr(network, "_flow_domain", None) is self:
            network._flow_domain = None
        rc = self._round_call
        if rc is not None:
            rc.cancel()
            self._round_call = None
        for link in self.links:
            if link._agenda is not None:
                link.sync()
                link._agenda = None
        vheap = self._vheap
        drained = sorted(vheap)
        vheap.clear()  # in place: walk-loop aliases must observe the drain
        for ev in drained:
            k = ev[2]
            if k == K_TIMER:
                continue
            self._materialize(ev)
        now = sim._now
        for ss in self.streams:
            run = ss.run
            if run.done:
                continue
            plan = ss.plan
            if plan.complete_call is not None:
                # Virtually complete: the pending _fast_complete event
                # will commit and finalize; nothing to rewind.
                continue
            plan.revoked = True
            if not plan.commit_closed:
                plan.commit(now, inclusive=True)
                plan.commit_closed = True
            run.plan = None
            ss.channel._note_fallback(reason)
            i0 = ss.resume_i if ss.resume_i is not None else ss.n
            if i0 < ss.n:
                unsent = ss.n - i0
                run.n_sent -= unsent
                ss.channel.packets_sent -= unsent
                ss.channel.bytes_sent -= unsent * ss.size
                sim.schedule_at(ss.sched[i0][0], ss.channel._send_next, run, i0, ss.done)
            if not run.claimed:
                run.claimed = True
                network.claim_per_packet()
        self.streams = []
        for fs in list(self.flows):
            if fs.completing:
                continue
            self._detach(fs)
            snd = fs.sender
            _note_flow_fallback(network, sim, reason)
            if not snd._stopped and not snd._completed and not snd._pp_claimed:
                snd._pp_claimed = True
                network.claim_per_packet()
        self.flows = [fs for fs in self.flows if fs.completing]

    # ------------------------------------------------------------------
    # Sanitize-mode shadow verification
    # ------------------------------------------------------------------
    def _verify_round(self, snaps) -> None:
        """Independently replay this round's admissions per hop and raise
        :class:`SimulationError` on any divergence from the recorded
        agenda entries (the values real folds will later consume)."""
        for vl, free_at, backlog, infl0, vci0, a0 in snaps:
            ag = vl.agenda
            an = len(ag.pairs)
            if an == a0 and vl.vci == vci0:
                continue
            agg = vl.agg
            cross = (
                [(agg.times[ci], 0, ci) for ci in range(vci0, vl.vci)]
                if agg is not None
                else []
            )
            fg = [(ag.pairs[i], 1, i) for i in range(a0, an)]
            infl = deque(infl0)
            cap = vl.cap
            buffer_bytes = vl.buffer_bytes
            link_name = vl.link.name
            for t, tag, i in heapq.merge(cross, fg):
                while infl and infl[0][0] <= t:
                    backlog -= infl.popleft()[1]
                sz = agg.sizes[i] if tag == 0 else ag.sizes[i]
                if buffer_bytes is not None and backlog + sz > buffer_bytes:
                    if tag == 1 and ag.accepts[i]:
                        raise SimulationError(
                            f"flow-transit shadow check: hop {link_name!r} "
                            f"dropped admission {i} but the walk accepted it"
                        )
                    continue
                start = free_at if free_at > t else t
                free_at = start + sz * 8.0 / cap
                infl.append((free_at, sz))
                backlog += sz
                if tag == 1:
                    if not ag.accepts[i]:
                        raise SimulationError(
                            f"flow-transit shadow check: hop {link_name!r} "
                            f"accepted admission {i} but the walk dropped it"
                        )
                    if ag.dones[i] != free_at:  # simlint: disable=SIM003 -- bit-identity shadow check
                        raise SimulationError(
                            f"flow-transit shadow check: hop {link_name!r} "
                            f"admission {i} done {free_at!r} != recorded "
                            f"{ag.dones[i]!r}"
                        )
            if free_at != vl.free_at:  # simlint: disable=SIM003 -- bit-identity shadow check
                raise SimulationError(
                    f"flow-transit shadow check: hop {link_name!r} end "
                    f"free_at {free_at!r} != walked {vl.free_at!r}"
                )


# ----------------------------------------------------------------------
# Module-level seams
# ----------------------------------------------------------------------
def try_attach_flow(sender: "TCPSender") -> bool:
    """``TCPSender._begin`` seam: attach to (or create) this network's
    flow-transit domain.  Returns True when attached; on False the caller
    takes the per-packet path (claiming as before)."""
    network = sender.network
    sim = sender.sim
    domain = getattr(network, "_flow_domain", None)
    if domain is not None and domain.alive:
        domain.attach_flow(sender)
        return True
    if not resolve_fast(sender._fast):
        _note_flow_fallback(network, sim, "disabled")
        return False
    tracer = sim.tracer
    if tracer is not None and not tracer.light:
        _warn_tracer_fallback()
        _note_flow_fallback(network, sim, "tracer")
        return False
    advance = network._advance
    for link in (*network.forward_links, *network.reverse_links):
        if (
            link._deliver != advance
            or link._qdisc is not None
            or link._drop_hook is not None
        ):
            _note_flow_fallback(network, sim, "link-config")
            return False
        if link._cap_sched is not None:
            # The virtual-link walk hoists one capacity per hop and the
            # round planner divides by it throughout; a piecewise
            # schedule would need per-admission lookups in every branch.
            # Rare enough that the per-packet path (which handles it
            # exactly) is the right answer.
            _note_flow_fallback(network, sim, "capacity-schedule")
            return False
    global _SegmentInfo
    if _SegmentInfo is None:
        from ..transport.tcp import _SegmentInfo as seg

        _SegmentInfo = seg
    prev = network._plan
    if prev is not None:
        # A solo stream plan owns some hop agendas; fold/revoke it first
        # (the flow's first per-packet send would have revoked it anyway,
        # and under the same fallback label).
        prev.retire_or_revoke("foreign-send")
    domain = FlowTransitDomain(sim, network)
    network._flow_domain = domain
    domain.attach_flow(sender)
    return True


def _note_flow_planned(network, sim) -> None:
    network._ft_flows += 1
    tracer = sim.tracer
    if tracer is not None:  # light tracers keep flows planned
        tracer.metrics.counter(
            "repro_fastpath_flows_total",
            help="TCP flows carried by the flow-transit fast path",
        ).inc()


def _note_flow_fallback(network, sim, reason: str) -> None:
    counts = network._ft_fallbacks
    counts[reason] = counts.get(reason, 0) + 1
    tracer = sim.tracer
    if tracer is not None:
        tracer.metrics.counter(
            "repro_fastpath_flow_fallback_total",
            labels={"reason": reason},
            help="TCP flows that took the per-packet path, by reason",
        ).inc()
