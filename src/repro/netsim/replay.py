"""Trace-replay cross traffic.

The paper's Internet experiments ran over *real* background traffic; the
standard laboratory substitute is replaying a packet trace — a sequence of
``(timestamp, size_bytes)`` records — into the simulated link.  This
module provides that source plus helpers to synthesize, save, and load
traces, so experiments can pin their workload byte-for-byte.

Traces use a trivially portable CSV format: one ``timestamp,size`` row per
packet, timestamps in seconds from trace start, strictly non-decreasing.
"""

from __future__ import annotations

import csv
from typing import Optional, Sequence

import numpy as np

from .crosstraffic import PacketMix
from .engine import Simulator
from .link import Link
from .packet import Packet, PacketKind
from .path import PathNetwork

__all__ = [
    "TraceReplaySource",
    "load_trace",
    "save_trace",
    "synthesize_trace",
]


def synthesize_trace(
    rng: np.random.Generator,
    rate_bps: float,
    duration: float,
    model: str = "pareto",
    alpha: float = 1.9,
    mix: Optional[PacketMix] = None,
) -> np.ndarray:
    """Generate a ``(n, 2)`` array of (timestamp, size) trace records.

    The same interarrival/size models as the live sources, but materialized
    up front so the identical byte sequence can be replayed across
    experiments and implementations.
    """
    if rate_bps <= 0 or duration <= 0:
        raise ValueError("rate and duration must be positive")
    mix = mix if mix is not None else PacketMix()
    mean_gap = mix.mean_size * 8.0 / rate_bps
    est = int(duration / mean_gap * 1.5) + 16
    if model == "poisson":
        gaps = rng.exponential(mean_gap, size=est)
    elif model == "pareto":
        if alpha <= 1.0:
            raise ValueError(f"alpha must exceed 1, got {alpha}")
        xm = mean_gap * (alpha - 1.0) / alpha
        gaps = xm * (1.0 + rng.pareto(alpha, size=est))
    elif model == "cbr":
        gaps = np.full(est, mean_gap)
    else:
        raise ValueError(f"unknown model {model!r}")
    times = np.cumsum(gaps)
    keep = times <= duration
    times = times[keep]
    sizes = mix.sample(rng, len(times))
    return np.column_stack([times, sizes.astype(np.float64)])


def save_trace(trace: np.ndarray, path: str) -> int:
    """Write a trace to CSV; returns the number of records."""
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["timestamp", "size_bytes"])
        for t, size in trace:
            writer.writerow([f"{t:.9f}", int(size)])
    return len(trace)


def load_trace(path: str) -> np.ndarray:
    """Read a CSV trace written by :func:`save_trace`."""
    rows = []
    with open(path, newline="") as fh:
        reader = csv.reader(fh)
        header = next(reader, None)
        if header != ["timestamp", "size_bytes"]:
            raise ValueError(f"not a trace file: unexpected header {header!r}")
        for row in reader:
            rows.append((float(row[0]), float(row[1])))
    trace = np.array(rows, dtype=np.float64).reshape(-1, 2)
    if len(trace) and np.any(np.diff(trace[:, 0]) < 0):
        raise ValueError("trace timestamps must be non-decreasing")
    return trace


class TraceReplaySource:
    """Replays a trace into one link, optionally looping.

    Timestamps are offset by ``start``; with ``loop=True`` the trace
    repeats end-to-start indefinitely (a stationary workload of exactly
    the trace's rate).
    """

    def __init__(
        self,
        sim: Simulator,
        network: PathNetwork,
        link: Link,
        trace: Sequence[Sequence[float]],
        start: float = 0.0,
        loop: bool = False,
        name: str = "replay",
    ):
        trace = np.asarray(trace, dtype=np.float64)
        if trace.ndim != 2 or trace.shape[1] != 2 or len(trace) == 0:
            raise ValueError("trace must be a non-empty (n, 2) array")
        if np.any(np.diff(trace[:, 0]) < 0):
            raise ValueError("trace timestamps must be non-decreasing")
        if np.any(trace[:, 1] <= 0):
            raise ValueError("trace packet sizes must be positive")
        self.sim = sim
        self.network = network
        self.link = link
        self.trace = trace
        self.loop = loop
        self.name = name
        self.packets_sent = 0
        self.bytes_sent = 0
        self._index = 0
        self._epoch = start  # sim-time at which trace time 0 maps
        sim.schedule_at(start + float(trace[0, 0]), self._emit)

    @property
    def trace_duration(self) -> float:
        """Span of the trace's timestamps."""
        return float(self.trace[-1, 0])

    def _emit(self) -> None:
        t, size = self.trace[self._index]
        pkt = Packet(int(size), flow_id=self.name, kind=PacketKind.CROSS)
        self.network.inject_at(self.link, pkt)
        self.packets_sent += 1
        self.bytes_sent += int(size)
        self._index += 1
        if self._index >= len(self.trace):
            if not self.loop:
                return
            self._index = 0
            self._epoch = self._epoch + self.trace_duration
        next_at = self._epoch + float(self.trace[self._index, 0])
        self.sim.schedule_at(max(next_at, self.sim.now), self._emit)
