"""Network paths: packet forwarding across a chain of links.

The paper's model (Section I-A) is a fixed, unique sequence of
store-and-forward links from a sender ``SND`` to a receiver ``RCV``.
:class:`PathNetwork` implements exactly that: a forward chain of
:class:`~repro.netsim.link.Link` objects, plus a reverse chain used by
acknowledgments, pathload's control channel, and ping replies.

Cross traffic enters and leaves at individual hops (the Fig. 4 topology), so
a cross-traffic packet's route is a single link, while probe/TCP packets
traverse the whole chain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from .engine import Simulator
from .link import Link
from .packet import Packet

__all__ = ["PathNetwork", "LinkSpec", "build_path", "sink"]


def sink(pkt: Packet) -> None:
    """Delivery handler that discards the packet (cross-traffic exit)."""


@dataclass(frozen=True)
class LinkSpec:
    """Declarative description of one hop, used by :func:`build_path`."""

    capacity_bps: float
    prop_delay: float = 0.0
    buffer_bytes: Optional[int] = None
    name: str = ""


class PathNetwork:
    """A unidirectional-pair network: forward chain and reverse chain.

    All links' delivery callbacks are wired to this network's advance
    routine; a packet carries its route (a tuple of links) and a final
    handler invoked on exit from the last hop.  A packet dropped by a
    drop-tail buffer simply never reaches its handler — receivers detect
    loss via sequence gaps or timeouts, as on a real path.
    """

    def __init__(
        self,
        sim: Simulator,
        forward_links: Sequence[Link],
        reverse_links: Sequence[Link],
    ):
        if not forward_links:
            raise ValueError("a path needs at least one forward link")
        self.sim = sim
        self.forward_links = tuple(forward_links)
        self.reverse_links = tuple(reverse_links)
        # Stream-transit support (repro.netsim.streamtransit): the installed
        # plan, if any, plus a count of per-packet foreground participants
        # (TCP flows, pings, per-packet streams/cross sources).  A positive
        # count makes the planner refuse upfront; correctness never depends
        # on it — any unclaimed send still revokes at the link chokepoint.
        self._plan = None
        self._pp_claims = 0
        # Flow-transit support (repro.netsim.flowtransit): the live domain
        # carrying planned TCP flows (and adopted probe streams), plus
        # programmatic counters — flows planned, per-packet fallbacks by
        # reason, and (t_attach, t_detach, flow_id, segments) spans.
        self._flow_domain = None
        self._ft_flows = 0
        self._ft_fallbacks: dict[str, int] = {}
        self._ft_spans: list[tuple[float, float, str, int]] = []
        for link in (*self.forward_links, *self.reverse_links):
            link.deliver = self._advance

    # ------------------------------------------------------------------
    # Path properties
    # ------------------------------------------------------------------
    @property
    def capacity_bps(self) -> float:
        """End-to-end capacity: the narrow link's rate (paper Eq. 1)."""
        return min(link.capacity_bps for link in self.forward_links)

    @property
    def narrow_link(self) -> Link:
        """The forward link with minimum capacity."""
        return min(self.forward_links, key=lambda link: link.capacity_bps)

    def min_rtt(self, probe_size: int = 100) -> float:
        """Queueing-free round-trip time for a ``probe_size``-byte packet.

        Sum of propagation delays both ways plus store-and-forward
        serialization at every hop.
        """
        total = 0.0
        for link in (*self.forward_links, *self.reverse_links):
            total += link.prop_delay + link.transmission_time(probe_size)
        return total

    def one_way_prop_delay(self) -> float:
        """Total forward propagation delay (no queueing, no serialization)."""
        return sum(link.prop_delay for link in self.forward_links)

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def send_forward(
        self, pkt: Packet, handler: Callable[[Packet], None]
    ) -> bool:
        """Inject ``pkt`` at the first forward hop; ``handler`` runs on exit."""
        return self._inject(pkt, self.forward_links, handler)

    def send_reverse(
        self, pkt: Packet, handler: Callable[[Packet], None]
    ) -> bool:
        """Inject ``pkt`` at the first reverse hop (receiver-to-sender)."""
        return self._inject(pkt, self.reverse_links, handler)

    def inject_at(
        self,
        link: Link,
        pkt: Packet,
        handler: Callable[[Packet], None] = sink,
    ) -> bool:
        """Single-hop injection, used by per-link cross-traffic sources."""
        return self._inject(pkt, (link,), handler)

    def _inject(
        self,
        pkt: Packet,
        route: Sequence[Link],
        handler: Callable[[Packet], None],
    ) -> bool:
        pkt.route = tuple(route)
        pkt.hop = 0
        pkt.handler = handler
        pkt.created_at = self.sim.now
        return route[0].send(pkt)

    def claim_per_packet(self) -> None:
        """Note a per-packet foreground participant (TCP, ping, per-packet
        probe stream or cross source) as active on this network.  While any
        claim is held, new probe streams skip analytic planning — cheaper
        than planning and immediately revoking at the first foreign send."""
        self._pp_claims += 1

    def release_per_packet(self) -> None:
        """Release a :meth:`claim_per_packet` claim."""
        self._pp_claims -= 1

    def flush(self) -> None:
        """Fold any pending bulk cross-traffic arrivals into every link.

        Links admit batched arrivals lazily (see
        :mod:`repro.netsim.bulkarrivals`); each sync point — ``send()``,
        backlog reads, stats access — folds automatically, so calling
        this is never required for correctness.  It is a convenience for
        end-of-run bookkeeping: after ``sim.run(until=T)``, one
        ``flush()`` brings every link's :class:`LinkStats` up to
        ``sim.now`` in a single pass.
        """
        for link in (*self.forward_links, *self.reverse_links):
            link.sync()

    def _advance(self, pkt: Packet) -> None:
        pkt.hop += 1
        if pkt.hop < len(pkt.route):
            pkt.route[pkt.hop].send(pkt)  # drop ⇒ packet silently vanishes
        else:
            pkt.delivered_at = self.sim.now
            pkt.handler(pkt)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<PathNetwork {len(self.forward_links)} fwd hops, "
            f"C={self.capacity_bps / 1e6:.2f}Mb/s>"
        )


def build_path(
    sim: Simulator,
    forward: Sequence[LinkSpec],
    reverse: Optional[Sequence[LinkSpec]] = None,
    reverse_capacity_bps: float = 1e9,
) -> PathNetwork:
    """Construct a :class:`PathNetwork` from declarative link specs.

    If ``reverse`` is omitted, the reverse path is a single uncongested
    high-capacity link whose propagation delay mirrors the total forward
    propagation delay — appropriate for experiments where only the forward
    path is loaded (all of the paper's experiments).
    """
    forward_links = [
        Link(
            sim,
            spec.capacity_bps,
            prop_delay=spec.prop_delay,
            buffer_bytes=spec.buffer_bytes,
            name=spec.name or f"fwd[{i}]",
        )
        for i, spec in enumerate(forward)
    ]
    if reverse is None:
        total_prop = sum(spec.prop_delay for spec in forward)
        reverse = [LinkSpec(reverse_capacity_bps, prop_delay=total_prop, name="rev")]
    reverse_links = [
        Link(
            sim,
            spec.capacity_bps,
            prop_delay=spec.prop_delay,
            buffer_bytes=spec.buffer_bytes,
            name=spec.name or f"rev[{i}]",
        )
        for i, spec in enumerate(reverse)
    ]
    return PathNetwork(sim, forward_links, reverse_links)
