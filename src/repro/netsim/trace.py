"""Packet tracing: per-link event capture and OWD time series export.

A :class:`LinkTap` observes one link without disturbing it — it wraps the
link's delivery callback and drop hook, recording a :class:`TraceRecord`
per departure/drop.  Useful for debugging experiments and for exporting
the OWD series behind Figs. 1-3 to CSV for external plotting.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from typing import Iterable

from .link import Link
from .packet import Packet

__all__ = ["TraceRecord", "LinkTap", "write_csv", "owd_series"]


@dataclass(frozen=True)
class TraceRecord:
    """One traced packet event."""

    time: float
    event: str  # "exit" (left the link) or "drop"
    flow_id: str
    seq: int
    size: int
    kind: str
    created_at: float

    @property
    def age(self) -> float:
        """Time since the packet entered the network."""
        return self.time - self.created_at


class LinkTap:
    """Non-intrusive observer of one link's departures and drops.

    Attach after the network is built (the network wires the link's
    delivery callback at construction)::

        tap = LinkTap(setup.tight_link)
        ... run simulation ...
        write_csv(tap.records, "tight_link.csv")

    ``flow_prefix`` restricts capture to flows whose id starts with it
    (e.g. ``"probe"``), keeping traces small in cross-traffic-heavy runs.

    Attaching a tap rebinds the link's delivery callback and drop hook,
    which automatically reverts any bulk (event-elided) cross-traffic
    sources on that link to the per-packet path — the sample path is
    unchanged, and every packet from the attach instant onward is
    observable.  Cross packets whose arrival was already folded into the
    link's ledger before the attach were never materialized and cannot
    appear in ``records``.
    """

    def __init__(self, link: Link, flow_prefix: str = ""):
        if link.deliver is None:
            raise ValueError(
                "attach the tap after the link is wired into a network"
            )
        self.link = link
        self.flow_prefix = flow_prefix
        self.records: list[TraceRecord] = []
        self._orig_deliver = link.deliver
        self._orig_drop_hook = link.drop_hook
        link.deliver = self._on_exit
        link.drop_hook = self._on_drop

    def detach(self) -> None:
        """Restore the link's original callbacks."""
        self.link.deliver = self._orig_deliver
        self.link.drop_hook = self._orig_drop_hook

    def _matches(self, pkt: Packet) -> bool:
        return pkt.flow_id.startswith(self.flow_prefix)

    def _record(self, pkt: Packet, event: str) -> None:
        self.records.append(
            TraceRecord(
                time=self.link.sim.now,
                event=event,
                flow_id=pkt.flow_id,
                seq=pkt.seq,
                size=pkt.size,
                kind=pkt.kind,
                created_at=pkt.created_at,
            )
        )

    def _on_exit(self, pkt: Packet) -> None:
        if self._matches(pkt):
            self._record(pkt, "exit")
        self._orig_deliver(pkt)

    def _on_drop(self, pkt: Packet) -> None:
        if self._matches(pkt):
            self._record(pkt, "drop")
        if self._orig_drop_hook is not None:
            self._orig_drop_hook(pkt)

    def drops(self) -> list[TraceRecord]:
        """Only the drop events."""
        return [r for r in self.records if r.event == "drop"]


def owd_series(records: Iterable[TraceRecord], flow_id: str) -> list[tuple[int, float]]:
    """(seq, age-at-exit) pairs for one flow — a per-link OWD series."""
    return [
        (r.seq, r.age)
        for r in records
        if r.flow_id == flow_id and r.event == "exit"
    ]


def write_csv(records: Iterable[TraceRecord], path: str) -> int:
    """Write trace records to CSV; returns the number of rows written."""
    n = 0
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(
            ["time", "event", "flow_id", "seq", "size", "kind", "created_at", "age"]
        )
        for r in records:
            writer.writerow(
                [r.time, r.event, r.flow_id, r.seq, r.size, r.kind, r.created_at, r.age]
            )
            n += 1
    return n
