"""Host clock models.

Pathload computes *relative* one-way delays: the sender stamps each packet
with its own clock, and the receiver subtracts that stamp from its own
clock's arrival reading.  Section IV of the paper ("Clock and Timing
Issues") argues that

* a constant **offset** between the two clocks shifts every OWD equally and
  therefore cannot affect OWD *differences*, and
* clock **skew** over a single stream (a few milliseconds long) amounts to
  nanoseconds, far below queueing-delay variations.

These classes let the test suite *verify* those claims instead of assuming
them: the same experiment can be run with a :class:`PerfectClock`, an
:class:`OffsetClock`, or a :class:`SkewedClock`, and the pathload verdicts
must be identical.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["Clock", "PerfectClock", "OffsetClock", "SkewedClock", "NoisyClock"]


class Clock:
    """Base class: maps true simulated time to this host's clock reading."""

    def read(self, true_time: float) -> float:
        """Return the host-clock timestamp for true time ``true_time``."""
        raise NotImplementedError


class PerfectClock(Clock):
    """A clock that reads true simulated time exactly."""

    def read(self, true_time: float) -> float:
        return true_time


class OffsetClock(Clock):
    """A clock with a constant offset from true time.

    This models non-synchronized end hosts (the common case on the real
    Internet paths of the paper, which did not use GPS or NTP-disciplined
    clocks).
    """

    def __init__(self, offset: float):
        self.offset = float(offset)

    def read(self, true_time: float) -> float:
        return true_time + self.offset


class SkewedClock(Clock):
    """A clock with constant offset and frequency skew.

    ``reading = (true_time - origin) * (1 + skew_ppm * 1e-6) + origin + offset``

    A typical cheap oscillator drifts tens of ppm; over a 20-ms probing
    stream that is under a microsecond of distortion.
    """

    def __init__(self, offset: float = 0.0, skew_ppm: float = 0.0, origin: float = 0.0):
        self.offset = float(offset)
        self.skew_ppm = float(skew_ppm)
        self.origin = float(origin)

    def read(self, true_time: float) -> float:
        elapsed = true_time - self.origin
        return self.origin + self.offset + elapsed * (1.0 + self.skew_ppm * 1e-6)


class NoisyClock(Clock):
    """A skewed clock whose readings also carry bounded random noise.

    Models timestamping granularity / interrupt latency at the hosts.  Noise
    is drawn uniformly from ``[0, noise_max]`` — timestamping delays are
    one-sided (a reading can only be taken *after* the true instant).
    """

    def __init__(
        self,
        rng: np.random.Generator,
        offset: float = 0.0,
        skew_ppm: float = 0.0,
        noise_max: float = 5e-6,
        origin: float = 0.0,
    ):
        if noise_max < 0:
            raise ValueError(f"noise_max must be >= 0, got {noise_max}")
        self._base = SkewedClock(offset=offset, skew_ppm=skew_ppm, origin=origin)
        self._rng = rng
        self.noise_max = float(noise_max)

    def read(self, true_time: float) -> float:
        noise = self._rng.uniform(0.0, self.noise_max) if self.noise_max > 0 else 0.0
        return self._base.read(true_time) + noise


def make_clock(
    kind: str = "perfect",
    rng: Optional[np.random.Generator] = None,
    **kwargs,
) -> Clock:
    """Factory used by experiment configs (kind: perfect/offset/skewed/noisy)."""
    if kind == "perfect":
        return PerfectClock()
    if kind == "offset":
        return OffsetClock(**kwargs)
    if kind == "skewed":
        return SkewedClock(**kwargs)
    if kind == "noisy":
        if rng is None:
            raise ValueError("noisy clock requires an rng")
        return NoisyClock(rng, **kwargs)
    raise ValueError(f"unknown clock kind {kind!r}")
