"""Bit-exact vectorized planning kernels.

The SIM010 classifier (``docs/linting.md``) labels three recursion shapes
in the substrate's hot loops VECTOR-SAFE: the *prefix sum* (bulk arrival
clocks), the *Lindley* fold ``f_i = max(t_i, f_{i-1}) + tx_i`` (FIFO
transmitter state), and the *masked prefix sum* (per-owner byte
accounting over a merged queue).  This module implements those shapes on
NumPy arrays — and, when numba is importable, behind a JIT-compiled
scalar twin — under one non-negotiable contract: **every result is
``==``-equal to the scalar loop it replaces**, element for element.

How the Lindley fold stays exact
--------------------------------
``np.add.accumulate`` rounds left-to-right, one addition per element, so
a seeded accumulate reproduces a scalar running sum bit-for-bit.  The
classic cumsum/max-accumulate Lindley transformation does *not* have
that property (FP addition is non-associative), so the kernel never uses
it.  Instead it exploits the recursion's structure:

* a position ``p`` can only be an idle restart (``start = t_p``) if even
  a server that went idle right before ``p-1``'s service would be free
  by ``t_p`` — i.e. ``t_{p-1} + tx_{p-1} <= t_p``.  That *candidate*
  test is vectorizable, and every true idle restart is a candidate;
* between consecutive candidates the server is provably busy, so the
  completion times are one seeded ``np.add.accumulate`` — the exact
  scalar chain;
* each candidate boundary itself is resolved with the scalar branch
  (one comparison, one addition — the very ops the loop would do).

When every position is a candidate and the server starts idle, the whole
fold collapses to the closed form ``t + tx`` (one vector add, exact).
When candidates are dense but not total — a moderately loaded link — the
per-segment dispatch overhead would eat the win, so the kernel *declines*
and the call site keeps its scalar loop (see ``MIN_MEAN_SEGMENT``).
Saturated links (probe streams at or above avail-bw, the hot case) give
long busy runs and the full vector speedup.

Self-check and degradation
--------------------------
The first kernel call runs a representative-case self-check comparing
every vector path against the in-module scalar references with ``==``.
Any mismatch — or numpy failing to import — permanently disables the
kernels for the process and bumps ``repro_kernel_fallback_total`` with
the reason; call sites silently keep their scalar loops, and nothing is
ever raised.  ``REPRO_NO_VECTOR`` (resolved through
:func:`repro.netsim.fastpath.resolve_vector`, CLI flag ``--no-vector``)
forces the same fallback for A/B timing.  ``Simulator(sanitize=True)``
additionally shadow-verifies planned streams end to end, so a kernel
divergence that somehow escaped the self-check is still caught at
runtime.

Selection is observable: ``kernel_calls`` / ``kernel_fallbacks`` are
process-wide counters, published into every tracer's registry as
``repro_kernel_calls_total{kernel}`` and
``repro_kernel_fallback_total{reason}`` (docs/observability.md).
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Optional, Sequence

from .fastpath import resolve_vector

__all__ = [
    "MIN_BATCH",
    "MIN_MEAN_SEGMENT",
    "KERNELS",
    "KERNEL_FALLBACK_REASONS",
    "ONE_SHOT_REASONS",
    "enabled",
    "lindley",
    "lindley_segmented",
    "prefix_sum",
    "masked_prefix_sum",
    "merge_parts",
    "fold_slice",
    "fold_slice_segmented",
    "plan_hop",
    "masked_pending",
    "kernel_calls",
    "kernel_fallbacks",
    "counts",
    "publish",
]

try:  # pragma: no cover - numpy is present in the reference environment
    import numpy as np
except Exception:  # pragma: no cover - exercised via _force_disable in tests
    np = None

#: Below this many elements a call site keeps its scalar loop outright —
#: array conversion plus kernel dispatch would cost more than it saves.
#: Crossover measured on the substrate microbenches: ~1 k elements when
#: the slice must be converted from lists, ~200 when the aggregator's
#: array mirror feeds the kernel directly.
MIN_BATCH = 256

#: The Lindley kernel declines when the *mean busy-segment length* it
#: detects falls below this, because each segment pays one
#: ``np.add.accumulate`` dispatch.  Tuned on the substrate microbenches.
MIN_MEAN_SEGMENT = 24.0

#: Offered-load pre-gate for the fold wrappers: below this utilization
#: busy segments are short (mean ≈ 1/(1-ρ) arrivals), so the wrappers
#: decline before paying any list→array conversion.  ρ ≈ 0.97 puts the
#: expected segment length past ``MIN_MEAN_SEGMENT``; anything lower
#: passed the gate only to decline after paying the conversion.  The
#: residual structure check (``MIN_MEAN_SEGMENT``) catches bursty
#: exceptions that sneak past.
MIN_RHO = 0.97

#: Floor for the cross-free :func:`plan_hop` case.  A pure probe stream
#: is paced at a constant rate with a constant packet size, so its fold
#: collapses to one of the two closed forms (all-idle when R ≤ C,
#: all-busy when R > C) — a handful of vector passes regardless of load,
#: which beats the scalar walk from far fewer elements than the general
#: segment walk does.  The ρ pre-gate is skipped for this case.  The
#: competition is the planner's specialized cross-free Lindley chain
#: (no tuple traffic at all), which the closed forms only outrun once
#: the fixed ~12 µs of numpy dispatches amortizes — measured crossover
#: ≈220 probes on the reference host.
MIN_PROBES = 256

#: Every kernel name the selection counter may carry, for declared-but-
#: zero metric export (dashboards see stable series before the first
#: increment; see docs/observability.md).
KERNELS: tuple[str, ...] = (
    "lindley",
    "lindley_segmented",
    "prefix_sum",
    "masked_prefix_sum",
    "merge",
)

#: Every decline reason the fallback counter may carry, same purpose.
KERNEL_FALLBACK_REASONS: tuple[str, ...] = (
    "disabled",
    "numpy-missing",
    "self-check",
    "short-segments",
    "verify-failed",
    "unsorted-probes",
    "segment-spill",
)

#: Reasons noted at most once per process (availability facts, not
#: per-call declines).  Cross-process merges fold these by max — summing
#: would make the total depend on how tasks were packed onto workers.
ONE_SHOT_REASONS: frozenset = frozenset(
    {"disabled", "numpy-missing", "self-check"}
)

#: Successful kernel selections, by kernel name.
kernel_calls: dict[str, int] = {}

#: Degradation events, by reason ("disabled", "numpy-missing",
#: "self-check", "short-segments", "verify-failed", "unsorted-probes").
#: One increment per *event* for the permanent reasons, per declined
#: call for the regime ones; never per element.
kernel_fallbacks: dict[str, int] = {}

# Readiness: None = not yet self-checked, True/False afterwards.
_ready: Optional[bool] = None
_noted_disabled = False

# Optional numba JIT of the exact scalar Lindley loop.  Compiled (and
# bit-validated) lazily on first use; None when numba is unavailable or
# its output ever diverges.
_jit_lindley = None
_jit_checked = False


def _count(kernel: str) -> None:
    kernel_calls[kernel] = kernel_calls.get(kernel, 0) + 1


def _note_fallback(reason: str) -> None:
    kernel_fallbacks[reason] = kernel_fallbacks.get(reason, 0) + 1


def counts() -> tuple[dict[str, int], dict[str, int]]:
    """Snapshot of ``(kernel_calls, kernel_fallbacks)`` as plain dicts.

    Used by sweep workers to take a *baseline* before running a task, so
    the task's published counts are deltas rather than whatever the
    (possibly reused, possibly forked) worker process accumulated before.
    """
    return dict(kernel_calls), dict(kernel_fallbacks)


def publish(registry, base=None, merged=None) -> None:
    """Fold the process-wide selection counters into a metrics registry.

    Values are *set*, not accumulated, so repeated collection is
    idempotent (the same convention ``Tracer.collect_metrics`` uses for
    the cumulative link counters).  With ``base`` (a :func:`counts`
    snapshot) the published values are deltas since that snapshot —
    pool workers publish per-task deltas so merged sweep telemetry is
    independent of how tasks were packed onto processes.  ``merged`` (a
    second dict pair) adds counts folded in from child tracers (one-shot
    reasons fold by max, see :data:`ONE_SHOT_REASONS`).  Every known
    kernel name and decline reason is declared even at zero so the
    exposition carries stable series.
    """
    base_calls, base_fallbacks = base if base is not None else ({}, {})
    extra_calls, extra_fallbacks = merged if merged is not None else ({}, {})
    names = set(kernel_calls) | set(extra_calls) | set(KERNELS)
    for kernel in sorted(names):
        n = max(0, kernel_calls.get(kernel, 0) - base_calls.get(kernel, 0))
        n += extra_calls.get(kernel, 0)
        registry.gauge(
            "repro_kernel_calls_total",
            labels={"kernel": kernel},
            help="vectorized kernel selections, by kernel",
        ).set(n)
    reasons = set(kernel_fallbacks) | set(extra_fallbacks) | set(
        KERNEL_FALLBACK_REASONS
    )
    for reason in sorted(reasons):
        n = max(0, kernel_fallbacks.get(reason, 0) - base_fallbacks.get(reason, 0))
        extra = extra_fallbacks.get(reason, 0)
        if reason in ONE_SHOT_REASONS:
            n = max(n, extra)
        else:
            n += extra
        registry.gauge(
            "repro_kernel_fallback_total",
            labels={"reason": reason},
            help="scalar-loop fallbacks, by reason",
        ).set(n)


# ----------------------------------------------------------------------
# Scalar references — the ground truth the vector paths must match
# ----------------------------------------------------------------------
def _lindley_scalar(free_at: float, times, txs) -> list:
    out = []
    for i in range(len(times)):
        t = times[i]
        start = free_at if free_at > t else t
        free_at = start + txs[i]
        out.append(free_at)
    return out


def _prefix_sum_scalar(initial: float, deltas) -> list:
    out = [initial]
    acc = initial
    for d in deltas:
        acc = acc + d
        out.append(float(acc))
    return out


def _lindley_segmented_scalar(free_at, times, sizes, bounds, caps) -> list:
    """Ground-truth fold under a piecewise-constant capacity schedule.

    ``caps[k]`` is the rate in force on ``[bounds[k-1], bounds[k])``
    (``caps`` has one more entry than ``bounds``); each transmission is
    served at the rate in force at its *start* instant, with a start
    exactly on a boundary taking the new rate — the same lookup
    ``Link.capacity_at`` performs with ``bisect_right``.
    """
    out = []
    for i in range(len(times)):
        t = times[i]
        start = free_at if free_at > t else t
        cap = caps[bisect_right(bounds, start)]
        free_at = start + sizes[i] * 8.0 / cap
        out.append(free_at)
    return out


def _masked_prefix_sum_scalar(values, mask, initial):
    out = []
    acc = initial
    for i in range(len(values)):
        if mask[i]:
            acc = acc + values[i]
        out.append(acc)
    return out


# ----------------------------------------------------------------------
# Readiness / self-check
# ----------------------------------------------------------------------
def enabled(vector: Optional[bool] = None) -> bool:
    """True when the vector kernels may be used for this call.

    Combines the ``REPRO_NO_VECTOR`` opt-out (via
    :func:`~repro.netsim.fastpath.resolve_vector`) with availability:
    numpy importable and the first-use self-check passed.
    """
    global _noted_disabled
    if not resolve_vector(vector):
        if not _noted_disabled:
            _noted_disabled = True
            _note_fallback("disabled")
        return False
    ready = _ready
    if ready is None:
        ready = _initialize()
    return ready


def _initialize() -> bool:
    global _ready
    if np is None:
        _note_fallback("numpy-missing")
        _ready = False
        return False
    try:
        ok = _self_check()
    except Exception:
        ok = False
    if not ok:
        _note_fallback("self-check")
    _ready = ok
    return ok


def _self_check() -> bool:
    """Bit-equality of every vector path against its scalar reference."""
    tiny = 5e-324  # smallest subnormal: rounding differences cannot hide
    lindley_cases = [
        # (free_at, times, txs) spanning idle / saturated / mixed / ties
        (0.0, [], []),
        (0.5, [1.0], [0.25]),
        (5.0, [1.0], [0.25]),
        (0.0, [0.0, 1.0, 2.0, 3.0], [0.5, 0.5, 0.5, 0.5]),          # all idle
        (10.0, [0.0, 0.1, 0.2, 0.3], [7.0, 7.0, 7.0, 7.0]),         # all busy
        (0.0, [0.0, 0.1, 5.0, 5.1, 20.0], [1.0, 1.0, 1.0, 1.0, 1.0]),
        (0.0, [1.0, 1.0, 1.0, 2.0, 2.0], [0.1, 0.2, 0.3, 0.1, 0.2]),  # ties
        (tiny, [tiny, 2 * tiny, 1.0], [tiny, tiny, tiny]),
        (1e300, [0.0, 1.0, 1e300, 2e300], [1e285, 1e285, 1e285, 1e285]),
        (0.3, [0.1 * k for k in range(1, 40)], [0.077] * 39),
    ]
    for free_at, times, txs in lindley_cases:
        want = _lindley_scalar(free_at, times, txs)
        t = np.asarray(times, dtype=np.float64)
        tx = np.asarray(txs, dtype=np.float64)
        # Force the segment walk even where the regime heuristic would
        # decline, and separately let the closed forms trigger.
        for min_seg in (0.0, MIN_MEAN_SEGMENT):
            got, _reason = _lindley_numpy(free_at, t, tx, min_seg)
            if got is not None and list(got) != want:
                return False
        jit = _get_jit()
        if jit is not None:
            out = np.empty(t.shape[0], dtype=np.float64)
            jit(free_at, t, tx, out)
            if list(out) != want:
                return False
    segmented_cases = [
        # (free_at, times, sizes, bounds, caps): idle and busy partitions,
        # arrivals exactly on a boundary (new rate), empty partitions,
        # rate steps both directions.
        (0.0, [], [], [1.0], [8.0, 16.0]),
        (0.0, [0.1, 0.4, 1.0, 1.3], [100, 100, 100, 100], [1.0], [8e3, 4e3]),
        (0.5, [0.6, 0.61, 0.62, 2.5, 2.51], [500, 500, 500, 500, 500],
         [1.0, 2.0], [8e5, 4e5, 1.6e6]),
        (0.0, [3.0, 3.5], [200, 200], [1.0, 2.0], [8e3, 8e4, 8e5]),
        (0.0, [0.1 * k for k in range(1, 30)], [125] * 29,
         [1.5], [1e4, 2e4]),
    ]
    for free_at, times, sizes, bounds, caps in segmented_cases:
        want = _lindley_segmented_scalar(free_at, times, sizes, bounds, caps)
        got = _lindley_segmented_numpy(
            free_at,
            np.asarray(times, dtype=np.float64),
            np.asarray(sizes, dtype=np.int64),
            bounds,
            caps,
            min_seg=0.0,
            note=False,
        )
        if got is not None and list(got) != want:
            return False
    # A backlog spilling a transmission start across the boundary must
    # make the kernel decline — a fixed-rate fold would be wrong there.
    spill = _lindley_segmented_numpy(
        0.0,
        np.asarray([0.9, 0.91, 0.92], dtype=np.float64),
        np.asarray([12500, 12500, 12500], dtype=np.int64),
        [1.0],
        [1e6, 2e6],  # each tx is 0.1s at 1 Mb/s: starts 2 and 3 spill
        min_seg=0.0,
        note=False,
    )
    if spill is not None:
        return False
    prefix_cases = [
        (0.0, []),
        (1.5, [0.25, 0.5, 0.125]),
        (0.1, [0.2, 0.3, 0.4, tiny, 1e-17, 5.0]),
    ]
    for initial, deltas in prefix_cases:
        want = _prefix_sum_scalar(initial, deltas)
        got = _prefix_sum_numpy(initial, np.asarray(deltas, dtype=np.float64))
        if got != want:
            return False
    masked_cases = [
        ([], [], 0),
        ([3, 1, 4, 1, 5], [True, False, True, True, False], 2),
        ([0.25, 0.5, 0.125, 1e-17], [True, True, False, True], 0.0),
    ]
    for values, mask, initial in masked_cases:
        want = _masked_prefix_sum_scalar(values, mask, initial)
        got = _masked_prefix_sum_numpy(
            np.asarray(values), np.asarray(mask, dtype=bool), initial
        )
        if got is None or len(got) != len(want):
            return False
        if any(a != b for a, b in zip(got, want)):
            return False
    return True


def _get_jit():
    """Compile (once) and return the numba Lindley twin, or None."""
    global _jit_lindley, _jit_checked
    if _jit_checked:
        return _jit_lindley
    _jit_checked = True
    try:  # pragma: no cover - numba absent in the reference environment
        import numba

        @numba.njit(cache=False)
        def _jit(free_at, t, tx, out):
            for i in range(t.shape[0]):
                ti = t[i]
                start = free_at if free_at > ti else ti
                free_at = start + tx[i]
                out[i] = free_at

        probe = np.asarray([0.0, 0.5], dtype=np.float64)
        out = np.empty(2, dtype=np.float64)
        _jit(0.25, probe, probe, out)  # force compilation now
        _jit_lindley = _jit
    except Exception:
        _jit_lindley = None
    return _jit_lindley


# ----------------------------------------------------------------------
# Core kernels (numpy paths)
# ----------------------------------------------------------------------
def _lindley_numpy(free_at, t, tx, min_mean_seg):
    """Exact Lindley fold over float64 arrays.

    Returns ``(f, None)`` with ``f[i] == max(t[i], f[i-1]) + tx[i]``
    under the scalar evaluation order, or ``(None, reason)`` when the
    kernel declines.  Three vector passes:

    1. *Structure guess.*  The classic prefix-sum/running-max Lindley
       transformation computes the completion times up to accumulated
       rounding — useless as output, but its idle restarts (positions
       where the approximate backlog drains) locate the true busy
       segments to within FP noise.
    2. *Exact walk.*  Each guessed segment boundary is resolved with the
       scalar branch (one comparison, one addition — the loop's own
       ops); each segment interior is one seeded left-to-right
       ``np.add.accumulate``, the bit-exact scalar chain.
    3. *Proof.*  A vectorized induction check that every element
       satisfies ``out[i] == max(t[i], out[i-1]) + tx[i]`` under the
       same single rounding.  Any sequence passing it equals the scalar
       fold exactly, so a mis-guessed boundary (possible only on an FP
       near-tie) can never leak: verification fails and the call site
       runs its scalar loop.
    """
    n = t.shape[0]
    if n == 0:
        return t[:0], None
    if free_at <= t[0]:
        idle = t + tx
        if bool((idle[:-1] <= t[1:]).all()):
            # Every service would finish before the next arrival even
            # from a standing start: by induction no backlog ever
            # forms, f = t + tx.
            return idle, None
    # All-busy closed form — the saturated hot case (probe streams at or
    # above avail-bw, greedy TCP): one seeded chain.  If every chained
    # completion lands past the next arrival, the server never idles, so
    # by induction the chain *is* the exact scalar fold — no structure
    # guess or verification pass needed.
    t0 = t[0]
    chain = np.empty(n, dtype=np.float64)
    chain[0] = (free_at if free_at > t0 else t0) + tx[0]
    chain[1:] = tx[1:]
    np.add.accumulate(chain, out=chain)
    if n == 1 or bool((chain[:-1] > t[1:]).all()):
        return chain, None
    # Pass 1: approximate completion times (rounding differs, values are
    # only used to place segment boundaries).
    s = np.cumsum(tx)
    g = t - s
    g += tx  # g[k] = t[k] - sum(tx[:k]), one temp
    if free_at > t[0]:
        g[0] = free_at
    approx = np.maximum.accumulate(g)
    approx += s
    bounds = (np.nonzero(approx[:-1] <= t[1:])[0] + 1).tolist()
    if min_mean_seg and n < (len(bounds) + 1) * min_mean_seg:
        # Busy segments too short: per-segment dispatch would cost more
        # than the scalar loop.  (Declining on the guess is safe — it
        # only routes the caller to the always-correct scalar path.)
        return None, "short-segments"
    bounds.append(n)
    # Pass 2: exact per-segment chains.
    out = tx.copy()
    f = free_at
    p = 0
    for q in bounds:
        tp = t[p]
        start = f if f > tp else tp
        out[p] = start + tx[p]
        if q - p > 1:
            np.add.accumulate(out[p:q], out=out[p:q])
        f = out[q - 1]
        p = q
    # Pass 3: induction proof of bit-equality with the scalar fold.
    t0 = t[0]
    start0 = free_at if free_at > t0 else t0
    if out[0] != start0 + tx[0]:
        return None, "verify-failed"
    if n > 1 and not bool(
        (out[1:] == np.maximum(t[1:], out[:-1]) + tx[1:]).all()
    ):
        return None, "verify-failed"
    return out, None


def _prefix_sum_numpy(initial, deltas):
    acc = np.empty(deltas.shape[0] + 1, dtype=np.float64)
    acc[0] = initial
    acc[1:] = deltas
    return np.add.accumulate(acc).tolist()


def _masked_prefix_sum_numpy(values, mask, initial):
    n = values.shape[0]
    zero = values.dtype.type(0)
    acc = np.empty(n + 1, dtype=values.dtype)
    acc[0] = initial
    np.copyto(acc[1:], np.where(mask, values, zero))
    return np.add.accumulate(acc)[1:].tolist()


# ----------------------------------------------------------------------
# Public kernels
# ----------------------------------------------------------------------
def lindley(free_at: float, times, txs, min_mean_seg: Optional[float] = None):
    """Vectorized exact Lindley fold; list of completion times, or None.

    ``None`` means the kernel declined (disabled, unavailable, or the
    detected busy segments are too short to win) and the caller must run
    its scalar loop.  Inputs may be lists or float64 arrays.
    """
    if not enabled():
        return None
    t = np.asarray(times, dtype=np.float64)
    tx = np.asarray(txs, dtype=np.float64)
    jit = _get_jit()
    if jit is not None:
        out = np.empty(t.shape[0], dtype=np.float64)
        jit(free_at, t, tx, out)
        _count("lindley")
        return out.tolist()
    seg = MIN_MEAN_SEGMENT if min_mean_seg is None else min_mean_seg
    out, reason = _lindley_numpy(free_at, t, tx, seg)
    if out is None:
        _note_fallback(reason)
        return None
    _count("lindley")
    return out.tolist()


def lindley_segmented(free_at: float, times, sizes, bounds, caps):
    """Exact Lindley fold under a piecewise-constant capacity schedule.

    ``bounds``/``caps`` follow the :meth:`Link.capacity_at` convention
    (``caps[k]`` in force on ``[bounds[k-1], bounds[k])``, a start
    exactly on a boundary taking the new rate).  Returns the list of
    completion times, or None when the kernel declines — disabled, a
    busy period spilling a transmission start across a boundary
    (``segment-spill``), or an inner fixed-rate fold declining.
    """
    if not enabled():
        return None
    t = np.asarray(times, dtype=np.float64)
    sz = np.asarray(sizes, dtype=np.int64)
    out = _lindley_segmented_numpy(free_at, t, sz, bounds, caps)
    if out is None:
        return None
    return out.tolist()


def prefix_sum(initial: float, deltas) -> list:
    """Running sum ``[initial, initial+d0, initial+d0+d1, ...]``.

    Always returns the full length ``len(deltas) + 1`` list; the numpy
    path (a seeded ``np.add.accumulate``) and the scalar fallback are
    bit-identical by construction, so this kernel never declines — it
    only degrades.
    """
    if enabled():
        _count("prefix_sum")
        return _prefix_sum_numpy(initial, np.asarray(deltas, dtype=np.float64))
    return _prefix_sum_scalar(initial, deltas)


def masked_prefix_sum(values, mask, initial=0):
    """Running sum of ``values[i]`` where ``mask[i]``, carrying elsewhere.

    Returns a list of length ``len(values)`` (``out[-1]`` is the masked
    total).  Integer inputs stay exact; float inputs are ``==``-equal to
    the scalar fold (the unmasked positions add an exact zero, which can
    normalize ``-0.0`` to ``+0.0`` — equal under ``==``).
    """
    if enabled() and len(values) >= 1:
        _count("masked_prefix_sum")
        return _masked_prefix_sum_numpy(
            np.asarray(values), np.asarray(mask, dtype=bool), initial
        )
    return _masked_prefix_sum_scalar(values, mask, initial)


def merge_parts(parts_t: Sequence[list], parts_s: Sequence[list]):
    """Stable k-way merge of per-feed arrival lists.

    Returns ``(times, sizes, part_idx, t_arr, s_arr)``: merged lists
    ordered by time with exact-time ties broken by part order (then
    within-part order) — the order a ``(time, part, index)``-keyed heap
    would produce — plus the merged float64/int64 arrays when the numpy
    path ran (``None``/``None`` otherwise).  ``part_idx`` is ``None``
    for a single part (the order is the part itself).  The numpy path is
    a stable argsort over the concatenation; the fallback is a stable
    Python sort.  Pure reordering, no arithmetic, so both paths are
    trivially bit-exact.  The caller keeps the arrays as its mirror so
    later folds over the merged tail skip the list→array conversion.
    """
    if enabled():
        _count("merge")
        if len(parts_t) == 1:
            # Single contributing part: the merged order is the part
            # itself (returned unsorted and uncopied).
            t_arr = np.asarray(parts_t[0], dtype=np.float64)
            s_arr = np.asarray(parts_s[0], dtype=np.int64)
            return parts_t[0], parts_s[0], None, t_arr, s_arr
        cat_t = np.concatenate(
            [np.asarray(p, dtype=np.float64) for p in parts_t]
        )
        order = np.argsort(cat_t, kind="stable")
        cat_s = np.concatenate(
            [np.asarray(p, dtype=np.int64) for p in parts_s]
        )
        part_idx = np.concatenate(
            [np.full(len(p), k, dtype=np.intp) for k, p in enumerate(parts_t)]
        )
        t_arr = cat_t[order]
        s_arr = cat_s[order]
        return (
            t_arr.tolist(),
            s_arr.tolist(),
            part_idx[order].tolist(),
            t_arr,
            s_arr,
        )
    if len(parts_t) == 1:
        return parts_t[0], parts_s[0], None, None, None
    entries = []
    for k, (ts, ss) in enumerate(zip(parts_t, parts_s)):
        for j in range(len(ts)):
            entries.append((ts[j], k, ss[j]))
    entries.sort(key=lambda e: e[0])  # stable: ties keep (part, index) order
    return (
        [e[0] for e in entries],
        [e[2] for e in entries],
        [e[1] for e in entries],
        None,
        None,
    )


# ----------------------------------------------------------------------
# Site-facing fold wrappers (keep numpy out of the call sites)
# ----------------------------------------------------------------------
def fold_slice(free_at, times, sizes, lo, hi, cap, keep_after, arrays=None):
    """Fold arrivals ``times[lo:hi]`` / ``sizes[lo:hi]`` through a FIFO
    transmitter of ``cap`` bps starting at ``free_at``.

    Returns ``(end_free_at, kept, kept_bytes, fold_bytes)`` where
    ``kept`` lists the ``(completion, size)`` pairs still in flight after
    ``keep_after`` — or None when the kernel declines and the caller must
    run its scalar loop.  Used by ``Link.sync``'s infinite-buffer fold
    (``keep_after = t_now``) and ``flowtransit._fold_cross``
    (``keep_after`` = the last folded arrival time).

    ``arrays``, when given, is the pre-converted ``(float64 times, int64
    sizes)`` pair for the same slice — the
    :meth:`~repro.netsim.bulkarrivals.CrossAggregator.arrays` mirror —
    which skips the list→array conversion that otherwise dominates the
    kernel's cost.
    """
    if not enabled():
        return None
    if arrays is not None:
        t, sz = arrays
        fold_bytes = int(sz.sum())
        span = float(t[-1]) - float(t[0])
    else:
        t = sz = None
        tsl = times[lo:hi]
        ssl = sizes[lo:hi]
        fold_bytes = sum(ssl)
        span = tsl[-1] - tsl[0]
    if fold_bytes * 8.0 < MIN_RHO * cap * span:
        # Offered load too low for long busy runs: the scalar loop wins.
        _note_fallback("short-segments")
        return None
    if t is None:
        t = np.asarray(tsl, dtype=np.float64)
        sz = np.asarray(ssl, dtype=np.int64)
    f = _fold_arrays(free_at, t, sz, cap)
    if f is None:
        return None
    keep = f > keep_after
    if keep.any():
        kept = list(zip(f[keep].tolist(), sz[keep].tolist()))
        kept_bytes = int(sz[keep].sum())
    else:
        kept = []
        kept_bytes = 0
    return float(f[-1]), kept, kept_bytes, fold_bytes


def _fold_arrays(free_at, t, sz, cap, min_seg=None):
    """Shared exact fold core: tx = size * 8.0 / cap, then Lindley."""
    tx = sz * 8.0 / cap
    jit = _get_jit()
    if jit is not None:
        out = np.empty(t.shape[0], dtype=np.float64)
        jit(free_at, t, tx, out)
        _count("lindley")
        return out
    seg = MIN_MEAN_SEGMENT if min_seg is None else min_seg
    f, reason = _lindley_numpy(free_at, t, tx, seg)
    if f is None:
        _note_fallback(reason)
        return None
    _count("lindley")
    return f


def _lindley_segmented_numpy(free_at, t, sz, bounds, caps, min_seg=None, note=True):
    """Capacity-schedule fold: the proven fixed-rate kernel per segment.

    Arrivals are partitioned by arrival time at the schedule boundaries
    (``side="left"``: an arrival exactly on a boundary joins the new
    segment, mirroring ``bisect_right`` in the capacity lookup) and each
    partition runs :func:`_fold_arrays` at its segment's rate.  That is
    exact only if every transmission *started* inside the segment it was
    partitioned into — a backlog can push a start past the boundary into
    a different rate.  Starts are monotone on a FIFO link, so it
    suffices to check the partition's last start: if it reaches the
    segment end the kernel declines (``segment-spill``) and the caller's
    scalar loop — which looks the rate up per packet — takes over.
    """
    n = t.shape[0]
    if n == 0:
        return t[:0]
    cuts = np.searchsorted(t, np.asarray(bounds, dtype=np.float64), side="left")
    out = np.empty(n, dtype=np.float64)
    f = free_at
    p = 0
    nb = len(bounds)
    for k in range(nb + 1):
        q = int(cuts[k]) if k < nb else n
        if q <= p:
            continue
        seg = _fold_arrays(f, t[p:q], sz[p:q], caps[k], min_seg)
        if seg is None:
            return None
        if k < nb:
            last_start = f if f > t[q - 1] else float(t[q - 1])
            if q - p > 1:
                prev = float(seg[q - p - 2])
                tq = float(t[q - 1])
                last_start = prev if prev > tq else tq
            if last_start >= bounds[k]:
                if note:
                    _note_fallback("segment-spill")
                return None
        out[p:q] = seg
        f = float(seg[-1])
        p = q
    _count("lindley_segmented")
    return out


def fold_slice_segmented(
    free_at, times, sizes, lo, hi, bounds, caps, keep_after, arrays=None
):
    """Capacity-schedule twin of :func:`fold_slice` — same contract.

    Returns ``(end_free_at, kept, kept_bytes, fold_bytes)`` or None when
    declining.  The ρ pre-gate uses the rate in force at the slice's
    first arrival; the per-segment spill check inside the fold keeps the
    result exact whatever the gate lets through.
    """
    if not enabled():
        return None
    if arrays is not None:
        t, sz = arrays
        fold_bytes = int(sz.sum())
        t0 = float(t[0])
        span = float(t[-1]) - t0
    else:
        t = sz = None
        tsl = times[lo:hi]
        ssl = sizes[lo:hi]
        fold_bytes = sum(ssl)
        t0 = tsl[0]
        span = tsl[-1] - t0
    cap_gate = caps[bisect_right(bounds, t0)]
    if fold_bytes * 8.0 < MIN_RHO * cap_gate * span:
        _note_fallback("short-segments")
        return None
    if t is None:
        t = np.asarray(tsl, dtype=np.float64)
        sz = np.asarray(ssl, dtype=np.int64)
    f = _lindley_segmented_numpy(free_at, t, sz, bounds, caps)
    if f is None:
        return None
    keep = f > keep_after
    if keep.any():
        kept = list(zip(f[keep].tolist(), sz[keep].tolist()))
        kept_bytes = int(sz[keep].sum())
    else:
        kept = []
        kept_bytes = 0
    return float(f[-1]), kept, kept_bytes, fold_bytes


def plan_hop(
    free_at, c_times, c_sizes, ci, cut, p_times, p_size, cap, t_end,
    prop, arrays=None,
):
    """Plan one infinite-buffer hop of a probe stream in one fold.

    Merges cross arrivals ``c_times[ci:cut]`` (ties first, matching the
    per-packet path) with the sorted probe arrivals ``p_times`` of
    uniform ``p_size`` bytes, runs the exact Lindley fold, and gathers
    the planner's observables.  Returns ``(dones, exits, new_in_flight,
    end_free_at, fwd_bytes)`` — probe completion times in probe order,
    their hop-exit times (``done + prop``), the merged entries still in
    flight after ``t_end``, the transmitter state, and total bytes
    forwarded — or None when declining (kernel disabled, probes
    reordered by jitter, or busy segments too short).

    ``arrays`` is the optional pre-converted cross slice, as in
    :func:`fold_slice`.
    """
    if not enabled():
        return None
    npr = len(p_times)
    if npr == 0:
        return None
    nc = cut - ci
    if nc == 0:
        # Pure probe stream: constant rate, constant size.  Lindley
        # collapses to one of two closed forms whose validity checks
        # *are* the induction conditions, so no sortedness check, no ρ
        # gate, and no structure guess — a handful of vector passes at
        # any load.  (R ≤ C paces out idle gaps: all-idle.  R > C keeps
        # the transmitter saturated: all-busy.)
        p = np.asarray(p_times, dtype=np.float64)
        tx = p_size * 8.0 / cap
        f = p + tx
        if free_at <= p_times[0] and bool((f[:-1] <= p[1:]).all()):
            _count("lindley")
        else:
            t0 = p_times[0]
            chain = np.empty(npr, dtype=np.float64)
            chain[0] = (free_at if free_at > t0 else t0) + tx
            chain[1:] = tx
            np.add.accumulate(chain, out=chain)
            if npr == 1 or bool((chain[:-1] > p[1:]).all()):
                f = chain
                _count("lindley")
            else:
                # Mixed idle/busy structure (a jittered or lossy
                # schedule): the general guess-walk-verify path.
                f = _fold_arrays(
                    free_at, p, np.full(npr, p_size, dtype=np.int64), cap
                )
                if f is None:
                    return None
        dones = f.tolist()
        # Completion times are monotone on a FIFO link, so the still-in-
        # flight suffix is a single searchsorted cut.
        kidx = int(np.searchsorted(f, t_end, side="right"))
        new_in_flight = [(d, p_size) for d in dones[kidx:]]
        exits = (f + prop).tolist()
        return dones, exits, new_in_flight, dones[-1], p_size * npr
    if arrays is not None:
        ct, cs = arrays
        cross_bytes = int(cs.sum())
        first_cross = float(ct[0])
    else:
        ct = cs = None
        csl = c_sizes[ci:cut]
        cross_bytes = sum(csl)
        first_cross = c_times[ci]
    # With cross traffic merged in, the general segment walk is the
    # likely path — only worth it when the hop runs near saturation.
    first = min(p_times[0], first_cross)
    span = t_end - first
    if (cross_bytes + p_size * npr) * 8.0 < MIN_RHO * cap * span:
        _note_fallback("short-segments")
        return None
    p = np.asarray(p_times, dtype=np.float64)
    if npr > 1 and not (p[1:] >= p[:-1]).all():
        # Send jitter reordered the schedule: the scalar walk's fold
        # order is no longer the sorted merge.
        _note_fallback("unsorted-probes")
        return None
    if ct is None:
        ct = np.asarray(c_times[ci:cut], dtype=np.float64)
        cs = np.asarray(csl, dtype=np.int64)
    # Stable positional merge, cross first on exact-time ties
    # (side="right"), mirroring the scalar walk's ``tc > t: break``.
    pos = np.searchsorted(ct, p, side="right") + np.arange(npr)
    m = npr + nc
    mt = np.empty(m, dtype=np.float64)
    msz = np.empty(m, dtype=np.int64)
    pmask = np.zeros(m, dtype=bool)
    pmask[pos] = True
    mt[pmask] = p
    mt[~pmask] = ct
    msz[pmask] = p_size
    msz[~pmask] = cs
    f = _fold_arrays(free_at, mt, msz, cap)
    if f is None:
        return None
    _count("merge")
    dones = f[pos]
    exits = (dones + prop).tolist()
    keep = f > t_end
    if keep.any():
        new_in_flight = list(zip(f[keep].tolist(), msz[keep].tolist()))
    else:
        new_in_flight = []
    return dones.tolist(), exits, new_in_flight, float(f[-1]), int(msz.sum())


def masked_pending(owners, sizes, lo, hi, owner):
    """Count/sum the entries of ``owner`` in ``owners[lo:hi]``.

    Identity-masked prefix sum over the merged tail (the SIM010
    masked-prefix-sum shape); returns ``(count, nbytes)`` or None when
    the kernel declines.
    """
    if not enabled():
        return None
    _count("masked_prefix_sum")
    own = np.empty(hi - lo, dtype=object)
    for i in range(hi - lo):  # object arrays fill element-wise
        own[i] = owners[lo + i]
    mask = own == owner  # no __eq__ on sources: identity semantics
    count = int(np.count_nonzero(mask))
    if not count:
        return 0, 0
    sz = np.asarray(sizes[lo:hi], dtype=np.int64)
    total = _masked_prefix_sum_numpy(sz, mask, 0)[-1]
    return count, int(total)


def _reset_for_tests() -> None:
    """Clear readiness + counters (test hook; not part of the API)."""
    global _ready, _noted_disabled, _jit_checked, _jit_lindley
    _ready = None
    _noted_disabled = False
    _jit_checked = False
    _jit_lindley = None
    kernel_calls.clear()
    kernel_fallbacks.clear()
