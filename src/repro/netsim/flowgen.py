"""Closed-loop background traffic: short TCP flows ("mice").

The open-loop sources in :mod:`~repro.netsim.crosstraffic` offer a fixed
load regardless of congestion — the right model for the paper's controlled
accuracy experiments, where the avail-bw must be a configured constant.
Real Internet load, however, is mostly **closed-loop**: swarms of short
TCP transfers (the "mice" of Section II) that back off under loss and
whose arrival is well modeled as Poisson with heavy-tailed sizes (the
classic web-workload findings behind self-similar traffic).

:class:`ShortFlowGenerator` provides that workload: flows arrive as a
Poisson process, each transfers a Pareto-distributed number of bytes over
its own TCP connection, and completed connections are torn down.  Because
the load responds to congestion there is no configured "true avail-bw" —
experiments against this workload validate pathload against the MRTG
monitor instead (`tests/test_flowgen.py`), which is exactly how the paper
verified on real paths.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .engine import Simulator
from .path import PathNetwork
from ..transport.tcp import TCPConfig, TCPReceiver, TCPSender

__all__ = ["ShortFlowGenerator"]


class ShortFlowGenerator:
    """Poisson arrivals of short TCP transfers over a path.

    Parameters
    ----------
    target_load_bps:
        Long-run average *offered* load: the flow arrival rate is
        ``target_load_bps / (8 * mean_flow_bytes)``.  The achieved
        throughput can be lower under congestion — that is the point of a
        closed-loop model.
    mean_flow_bytes:
        Mean transfer size; sizes are Pareto with shape ``size_alpha``
        (heavy-tailed: mostly mice, occasional elephants).
    size_alpha:
        Pareto shape for flow sizes (1.2 is the classic web-size tail).
    max_concurrent:
        Cap on simultaneously active flows (models a connection limit and
        bounds simulator memory under overload).
    """

    def __init__(
        self,
        sim: Simulator,
        network: PathNetwork,
        target_load_bps: float,
        rng: np.random.Generator,
        mean_flow_bytes: float = 60_000,
        size_alpha: float = 1.2,
        min_flow_bytes: int = 2_000,
        tcp_config: Optional[TCPConfig] = None,
        max_concurrent: int = 64,
        start: float = 0.0,
        stop: Optional[float] = None,
    ):
        if target_load_bps <= 0:
            raise ValueError(f"target load must be positive, got {target_load_bps}")
        if size_alpha <= 1.0:
            raise ValueError(f"size alpha must exceed 1, got {size_alpha}")
        if mean_flow_bytes <= min_flow_bytes:
            raise ValueError("mean flow size must exceed the minimum size")
        if max_concurrent < 1:
            raise ValueError(f"max_concurrent must be >= 1, got {max_concurrent}")
        self.sim = sim
        self.network = network
        self.rng = rng
        self.mean_flow_bytes = float(mean_flow_bytes)
        self.size_alpha = float(size_alpha)
        self.min_flow_bytes = int(min_flow_bytes)
        self.tcp_config = tcp_config if tcp_config is not None else TCPConfig(min_rto=0.5)
        self.max_concurrent = max_concurrent
        self.stop = stop
        #: mean inter-arrival time implied by the target load
        self.mean_interarrival = 8.0 * mean_flow_bytes / target_load_bps
        # statistics
        self.flows_started = 0
        self.flows_completed = 0
        self.flows_rejected = 0  # dropped by the concurrency cap
        self.bytes_completed = 0
        self._active: set[TCPSender] = set()
        sim.schedule_at(start + self._next_gap(), self._arrival)

    # ------------------------------------------------------------------
    def _next_gap(self) -> float:
        return float(self.rng.exponential(self.mean_interarrival))

    def _flow_size(self) -> int:
        # Pareto with mean = xm * alpha/(alpha-1); xm from the target mean
        xm = (self.mean_flow_bytes - self.min_flow_bytes) * (
            self.size_alpha - 1.0
        ) / self.size_alpha
        size = self.min_flow_bytes + xm * (1.0 + self.rng.pareto(self.size_alpha))
        return int(size)

    def _arrival(self) -> None:
        now = self.sim.now
        if self.stop is not None and now >= self.stop:
            return
        self.sim.schedule(self._next_gap(), self._arrival)
        if len(self._active) >= self.max_concurrent:
            self.flows_rejected += 1
            return
        size = self._flow_size()
        receiver = TCPReceiver(self.sim, self.network, flow_id="", config=self.tcp_config)
        sender = TCPSender(
            self.sim,
            self.network,
            receiver,
            config=self.tcp_config,
            total_bytes=size,
            on_complete=self._flow_done,
        )
        self._active.add(sender)
        self.flows_started += 1
        sender.start()

    def _flow_done(self, sender: TCPSender) -> None:
        self._active.discard(sender)
        self.flows_completed += 1
        self.bytes_completed += sender.total_bytes or 0

    # ------------------------------------------------------------------
    @property
    def active_flows(self) -> int:
        """Currently running transfers."""
        return len(self._active)

    def achieved_load_bps(self, duration: float) -> float:
        """Average completed-transfer goodput over ``duration`` seconds."""
        if duration <= 0:
            raise ValueError("duration must be positive")
        return self.bytes_completed * 8.0 / duration
