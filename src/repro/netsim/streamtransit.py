"""Event-elided probe streams: analytic stream transit for SLoPS.

PR 4 removed per-packet events for background cross traffic; after it, the
event budget of every pathload experiment is dominated by the foreground
probe streams themselves — K send events plus K x H per-hop delivery
events per stream.  The paper's path model makes those elidable too: a
periodic stream through FIFO store-and-forward hops (Section III-A) is a
per-hop Lindley recursion

    start_i = max(arrival_i, free_at);  done_i = start_i + size*8/C

against a cross-traffic arrival sequence that the link's
:class:`~repro.netsim.bulkarrivals.CrossAggregator` already holds as
sorted arrays.  :func:`plan_stream` therefore walks the whole stream
analytically at send time — merging the K probe send instants with each
hop's cross arrivals in timestamp order, replaying drop-tail decisions
exactly as :meth:`Link.sync` would — and schedules **one** simulator
event (the delivery of the stream-closing packet) instead of ~K x (H+1).

Determinism contract
--------------------
Every observable is bit-identical to the per-packet path: the recursion
uses the same floating-point expressions in the same order as
``Link.send()``/``Link.sync()``, planned admissions are folded into link
state lazily through per-hop :class:`HopAgenda` queues (so ``LinkStats``
and monitor samples agree at every read instant), and clock/jitter RNG
draw *order* is unchanged.  Engine digests are reproducible within a
mode; across modes they necessarily differ (events are elided), exactly
as for PR 4's bulk cross traffic.  See ``docs/performance.md``.

Fallback
--------
Planning is refused (per-packet path, same sample path) when a hop has a
qdisc/drop hook/rebound delivery callback, when a clock carries an RNG
(draw timing would move), or when any per-packet foreground participant
has claimed the network (TCP, ping, per-packet cross traffic, another
in-flight per-packet stream).  If eligibility breaks *mid-stream* — any
foreign ``Link.send()`` on a planned hop, a source registration, or a
link decommission — the plan is revoked: folded state is kept, unfolded
planned admissions are discarded, and the remaining packets re-enter the
ordinary per-packet machinery at exactly the times and values the plan
had computed, so the sample path is identical to a never-planned run.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left, bisect_right
from collections import deque
from typing import TYPE_CHECKING, Optional

from ..core.probing import PacketRecord
from . import kernels
from .engine import SimulationError
from .packet import Packet, PacketKind

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..transport.probe import ProbeChannel, _StreamRun

__all__ = [
    "HopAgenda",
    "StreamPlan",
    "STREAM_FALLBACK_REASONS",
    "plan_stream",
]

#: Every reason ``repro_fastpath_fallback_total`` may carry — plan-time
#: refusals plus mid-flight revocations — for declared-but-zero metric
#: export (docs/observability.md).  "tracer" is inherited from a
#: flow-transit dissolve that rewinds adopted streams.
STREAM_FALLBACK_REASONS: tuple[str, ...] = (
    "disabled",
    "foreground-active",
    "impure-clock",
    "link-config",
    "foreign-send",
    "link-decommission",
    "stream-overlap",
    "tracer",
)

_INF = float("inf")


class HopAgenda:
    """One hop's queue of planned (not yet folded) probe admissions.

    ``pairs`` holds ``(arrival_time, schedule_index)`` at this hop,
    ``accepts`` the replayed drop-tail verdicts (``None`` when every
    admission was accepted), ``dones`` the transmission-complete times
    (the hop's ``_free_at`` after each accepted admission), and
    ``exit_pairs`` the ``(hop_exit_time, schedule_index)`` of accepted
    admissions — which is also the next hop's arrival list.  ``idx`` is
    the fold cursor, advanced by :meth:`Link._sync_fg` exactly as the
    aggregator's ``idx`` is for cross traffic.

    The ``end_*``/``d_*`` fields snapshot the hop's queue state and stats
    deltas at ``t_end`` (the last planned admission): when the first fold
    happens at or after ``t_end`` — the common case, since anything
    arriving mid-stream revokes or advances the cursors — ``Link.sync``
    applies them wholesale instead of replaying the walk.
    """

    __slots__ = (
        "link",
        "_pairs",
        "_pairs_t",
        "_pairs_i",
        "accepts",
        "dones",
        "_exit_pairs",
        "_exit_t",
        "_exit_i",
        "size",
        "sizes",
        "persistent",
        "proto",
        "plan",
        "idx",
        "t_end",
        "ci_start",
        "ci_end",
        "end_free_at",
        "end_backlog",
        "end_in_flight",
        "d_fwd_bytes",
        "d_fwd_pkts",
        "d_drop_bytes",
        "d_drop_pkts",
    )

    def __init__(
        self,
        link,
        pairs,
        accepts,
        dones,
        exit_pairs,
        size,
        proto,
        plan,
        sizes=None,
        persistent=False,
    ):
        self.link = link
        # ``pairs``/``exit_pairs`` may arrive pre-zipped (flow agendas,
        # which mutate them in place) or as parallel time/index lists set
        # by the stream planner after construction; the tupled views are
        # then materialized only if a replay path actually reads them.
        self._pairs = pairs
        self._pairs_t = self._pairs_i = None
        self.accepts = accepts
        self.dones = dones
        self._exit_pairs = exit_pairs
        self._exit_t = self._exit_i = None
        self.size = size
        # Probe-stream agendas carry fixed-size packets (``sizes is None``);
        # flow-transit agendas mix segment and ack sizes per entry.
        self.sizes = sizes
        # Persistent agendas (flow-transit) grow over time and are detached
        # by their owner, not by fold exhaustion; ``t_end`` is +inf so the
        # wholesale fast-forward branch in Link.sync() never fires.
        self.persistent = persistent
        self.proto = proto  # template Packet for fold-time drop tracing
        self.plan = plan
        self.idx = 0

    @property
    def pairs(self):
        p = self._pairs
        if p is None:
            p = self._pairs = list(zip(self._pairs_t, self._pairs_i))
        return p

    @property
    def exit_pairs(self):
        p = self._exit_pairs
        if p is None:
            p = self._exit_pairs = list(zip(self._exit_t, self._exit_i))
        return p

    def count(self) -> int:
        """``len(self.pairs)`` without forcing materialization."""
        p = self._pairs
        return len(p) if p is not None else len(self._pairs_t)


class StreamPlan:
    """The fully computed transit of one probe stream.

    Holds per-packet traversal data (exit time per hop, drop hop),
    per-hop agendas installed on the links, and the precomputed
    :class:`PacketRecord` list in arrival order.  Records are *committed*
    into the live ``_StreamRun`` at finalize time (or at revocation), so
    straggler accounting matches the per-packet path exactly.
    """

    __slots__ = (
        "channel",
        "run",
        "done_event",
        "network",
        "links",
        "sched",
        "drop_hop",
        "agendas",
        "records",
        "rec_times",
        "size",
        "_committed",
        "commit_closed",
        "complete_call",
        "revoked",
    )

    def __init__(self, channel, run, done_event):
        self.channel = channel
        self.run = run
        self.done_event = done_event
        self.network = channel.network
        self.links = channel.network.forward_links
        self.sched = run.schedule
        self.drop_hop = [-1] * len(run.schedule)
        self.agendas: list[HopAgenda] = []
        self.records: list = []
        self.rec_times: list[float] = []
        self.size = run.spec.packet_size
        self._committed = 0
        self.commit_closed = False
        self.complete_call = None
        self.revoked = False

    # ------------------------------------------------------------------
    # Record commitment (finalize / straggler semantics)
    # ------------------------------------------------------------------
    def commit(self, limit: float, inclusive: bool) -> None:
        """Append planned records with delivery time up to ``limit``.

        ``inclusive`` matches the per-packet event order at the boundary:
        the stream-closing arrival commits itself (<=), while the
        deadline event — inserted at stream start, hence popped first on
        an exact tie — cuts strictly (<).
        """
        times = self.rec_times
        p = self._committed
        if inclusive:
            q = bisect_right(times, limit, p)
        else:
            q = bisect_left(times, limit, p)
        if q > p:
            self.run.records.extend(self.records[p:q])
            self._committed = q

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def retire_or_revoke(self, reason: str = "stream-overlap") -> None:
        """Fold everything due; revert any future stragglers to per-packet.

        Called when a new stream starts planning while this plan is still
        installed (``reason="stream-overlap"``), or when a TCP flow is
        about to attach to the flow-transit domain (``"foreign-send"`` —
        the flow's first per-packet segment would have revoked the plan
        under that name anyway).  If every planned admission has already
        happened the plan simply detaches; otherwise the straggling
        packets are handed back to the event-driven path.
        """
        pending = False
        for agenda in self.agendas:
            link = agenda.link
            if link._agenda is agenda:
                link.sync()  # folds due entries; clears agenda if exhausted
                if link._agenda is agenda:
                    pending = True
        if pending:
            self.revoke(reason)
        else:
            self.revoked = True
            if self.network._plan is self:
                self.network._plan = None

    def revoke(self, reason: str) -> None:
        """Mid-stream fallback: discard the unfolded future, replay it live.

        Folds every planned hop to ``now``, strips the agendas, commits
        records already delivered, and re-enters the per-packet machinery
        for the rest: the unsent suffix resumes the self-rescheduling
        sender at its precomputed send times (jitter draws are *not*
        repeated), and each in-flight packet gets one continuation event
        at its committed transmission-exit time.  The resulting sample
        path is identical to a run that never planned.
        """
        if self.revoked:
            return
        self.revoked = True
        channel = self.channel
        network = self.network
        if network._plan is self:
            network._plan = None
        sim = channel.sim
        t_rev = sim.now
        for agenda in self.agendas:
            link = agenda.link
            if link._agenda is agenda:
                link.sync()
                link._agenda = None
        if self.complete_call is not None:
            self.complete_call.cancel()
            self.complete_call = None
        run = self.run
        done = self.done_event
        run.plan = None
        if not self.commit_closed:
            self.commit(t_rev, inclusive=True)
            self.commit_closed = True
        if not run.done:
            # Post-finalize revocations (straggler drain under a newly
            # starting flow) are not fallbacks: the stream completed fast.
            channel._note_fallback(reason)
        sched = self.sched
        n = len(sched)
        # Unsent suffix (send times are sorted, so it is a suffix).
        i0 = n
        for i in range(n):
            if sched[i][0] > t_rev:
                i0 = i
                break
        if i0 < n:
            unsent = n - i0
            run.n_sent -= unsent
            channel.packets_sent -= unsent
            channel.bytes_sent -= unsent * self.size
            sim.schedule_at(sched[i0][0], channel._send_next, run, i0, done)
        if not run.done and not run.claimed:
            run.claimed = True
            network.claim_per_packet()
        # In-flight continuations: one event at the committed hop exit.
        # Per-packet exit times are rebuilt from the per-hop exit pair
        # lists — revocation is rare, the planning hot path stores none.
        exit_maps = [{i: x for x, i in ag.exit_pairs} for ag in self.agendas]
        n_hops = len(self.links)
        for i in range(i0):
            placed = False
            dropped = False
            h = -1
            for h, m in enumerate(exit_maps):
                x = m.get(i)
                if x is None:
                    dropped = True  # dropped entering this hop
                    break
                if x > t_rev:
                    sim.schedule_at(
                        x, channel._replay_exit, run, sched[i][0], sched[i][1], h, done
                    )
                    placed = True
                    break
            if placed:
                continue
            # All committed exits are in the past: the packet was either
            # delivered (record committed above) or dropped at a hop whose
            # arrival has also been folded — nothing left to replay.
            assert dropped or h == len(exit_maps) - 1 == n_hops - 1


def _impure(clock) -> bool:
    """A clock that consumes an RNG per read cannot be batch-read."""
    return (
        getattr(clock, "_rng", None) is not None
        or getattr(clock, "rng", None) is not None
    )


def plan_stream(
    channel: "ProbeChannel", run: "_StreamRun", done_event
) -> tuple[Optional[StreamPlan], Optional[str]]:
    """Attempt to plan ``run`` analytically; return ``(plan, reason)``.

    On success the plan is installed (agendas on every traversed hop, the
    single completion event scheduled) and ``(plan, None)`` is returned.
    On refusal returns ``(None, reason)`` and the caller takes the
    per-packet path; the sample path is identical either way.
    """
    network = channel.network
    domain = getattr(network, "_flow_domain", None)
    if domain is not None and domain.alive:
        # A flow-transit domain owns the hop agendas: probe streams are
        # adopted into its virtual walk instead of planning solo, so a
        # *planned* foreground flow no longer forces the per-packet path.
        return domain.adopt_stream(channel, run, done_event)
    prev = network._plan
    if prev is not None:
        prev.retire_or_revoke()
    if network._pp_claims > 0:
        return None, "foreground-active"
    if _impure(channel.sender_clock) or _impure(channel.receiver_clock):
        return None, "impure-clock"
    links = network.forward_links
    advance = network._advance
    for link in links:
        if link._deliver != advance or link._qdisc is not None or link._drop_hook is not None:
            return None, "link-config"

    sim = channel.sim
    spec = run.spec
    size = spec.packet_size
    sched = run.schedule
    plan = StreamPlan(channel, run, done_event)
    drop_hop = plan.drop_hop

    # Arrival times and schedule indices in admission order, as parallel
    # lists (the hop walks and the vector kernels consume bare times, and
    # the index list passes through infinite-buffer hops untouched).
    # Positional indices, not seqs: jitter can reorder sends, and
    # ``drop_hop``/``sched``/record pairing are all indexed by schedule
    # position.
    cur_t = [t for t, _seq in sched]
    cur_i = list(range(len(sched)))
    for h, link in enumerate(links):
        if not cur_t:
            break
        agg = link._agg
        t_end = cur_t[-1]
        if agg is not None:
            agg.extend_until(t_end)
            c_times = agg.times
            c_sizes = agg.sizes
            ci = agg.idx
            cn = len(c_times)
        else:
            c_times = c_sizes = ()
            ci = 0
            cn = 0
        ci_start = ci
        cap = link.capacity_bps
        cap_sched = link._cap_sched
        if cap_sched is not None:
            # Piecewise-constant capacity: every admission looks up the
            # rate in force at its transmission start, exactly as
            # ``Link.send()`` does.  The vector kernel is skipped (its
            # Lindley folds assume one rate); the scalar walks below do
            # the per-admission lookup inline.
            cs_bounds, cs_caps = cap_sched
        prop = link.prop_delay
        buffer_bytes = link.buffer_bytes
        free_at = link._free_at
        tx = size * 8.0 / cap
        a_dones: list[float] = []
        nxt_t: list[float] = []
        nxt_i: list[int] = []
        fwd_bytes = fwd_pkts = drop_bytes = drop_pkts = 0
        if buffer_bytes is None:
            # Infinite buffer: only the transmitter clock decides.  The
            # per-arrival purge is deferred as in Link.sync(): the hop's
            # last planned arrival (``t_end``) is known up front, dones
            # are monotone on a FIFO link, so admissions completing by
            # ``t_end`` never enter the end-state deque at all.
            a_accepts = None
            planned = None
            cut = bisect_right(c_times, t_end, ci, cn) if cn else ci
            big_enough = (
                (cut - ci) + len(cur_t) >= kernels.MIN_BATCH
                if cut > ci
                else len(cur_t) >= kernels.MIN_PROBES
            )
            if cap_sched is None and big_enough and kernels.enabled():
                planned = kernels.plan_hop(
                    free_at, c_times, c_sizes, ci, cut,
                    cur_t, size, cap, t_end, prop,
                    agg.arrays(ci, cut) if agg is not None else None,
                )
            if planned is not None:
                a_dones, nxt_t, new_in_flight, free_at, merged_bytes = planned
                end_in_flight = [e for e in link._in_flight if e[0] > t_end]
                end_in_flight.extend(new_in_flight)
                nxt_i = cur_i
                fwd_bytes += merged_bytes
                fwd_pkts += (cut - ci) + len(cur_t)
                ci = cut
            elif cut == ci:
                # No cross arrivals due on this hop: only the probes'
                # own back-to-back spacing matters, so the interleaved
                # walk collapses to the bare Lindley chain and the index
                # list passes through unchanged.
                end_in_flight = [e for e in link._in_flight if e[0] > t_end]
                eif_append = end_in_flight.append
                dones_append = a_dones.append
                nxt_append = nxt_t.append
                for t in cur_t:  # simlint: vector-safe
                    start = free_at if free_at > t else t
                    if cap_sched is None:
                        done_t = start + tx
                    else:
                        done_t = start + size * 8.0 / cs_caps[
                            bisect_right(cs_bounds, start)
                        ]
                    free_at = done_t
                    if done_t > t_end:
                        eif_append((done_t, size))
                    dones_append(done_t)
                    nxt_append(done_t + prop)
                nxt_i = cur_i
                k = len(a_dones)
                fwd_bytes += size * k
                fwd_pkts += k
            else:
                end_in_flight = [e for e in link._in_flight if e[0] > t_end]
                eif_append = end_in_flight.append
                dones_append = a_dones.append
                nxt_append = nxt_t.append
                for t in cur_t:  # simlint: vector-safe
                    while ci < cn:
                        tc = c_times[ci]
                        if tc > t:
                            break
                        sz = c_sizes[ci]
                        start = free_at if free_at > tc else tc
                        if cap_sched is not None:
                            cap = cs_caps[bisect_right(cs_bounds, start)]
                        free_at = start + sz * 8.0 / cap
                        if free_at > t_end:
                            eif_append((free_at, sz))
                        fwd_bytes += sz
                        fwd_pkts += 1
                        ci += 1
                    start = free_at if free_at > t else t
                    if cap_sched is None:
                        done_t = start + tx
                    else:
                        done_t = start + size * 8.0 / cs_caps[
                            bisect_right(cs_bounds, start)
                        ]
                    free_at = done_t
                    if done_t > t_end:
                        eif_append((done_t, size))
                    dones_append(done_t)
                    nxt_append(done_t + prop)
                nxt_i = cur_i
                k = len(a_dones)
                fwd_bytes += size * k
                fwd_pkts += k
            end_backlog = sum(e[1] for e in end_in_flight)
        else:
            # Exact drop-tail replay, mirroring Link.sync()/Link.send():
            # per-arrival purge, cross folded first on exact-time ties,
            # then the probe's own admission.
            a_accepts = []
            backlog = link._backlog_bytes
            in_flight = deque(link._in_flight)
            for t, i in zip(cur_t, cur_i):
                while ci < cn:
                    tc = c_times[ci]
                    if tc > t:
                        break
                    sz = c_sizes[ci]
                    while in_flight and in_flight[0][0] <= tc:
                        backlog -= in_flight.popleft()[1]
                    if backlog + sz > buffer_bytes:
                        drop_bytes += sz
                        drop_pkts += 1
                    else:
                        start = free_at if free_at > tc else tc
                        if cap_sched is not None:
                            cap = cs_caps[bisect_right(cs_bounds, start)]
                        free_at = start + sz * 8.0 / cap
                        in_flight.append((free_at, sz))
                        backlog += sz
                        fwd_bytes += sz
                        fwd_pkts += 1
                    ci += 1
                while in_flight and in_flight[0][0] <= t:
                    backlog -= in_flight.popleft()[1]
                if backlog + size > buffer_bytes:
                    a_accepts.append(False)
                    a_dones.append(0.0)
                    drop_bytes += size
                    drop_pkts += 1
                    drop_hop[i] = h
                else:
                    start = free_at if free_at > t else t
                    if cap_sched is None:
                        done_t = start + tx
                    else:
                        done_t = start + size * 8.0 / cs_caps[
                            bisect_right(cs_bounds, start)
                        ]
                    free_at = done_t
                    in_flight.append((done_t, size))
                    backlog += size
                    fwd_bytes += size
                    fwd_pkts += 1
                    a_accepts.append(True)
                    a_dones.append(done_t)
                    nxt_t.append(done_t + prop)
                    nxt_i.append(i)
            while in_flight and in_flight[0][0] <= t_end:
                backlog -= in_flight.popleft()[1]
            end_in_flight = in_flight
            end_backlog = backlog
        proto = Packet(size, flow_id=run.flow_id, kind=PacketKind.PROBE)
        agenda = HopAgenda(link, None, a_accepts, a_dones, None, size, proto, plan)
        # Parallel-list views; the tupled ``pairs``/``exit_pairs`` are
        # zipped lazily only if a replay path reads them.
        agenda._pairs_t = cur_t
        agenda._pairs_i = cur_i
        agenda._exit_t = nxt_t
        agenda._exit_i = nxt_i
        agenda.t_end = t_end
        agenda.ci_start = ci_start
        agenda.ci_end = ci
        agenda.end_free_at = free_at
        agenda.end_backlog = end_backlog
        agenda.end_in_flight = tuple(end_in_flight)
        agenda.d_fwd_bytes = fwd_bytes
        agenda.d_fwd_pkts = fwd_pkts
        agenda.d_drop_bytes = drop_bytes
        agenda.d_drop_pkts = drop_pkts
        plan.agendas.append(agenda)
        cur_t = nxt_t
        cur_i = nxt_i

    # Receiver records, in arrival order (clocks are pure: read order is
    # observationally identical to the per-packet interleaving).
    sender_read = channel.sender_clock.read
    receiver_read = channel.receiver_clock.read
    rec_append = plan.records.append
    rt_append = plan.rec_times.append
    last = len(sched) - 1
    complete_at = None
    for x, i in zip(cur_t, cur_i):
        s, seq = sched[i]
        rec_append(
            PacketRecord(
                seq=seq,
                sender_stamp=sender_read(s),
                recv_stamp=receiver_read(x),
            )
        )
        rt_append(x)
        if seq == last:
            complete_at = x

    if sim.sanitizing and not channel._shadow_checked:
        channel._shadow_checked = True
        _shadow_verify(channel, plan)

    # Install: lazy-fold agendas plus the one completion event (delivery
    # of seq K-1, which is what triggers per-packet finalization).  If
    # seq K-1 was dropped the pre-scheduled deadline finalizes instead.
    if complete_at is not None:
        plan.complete_call = sim.schedule_at(
            complete_at, channel._fast_complete, run, done_event
        )
    network._plan = plan
    for agenda in plan.agendas:
        agenda.link._agenda = agenda
    run.plan = plan
    run.n_sent = spec.n_packets
    channel.packets_sent += spec.n_packets
    channel.bytes_sent += spec.n_packets * size
    return plan, None


# ----------------------------------------------------------------------
# Sanitize-mode shadow verification
# ----------------------------------------------------------------------
def _shadow_verify(channel: "ProbeChannel", plan: StreamPlan) -> None:
    """Re-derive one planned stream with an independent per-packet
    recursion and raise :class:`SimulationError` on any divergence.

    Runs once per channel under ``Simulator(sanitize=True)``.  The shadow
    deliberately avoids the planner's merged-walk structure: it builds an
    explicit tagged event list per hop with :func:`heapq.merge` and
    processes it sequentially, so a bug in the tight loops cannot hide in
    its own mirror image.
    """
    links = plan.links
    sched = plan.sched
    size = plan.size
    arrivals = [(t, i) for i, (t, _seq) in enumerate(sched)]
    deliveries: list[tuple[float, int]] = []
    for h, link in enumerate(links):
        if not arrivals:
            break
        agg = link._agg
        if agg is not None:
            cross = zip(agg.times[agg.idx:], agg.sizes[agg.idx:])
        else:
            cross = ()
        horizon = arrivals[-1][0]
        tagged_cross = ((t, 0, None, s) for t, s in cross if t <= horizon)
        tagged_probe = ((t, 1, i, size) for t, i in arrivals)
        free_at = link._free_at
        backlog = link._backlog_bytes
        in_flight = deque(link._in_flight)
        cap = link.capacity_bps
        cap_sched = link._cap_sched
        buffer_bytes = link.buffer_bytes
        exit_map = {i: x for x, i in plan.agendas[h].exit_pairs}
        out: list[tuple[float, int]] = []
        for t, _tag, i, sz in heapq.merge(tagged_cross, tagged_probe):
            while in_flight and in_flight[0][0] <= t:
                backlog -= in_flight.popleft()[1]
            if buffer_bytes is not None and backlog + sz > buffer_bytes:
                if i is not None and plan.drop_hop[i] != h:
                    raise SimulationError(
                        f"stream-transit shadow check: hop {h} dropped probe "
                        f"{i} but the plan accepted it"
                    )
                continue
            start = free_at if free_at > t else t
            if cap_sched is not None:
                cap = cap_sched[1][bisect_right(cap_sched[0], start)]
            free_at = start + sz * 8.0 / cap
            in_flight.append((free_at, sz))
            backlog += sz
            if i is not None:
                if plan.drop_hop[i] == h:
                    raise SimulationError(
                        f"stream-transit shadow check: hop {h} accepted probe "
                        f"{i} but the plan dropped it"
                    )
                x = free_at + link.prop_delay
                planned = exit_map.get(i)
                if planned != x:
                    raise SimulationError(
                        f"stream-transit shadow check: hop {h} probe {i} exit "
                        f"{x!r} != planned {planned!r}"
                    )
                out.append((x, i))
        arrivals = out
    deliveries = arrivals
    if len(deliveries) != len(plan.records):
        raise SimulationError(
            f"stream-transit shadow check: {len(deliveries)} deliveries "
            f"!= {len(plan.records)} planned records"
        )
