"""Link monitors: the repo's stand-in for MRTG and router queue inspection.

The paper verifies pathload against **MRTG** graphs: 5-minute average
utilization readings of the tight link, obtained from SNMP interface byte
counters, with a quantized reporting resolution (Fig. 10's readings come in
6-Mb/s bands).  :class:`LinkMonitor` reproduces that measurement chain —
windowed byte-counter deltas — and :class:`MRTGMonitor` adds the banded
readout.  :class:`QueueMonitor` samples a link's backlog, which Section VII
uses to explain RTT inflation under a bulk TCP connection.

Monitors are read-only clients of the link's sync points: ``link.stats``
and ``link.backlog_bytes()`` both fold any pending bulk cross-traffic
arrivals (see :mod:`repro.netsim.bulkarrivals`) before returning, so every
sample below is identical whether the link's cross traffic runs on the
event-elided bulk path or the per-packet path.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass
from typing import Optional

from .engine import ScheduledCall, Simulator
from .link import Link

__all__ = [
    "UtilizationSample",
    "LinkMonitor",
    "MRTGMonitor",
    "QueueMonitor",
]


@dataclass(frozen=True)
class UtilizationSample:
    """One averaging window of a link's utilization.

    ``avail_bw_bps`` is the avail-bw definition of the paper's Eq. (2):
    ``C * (1 - u)`` over this window.
    """

    t_start: float
    t_end: float
    bytes_forwarded: int
    utilization: float
    avail_bw_bps: float

    @property
    def throughput_bps(self) -> float:
        """Average forwarded rate over the window."""
        return self.bytes_forwarded * 8.0 / (self.t_end - self.t_start)


class LinkMonitor:
    """Periodic utilization/avail-bw sampler over one link.

    Reads the link's cumulative forwarded-byte counter every ``window``
    seconds — exactly how MRTG derives utilization from SNMP counters.
    ``stop`` bounds the sampling (the window containing it is the last one
    recorded); :meth:`detach` cancels the pending tick at any point, so a
    monitor never keeps an otherwise-idle simulation rescheduling forever.
    """

    def __init__(
        self,
        sim: Simulator,
        link: Link,
        window: float = 300.0,
        start: float = 0.0,
        stop: Optional[float] = None,
    ):
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.sim = sim
        self.link = link
        self.window = float(window)
        self.stop = stop
        self.samples: list[UtilizationSample] = []
        self._last_bytes = 0
        self._window_start = start
        self._pending: Optional[ScheduledCall] = sim.schedule_at(start, self._begin)

    def detach(self) -> None:
        """Cancel the pending tick; sampling stops immediately.  Idempotent."""
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None

    def _begin(self) -> None:
        self._last_bytes = self.link.stats.bytes_forwarded
        self._window_start = self.sim.now
        self._pending = self.sim.schedule(self.window, self._tick)

    def _tick(self) -> None:
        self._pending = None
        now = self.sim.now
        total = self.link.stats.bytes_forwarded
        delta = total - self._last_bytes
        interval = now - self._window_start
        utilization = (delta * 8.0 / interval) / self.link.capacity_bps
        self.samples.append(
            UtilizationSample(
                t_start=self._window_start,
                t_end=now,
                bytes_forwarded=delta,
                utilization=utilization,
                avail_bw_bps=self.link.capacity_bps * (1.0 - utilization),
            )
        )
        self._last_bytes = total
        self._window_start = now
        if self.stop is not None and now >= self.stop:
            return
        self._pending = self.sim.schedule(self.window, self._tick)

    # ------------------------------------------------------------------
    # Readouts
    # ------------------------------------------------------------------
    def avail_bw_series(self) -> list[tuple[float, float]]:
        """[(window end time, avail-bw in b/s), ...]."""
        return [(s.t_end, s.avail_bw_bps) for s in self.samples]

    def mean_avail_bw(self) -> float:
        """Average avail-bw across all completed windows."""
        if not self.samples:
            raise ValueError("no completed monitoring windows yet")
        return sum(s.avail_bw_bps for s in self.samples) / len(self.samples)

    def sample_covering(self, t: float) -> Optional[UtilizationSample]:
        """The completed window containing time ``t``, if any.

        Windows are appended in time order, so the candidate is the last
        one starting at or before ``t`` — found by bisection, matching the
        ``coverage_fraction`` treatment from the parallel-sweep work.
        """
        samples = self.samples
        i = bisect_right(samples, t, key=lambda s: s.t_start)
        if i:
            s = samples[i - 1]
            if s.t_start <= t < s.t_end:
                return s
        return None


class MRTGMonitor(LinkMonitor):
    """A :class:`LinkMonitor` with MRTG-style banded readings.

    Fig. 10's ground truth is "given as 6-Mb/s ranges, due to the limited
    resolution of the graphs"; :meth:`reading_band` reproduces that: the
    avail-bw reading is reported only as the band ``[k*Q, (k+1)*Q)`` that
    contains it.
    """

    def __init__(
        self,
        sim: Simulator,
        link: Link,
        window: float = 300.0,
        band_bps: float = 6e6,
        start: float = 0.0,
        stop: Optional[float] = None,
    ):
        super().__init__(sim, link, window=window, start=start, stop=stop)
        if band_bps <= 0:
            raise ValueError(f"band must be positive, got {band_bps}")
        self.band_bps = float(band_bps)

    def reading_band(self, sample: UtilizationSample) -> tuple[float, float]:
        """The quantized (low, high) avail-bw band for one window."""
        k = math.floor(sample.avail_bw_bps / self.band_bps)
        return (k * self.band_bps, (k + 1) * self.band_bps)

    def banded_series(self) -> list[tuple[float, float, float]]:
        """[(window end time, band low, band high), ...]."""
        return [(s.t_end, *self.reading_band(s)) for s in self.samples]


class QueueMonitor:
    """Samples a link's backlog (bytes) at a fixed interval.

    ``stop`` ends the sampling without leaving a pending call behind;
    :meth:`detach` cancels it immediately at any point.
    """

    def __init__(
        self,
        sim: Simulator,
        link: Link,
        interval: float = 0.1,
        start: float = 0.0,
        stop: Optional[float] = None,
    ):
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.sim = sim
        self.link = link
        self.interval = float(interval)
        self.stop = stop
        self.samples: list[tuple[float, int]] = []
        self._pending: Optional[ScheduledCall] = sim.schedule_at(start, self._tick)

    def detach(self) -> None:
        """Cancel the pending tick; sampling stops immediately.  Idempotent."""
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None

    def _tick(self) -> None:
        self._pending = None
        now = self.sim.now
        if self.stop is not None and now > self.stop:
            return
        self.samples.append((now, self.link.backlog_bytes(now)))
        self._pending = self.sim.schedule(self.interval, self._tick)

    def max_backlog(self) -> int:
        """Largest sampled backlog in bytes (0 if no samples)."""
        return max((b for _t, b in self.samples), default=0)

    def mean_backlog(self) -> float:
        """Mean sampled backlog in bytes."""
        if not self.samples:
            raise ValueError("no queue samples collected yet")
        return sum(b for _t, b in self.samples) / len(self.samples)
