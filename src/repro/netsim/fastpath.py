"""Shared fast-path opt-out resolution.

Every event-elided data path (bulk cross traffic, analytic probe-stream
transit, the flow-transit planner) honors the same three-level opt-out:

1. an explicit ``fast=`` argument on the component (``ProbeChannel``,
   ``TCPSender``, ``Pinger``, ``run_pathload``, ...) wins outright;
2. otherwise the ``REPRO_NO_FAST`` environment variable disables the
   fast path (the hook the CLIs' ``--no-fast`` flags and the sweep
   workers use, since worker processes only inherit the environment);
3. otherwise the fast path is on.

Results are bit-identical either way; the switch exists for A/B timing
and for debugging with per-packet event granularity.  This helper is the
single resolution point so the probe and flow paths (and the CLIs)
cannot drift apart.
"""

from __future__ import annotations

import os
from typing import Optional

__all__ = ["resolve_fast", "NO_FAST_ENV"]

#: Environment variable that disables every analytic fast path.
NO_FAST_ENV = "REPRO_NO_FAST"


def resolve_fast(fast: Optional[bool] = None) -> bool:
    """Resolve an optional ``fast=`` argument against ``REPRO_NO_FAST``.

    ``True``/``False`` are taken as-is; ``None`` (the default everywhere)
    means "on unless the environment opts out".
    """
    if fast is not None:
        return bool(fast)
    return not os.environ.get(NO_FAST_ENV)
