"""Shared fast-path / vector-kernel opt-out resolution.

Every event-elided data path (bulk cross traffic, analytic probe-stream
transit, the flow-transit planner) honors the same three-level opt-out:

1. an explicit ``fast=`` argument on the component (``ProbeChannel``,
   ``TCPSender``, ``Pinger``, ``run_pathload``, ...) wins outright;
2. otherwise the ``REPRO_NO_FAST`` environment variable disables the
   fast path (the hook the CLIs' ``--no-fast`` flags and the sweep
   workers use, since worker processes only inherit the environment);
3. otherwise the fast path is on.

The vectorized planning kernels (:mod:`repro.netsim.kernels`) honor the
same precedence under their own switch, ``REPRO_NO_VECTOR`` (CLI flag
``--no-vector``): the two axes are independent, so a run can take the
analytic fast paths while forcing every inner fold through the scalar
loops, or vice versa.

Results are bit-identical either way; the switches exist for A/B timing
and for debugging with per-packet event granularity.  This helper is the
single resolution point so the probe and flow paths, the kernels, and
the CLIs cannot drift apart.
"""

from __future__ import annotations

import os
from typing import Optional

__all__ = ["resolve_fast", "resolve_vector", "NO_FAST_ENV", "NO_VECTOR_ENV"]

#: Environment variable that disables every analytic fast path.
NO_FAST_ENV = "REPRO_NO_FAST"

#: Environment variable that disables the vectorized planning kernels.
NO_VECTOR_ENV = "REPRO_NO_VECTOR"


def _resolve(flag: Optional[bool], env_var: str) -> bool:
    """Shared precedence: explicit flag wins, else env opt-out, else on."""
    if flag is not None:
        return bool(flag)
    return not os.environ.get(env_var)


def resolve_fast(fast: Optional[bool] = None) -> bool:
    """Resolve an optional ``fast=`` argument against ``REPRO_NO_FAST``.

    ``True``/``False`` are taken as-is; ``None`` (the default everywhere)
    means "on unless the environment opts out".
    """
    return _resolve(fast, NO_FAST_ENV)


def resolve_vector(vector: Optional[bool] = None) -> bool:
    """Resolve an optional ``vector=`` argument against ``REPRO_NO_VECTOR``.

    Same precedence as :func:`resolve_fast`.  A ``False`` result routes
    every kernel call site to its scalar twin loop.
    """
    return _resolve(vector, NO_VECTOR_ENV)
