"""Batched cross-traffic arrivals: the event-elided data path.

Open-loop background traffic dominates the event budget of every
experiment: at the paper's operating points (ten Pareto sources per hop,
441 B mean packets) cross packets outnumber probe packets by well over an
order of magnitude, yet each one used to pay two heap operations and two
Python callback dispatches just to nudge a FIFO backlog that only
probe/TCP packets and monitors ever read.

This module removes those per-packet events.  Each bulk-eligible
:class:`~repro.netsim.crosstraffic.CrossTrafficSource` converts its
refill buffer into absolute arrival-time/size arrays (a cumulative sum
over the very same gap draws, RNG chunk order untouched) and registers
them with its link's :class:`CrossAggregator`.  The aggregator k-way
merges the link's sources in time order into one flat admission queue and
keeps exactly **one scheduled event per refill horizon** — the instant
the slowest source's buffer runs out — instead of one per packet.  The
owning :class:`~repro.netsim.link.Link` folds merged arrivals into its
transmitter/backlog ledger lazily, at its sync points (foreground
``send()``, backlog/queueing-delay reads, stats access), so foreground
packets observe exactly the queue state the per-packet path would have
produced.

Determinism contract
--------------------
The merged arrival sequence is byte-for-byte the sequence the per-packet
path generates: arrival times are the identical floating-point sums
(``t += gap`` mirrors ``Simulator.schedule(gap, ...)``), sizes come from
the same RNG draws in the same chunk order, and same-timestamp arrivals
merge in source-registration order (the per-packet path orders exact ties
by event insertion; with continuous interarrival draws such ties have
probability zero).

Modulated sources (``modulation=(interval, sigma)``) feed the aggregator
in *segment-planned* batches: generation runs one rate-factor segment at
a time, dividing each gap by the factor in force at the previous
arrival's instant and consuming each boundary's lognormal factor draw at
exactly the RNG position the per-packet ``_modulate`` timer would, so
every floating-point expression matches.  An arrival landing exactly on
a segment boundary is a measure-zero tie of the same kind: the bulk
generator applies the boundary first (the next gap uses the
post-boundary factor) while the per-packet ordering depends on event
insertion — continuous draws never produce the collision.  See the
``crosstraffic`` module docstring and ``docs/performance.md`` for the
full contract and the fallback conditions.
"""

from __future__ import annotations

import bisect
import math
from typing import TYPE_CHECKING, Optional

import numpy as np

from . import kernels

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from .crosstraffic import CrossTrafficSource
    from .engine import Simulator
    from .link import Link

__all__ = ["CrossAggregator"]

#: Consumed-prefix length beyond which the merged arrays are compacted.
_COMPACT_THRESHOLD = 16384


class _Feed:
    """One source's buffered future arrivals (absolute times, sizes)."""

    __slots__ = ("source", "times", "sizes", "done", "order")

    def __init__(self, source: "CrossTrafficSource", order: int):
        self.source = source
        self.times: list[float] = []
        self.sizes: list[int] = []
        self.done = False  # True once the source's stop time truncated a batch
        self.order = order  # registration order, breaks exact-time ties


class CrossAggregator:
    """Per-link k-way merger of bulk cross-traffic sources.

    The aggregator owns the link's flat admission queue (``times`` /
    ``sizes`` / ``owners``, consumed by :meth:`Link.sync` via ``idx``) and
    the single refill-horizon event that extends it.  Entries are merged
    only up to the *safe horizon* — the earliest last-buffered time over
    all still-active sources — so a source refilling later can never
    insert an arrival behind one already merged.
    """

    __slots__ = (
        "sim",
        "link",
        "feeds",
        "times",
        "sizes",
        "owners",
        "idx",
        "_event",
        "_merge_pending",
        "_horizon",
        "_mirror_t",
        "_mirror_s",
        "_mirror_lo",
    )

    def __init__(self, sim: "Simulator", link: "Link"):
        self.sim = sim
        self.link = link
        self.feeds: list[_Feed] = []
        #: merged admission queue; ``idx`` is the first not-yet-admitted entry
        self.times: list[float] = []
        self.sizes: list[int] = []
        self.owners: list["CrossTrafficSource"] = []
        self.idx = 0
        self._event = None  # pending refill-horizon ScheduledCall
        self._merge_pending = False  # a coalescing merge event is queued
        # Merged coverage: every arrival ≤ _horizon is final (safe-horizon
        # invariant).  -inf until the first merge, +inf once all feeds end.
        self._horizon = -math.inf
        # Array mirror of the merged tail: ``_mirror_lo`` is the flat
        # index (in ``times`` coordinates) of chunk 0's first element,
        # and the chunks' concatenation covers ``times[_mirror_lo:]``
        # through the end.  ``_mirror_lo`` goes negative when compaction
        # trims a partially consumed chunk; it is None while the vector
        # kernels are off — the mirror restarts at the next merge that
        # produces arrays.  Lets the fold kernels consume merged slices
        # without re-converting the Python lists element by element.
        self._mirror_t: list[np.ndarray] = []
        self._mirror_s: list[np.ndarray] = []
        self._mirror_lo: Optional[int] = 0

    @classmethod
    def attach(cls, sim: "Simulator", link: "Link") -> "CrossAggregator":
        """Get or create the aggregator bound to ``link``."""
        agg = link._agg
        if agg is None:
            agg = cls(sim, link)
            link._agg = agg
        return agg

    # ------------------------------------------------------------------
    # Source registration
    # ------------------------------------------------------------------
    def register(self, source: "CrossTrafficSource") -> _Feed:
        """Add a bulk source and fold it into the merged queue.

        Unadmitted merged entries are first rolled back into their feeds
        so that a source registered mid-run cannot see its early arrivals
        ordered behind other sources' already-merged later ones.  The
        actual merge is deferred to a zero-delay event so the paper's
        "ten sources per link" attach pattern merges once, not ten times
        (every source's first arrival lies strictly after registration,
        so no arrival can come due before that event runs).
        """
        if self.link._agenda is not None:
            # A planned probe stream snapshotted this link's cross arrivals
            # without the newcomer; its transit is no longer valid.
            self.link._agenda.plan.revoke("source-registered")
        self._unmerge()
        feed = _Feed(source, order=len(self.feeds))
        self.feeds.append(feed)
        if not self._merge_pending:
            self._merge_pending = True
            self.sim.schedule(0.0, self._deferred_merge)
        return feed

    def _deferred_merge(self) -> None:
        self._merge_pending = False
        self._merge()

    def _unmerge(self) -> None:
        """Return unadmitted merged entries to their feeds (rare path)."""
        times, sizes, owners, idx = self.times, self.sizes, self.owners, self.idx
        self._horizon = -math.inf  # a new source invalidates merged coverage
        self._mirror_t.clear()
        self._mirror_s.clear()
        self._mirror_lo = 0
        if idx >= len(times):
            del times[:], sizes[:], owners[:]
            self.idx = 0
            return
        rollback: dict[_Feed, tuple[list[float], list[int]]] = {
            feed: ([], []) for feed in self.feeds
        }
        for i in range(idx, len(times)):
            feed = owners[i]._feed
            ts, ss = rollback[feed]
            ts.append(times[i])
            ss.append(sizes[i])
        for feed, (ts, ss) in rollback.items():
            if ts:
                feed.times[:0] = ts
                feed.sizes[:0] = ss
        del times[:], sizes[:], owners[:]
        self.idx = 0

    # ------------------------------------------------------------------
    # Merge machinery
    # ------------------------------------------------------------------
    def _merge(self) -> None:
        """Merge feed entries up to the safe horizon; reschedule the event.

        The merge is a stable argsort over the feeds' due prefixes,
        concatenated in registration order: sort stability then orders
        exact-time ties by registration, the same tie-break a (time,
        order)-keyed heap would apply — and the vectorized sort is an
        order of magnitude cheaper than per-entry heap operations.
        """
        for feed in self.feeds:
            if not feed.done and not feed.times:
                feed.source._bulk_fill(feed)
        horizons = [feed.times[-1] for feed in self.feeds if not feed.done]
        safe = min(horizons) if horizons else math.inf
        self._horizon = safe
        parts_t: list[list[float]] = []
        parts_s: list[list[int]] = []
        part_feeds: list[_Feed] = []
        times, sizes, owners = self.times, self.sizes, self.owners
        for feed in self.feeds:
            if feed.times and feed.times[0] <= safe:
                cut = bisect.bisect_right(feed.times, safe)
                parts_t.append(feed.times[:cut])
                parts_s.append(feed.sizes[:cut])
                part_feeds.append(feed)
                del feed.times[:cut]
                del feed.sizes[:cut]
        if parts_t:
            mt, ms, part_idx, t_arr, s_arr = kernels.merge_parts(
                parts_t, parts_s
            )
            times.extend(mt)
            sizes.extend(ms)
            if part_idx is None:
                # Single contributing source (single-source links, and
                # every horizon where only the binding feed refilled past
                # the others' heads): its due prefix spliced wholesale.
                owners.extend([part_feeds[0].source] * len(mt))
            else:
                srcs = [feed.source for feed in part_feeds]
                owners.extend([srcs[i] for i in part_idx])
            if t_arr is not None:
                self._mirror_append(t_arr, s_arr)
            elif self._mirror_lo is not None:
                # Kernels off for this merge: coverage of the tail broke.
                self._mirror_t.clear()
                self._mirror_s.clear()
                self._mirror_lo = None
        self._reschedule(safe if horizons else None)

    def _mirror_append(self, t_arr: np.ndarray, s_arr: np.ndarray) -> None:
        """Extend (or restart) array-mirror coverage with a merged chunk."""
        if self._mirror_lo is None:
            self._mirror_lo = len(self.times) - len(t_arr)
        self._mirror_t.append(t_arr)
        self._mirror_s.append(s_arr)

    def arrays(self, lo: int, hi: int) -> Optional[tuple]:
        """Merged slice ``[lo:hi)`` as ``(float64, int64)`` array views.

        Returns None when the mirror does not cover the range (kernels
        were off when those entries merged).  The common case — one
        chunk spans the whole request — returns zero-copy views; ranges
        crossing chunks pay one concatenate.
        """
        mlo = self._mirror_lo
        if mlo is None or lo < mlo or hi <= lo:
            return None
        out_t: list[np.ndarray] = []
        out_s: list[np.ndarray] = []
        pos = mlo
        for ct, cs in zip(self._mirror_t, self._mirror_s):
            end = pos + len(ct)
            if end > lo:
                a = max(lo, pos) - pos
                b = min(hi, end) - pos
                out_t.append(ct[a:b])
                out_s.append(cs[a:b])
                if end >= hi:
                    break
            pos = end
        if sum(len(c) for c in out_t) != hi - lo:  # pragma: no cover
            return None  # coverage guard; tail invariant should prevent it
        if len(out_t) == 1:
            return out_t[0], out_s[0]
        return np.concatenate(out_t), np.concatenate(out_s)

    def _reschedule(self, safe: Optional[float]) -> None:
        """Point the single refill-horizon event at ``safe`` (None: none)."""
        if self._event is not None:
            self._event.cancel()
            self._event = None
        if safe is not None:
            self._event = self.sim.schedule_at(safe, self._extend)

    def _extend(self) -> None:
        """Refill-horizon event: generate the next batches and re-merge."""
        self._event = None
        self._merge()

    def extend_until(self, t: float) -> None:
        """Force merged coverage of every arrival with timestamp ≤ ``t``.

        Used by the stream-transit planner
        (:mod:`repro.netsim.streamtransit`), which needs the cross-arrival
        sequence over the whole stream horizon *now* rather than at the
        refill events.  Each :meth:`_merge` drains the binding feed and
        refills it on the next pass, so the safe horizon strictly advances
        until it covers ``t`` (or every feed ends).  RNG draw order per
        source is untouched — batches are generated in the same sequence,
        only earlier in host time.
        """
        while self._horizon < t:
            prev = self._horizon
            self._merge()
            if self._horizon <= prev:  # pragma: no cover - invariant guard
                from .engine import SimulationError

                raise SimulationError(
                    f"cross-traffic merge horizon stalled at {prev!r} while "
                    f"extending {self.link.name!r} to {t!r}"
                )

    # ------------------------------------------------------------------
    # Fold support / teardown
    # ------------------------------------------------------------------
    def compact(self) -> None:
        """Trim the consumed prefix of the merged arrays (amortized O(1))."""
        idx = self.idx
        if idx > _COMPACT_THRESHOLD:
            del self.times[:idx]
            del self.sizes[:idx]
            del self.owners[:idx]
            self.idx = 0
            if self._mirror_lo is not None:
                lo = self._mirror_lo - idx
                chunks_t, chunks_s = self._mirror_t, self._mirror_s
                while chunks_t and lo + len(chunks_t[0]) <= 0:
                    lo += len(chunks_t[0])
                    del chunks_t[0]
                    del chunks_s[0]
                self._mirror_lo = lo

    def release(self) -> None:
        """Hand every source back to the per-packet path.

        Called by the link when it stops being bulk-eligible (a qdisc,
        drop hook, or delivery callback was installed mid-run).  Due
        arrivals must already have been folded by the caller; the
        remaining future arrivals — the unadmitted merged tail plus each
        feed's unmerged buffer — are returned to their sources, which
        replay them as ordinary scheduled events.  The sample path is
        unchanged: times and sizes are exactly the ones the per-packet
        path would have produced.
        """
        if self._event is not None:
            self._event.cancel()
            self._event = None
        pending: dict[_Feed, tuple[list[float], list[int]]] = {
            feed: ([], []) for feed in self.feeds
        }
        times, sizes, owners = self.times, self.sizes, self.owners
        for i in range(self.idx, len(times)):
            feed = owners[i]._feed
            ts, ss = pending[feed]
            ts.append(times[i])
            ss.append(sizes[i])
        del times[:], sizes[:], owners[:]
        self.idx = 0
        self._mirror_t.clear()
        self._mirror_s.clear()
        self._mirror_lo = 0
        feeds, self.feeds = self.feeds, []
        for feed in feeds:
            ts, ss = pending[feed]
            ts.extend(feed.times)
            ss.extend(feed.sizes)
            feed.source._resume_per_packet(ts, ss, feed.done)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CrossAggregator link={self.link.name} sources={len(self.feeds)} "
            f"pending={len(self.times) - self.idx}>"
        )
