"""Discrete-event network simulation substrate.

This subpackage is the reproduction's stand-in for the paper's NS
simulations and Internet testbeds: a virtual-time kernel
(:mod:`~repro.netsim.engine`), store-and-forward links
(:mod:`~repro.netsim.link`), multi-hop paths (:mod:`~repro.netsim.path`,
:mod:`~repro.netsim.topologies`), heavy-tailed cross traffic
(:mod:`~repro.netsim.crosstraffic`), MRTG-style monitors
(:mod:`~repro.netsim.monitor`), and host clock models
(:mod:`~repro.netsim.clock`).
"""

from .bulkarrivals import CrossAggregator
from .clock import Clock, NoisyClock, OffsetClock, PerfectClock, SkewedClock
from .crosstraffic import (
    PAPER_PACKET_MIX,
    CrossTrafficSource,
    PacketMix,
    attach_cross_traffic,
)
from .engine import Event, Process, ScheduledCall, SimulationError, Simulator
from .flowgen import ShortFlowGenerator
from .graph import build_graph_path, route_nodes
from .replay import TraceReplaySource, load_trace, save_trace, synthesize_trace
from .link import Link, LinkStats
from .monitor import LinkMonitor, MRTGMonitor, QueueMonitor, UtilizationSample
from .packet import Packet, PacketKind
from .path import LinkSpec, PathNetwork, build_path, sink
from .qdisc import REDQueue
from .trace import LinkTap, TraceRecord, owd_series, write_csv
from .topologies import (
    Fig4Config,
    PathSetup,
    build_fig4_path,
    build_single_hop_path,
    build_two_link_path,
)

__all__ = [
    "Clock",
    "CrossAggregator",
    "CrossTrafficSource",
    "Event",
    "Fig4Config",
    "Link",
    "LinkMonitor",
    "LinkSpec",
    "LinkStats",
    "MRTGMonitor",
    "NoisyClock",
    "OffsetClock",
    "PAPER_PACKET_MIX",
    "Packet",
    "PacketKind",
    "PacketMix",
    "PathNetwork",
    "PathSetup",
    "PerfectClock",
    "REDQueue",
    "Process",
    "QueueMonitor",
    "ScheduledCall",
    "ShortFlowGenerator",
    "SimulationError",
    "Simulator",
    "SkewedClock",
    "LinkTap",
    "TraceRecord",
    "TraceReplaySource",
    "UtilizationSample",
    "attach_cross_traffic",
    "build_fig4_path",
    "build_graph_path",
    "route_nodes",
    "build_path",
    "build_single_hop_path",
    "load_trace",
    "owd_series",
    "save_trace",
    "synthesize_trace",
    "write_csv",
    "build_two_link_path",
    "sink",
]
