"""Cross-traffic generation.

Section V of the paper generates cross traffic at each hop from **ten random
sources** whose interarrivals are either exponential (Poisson traffic) or
Pareto with ``alpha = 1.9`` (infinite variance, heavy-tailed), and whose
packet sizes follow the classic Internet mix:

    40% 40-byte packets, 50% 550-byte, 10% 1500-byte  (mean 441 B).

This module reproduces that workload:

* :class:`PacketMix` — the size distribution;
* :class:`CrossTrafficSource` — one renewal-process source feeding one link;
* :func:`attach_cross_traffic` — the paper's "ten sources per link" helper.

For performance, each source draws interarrivals and sizes in vectorized
numpy batches and walks through them with an index, so steady-state cost is
one heap event plus O(1) Python work per packet.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .engine import Simulator
from .link import Link
from .packet import Packet, PacketKind
from .path import PathNetwork

__all__ = [
    "PAPER_PACKET_MIX",
    "PacketMix",
    "CrossTrafficSource",
    "attach_cross_traffic",
]

#: The paper's cross-traffic packet-size distribution (Section V-A).
PAPER_PACKET_MIX: tuple[tuple[int, float], ...] = (
    (40, 0.40),
    (550, 0.50),
    (1500, 0.10),
)

_BATCH = 4096  # samples buffered per refill
_CHUNK = 512  # RNG draw granularity within a refill (see _refill)


class PacketMix:
    """A discrete packet-size distribution.

    Parameters
    ----------
    sizes_probs:
        Sequence of ``(size_bytes, probability)`` pairs.  Probabilities must
        sum to 1 (within float tolerance).
    """

    def __init__(self, sizes_probs: Sequence[tuple[int, float]] = PAPER_PACKET_MIX):
        sizes_probs = tuple(sizes_probs)
        if not sizes_probs:
            raise ValueError("packet mix must contain at least one size")
        total = sum(p for _s, p in sizes_probs)
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"packet mix probabilities sum to {total}, expected 1")
        if any(s <= 0 for s, _p in sizes_probs):
            raise ValueError("packet sizes must be positive")
        self.sizes = np.array([s for s, _p in sizes_probs], dtype=np.int64)
        self.probs = np.array([p for _s, p in sizes_probs], dtype=np.float64)

    @property
    def mean_size(self) -> float:
        """Mean packet size in bytes."""
        return float(np.dot(self.sizes, self.probs))

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` packet sizes."""
        return rng.choice(self.sizes, size=n, p=self.probs)

    @classmethod
    def constant(cls, size: int) -> "PacketMix":
        """A degenerate mix of a single packet size."""
        return cls(((size, 1.0),))


class CrossTrafficSource:
    """A single renewal-process traffic source feeding one link.

    Parameters
    ----------
    rate_bps:
        Long-run average offered load in bits per second.
    model:
        Interarrival model: ``"poisson"`` (exponential), ``"pareto"``
        (heavy-tailed with shape ``alpha``), or ``"cbr"`` (constant spacing,
        a fluid-like deterministic source).
    alpha:
        Pareto shape; the paper uses 1.9 (finite mean, infinite variance).
    start / stop:
        Activity window in simulated seconds (``stop=None`` ⇒ forever).
    modulation:
        Optional ``(interval, sigma)`` slow-timescale load modulation: every
        ``interval`` seconds the source's instantaneous rate is multiplied
        by a mean-reverting lognormal factor (clamped to [0.25, 2.5]).
        This models the minutes-scale *non-stationarity* of real Internet
        load on top of the packet-scale burstiness — without it, the
        avail-bw process is stationary at every timescale, which real paths
        (Section VI) are not.  The long-run average rate stays ``rate_bps``.
    """

    def __init__(
        self,
        sim: Simulator,
        network: PathNetwork,
        link: Link,
        rate_bps: float,
        rng: np.random.Generator,
        model: str = "pareto",
        alpha: float = 1.9,
        mix: Optional[PacketMix] = None,
        start: float = 0.0,
        stop: Optional[float] = None,
        name: str = "cross",
        modulation: Optional[tuple[float, float]] = None,
    ):
        if rate_bps < 0:
            raise ValueError(f"rate must be >= 0, got {rate_bps}")
        if model not in ("poisson", "pareto", "cbr"):
            raise ValueError(f"unknown interarrival model {model!r}")
        if model == "pareto" and alpha <= 1.0:
            raise ValueError(f"Pareto alpha must exceed 1 for a finite mean, got {alpha}")
        self.sim = sim
        self.network = network
        self.link = link
        self.rate_bps = float(rate_bps)
        self.rng = rng
        self.model = model
        self.alpha = float(alpha)
        self.mix = mix if mix is not None else PacketMix()
        self.stop = stop
        self.name = name
        self.packets_sent = 0
        self.bytes_sent = 0
        # Refilled in vectorized batches, then walked as plain Python lists:
        # indexing an ndarray yields numpy scalars, whose arithmetic in the
        # per-packet path is several times slower than float/int.
        self._sizes: list[int] = []
        self._gaps: list[float] = []
        self._idx = 0
        #: mean interarrival implied by the rate and mean packet size
        self.mean_gap = (
            float("inf")
            if rate_bps == 0
            else self.mix.mean_size * 8.0 / self.rate_bps
        )
        self._mod_factor = 1.0
        self.modulation = modulation
        if modulation is not None:
            interval, sigma = modulation
            if interval <= 0 or sigma < 0:
                raise ValueError(
                    f"modulation needs interval > 0 and sigma >= 0, got {modulation}"
                )
            sim.schedule_at(start, self._modulate)
        if rate_bps > 0:
            first_gap = self._warmup_offset()
            sim.schedule_at(start + first_gap, self._arrival)

    def _warmup_offset(self) -> float:
        """Randomize the first arrival so sources are not phase-aligned."""
        if self.model == "cbr":
            return float(self.rng.uniform(0.0, self.mean_gap))
        return float(self._next_gap())

    def _refill(self) -> None:
        mean = self.mean_gap
        gaps: list[float] = []
        sizes: list[int] = []
        # Draw in _CHUNK-sized sub-batches, alternating gaps and sizes: the
        # RNG stream consumption order then depends only on _CHUNK, so the
        # buffer size amortizes refill overhead without perturbing the
        # sample path of any seeded experiment.
        for _ in range(_BATCH // _CHUNK):
            if self.model == "poisson":
                chunk = self.rng.exponential(mean, size=_CHUNK)
            elif self.model == "pareto":
                # numpy's Generator.pareto draws Lomax samples (x_m = 1
                # shifted to zero); interarrival = x_m * (1 + lomax) has
                # mean x_m * alpha / (alpha - 1).
                xm = mean * (self.alpha - 1.0) / self.alpha
                chunk = xm * (1.0 + self.rng.pareto(self.alpha, size=_CHUNK))
            else:  # cbr
                chunk = np.full(_CHUNK, mean)
            gaps.extend(chunk.tolist())
            sizes.extend(self.mix.sample(self.rng, _CHUNK).tolist())
        self._gaps = gaps
        self._sizes = sizes
        self._idx = 0

    def _next_gap(self) -> float:
        if self._idx >= len(self._gaps):
            self._refill()
        return self._gaps[self._idx]

    def _arrival(self) -> None:
        now = self.sim.now
        if self.stop is not None and now >= self.stop:
            return
        if self._idx >= len(self._sizes):
            self._refill()
        size = self._sizes[self._idx]
        pkt = Packet(size, flow_id=self.name, kind=PacketKind.CROSS)
        self.network.inject_at(self.link, pkt)
        self.packets_sent += 1
        self.bytes_sent += size
        self._idx += 1
        self.sim.schedule(self._next_gap() / self._mod_factor, self._arrival)

    def _modulate(self) -> None:
        """Mean-reverting lognormal random walk of the instantaneous rate."""
        if self.stop is not None and self.sim.now >= self.stop:
            return
        interval, sigma = self.modulation  # type: ignore[misc]
        # pull the log-factor halfway back to 0, then perturb
        log_factor = 0.5 * float(np.log(self._mod_factor))
        log_factor += float(self.rng.normal(0.0, sigma))
        self._mod_factor = float(np.clip(np.exp(log_factor), 0.25, 2.5))
        self.sim.schedule(interval, self._modulate)


def attach_cross_traffic(
    sim: Simulator,
    network: PathNetwork,
    link: Link,
    rate_bps: float,
    rng: np.random.Generator,
    n_sources: int = 10,
    model: str = "pareto",
    alpha: float = 1.9,
    mix: Optional[PacketMix] = None,
    start: float = 0.0,
    stop: Optional[float] = None,
    modulation: Optional[tuple[float, float]] = None,
) -> list[CrossTrafficSource]:
    """Attach the paper's per-link workload: ``n_sources`` independent sources.

    The aggregate offered load is ``rate_bps``, split evenly; each source
    gets an independent RNG stream spawned from ``rng`` so that changing one
    source's draws cannot perturb another's.
    """
    if n_sources <= 0:
        raise ValueError(f"n_sources must be positive, got {n_sources}")
    children = rng.spawn(n_sources)
    return [
        CrossTrafficSource(
            sim,
            network,
            link,
            rate_bps / n_sources,
            child,
            model=model,
            alpha=alpha,
            mix=mix,
            start=start,
            stop=stop,
            name=f"cross-{link.name}-{i}",
            modulation=modulation,
        )
        for i, child in enumerate(children)
    ]
