"""Cross-traffic generation.

Section V of the paper generates cross traffic at each hop from **ten random
sources** whose interarrivals are either exponential (Poisson traffic) or
Pareto with ``alpha = 1.9`` (infinite variance, heavy-tailed), and whose
packet sizes follow the classic Internet mix:

    40% 40-byte packets, 50% 550-byte, 10% 1500-byte  (mean 441 B).

This module reproduces that workload:

* :class:`PacketMix` — the size distribution;
* :class:`CrossTrafficSource` — one renewal-process source feeding one link;
* :func:`attach_cross_traffic` — the paper's "ten sources per link" helper.

Two data paths deliver the packets to the link, chosen automatically per
source:

* **Bulk (default when eligible).**  Each 4096-sample refill is converted
  into absolute arrival-time/size arrays — a cumulative sum over the very
  same vectorized gap draws, RNG chunk order untouched — and registered
  with the link's :class:`~repro.netsim.bulkarrivals.CrossAggregator`.
  The link folds the merged arrivals into its queue state lazily at its
  sync points, so open-loop background load costs **zero scheduler events
  per packet** (one per refill horizon), while every foreground packet
  observes a bit-identical queue.
* **Per-packet (fallback).**  One heap event plus O(1) Python work per
  packet.  Engaged automatically when the sample path could depend on
  per-packet interaction: a link with a ``qdisc`` (AQM must see every
  packet), a ``drop_hook``, or a rebound delivery callback (taps must see
  every packet).  ``bulk=False`` forces this path, e.g. for equivalence
  tests.

Modulated sources and the bulk path
-----------------------------------
A ``modulation=(interval, sigma)`` source is piecewise-constant: its
rate factor only changes at the segment boundaries ``start + k *
interval``.  The bulk generator therefore emits its batched arrival
arrays *per rate-factor segment*: it walks the same gap draws the
per-packet path would consume, divides each gap by the factor in force
at the previous arrival's instant, and draws each boundary's
mean-reverting factor at the exact position in the source's RNG stream
where the per-packet ``_modulate`` event would draw it (boundaries
interleave with refills in event order; see ``_mod_consume``).  Draws
may happen *earlier in host time* — the established ``extend_until``
contract — but per-source draw order, and therefore every arrival
time, is bit-identical.

One measure-zero caveat: when an arrival lands **exactly** on a segment
boundary, the bulk generator applies the boundary first (the arrival's
own time is unaffected; the *next* gap uses the post-boundary factor),
while the per-packet path's ordering depends on event insertion order.
For the continuous interarrival models a float-exact collision has
probability zero, matching the exact-tie merge caveat documented in
``bulkarrivals.py``.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Optional, Sequence

import numpy as np

from . import kernels
from .bulkarrivals import CrossAggregator
from .engine import Simulator
from .link import Link
from .packet import Packet, PacketKind
from .path import PathNetwork

__all__ = [
    "PAPER_PACKET_MIX",
    "PacketMix",
    "CrossTrafficSource",
    "attach_cross_traffic",
]

#: The paper's cross-traffic packet-size distribution (Section V-A).
PAPER_PACKET_MIX: tuple[tuple[int, float], ...] = (
    (40, 0.40),
    (550, 0.50),
    (1500, 0.10),
)

_BATCH = 4096  # samples buffered per refill
_CHUNK = 512  # RNG draw granularity within a refill (see _refill)


class PacketMix:
    """A discrete packet-size distribution.

    Parameters
    ----------
    sizes_probs:
        Sequence of ``(size_bytes, probability)`` pairs.  Probabilities must
        sum to 1 (within float tolerance).
    """

    def __init__(self, sizes_probs: Sequence[tuple[int, float]] = PAPER_PACKET_MIX):
        sizes_probs = tuple(sizes_probs)
        if not sizes_probs:
            raise ValueError("packet mix must contain at least one size")
        total = sum(p for _s, p in sizes_probs)
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"packet mix probabilities sum to {total}, expected 1")
        if any(s <= 0 for s, _p in sizes_probs):
            raise ValueError("packet sizes must be positive")
        self.sizes = np.array([s for s, _p in sizes_probs], dtype=np.int64)
        self.probs = np.array([p for _s, p in sizes_probs], dtype=np.float64)

    @property
    def mean_size(self) -> float:
        """Mean packet size in bytes."""
        return float(np.dot(self.sizes, self.probs))

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` packet sizes."""
        return rng.choice(self.sizes, size=n, p=self.probs)

    @classmethod
    def constant(cls, size: int) -> "PacketMix":
        """A degenerate mix of a single packet size."""
        return cls(((size, 1.0),))


class CrossTrafficSource:
    """A single renewal-process traffic source feeding one link.

    Parameters
    ----------
    rate_bps:
        Long-run average offered load in bits per second.
    model:
        Interarrival model: ``"poisson"`` (exponential), ``"pareto"``
        (heavy-tailed with shape ``alpha``), or ``"cbr"`` (constant spacing,
        a fluid-like deterministic source).
    alpha:
        Pareto shape; the paper uses 1.9 (finite mean, infinite variance).
    start / stop:
        Activity window in simulated seconds (``stop=None`` ⇒ forever).
    modulation:
        Optional ``(interval, sigma)`` slow-timescale load modulation: every
        ``interval`` seconds the source's instantaneous rate is multiplied
        by a mean-reverting lognormal factor (clamped to [0.25, 2.5]).
        This models the minutes-scale *non-stationarity* of real Internet
        load on top of the packet-scale burstiness — without it, the
        avail-bw process is stationary at every timescale, which real paths
        (Section VI) are not.  The long-run average rate stays ``rate_bps``.
        Modulation is piecewise-constant between boundaries, so a modulated
        source is bulk-eligible: arrivals are batch-generated per
        rate-factor segment (see the module docstring).
    bulk:
        ``None`` (default) selects the event-elided bulk path whenever the
        source and link are eligible; ``False`` forces the per-packet
        path; ``True`` requests bulk but still falls back when ineligible.

    ``packets_sent`` / ``bytes_sent`` count packets *offered to the link*
    (admitted to its queue or dropped by it).  On the bulk path they
    advance as arrivals are folded, and reading either property folds the
    link first — so any consistent read point sees the same values the
    per-packet path would report.
    """

    def __init__(
        self,
        sim: Simulator,
        network: PathNetwork,
        link: Link,
        rate_bps: float,
        rng: np.random.Generator,
        model: str = "pareto",
        alpha: float = 1.9,
        mix: Optional[PacketMix] = None,
        start: float = 0.0,
        stop: Optional[float] = None,
        name: str = "cross",
        modulation: Optional[tuple[float, float]] = None,
        bulk: Optional[bool] = None,
    ):
        if rate_bps < 0:
            raise ValueError(f"rate must be >= 0, got {rate_bps}")
        if model not in ("poisson", "pareto", "cbr"):
            raise ValueError(f"unknown interarrival model {model!r}")
        if model == "pareto" and alpha <= 1.0:
            raise ValueError(f"Pareto alpha must exceed 1 for a finite mean, got {alpha}")
        self.sim = sim
        self.network = network
        self.link = link
        self.rate_bps = float(rate_bps)
        self.rng = rng
        self.model = model
        self.alpha = float(alpha)
        self.mix = mix if mix is not None else PacketMix()
        self.stop = stop
        self.name = name
        self._packets_sent = 0
        self._bytes_sent = 0
        # Refilled in vectorized batches, then walked as plain Python lists:
        # indexing an ndarray yields numpy scalars, whose arithmetic in the
        # per-packet path is several times slower than float/int.
        self._sizes: list[int] = []
        self._gaps: list[float] = []
        self._idx = 0
        #: mean interarrival implied by the rate and mean packet size
        self.mean_gap = (
            float("inf")
            if rate_bps == 0
            else self.mix.mean_size * 8.0 / self.rate_bps
        )
        self._mod_factor = 1.0
        self.modulation = modulation
        # Segment-boundary chain: boundaries sit at exactly
        # ``_mod_anchor + k * interval`` (no float accumulation drift), on
        # both data paths.  ``_mod_next_b`` is the first boundary whose
        # factor draw has not been consumed yet; +inf once the chain dies
        # at ``stop`` (the per-packet event returns without rescheduling).
        self._mod_anchor = float(start)
        self._mod_k = 0
        self._mod_next_b = float("inf")
        # Bulk-path state (see _bulk_fill / _resume_per_packet).
        self._feed = None
        self._bulk_clock = float(start)
        self._bulk_first = True
        self._gen_packets = 0  # arrivals generated into the bulk pipeline
        self._gen_bytes = 0
        self._tail_times: list[float] = []
        self._tail_sizes: list[int] = []
        self._tail_idx = 0
        self._tail_exhausted = False
        if modulation is not None:
            interval, sigma = modulation
            if interval <= 0 or sigma < 0:
                raise ValueError(
                    f"modulation needs interval > 0 and sigma >= 0, got {modulation}"
                )
            self._mod_next_b = float(start)
        self._pp_claimed = False
        if rate_bps > 0 and bulk is not False and self._bulk_eligible():
            # Bulk sources consume boundary draws inside _bulk_fill; no
            # per-boundary events exist until a decommission restarts the
            # chain in _resume_per_packet.
            self._feed = CrossAggregator.attach(sim, link).register(self)
        else:
            if modulation is not None:
                sim.schedule_at(start, self._modulate)
            if rate_bps > 0:
                self._claim_per_packet()
                first_gap = self._warmup_offset()
                sim.schedule_at(start + first_gap, self._arrival)

    def _claim_per_packet(self) -> None:
        """Register as a per-packet foreground participant on the network.

        Per-packet cross arrivals go through ``link.send()`` like any
        foreground flow, so a probe stream planned over this link would be
        revoked at the first arrival anyway; the claim just makes the
        planner skip the wasted work.  Held for the source's lifetime —
        a per-packet source never reverts to bulk.
        """
        if not self._pp_claimed:
            self._pp_claimed = True
            self.network.claim_per_packet()

    @property
    def is_bulk(self) -> bool:
        """True while this source feeds the link via the event-elided path."""
        return self._feed is not None

    @property
    def packets_sent(self) -> int:
        """Packets offered to the link so far (reading folds bulk arrivals)."""
        if self._feed is not None:
            return self._gen_packets - self._pending_counts()[0]
        return self._packets_sent

    @property
    def bytes_sent(self) -> int:
        """Bytes offered to the link so far (reading folds bulk arrivals)."""
        if self._feed is not None:
            return self._gen_bytes - self._pending_counts()[1]
        return self._bytes_sent

    def _pending_counts(self) -> tuple[int, int]:
        """(packets, bytes) generated but not yet offered to the link.

        The fold loop deliberately does no per-source bookkeeping; a
        counter read instead folds due arrivals and subtracts what is
        still pending — this source's share of the aggregator's merged
        tail plus its own unmerged feed buffer.  Reads are rare (tests,
        end-of-run accounting); folds are the hot path.
        """
        self.link.sync()
        feed = self._feed
        n = len(feed.sizes)
        nbytes = sum(feed.sizes)
        agg = self.link._agg
        if agg is not None:
            owners, sizes = agg.owners, agg.sizes
            lo, hi = agg.idx, len(owners)
            got = None
            if hi - lo >= kernels.MIN_BATCH:
                got = kernels.masked_pending(owners, sizes, lo, hi, self)
            if got is not None:
                n += got[0]
                nbytes += got[1]
            else:
                for i in range(lo, hi):
                    if owners[i] is self:
                        n += 1
                        nbytes += sizes[i]
        return n, nbytes

    def _bulk_eligible(self) -> bool:
        """Whether the event-elided path reproduces this source exactly.

        Two things disqualify a source: a link *qdisc* or *drop_hook*
        (both must observe every packet), and a link whose delivery
        callback is not the owning network's forwarding routine (a tap or
        custom handler must see every cross packet exit).  Modulation does
        *not* disqualify: rate factors are piecewise-constant, so
        ``_bulk_fill`` generates per-segment batches with the boundary
        draws taken at their exact positions in the RNG stream.
        """
        link = self.link
        return (
            link.qdisc is None
            and link.drop_hook is None
            and link.deliver == self.network._advance
        )

    def _warmup_offset(self) -> float:
        """Randomize the first arrival so sources are not phase-aligned."""
        if self.model == "cbr":
            return float(self.rng.uniform(0.0, self.mean_gap))
        return float(self._next_gap())

    def _refill(self) -> None:
        mean = self.mean_gap
        gaps: list[float] = []
        sizes: list[int] = []
        # Draw in _CHUNK-sized sub-batches, alternating gaps and sizes: the
        # RNG stream consumption order then depends only on _CHUNK, so the
        # buffer size amortizes refill overhead without perturbing the
        # sample path of any seeded experiment.
        for _ in range(_BATCH // _CHUNK):
            if self.model == "poisson":
                chunk = self.rng.exponential(mean, size=_CHUNK)
            elif self.model == "pareto":
                # numpy's Generator.pareto draws Lomax samples (x_m = 1
                # shifted to zero); interarrival = x_m * (1 + lomax) has
                # mean x_m * alpha / (alpha - 1).
                xm = mean * (self.alpha - 1.0) / self.alpha
                chunk = xm * (1.0 + self.rng.pareto(self.alpha, size=_CHUNK))
            else:  # cbr
                chunk = np.full(_CHUNK, mean)
            gaps.extend(chunk.tolist())
            sizes.extend(self.mix.sample(self.rng, _CHUNK).tolist())
        self._gaps = gaps
        self._sizes = sizes
        self._idx = 0

    def _ensure_buffered(self) -> None:
        """Refill once the current batch is exhausted (shared by the gap and
        size readers — the single refill-exhaustion check)."""
        if self._idx >= len(self._sizes):
            self._refill()

    def _next_gap(self) -> float:
        self._ensure_buffered()
        return self._gaps[self._idx]

    # ------------------------------------------------------------------
    # Per-packet data path
    # ------------------------------------------------------------------
    def _arrival(self) -> None:
        now = self.sim.now
        if self.stop is not None and now >= self.stop:
            return
        self._ensure_buffered()
        size = self._sizes[self._idx]
        pkt = Packet(size, flow_id=self.name, kind=PacketKind.CROSS)
        self.network.inject_at(self.link, pkt)
        self._packets_sent += 1
        self._bytes_sent += size
        self._idx += 1
        self.sim.schedule(self._next_gap() / self._mod_factor, self._arrival)

    def _modulate(self) -> None:
        """Mean-reverting lognormal random walk of the instantaneous rate.

        Rescheduled at the exactly representable ``anchor + k * interval``
        (not ``now + interval``), so segment boundaries carry no float
        accumulation drift and the bulk generator's ``_mod_consume`` lands
        on bit-identical boundary instants.
        """
        if self.stop is not None and self.sim.now >= self.stop:
            self._mod_next_b = float("inf")  # chain dies permanently
            return
        interval, sigma = self.modulation  # type: ignore[misc]
        # pull the log-factor halfway back to 0, then perturb
        log_factor = 0.5 * float(np.log(self._mod_factor))
        log_factor += float(self.rng.normal(0.0, sigma))
        self._mod_factor = float(np.clip(np.exp(log_factor), 0.25, 2.5))
        self._mod_k += 1
        self._mod_next_b = self._mod_anchor + self._mod_k * interval
        self.sim.schedule_at(self._mod_next_b, self._modulate)

    def _mod_consume(self, limit: float, inclusive: bool = True) -> None:
        """Consume every boundary draw up to ``limit`` (batch twin of the
        ``_modulate`` event chain).

        Applies the identical float expressions in the identical RNG
        stream positions; ``inclusive`` selects ``b <= limit`` (the bulk
        generator's boundary-first tie rule) vs ``b < limit`` (used by
        ``_resume_per_packet``, where a boundary at exactly *now* must
        stay an event because the decommission fired first).
        """
        b = self._mod_next_b
        if (b > limit) if inclusive else (b >= limit):
            return
        interval, sigma = self.modulation  # type: ignore[misc]
        stop = self.stop
        anchor = self._mod_anchor
        k = self._mod_k
        rng = self.rng
        f = self._mod_factor
        while (b <= limit) if inclusive else (b < limit):
            if stop is not None and b >= stop:
                b = float("inf")  # chain dies permanently, factor frozen
                break
            log_factor = 0.5 * float(np.log(f))
            log_factor += float(rng.normal(0.0, sigma))
            f = float(np.clip(np.exp(log_factor), 0.25, 2.5))
            k += 1
            b = anchor + k * interval
        self._mod_factor = f
        self._mod_k = k
        self._mod_next_b = b

    # ------------------------------------------------------------------
    # Bulk data path
    # ------------------------------------------------------------------
    def _bulk_fill(self, feed) -> None:
        """Append one refill horizon of absolute arrivals to ``feed``.

        The arrival times are the identical floating-point sums the
        per-packet path computes: ``Simulator.schedule(gap, ...)`` adds
        ``gap`` to the current arrival's timestamp, and so does the
        running ``t += gap`` here.  RNG consumption order — warmup draw,
        then alternating gap/size chunks per refill, with modulation
        boundary draws interleaved at their event positions — is
        byte-identical.
        """
        if self.modulation is not None:
            times, sizes = self._segmented_times()
        else:
            times, sizes = self._stationary_times()
        stop = self.stop
        if stop is not None and times and times[-1] >= stop:
            # The per-packet path returns (without rescheduling) at the
            # first arrival >= stop; truncate there and finish the feed.
            keep = bisect_left(times, stop)
            del times[keep:]
            sizes = sizes[:keep]
            feed.done = True
        self._gen_packets += len(times)
        self._gen_bytes += sum(sizes)
        feed.times.extend(times)
        feed.sizes.extend(sizes)

    def _stationary_times(self) -> tuple[list[float], list[int]]:
        """One unmodulated refill horizon of absolute arrival times."""
        skip_first_gap = False
        if self._bulk_first:
            self._bulk_first = False
            if self.model == "cbr":
                # Mirrors _warmup_offset: the uniform phase offset replaces
                # the first buffered gap (which the per-packet path never
                # consumes for cbr either).
                self._bulk_clock += float(self.rng.uniform(0.0, self.mean_gap))
                skip_first_gap = True
        self._refill()
        gaps = self._gaps
        sizes = self._sizes
        self._idx = len(sizes)  # the whole batch is consumed by this horizon
        # The prefix-sum kernel rounds left-to-right, one addition per
        # element — bit-identical to the per-packet path's running
        # ``t += gap`` — on both its numpy and scalar paths.
        if skip_first_gap:
            times = kernels.prefix_sum(self._bulk_clock, gaps[1:])
        else:
            times = kernels.prefix_sum(self._bulk_clock, gaps)
            del times[0]
        self._bulk_clock = times[-1]
        return times, sizes

    def _segmented_times(self) -> tuple[list[float], list[int]]:
        """One modulated refill horizon, generated per rate-factor segment.

        Walks the batch's gap draws exactly as the per-packet path's
        event chain would: each gap is divided by the factor in force at
        the *previous* arrival's instant (``schedule(gap / factor)``
        happens at that event), and each boundary's factor draw is
        consumed once the walk reaches it — the same position in the RNG
        stream the ``_modulate`` event occupies.  Within a segment the
        arrival times are one seeded prefix sum over ``gap / factor``
        (scalar division per gap, then left-to-right adds — the identical
        float expressions, in order).
        """
        t = self._bulk_clock
        times: list[float]
        if self._bulk_first:
            self._bulk_first = False
            if self.model == "cbr":
                t += float(self.rng.uniform(0.0, self.mean_gap))
                # Boundaries up to the first arrival fire before its event
                # (and before the first refill, which the per-packet path
                # performs at that event).
                self._mod_consume(t)
                self._refill()
                times = [t]
                idx = 1  # gaps[0] replaced by the uniform phase offset
            else:
                self._refill()
                # The first arrival is scheduled at construction from the
                # raw first gap — never factor-divided (no boundary has
                # fired when it is computed).
                t = t + self._gaps[0]
                times = [t]
                idx = 1
        else:
            # A boundary at or before the previous batch's last arrival
            # may be unconsumed (its crossing arrival closed that batch);
            # per-packet it fires before that arrival's event — which is
            # where this refill happens — so consume it before drawing.
            self._mod_consume(t)
            self._refill()
            times = []
            idx = 0
        gaps = self._gaps
        n = len(gaps)
        mean_gap = self.mean_gap
        prefix_sum = kernels.prefix_sum
        while idx < n:
            # Boundaries at or before the last emitted arrival have fired
            # (boundary-first on an exact tie; see the module docstring).
            self._mod_consume(t)
            f = self._mod_factor
            b = self._mod_next_b
            if b == float("inf"):
                # Chain dead (stop reached): the factor is frozen.
                seg = prefix_sum(t, [g / f for g in gaps[idx:]])
                times.extend(seg[1:])
                t = seg[-1]
                idx = n
                break
            # Generate this segment's window: everything up to and
            # including the first arrival at or past the boundary (that
            # arrival's time was computed from a predecessor before the
            # boundary, so it still uses factor ``f``).
            est = int((b - t) * f / mean_gap * 1.25) + 16
            remaining = n - idx
            if est > remaining:
                est = remaining
            seg = prefix_sum(t, [g / f for g in gaps[idx:idx + est]])
            cut = bisect_left(seg, b, 1)  # seg[0] == t < b
            keep = cut if cut <= est else est
            times.extend(seg[1:keep + 1])
            t = seg[keep]
            idx += keep
        self._idx = n  # the whole batch is consumed by this horizon
        self._bulk_clock = t
        return times, self._sizes

    def _resume_per_packet(
        self, times: list[float], sizes: list[int], exhausted: bool
    ) -> None:
        """Switch back to the per-packet path (bulk decommissioning).

        ``times``/``sizes`` are this source's not-yet-admitted future
        arrivals, exactly as the per-packet path would have generated
        them; they are replayed as ordinary scheduled events.  Once the
        tail drains, generation continues from the next RNG refill —
        the same stream position the per-packet path would have reached.
        """
        self._feed = None
        self._claim_per_packet()
        # Everything generated minus the returned tail has been folded into
        # the link; resume the eager per-packet counters from there.
        self._packets_sent = self._gen_packets - len(times)
        self._bytes_sent = self._gen_bytes - sum(sizes)
        self._tail_times = times
        self._tail_sizes = sizes
        self._tail_idx = 0
        self._tail_exhausted = exhausted
        if times:
            self.sim.schedule_at(times[0], self._tail_arrival)
            if self.modulation is not None and not exhausted:
                # Boundary draws up to the tail's end were consumed when
                # its batch was generated (leftovers here); restart the
                # event chain for the boundaries beyond it.
                self._mod_consume(self._bulk_clock)
                if self._mod_next_b != float("inf"):
                    self.sim.schedule_at(self._mod_next_b, self._modulate)
        elif not exhausted:
            if self._bulk_first:
                # Decommissioned before the first batch was ever generated:
                # start exactly as the per-packet constructor would have.
                self._bulk_first = False
                first_gap = self._warmup_offset()
                if self.modulation is not None:
                    self._mod_consume(self.sim.now, inclusive=False)
                    if self._mod_next_b != float("inf"):
                        self.sim.schedule_at(self._mod_next_b, self._modulate)
                self.sim.schedule_at(self._bulk_clock + first_gap, self._arrival)
            else:
                if self.modulation is not None:
                    # Boundaries up to the last folded arrival were consumed
                    # with its batch; the refill below happens (per-packet)
                    # at that arrival's event, before any later boundary.
                    self._mod_consume(self._bulk_clock)
                gap = self._next_gap() / self._mod_factor
                if self.modulation is not None:
                    # Boundaries that per-packet fired between the last
                    # arrival and now draw here; the rest become events.
                    self._mod_consume(self.sim.now, inclusive=False)
                    if self._mod_next_b != float("inf"):
                        self.sim.schedule_at(self._mod_next_b, self._modulate)
                self.sim.schedule_at(self._bulk_clock + gap, self._arrival)

    def _tail_arrival(self) -> None:
        now = self.sim.now
        if self.stop is not None and now >= self.stop:
            return
        i = self._tail_idx
        size = self._tail_sizes[i]
        pkt = Packet(size, flow_id=self.name, kind=PacketKind.CROSS)
        self.network.inject_at(self.link, pkt)
        self._packets_sent += 1
        self._bytes_sent += size
        self._tail_idx = i = i + 1
        if i < len(self._tail_times):
            self.sim.schedule_at(self._tail_times[i], self._tail_arrival)
        elif not self._tail_exhausted:
            self._tail_times = []
            self._tail_sizes = []
            self.sim.schedule(self._next_gap() / self._mod_factor, self._arrival)


def attach_cross_traffic(
    sim: Simulator,
    network: PathNetwork,
    link: Link,
    rate_bps: float,
    rng: np.random.Generator,
    n_sources: int = 10,
    model: str = "pareto",
    alpha: float = 1.9,
    mix: Optional[PacketMix] = None,
    start: float = 0.0,
    stop: Optional[float] = None,
    modulation: Optional[tuple[float, float]] = None,
    bulk: Optional[bool] = None,
) -> list[CrossTrafficSource]:
    """Attach the paper's per-link workload: ``n_sources`` independent sources.

    The aggregate offered load is ``rate_bps``, split evenly; each source
    gets an independent RNG stream spawned from ``rng`` so that changing one
    source's draws cannot perturb another's.  ``bulk`` selects the data
    path per source (see :class:`CrossTrafficSource`).
    """
    if n_sources <= 0:
        raise ValueError(f"n_sources must be positive, got {n_sources}")
    children = rng.spawn(n_sources)
    return [
        CrossTrafficSource(
            sim,
            network,
            link,
            rate_bps / n_sources,
            child,
            model=model,
            alpha=alpha,
            mix=mix,
            start=start,
            stop=stop,
            name=f"cross-{link.name}-{i}",
            modulation=modulation,
            bulk=bulk,
        )
        for i, child in enumerate(children)
    ]
